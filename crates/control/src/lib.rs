#![warn(missing_docs)]
//! `ignite-control`: an online policy controller that closes the loop
//! from scope attribution back into the cluster simulator.
//!
//! The observability stack (PRs 4 and 7) made every invocation's latency
//! explainable: seven attribution components that tile it exactly, SLO
//! burn-rate trackers, store footprint gauges. This crate *consumes*
//! that stream online — through a windowed [`OnlineScope`] fold, O(1)
//! per event, reusing [`ignite_obs::QuantileSketch`] merges — and
//! actuates the four policy axes `cluster::sim` exposes through
//! [`ignite_cluster::PolicyHook`]:
//!
//! * **replay admission** — disable record/replay per function when the
//!   attributed `store_miss + dram` cycles it costs exceed the
//!   front-end cycles replay saves, with a periodic re-enable probe;
//! * **store admission** — tighten metadata-store writeback admission
//!   under footprint pressure with eviction churn, loosen when pressure
//!   subsides;
//! * **core scaling** — raise the schedulable-core cap when the epoch
//!   p99 breaches the latency SLO (or its burn-rate tracker fires),
//!   lower it when latency is comfortably under and queues are empty;
//! * **keep-alive retuning** — reset per-function keep-alive windows
//!   from the observed idle-gap histogram.
//!
//! Every decision is observability: the simulator mirrors each
//! [`ignite_cluster::Decision`] onto the `Track::Controller` trace
//! track, the run report grows a validated `controller` section, and
//! the Prometheus exposition grows the `ignite_ctrl_*` family. The
//! controller is bit-deterministic: integer-only rule math, `BTreeMap`
//! iteration everywhere, and epoch boundaries derived purely from the
//! simulated clock.

pub mod controller;
pub mod online;
pub mod spec;

pub use controller::Controller;
pub use online::{FnWindow, OnlineScope};
pub use spec::{ControllerSpec, SpecError};
