//! The `--controller` spec grammar: a comma-separated `k=v` list with
//! defaults tuned for the bursty MMPP cluster workloads.
//!
//! Grammar (any subset, any order; `default` is the empty spec):
//!
//! ```text
//! epoch=CYCLES        evaluation period            (default 50000)
//! slo=CYCLES          p99 latency objective        (default 400000)
//! min-samples=N       per-epoch evidence floor     (default 8)
//! probe=EPOCHS        replay re-enable period      (default 4)
//! min-cores=N         lower bound for scale-down   (default 1)
//! ```

use std::fmt;

/// Parsed controller configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControllerSpec {
    /// Evaluation period in cycles; every boundary crossing triggers
    /// one rule evaluation over the window since the previous one.
    pub epoch_cycles: u64,
    /// The p99 latency objective in cycles: the core-scaling rule's
    /// threshold and the burn-rate tracker's violation bound.
    pub slo_cycles: u64,
    /// Minimum completed invocations in an epoch before the latency and
    /// replay rules may fire (suppresses decisions on noise).
    pub min_samples: u64,
    /// Re-enable probe period: every `probe` epochs, functions with
    /// replay disabled are given it back to re-measure.
    pub probe_epochs: u64,
    /// The core-scaling rule never lowers the active-core cap below
    /// this.
    pub min_cores: usize,
}

impl Default for ControllerSpec {
    fn default() -> Self {
        ControllerSpec {
            epoch_cycles: 50_000,
            slo_cycles: 400_000,
            min_samples: 8,
            probe_epochs: 4,
            min_cores: 1,
        }
    }
}

/// A malformed `--controller` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A clause was not `key=value`.
    Clause(String),
    /// An unrecognized key.
    Key(String),
    /// A value that failed to parse as an integer.
    Value(String, String),
    /// A value outside its legal range.
    Range(&'static str),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Clause(c) => write!(f, "controller spec clause `{c}` is not key=value"),
            SpecError::Key(k) => write!(
                f,
                "unknown controller spec key `{k}` \
                 (expected epoch, slo, min-samples, probe, min-cores)"
            ),
            SpecError::Value(k, v) => {
                write!(f, "controller spec `{k}={v}`: value is not an integer")
            }
            SpecError::Range(msg) => write!(f, "controller spec: {msg}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl ControllerSpec {
    /// Parses a spec string. `default` (or the empty string) yields
    /// [`ControllerSpec::default`].
    pub fn parse(s: &str) -> Result<ControllerSpec, SpecError> {
        let mut spec = ControllerSpec::default();
        let s = s.trim();
        if s.is_empty() || s == "default" {
            return Ok(spec);
        }
        for clause in s.split(',') {
            let clause = clause.trim();
            let (key, value) =
                clause.split_once('=').ok_or_else(|| SpecError::Clause(clause.to_string()))?;
            let parse =
                |v: &str| v.parse::<u64>().map_err(|_| SpecError::Value(key.into(), v.into()));
            match key {
                "epoch" => spec.epoch_cycles = parse(value)?,
                "slo" => spec.slo_cycles = parse(value)?,
                "min-samples" => spec.min_samples = parse(value)?,
                "probe" => spec.probe_epochs = parse(value)?,
                "min-cores" => spec.min_cores = parse(value)? as usize,
                _ => return Err(SpecError::Key(key.to_string())),
            }
        }
        if spec.epoch_cycles == 0 {
            return Err(SpecError::Range("epoch must be positive"));
        }
        if spec.slo_cycles == 0 {
            return Err(SpecError::Range("slo must be positive"));
        }
        if spec.probe_epochs == 0 {
            return Err(SpecError::Range("probe must be positive"));
        }
        if spec.min_cores == 0 {
            return Err(SpecError::Range("min-cores must be positive"));
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_empty_specs_agree() {
        assert_eq!(ControllerSpec::parse("default").unwrap(), ControllerSpec::default());
        assert_eq!(ControllerSpec::parse("").unwrap(), ControllerSpec::default());
        assert_eq!(ControllerSpec::parse("  default  ").unwrap(), ControllerSpec::default());
    }

    #[test]
    fn clauses_override_defaults_in_any_order() {
        let spec = ControllerSpec::parse("slo=250000,epoch=20000,min-cores=2").unwrap();
        assert_eq!(spec.epoch_cycles, 20_000);
        assert_eq!(spec.slo_cycles, 250_000);
        assert_eq!(spec.min_cores, 2);
        assert_eq!(spec.probe_epochs, ControllerSpec::default().probe_epochs);
        assert_eq!(spec.min_samples, ControllerSpec::default().min_samples);
    }

    #[test]
    fn malformed_specs_are_typed_errors() {
        assert!(matches!(ControllerSpec::parse("epoch"), Err(SpecError::Clause(_))));
        assert!(matches!(ControllerSpec::parse("wat=3"), Err(SpecError::Key(_))));
        assert!(matches!(ControllerSpec::parse("epoch=xyz"), Err(SpecError::Value(_, _))));
        assert!(matches!(ControllerSpec::parse("epoch=0"), Err(SpecError::Range(_))));
        assert!(matches!(ControllerSpec::parse("probe=0"), Err(SpecError::Range(_))));
        assert!(matches!(ControllerSpec::parse("min-cores=0"), Err(SpecError::Range(_))));
        for err in [
            ControllerSpec::parse("epoch").unwrap_err(),
            ControllerSpec::parse("wat=3").unwrap_err(),
            ControllerSpec::parse("slo=nope").unwrap_err(),
            ControllerSpec::parse("epoch=0").unwrap_err(),
        ] {
            assert!(!err.to_string().is_empty());
        }
    }
}
