//! The windowed online fold over the policy sample stream.
//!
//! [`OnlineScope`] is the controller's view of the attribution stream:
//! per-function component accumulators for the current epoch, an epoch
//! latency sketch merged into a cumulative sketch at each boundary
//! (reusing [`QuantileSketch::merge`], which is exactly how the offline
//! scope report builds cluster-wide quantiles), and a cumulative
//! per-function idle-gap sketch for keep-alive retuning. Every
//! [`OnlineScope::observe`] is O(1) (sketch inserts are O(log buckets));
//! nothing retains raw samples.

use std::collections::BTreeMap;

use ignite_cluster::PolicySample;
use ignite_obs::QuantileSketch;

/// Per-function accumulators for one epoch window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FnWindow {
    /// Completed invocations this epoch.
    pub invocations: u64,
    /// Invocations served from the metadata store.
    pub hits: u64,
    /// Invocations that paid a store miss (replay attempted, metadata
    /// absent).
    pub misses: u64,
    /// Invocations dispatched with replay suppressed by policy.
    pub suppressed: u64,
    /// Attributed record/replay cost: `dram + store_miss` cycles.
    pub replay_cost_cycles: u64,
    /// Residual front-end stall cycles summed over store hits — what a
    /// warm invocation still pays with replay on.
    pub hit_frontend_cycles: u64,
    /// Front-end stall cycles summed over store misses — what a cold
    /// invocation pays when replay has nothing to work with.
    pub miss_frontend_cycles: u64,
}

impl FnWindow {
    /// Replay's estimated epoch savings for this function: hits ×
    /// (average miss front-end − average hit front-end). `None` when
    /// the epoch lacks both hit and miss evidence (the replay rule
    /// needs both sides of the comparison to be observed).
    pub fn replay_savings(&self) -> Option<u64> {
        if self.hits == 0 {
            return Some(0);
        }
        if self.misses == 0 {
            return None;
        }
        let avg_miss = self.miss_frontend_cycles / self.misses;
        let avg_hit = self.hit_frontend_cycles / self.hits;
        Some(self.hits * avg_miss.saturating_sub(avg_hit))
    }
}

/// The controller's windowed fold over [`PolicySample`]s.
#[derive(Debug, Clone, Default)]
pub struct OnlineScope {
    epoch_latency: QuantileSketch,
    cumulative_latency: QuantileSketch,
    functions: BTreeMap<u32, FnWindow>,
    idle_gaps: BTreeMap<u32, QuantileSketch>,
    last_completion: BTreeMap<u32, u64>,
    epoch_samples: u64,
    total_samples: u64,
}

impl OnlineScope {
    /// Creates an empty fold.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one completed invocation into the current epoch window.
    pub fn observe(&mut self, s: &PolicySample) {
        self.epoch_latency.observe(s.latency_cycles);
        self.epoch_samples += 1;
        self.total_samples += 1;
        let w = self.functions.entry(s.function).or_default();
        w.invocations += 1;
        w.replay_cost_cycles += s.dram_cycles + s.store_miss_cycles;
        if s.replay_suppressed {
            w.suppressed += 1;
        } else if s.store_hit {
            w.hits += 1;
            w.hit_frontend_cycles += s.cold_frontend_cycles;
        } else {
            w.misses += 1;
            w.miss_frontend_cycles += s.store_miss_cycles;
        }
        match self.last_completion.insert(s.function, s.completion) {
            Some(prev) if s.completion > prev => {
                self.idle_gaps.entry(s.function).or_default().observe(s.completion - prev);
            }
            _ => {}
        }
    }

    /// Completed invocations folded in the current epoch.
    pub fn epoch_samples(&self) -> u64 {
        self.epoch_samples
    }

    /// Completed invocations folded since construction.
    pub fn total_samples(&self) -> u64 {
        self.total_samples
    }

    /// The current epoch's latency quantile (percent, 0..=100).
    pub fn epoch_quantile(&self, p: u32) -> u64 {
        self.epoch_latency.quantile(p)
    }

    /// The all-run latency quantile over every *drained* epoch (the
    /// current window is not included until drained).
    pub fn cumulative_quantile(&self, p: u32) -> u64 {
        self.cumulative_latency.quantile(p)
    }

    /// Cumulative idle-gap sketches per function (completion-to-
    /// completion gaps, the same signal the hybrid keep-alive policy
    /// histograms).
    pub fn idle_gaps(&self) -> &BTreeMap<u32, QuantileSketch> {
        &self.idle_gaps
    }

    /// Closes the epoch: merges the epoch latency sketch into the
    /// cumulative one and returns the per-function windows, resetting
    /// both for the next epoch. Idle-gap sketches persist across
    /// epochs (windows need history to stabilize).
    pub fn drain_epoch(&mut self) -> BTreeMap<u32, FnWindow> {
        self.cumulative_latency.merge(&self.epoch_latency);
        self.epoch_latency = QuantileSketch::new();
        self.epoch_samples = 0;
        std::mem::take(&mut self.functions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(function: u32, completion: u64, latency: u64) -> PolicySample {
        PolicySample {
            function,
            completion,
            latency_cycles: latency,
            queue_cycles: 0,
            retry_cycles: 0,
            dram_cycles: 0,
            cold_frontend_cycles: 0,
            store_miss_cycles: 0,
            degraded_cycles: 0,
            execution_cycles: latency,
            store_hit: false,
            replay_suppressed: false,
        }
    }

    #[test]
    fn drain_merges_epoch_into_cumulative() {
        let mut scope = OnlineScope::new();
        for i in 0..10u64 {
            scope.observe(&sample(0, i * 100, 1_000 + i));
        }
        assert_eq!(scope.epoch_samples(), 10);
        assert_eq!(scope.cumulative_quantile(99), 0);
        let fns = scope.drain_epoch();
        assert_eq!(fns[&0].invocations, 10);
        assert_eq!(scope.epoch_samples(), 0);
        assert_eq!(scope.total_samples(), 10);
        assert!(scope.cumulative_quantile(99) >= 1_009);
        assert!(scope.drain_epoch().is_empty());
    }

    #[test]
    fn hit_miss_and_suppressed_split_the_window() {
        let mut scope = OnlineScope::new();
        let mut hit = sample(3, 100, 500);
        hit.store_hit = true;
        hit.dram_cycles = 40;
        hit.cold_frontend_cycles = 60;
        scope.observe(&hit);
        let mut miss = sample(3, 200, 900);
        miss.store_miss_cycles = 300;
        scope.observe(&miss);
        let mut sup = sample(3, 300, 700);
        sup.replay_suppressed = true;
        sup.cold_frontend_cycles = 280;
        scope.observe(&sup);
        let w = scope.drain_epoch()[&3];
        assert_eq!((w.hits, w.misses, w.suppressed), (1, 1, 1));
        assert_eq!(w.replay_cost_cycles, 340);
        assert_eq!(w.hit_frontend_cycles, 60);
        assert_eq!(w.miss_frontend_cycles, 300);
        // savings = hits * (300/1 - 60/1) = 240
        assert_eq!(w.replay_savings(), Some(240));
    }

    #[test]
    fn replay_savings_needs_both_sides() {
        let all_hits =
            FnWindow { invocations: 4, hits: 4, hit_frontend_cycles: 100, ..FnWindow::default() };
        assert_eq!(all_hits.replay_savings(), None);
        let all_misses = FnWindow {
            invocations: 4,
            misses: 4,
            miss_frontend_cycles: 900,
            ..FnWindow::default()
        };
        assert_eq!(all_misses.replay_savings(), Some(0));
    }

    #[test]
    fn idle_gaps_span_epochs_and_ignore_reordering() {
        let mut scope = OnlineScope::new();
        scope.observe(&sample(1, 1_000, 10));
        scope.observe(&sample(1, 3_000, 10));
        scope.drain_epoch();
        scope.observe(&sample(1, 9_000, 10));
        // Out-of-order completion: no negative gap recorded.
        scope.observe(&sample(1, 8_000, 10));
        let gaps = &scope.idle_gaps()[&1];
        assert_eq!(gaps.count(), 2);
        assert_eq!(gaps.max(), 6_000);
        assert_eq!(gaps.min(), 2_000);
    }
}
