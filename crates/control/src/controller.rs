//! The policy controller: deterministic rules over the online fold.
//!
//! [`Controller`] implements [`PolicyHook`]. Per completed invocation
//! it folds the [`PolicySample`] into [`OnlineScope`] and the cluster-
//! wide [`SloTracker`]; at each epoch boundary it drains the window and
//! evaluates four rule families, emitting one [`Decision`] per
//! actuation (the simulator mirrors each onto the `Track::Controller`
//! trace track):
//!
//! 1. **Replay admission** (`ReplayOff` / `ReplayOn`): replay is
//!    disabled for a function when its attributed epoch cost
//!    (`dram + store_miss` cycles) exceeds the epoch savings estimate
//!    `hits × (avg miss front-end − avg hit front-end)`; every
//!    `probe` epochs, disabled functions are re-enabled to re-measure.
//! 2. **Store admission** (`StoreTighten` / `StoreLoosen`): writeback
//!    admission tightens to a per-record byte cap when the cluster
//!    footprint crosses 7/8 of capacity with eviction churn, and
//!    loosens below 5/8 (the asymmetric bounds are the hysteresis).
//! 3. **Core scaling** (`CoresUp` / `CoresDown`): the per-node active-
//!    core cap rises when the epoch p99 breaches the SLO, the burn-rate
//!    tracker is firing, or the backlog exceeds the core count; it
//!    falls when p99 sits under half the SLO with empty queues.
//! 4. **Keep-alive retuning** (`KeepAliveRetune`): when a keep-alive
//!    policy is active, each function's window is repinned to the p99
//!    of its observed idle-gap sketch (clamped to the same bounds the
//!    hybrid policy uses) whenever that estimate moves.
//!
//! All rule math is integer-only and iteration is `BTreeMap`-ordered,
//! so the decision log is bit-deterministic for a fixed input stream.

use std::collections::BTreeMap;

use ignite_cluster::{ClusterGauges, ControllerStats, Decision, PolicyHook, PolicySample};
use ignite_obs::CtrlRule;
use ignite_scope::{SloConfig, SloTracker};

use crate::online::OnlineScope;
use crate::spec::ControllerSpec;

/// Sentinel for cluster-wide decisions (no single target function).
const CLUSTER_WIDE: u32 = u32::MAX;
/// Keep-alive retune clamp, mirroring the hybrid policy's bounds.
const KA_MIN_WINDOW: u64 = 1 << 10;
/// Upper keep-alive clamp (see [`KA_MIN_WINDOW`]).
const KA_MAX_WINDOW: u64 = 1 << 22;
/// Idle-gap observations required before retuning a function.
const KA_MIN_OBSERVATIONS: u64 = 4;

/// The online policy controller. See the module docs for the rules.
#[derive(Debug, Clone)]
pub struct Controller {
    spec: ControllerSpec,
    slo_cfg: SloConfig,
    scope: OnlineScope,
    tracker: SloTracker,
    next_epoch: u64,
    epoch_index: u64,
    /// Functions with replay currently disabled → epoch it was disabled.
    replay_off: BTreeMap<u32, u64>,
    store_tight: bool,
    tight_byte_cap: u64,
    /// Active-core cap per node; 0 until the first scaling decision
    /// (meaning "follow the configured core count").
    active: usize,
    last_cores_per_node: usize,
    ka_windows: BTreeMap<u32, u64>,
    prev_insertions: u64,
    prev_evictions: u64,
    decisions: Vec<Decision>,
    samples: u64,
    replay_denied: u64,
    store_denied: u64,
}

impl Controller {
    /// Creates a controller from a parsed spec.
    pub fn new(spec: ControllerSpec) -> Self {
        let slo_cfg = SloConfig {
            threshold_cycles: spec.slo_cycles,
            objective_milli: 950,
            fast_window_cycles: spec.epoch_cycles,
            slow_window_cycles: spec.epoch_cycles.saturating_mul(4),
            burn_milli: 2_000,
            min_count: spec.min_samples.max(1),
        };
        Controller {
            spec,
            slo_cfg,
            scope: OnlineScope::new(),
            tracker: SloTracker::new(),
            next_epoch: spec.epoch_cycles,
            epoch_index: 0,
            replay_off: BTreeMap::new(),
            store_tight: false,
            tight_byte_cap: 0,
            active: 0,
            last_cores_per_node: 0,
            ka_windows: BTreeMap::new(),
            prev_insertions: 0,
            prev_evictions: 0,
            decisions: Vec::new(),
            samples: 0,
            replay_denied: 0,
            store_denied: 0,
        }
    }

    /// The parsed spec this controller runs.
    pub fn spec(&self) -> &ControllerSpec {
        &self.spec
    }

    /// Decisions taken so far (the audit trail, in actuation order).
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    fn effective_cores(&self, cores_per_node: usize) -> usize {
        if self.active == 0 {
            cores_per_node
        } else {
            self.active.clamp(self.spec.min_cores.min(cores_per_node), cores_per_node)
        }
    }

    /// One epoch boundary: drain the window, run every rule family.
    fn evaluate(&mut self, at: u64, epoch: u64, gauges: &ClusterGauges, out: &mut Vec<Decision>) {
        let epoch_samples = self.scope.epoch_samples();
        let epoch_p99 = self.scope.epoch_quantile(99);
        let windows = self.scope.drain_epoch();
        let insertions = gauges.insertions - self.prev_insertions.min(gauges.insertions);
        let evictions = gauges.evictions - self.prev_evictions.min(gauges.evictions);
        self.prev_insertions = gauges.insertions;
        self.prev_evictions = gauges.evictions;
        if gauges.cores_per_node > 0 {
            self.last_cores_per_node = gauges.cores_per_node;
        }
        let mut push = |rule, function, value, observed, threshold| {
            out.push(Decision { at, epoch, rule, function, value, observed, threshold });
        };

        // Rule 1b: periodic probe — give replay back to re-measure.
        // Clock-driven, so it runs even on quiet epochs.
        if epoch > 0 && epoch.is_multiple_of(self.spec.probe_epochs) {
            let probe: Vec<u32> = self
                .replay_off
                .iter()
                .filter(|&(_, &since)| since < epoch)
                .map(|(&f, _)| f)
                .collect();
            for f in probe {
                self.replay_off.remove(&f);
                push(CtrlRule::ReplayOn, f, 1, epoch, self.spec.probe_epochs);
            }
        }
        // Quiet epoch with no backlog: keep the clock ticking, but the
        // evidence-driven rules have nothing to act on.
        if epoch_samples == 0 && gauges.queued == 0 {
            return;
        }

        // Rule 1a: replay off, per function with enough epoch evidence.
        for (&f, w) in &windows {
            if w.invocations < self.spec.min_samples || self.replay_off.contains_key(&f) {
                continue;
            }
            let Some(saved) = w.replay_savings() else { continue };
            if w.replay_cost_cycles > saved {
                self.replay_off.insert(f, epoch);
                push(CtrlRule::ReplayOff, f, 0, w.replay_cost_cycles, saved);
            }
        }

        // Rule 2: store admission under footprint pressure.
        if gauges.capacity_bytes > 0 {
            let cap = gauges.capacity_bytes;
            let hi = cap - cap / 8; // 7/8
            let lo = cap / 2 + cap / 8; // 5/8
            if !self.store_tight && gauges.footprint_bytes >= hi && evictions > insertions / 2 {
                self.store_tight = true;
                self.tight_byte_cap = cap / 64;
                push(
                    CtrlRule::StoreTighten,
                    CLUSTER_WIDE,
                    self.tight_byte_cap,
                    gauges.footprint_bytes,
                    hi,
                );
            } else if self.store_tight && gauges.footprint_bytes < lo {
                self.store_tight = false;
                push(CtrlRule::StoreLoosen, CLUSTER_WIDE, 0, gauges.footprint_bytes, lo);
            }
        }

        // Rule 3: active-core scaling against the latency SLO.
        let cpn = self.last_cores_per_node;
        if cpn > 0 {
            let cur = self.effective_cores(cpn);
            let overloaded = (epoch_samples >= self.spec.min_samples
                && epoch_p99 > self.spec.slo_cycles)
                || self.tracker.firing()
                || gauges.queued > gauges.total_cores;
            let idle = epoch_samples >= self.spec.min_samples
                && epoch_p99.saturating_mul(2) < self.spec.slo_cycles
                && gauges.queued == 0
                && !self.tracker.firing();
            if overloaded && cur < cpn {
                self.active = cur + 1;
                push(
                    CtrlRule::CoresUp,
                    CLUSTER_WIDE,
                    self.active as u64,
                    epoch_p99,
                    self.spec.slo_cycles,
                );
            } else if idle && cur > self.spec.min_cores {
                self.active = cur - 1;
                push(
                    CtrlRule::CoresDown,
                    CLUSTER_WIDE,
                    self.active as u64,
                    epoch_p99,
                    self.spec.slo_cycles,
                );
            }
        }

        // Rule 4: keep-alive retuning from the idle-gap sketches.
        if gauges.keepalive_enabled {
            let mut retunes: Vec<(u32, u64, u64)> = Vec::new();
            for (&f, gaps) in self.scope.idle_gaps() {
                if gaps.count() < KA_MIN_OBSERVATIONS {
                    continue;
                }
                let p99 = gaps.quantile(99);
                let window = p99.clamp(KA_MIN_WINDOW, KA_MAX_WINDOW);
                if self.ka_windows.get(&f) != Some(&window) {
                    retunes.push((f, window, p99));
                }
            }
            for (f, window, p99) in retunes {
                let prev = self.ka_windows.insert(f, window).unwrap_or(0);
                push(CtrlRule::KeepAliveRetune, f, window, p99, prev);
            }
        }
    }
}

impl PolicyHook for Controller {
    fn enabled(&self) -> bool {
        true
    }

    fn observe(&mut self, sample: &PolicySample) {
        self.samples += 1;
        if sample.replay_suppressed {
            self.replay_denied += 1;
        }
        // Transitions surface through the scope layer's alert track;
        // the controller only consumes the firing state.
        let _ = self.tracker.observe(&self.slo_cfg, sample.completion, sample.latency_cycles);
        self.scope.observe(sample);
    }

    fn epoch_due(&self, now: u64) -> bool {
        now >= self.next_epoch
    }

    fn on_epoch(&mut self, now: u64, gauges: &ClusterGauges) -> Vec<Decision> {
        let mut out = Vec::new();
        while self.next_epoch <= now {
            let at = self.next_epoch;
            let epoch = self.epoch_index;
            self.evaluate(at, epoch, gauges, &mut out);
            self.epoch_index += 1;
            self.next_epoch += self.spec.epoch_cycles;
        }
        self.decisions.extend_from_slice(&out);
        out
    }

    fn replay_admitted(&mut self, function: u32) -> bool {
        !self.replay_off.contains_key(&function)
    }

    fn store_admitted(&mut self, _function: u32, bytes: u64) -> bool {
        if self.store_tight && bytes > self.tight_byte_cap {
            self.store_denied += 1;
            return false;
        }
        true
    }

    fn active_cores(&self, cores_per_node: usize) -> usize {
        self.effective_cores(cores_per_node)
    }

    fn keepalive_window(&self, function: u32) -> Option<u64> {
        self.ka_windows.get(&function).copied()
    }

    fn finish(&mut self, _makespan: u64) -> Option<ControllerStats> {
        let final_active_cores = if self.active == 0 {
            self.last_cores_per_node as u64
        } else {
            self.effective_cores(self.last_cores_per_node.max(1)) as u64
        };
        Some(ControllerStats {
            epochs: self.epoch_index,
            decisions: std::mem::take(&mut self.decisions),
            samples: self.samples,
            replay_denied: self.replay_denied,
            store_denied: self.store_denied,
            final_active_cores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(function: u32, completion: u64, latency: u64) -> PolicySample {
        PolicySample {
            function,
            completion,
            latency_cycles: latency,
            queue_cycles: 0,
            retry_cycles: 0,
            dram_cycles: 0,
            cold_frontend_cycles: 0,
            store_miss_cycles: 0,
            degraded_cycles: 0,
            execution_cycles: latency,
            store_hit: false,
            replay_suppressed: false,
        }
    }

    fn gauges(cores_per_node: usize) -> ClusterGauges {
        ClusterGauges {
            busy_cores: 0,
            total_cores: cores_per_node,
            cores_per_node,
            queued: 0,
            footprint_bytes: 0,
            capacity_bytes: 1 << 20,
            insertions: 0,
            evictions: 0,
            keepalive_enabled: false,
        }
    }

    #[test]
    fn replay_disables_on_cost_and_probe_reenables() {
        let spec = ControllerSpec { min_samples: 4, ..ControllerSpec::default() };
        let mut c = Controller::new(spec);
        // Function 7: every invocation misses the store and pays heavy
        // store_miss cycles — replay costs, saves nothing.
        for i in 0..8u64 {
            let mut s = sample(7, 1_000 + i * 100, 5_000);
            s.store_miss_cycles = 3_000;
            s.execution_cycles = 2_000;
            c.observe(&s);
        }
        assert!(c.replay_admitted(7));
        assert!(c.epoch_due(spec.epoch_cycles));
        let decisions = c.on_epoch(spec.epoch_cycles, &gauges(2));
        assert!(decisions.iter().any(|d| d.rule == CtrlRule::ReplayOff && d.function == 7));
        assert!(!c.replay_admitted(7));
        // Probe epoch (epoch index 4 at boundary 5 * epoch): replay
        // returns so the controller can re-measure.
        let probe_at = spec.epoch_cycles * 5;
        let decisions = c.on_epoch(probe_at, &gauges(2));
        assert!(decisions.iter().any(|d| d.rule == CtrlRule::ReplayOn && d.function == 7));
        assert!(c.replay_admitted(7));
    }

    #[test]
    fn store_tightens_under_pressure_and_loosens_back() {
        let mut c = Controller::new(ControllerSpec::default());
        c.observe(&sample(0, 100, 10));
        let mut g = gauges(2);
        g.footprint_bytes = g.capacity_bytes - g.capacity_bytes / 16; // > 7/8
        g.insertions = 100;
        g.evictions = 90;
        let decisions = c.on_epoch(c.spec.epoch_cycles, &g);
        assert!(decisions.iter().any(|d| d.rule == CtrlRule::StoreTighten));
        let cap = g.capacity_bytes / 64;
        assert!(c.store_admitted(0, cap));
        assert!(!c.store_admitted(0, cap + 1));
        // Pressure subsides below 5/8: admission loosens.
        c.observe(&sample(0, c.spec.epoch_cycles + 100, 10));
        g.footprint_bytes = g.capacity_bytes / 2;
        let decisions = c.on_epoch(c.spec.epoch_cycles * 2, &g);
        assert!(decisions.iter().any(|d| d.rule == CtrlRule::StoreLoosen));
        assert!(c.store_admitted(0, u64::MAX));
        let stats = c.finish(0).unwrap();
        assert_eq!(stats.store_denied, 1);
    }

    #[test]
    fn cores_scale_up_on_slo_breach_and_down_when_idle() {
        let spec =
            ControllerSpec { min_samples: 4, slo_cycles: 1_000, ..ControllerSpec::default() };
        let mut c = Controller::new(spec);
        for i in 0..8u64 {
            c.observe(&sample(0, 500 + i, 5_000)); // p99 far over SLO
        }
        let decisions = c.on_epoch(spec.epoch_cycles, &gauges(4));
        // Burn-rate tracker fires too; the cap still only rises by one
        // per epoch, starting from the full core count — so the first
        // breach cannot raise it (already at max).
        assert!(decisions.iter().all(|d| d.rule != CtrlRule::CoresUp));
        // Fast traffic well under the SLO with empty queues: scale down.
        for epoch in 1..4u64 {
            for i in 0..8u64 {
                c.observe(&sample(0, epoch * spec.epoch_cycles + 20_000 + i * 100, 100));
            }
            c.on_epoch((epoch + 1) * spec.epoch_cycles, &gauges(4));
        }
        let stats = c.finish(0).unwrap();
        let downs = stats.fires(CtrlRule::CoresDown);
        assert!(downs >= 1, "expected scale-down, log: {:?}", stats.decisions);
        assert_eq!(stats.final_active_cores, 4 - downs);
        // And a fresh breach scales back up.
        let mut c2 = Controller::new(spec);
        for i in 0..8u64 {
            c2.observe(&sample(0, 20_000 + i * 100, 100));
        }
        c2.on_epoch(spec.epoch_cycles, &gauges(4));
        assert_eq!(c2.active_cores(4), 3);
        for i in 0..8u64 {
            c2.observe(&sample(0, spec.epoch_cycles + 20_000 + i * 100, 50_000));
        }
        let decisions = c2.on_epoch(spec.epoch_cycles * 2, &gauges(4));
        assert!(decisions.iter().any(|d| d.rule == CtrlRule::CoresUp));
        assert_eq!(c2.active_cores(4), 4);
    }

    #[test]
    fn keepalive_retunes_from_idle_gap_p99() {
        let spec = ControllerSpec::default();
        let mut c = Controller::new(spec);
        // Function 2 completes every 5_000 cycles: idle-gap p99 ≈ 5_000.
        for i in 0..6u64 {
            c.observe(&sample(2, (i + 1) * 5_000, 100));
        }
        let mut g = gauges(2);
        g.keepalive_enabled = true;
        let decisions = c.on_epoch(spec.epoch_cycles, &g);
        let retune = decisions
            .iter()
            .find(|d| d.rule == CtrlRule::KeepAliveRetune && d.function == 2)
            .expect("retune decision");
        assert_eq!(Some(retune.value), c.keepalive_window(2));
        assert!(retune.value >= 5_000 && retune.value <= 5_000 + 5_000 / 64);
        // Stable gaps → no second decision for the same window.
        for i in 6..12u64 {
            c.observe(&sample(2, (i + 1) * 5_000, 100));
        }
        let decisions = c.on_epoch(spec.epoch_cycles * 2, &g);
        assert!(decisions.iter().all(|d| d.rule != CtrlRule::KeepAliveRetune));
        // Without keep-alive the rule never fires.
        let mut c2 = Controller::new(spec);
        for i in 0..6u64 {
            c2.observe(&sample(2, (i + 1) * 5_000, 100));
        }
        let decisions = c2.on_epoch(spec.epoch_cycles, &gauges(2));
        assert!(decisions.iter().all(|d| d.rule != CtrlRule::KeepAliveRetune));
        assert_eq!(c2.keepalive_window(2), None);
    }

    #[test]
    fn quiet_epochs_tick_without_decisions() {
        let spec = ControllerSpec::default();
        let mut c = Controller::new(spec);
        // Ten epochs pass with no traffic at all.
        let decisions = c.on_epoch(spec.epoch_cycles * 10, &gauges(2));
        assert!(decisions.is_empty());
        let stats = c.finish(0).unwrap();
        assert_eq!(stats.epochs, 10);
        assert!(stats.decisions.is_empty());
    }

    #[test]
    fn controller_is_deterministic_and_log_matches_fire_counts() {
        let build = || {
            let spec =
                ControllerSpec { min_samples: 2, slo_cycles: 2_000, ..ControllerSpec::default() };
            let mut c = Controller::new(spec);
            let mut g = gauges(4);
            g.keepalive_enabled = true;
            for epoch in 0..6u64 {
                for i in 0..5u64 {
                    let mut s = sample(
                        (i % 3) as u32,
                        epoch * spec.epoch_cycles + i * 9_000 + 1,
                        if epoch % 2 == 0 { 4_000 } else { 300 },
                    );
                    s.store_miss_cycles = 2_000;
                    c.observe(&s);
                }
                g.footprint_bytes =
                    if epoch % 2 == 0 { g.capacity_bytes } else { g.capacity_bytes / 4 };
                g.insertions += 50;
                g.evictions += 40;
                c.on_epoch((epoch + 1) * spec.epoch_cycles, &g);
            }
            c.finish(123).unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        assert!(!a.decisions.is_empty());
        let total: u64 = CtrlRule::ALL.iter().map(|&r| a.fires(r)).sum();
        assert_eq!(total, a.decisions.len() as u64);
        assert_eq!(a.samples, 30);
    }
}
