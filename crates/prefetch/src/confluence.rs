//! Confluence: unified temporal-streaming instruction and BTB prefetching
//! (Kaynak et al., MICRO'15).
//!
//! Confluence records the temporal sequence of L1-I block addresses in a
//! history buffer (32 K entries, §5.3) and maintains an index (8 K entries)
//! from miss-triggering blocks to positions in that history. On an L1-I miss
//! whose block is indexed, it replays the recorded stream: prefetching
//! subsequent blocks into the L1-I and predecoding them to fill the BTB.
//! Metadata look-ups cost 50 cycles (modelling LLC-resident virtualized
//! metadata). Front-end resteers abandon the active stream, forcing a
//! re-index — the behaviour that makes Confluence sensitive to a cold BPU
//! (§6.5).

use std::collections::HashMap;

use ignite_uarch::addr::Addr;
use ignite_uarch::btb::Btb;
use ignite_uarch::cache::FillKind;
use ignite_uarch::hierarchy::Hierarchy;
use ignite_uarch::Cycle;

use crate::branch_index::BranchIndex;

/// Confluence parameters (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfluenceConfig {
    /// Index capacity (miss-trigger → history position).
    pub index_entries: usize,
    /// History buffer capacity in block addresses.
    pub history_entries: usize,
    /// Metadata lookup latency in cycles.
    pub lookup_latency: Cycle,
    /// Maximum blocks streamed per trigger.
    pub stream_window: usize,
    /// Blocks issued per cycle while streaming.
    pub stream_rate: usize,
}

impl Default for ConfluenceConfig {
    fn default() -> Self {
        ConfluenceConfig {
            index_entries: 8 * 1024,
            history_entries: 32 * 1024,
            lookup_latency: 50,
            stream_window: 24,
            stream_rate: 2,
        }
    }
}

#[derive(Debug, Clone)]
struct Stream {
    /// Next history position to issue.
    pos: usize,
    /// Blocks remaining in the window.
    remaining: usize,
    /// Earliest cycle issuing may begin (lookup latency).
    start_at: Cycle,
}

/// Traffic from one streaming step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfluenceStep {
    /// Instruction bytes pulled from DRAM.
    pub memory_bytes: u64,
    /// Lines prefetched into the L1-I.
    pub lines_issued: u64,
    /// Branches predecoded into the BTB.
    pub branches_filled: u64,
}

/// The Confluence temporal-streaming prefetcher.
///
/// State persists across invocations (its metadata lives off the critical
/// flush path, like Ignite's), so the lukewarm protocol does *not* clear it.
///
/// # Example
///
/// ```
/// use ignite_prefetch::confluence::{Confluence, ConfluenceConfig};
/// use ignite_uarch::addr::Addr;
///
/// let mut c = Confluence::new(ConfluenceConfig::default());
/// c.observe_access(Addr::new(0x1000), true);
/// c.observe_access(Addr::new(0x2000), false);
/// assert_eq!(c.history_len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Confluence {
    cfg: ConfluenceConfig,
    history: Vec<u64>,
    index: HashMap<u64, usize>,
    stream: Option<Stream>,
    last_recorded: Option<u64>,
    streams_started: u64,
    streams_killed: u64,
}

impl Confluence {
    /// Creates a prefetcher with empty metadata.
    pub fn new(cfg: ConfluenceConfig) -> Self {
        Confluence {
            cfg,
            history: Vec::new(),
            index: HashMap::new(),
            stream: None,
            last_recorded: None,
            streams_started: 0,
            streams_killed: 0,
        }
    }

    /// Recorded history length (blocks).
    pub fn history_len(&self) -> usize {
        self.history.len()
    }

    /// Streams started so far.
    pub fn streams_started(&self) -> u64 {
        self.streams_started
    }

    /// Streams abandoned by resteers.
    pub fn streams_killed(&self) -> u64 {
        self.streams_killed
    }

    /// Whether a stream is currently active.
    pub fn streaming(&self) -> bool {
        self.stream.is_some()
    }

    /// Record-side hook: observe a committed L1-I access; `was_miss` marks
    /// the block as a potential stream trigger.
    pub fn observe_access(&mut self, addr: Addr, was_miss: bool) {
        let line = addr.line_number();
        // Consecutive-duplicate suppression keeps the history compact.
        if self.last_recorded != Some(line) {
            if self.history.len() >= self.cfg.history_entries {
                // Wrap: drop the oldest half to keep positions meaningful.
                let keep = self.cfg.history_entries / 2;
                self.history.drain(..self.history.len() - keep);
                self.index.retain(|_, pos| {
                    if *pos >= keep {
                        *pos -= keep;
                        false // positions shifted; conservatively drop
                    } else {
                        false
                    }
                });
                self.index.clear();
            }
            self.history.push(line);
            self.last_recorded = Some(line);
        }
        if was_miss && self.index.len() < self.cfg.index_entries {
            self.index.entry(line).or_insert(self.history.len().saturating_sub(1));
        }
    }

    /// Replay-side hook: an L1-I demand miss may trigger a stream.
    pub fn on_miss(&mut self, addr: Addr, now: Cycle) {
        if self.stream.is_some() {
            return;
        }
        if let Some(&pos) = self.index.get(&addr.line_number()) {
            self.stream = Some(Stream {
                pos: pos + 1,
                remaining: self.cfg.stream_window,
                start_at: now + self.cfg.lookup_latency,
            });
            self.streams_started += 1;
        }
    }

    /// A front-end resteer abandons the active stream (it would now be
    /// following stale control flow).
    pub fn on_resteer(&mut self) {
        if self.stream.take().is_some() {
            self.streams_killed += 1;
        }
    }

    /// Issues up to `stream_rate` block prefetches from the active stream,
    /// predecoding their branches into the BTB.
    pub fn step(
        &mut self,
        now: Cycle,
        hierarchy: &mut Hierarchy,
        branch_index: &BranchIndex,
        btb: &mut Btb,
    ) -> ConfluenceStep {
        let mut out = ConfluenceStep::default();
        let Some(stream) = &mut self.stream else {
            return out;
        };
        if now < stream.start_at {
            return out;
        }
        for _ in 0..self.cfg.stream_rate {
            if stream.remaining == 0 || stream.pos >= self.history.len() {
                self.stream = None;
                return out;
            }
            let line = Addr::new(self.history[stream.pos] * ignite_uarch::addr::LINE_BYTES);
            stream.pos += 1;
            stream.remaining -= 1;
            if let Some(r) = hierarchy.prefetch_l1i(line, now, FillKind::Prefetch) {
                out.memory_bytes += r.bytes_from_memory;
                out.lines_issued += 1;
            }
            for b in branch_index.branches_in_line(line) {
                if let Some(entry) = b.to_btb_entry() {
                    btb.insert(entry, false);
                    out.branches_filled += 1;
                }
            }
        }
        out
    }

    /// Clears streaming state but keeps metadata (between invocations).
    pub fn end_invocation(&mut self) {
        self.stream = None;
        self.last_recorded = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_index::PredecodedBranch;
    use ignite_uarch::btb::{BranchKind, BtbConfig};
    use ignite_uarch::config::UarchConfig;

    fn setup() -> (Hierarchy, Btb, BranchIndex) {
        let cfg = UarchConfig::ice_lake_like();
        let index = BranchIndex::from_branches([PredecodedBranch {
            pc: Addr::new(0x2010),
            kind: BranchKind::Unconditional,
            static_target: Some(Addr::new(0x5000)),
        }]);
        (Hierarchy::new(&cfg.hierarchy), Btb::new(&BtbConfig { entries: 256, ways: 4 }), index)
    }

    fn small() -> Confluence {
        Confluence::new(ConfluenceConfig { lookup_latency: 10, ..ConfluenceConfig::default() })
    }

    #[test]
    fn history_dedups_consecutive_blocks() {
        let mut c = small();
        c.observe_access(Addr::new(0x1000), false);
        c.observe_access(Addr::new(0x1020), false); // same line
        c.observe_access(Addr::new(0x1040), false);
        assert_eq!(c.history_len(), 2);
    }

    #[test]
    fn miss_trigger_starts_stream_after_lookup_latency() {
        let (mut h, mut btb, bidx) = setup();
        let mut c = small();
        // Record a stream: miss at 0x1000, then blocks 0x2000, 0x3000.
        c.observe_access(Addr::new(0x1000), true);
        c.observe_access(Addr::new(0x2000), false);
        c.observe_access(Addr::new(0x3000), false);
        c.end_invocation();

        c.on_miss(Addr::new(0x1000), 100);
        assert!(c.streaming());
        // Before the lookup completes nothing is issued.
        let early = c.step(105, &mut h, &bidx, &mut btb);
        assert_eq!(early.lines_issued, 0);
        // After: the recorded successors are prefetched.
        let later = c.step(110, &mut h, &bidx, &mut btb);
        assert!(later.lines_issued > 0);
        assert!(h.probe_l1i(Addr::new(0x2000)));
    }

    #[test]
    fn streamed_blocks_fill_btb() {
        let (mut h, mut btb, bidx) = setup();
        let mut c = small();
        c.observe_access(Addr::new(0x1000), true);
        c.observe_access(Addr::new(0x2000), false);
        c.on_miss(Addr::new(0x1000), 0);
        c.step(10, &mut h, &bidx, &mut btb);
        assert!(btb.probe(Addr::new(0x2010)).is_some(), "branch in streamed block predecoded");
    }

    #[test]
    fn resteer_kills_stream() {
        let (mut h, mut btb, bidx) = setup();
        let mut c = small();
        c.observe_access(Addr::new(0x1000), true);
        c.observe_access(Addr::new(0x2000), false);
        c.on_miss(Addr::new(0x1000), 0);
        assert!(c.streaming());
        c.on_resteer();
        assert!(!c.streaming());
        assert_eq!(c.streams_killed(), 1);
        let out = c.step(100, &mut h, &bidx, &mut btb);
        assert_eq!(out.lines_issued, 0);
    }

    #[test]
    fn unindexed_miss_does_not_stream() {
        let mut c = small();
        c.on_miss(Addr::new(0x7777_0000), 0);
        assert!(!c.streaming());
    }

    #[test]
    fn stream_window_bounds_issue() {
        let (mut h, mut btb, bidx) = setup();
        let mut c = Confluence::new(ConfluenceConfig {
            lookup_latency: 0,
            stream_window: 3,
            stream_rate: 8,
            ..ConfluenceConfig::default()
        });
        c.observe_access(Addr::new(0x1000), true);
        for i in 1..10u64 {
            c.observe_access(Addr::new(0x1000 + i * 0x1000), false);
        }
        c.on_miss(Addr::new(0x1000), 0);
        let out = c.step(1, &mut h, &bidx, &mut btb);
        assert_eq!(out.lines_issued, 3, "window caps the stream");
    }

    #[test]
    fn metadata_survives_end_invocation() {
        let mut c = small();
        c.observe_access(Addr::new(0x1000), true);
        c.observe_access(Addr::new(0x2000), false);
        c.end_invocation();
        assert_eq!(c.history_len(), 2);
        c.on_miss(Addr::new(0x1000), 0);
        assert!(c.streaming(), "index persists across invocations");
    }
}
