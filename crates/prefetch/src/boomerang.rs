//! Boomerang: FDP with BTB prefilling (Kumar et al., HPCA'17).
//!
//! When the decoupled front-end discovers that an upcoming fetch region's
//! terminating branch is missing from the BTB, Boomerang fetches the cache
//! block containing the branch, predecodes it (6-cycle latency, §5.3) and
//! inserts the discovered branches into the BTB through a 16-entry prefetch
//! buffer. The engine decides whether the fill completed in time for the
//! transition to be predicted.

use std::collections::VecDeque;

use ignite_uarch::addr::Addr;
use ignite_uarch::btb::Btb;
use ignite_uarch::cache::FillKind;
use ignite_uarch::hierarchy::Hierarchy;
use ignite_uarch::Cycle;

use crate::branch_index::BranchIndex;

/// Boomerang parameters (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoomerangConfig {
    /// Predecode pipeline latency in cycles.
    pub predecode_latency: Cycle,
    /// BTB prefetch buffer capacity.
    pub buffer_entries: usize,
}

impl Default for BoomerangConfig {
    fn default() -> Self {
        BoomerangConfig { predecode_latency: 6, buffer_entries: 16 }
    }
}

/// Outcome of a BTB fill request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Cycle at which the BTB entries become usable.
    pub ready_at: Cycle,
    /// Bytes pulled from DRAM by the block fetch.
    pub memory_bytes: u64,
    /// Number of branches predecoded into the BTB.
    pub branches_filled: usize,
}

/// The Boomerang BTB prefiller.
///
/// # Example
///
/// ```
/// use ignite_prefetch::boomerang::{Boomerang, BoomerangConfig};
/// use ignite_prefetch::branch_index::{BranchIndex, PredecodedBranch};
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::btb::{BranchKind, Btb, BtbConfig};
/// use ignite_uarch::config::UarchConfig;
/// use ignite_uarch::hierarchy::Hierarchy;
///
/// let cfg = UarchConfig::tiny_for_tests();
/// let mut h = Hierarchy::new(&cfg.hierarchy);
/// let mut btb = Btb::new(&cfg.btb);
/// let index = BranchIndex::from_branches([PredecodedBranch {
///     pc: Addr::new(0x1010),
///     kind: BranchKind::Unconditional,
///     static_target: Some(Addr::new(0x2000)),
/// }]);
/// let mut boomerang = Boomerang::new(BoomerangConfig::default());
/// let outcome = boomerang.request_fill(Addr::new(0x1010), 0, &mut h, &index, &mut btb);
/// assert!(outcome.is_some());
/// assert!(btb.probe(Addr::new(0x1010)).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct Boomerang {
    cfg: BoomerangConfig,
    /// Completion cycles of in-flight fills (models buffer occupancy).
    pending: VecDeque<Cycle>,
    fills: u64,
    dropped: u64,
}

impl Boomerang {
    /// Creates an idle prefiller.
    pub fn new(cfg: BoomerangConfig) -> Self {
        Boomerang { cfg, pending: VecDeque::new(), fills: 0, dropped: 0 }
    }

    /// Completed BTB fill requests.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Requests dropped because the prefetch buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn expire(&mut self, now: Cycle) {
        while self.pending.front().is_some_and(|&r| r <= now) {
            self.pending.pop_front();
        }
    }

    /// Requests a BTB fill for the branch expected at `pc`.
    ///
    /// Fetches the containing line toward the L1-I, predecodes every branch
    /// in it, and inserts those with static targets into the BTB. Returns
    /// `None` if the 16-entry buffer is full (request dropped, as in
    /// hardware) or if predecode finds no fillable branch in the line.
    pub fn request_fill(
        &mut self,
        pc: Addr,
        now: Cycle,
        hierarchy: &mut Hierarchy,
        index: &BranchIndex,
        btb: &mut Btb,
    ) -> Option<FillOutcome> {
        self.expire(now);
        if self.pending.len() >= self.cfg.buffer_entries {
            self.dropped += 1;
            return None;
        }
        // Fetch the block holding the branch (it is usually already being
        // prefetched by FDP; the hierarchy dedups in-flight requests).
        let (line_ready, memory_bytes) = match hierarchy.prefetch_l1i(pc, now, FillKind::Prefetch) {
            Some(r) => (r.ready_at, r.bytes_from_memory),
            // Already resident or in flight: predecode can start now.
            None => (now, 0),
        };
        let ready_at = line_ready + self.cfg.predecode_latency;
        let mut branches_filled = 0;
        for b in index.branches_in_line(pc) {
            if let Some(entry) = b.to_btb_entry() {
                btb.insert(entry, false);
                branches_filled += 1;
            }
        }
        if branches_filled == 0 {
            return None;
        }
        self.pending.push_back(ready_at);
        self.fills += 1;
        Some(FillOutcome { ready_at, memory_bytes, branches_filled })
    }

    /// Clears in-flight state and statistics (between invocations).
    pub fn reset(&mut self) {
        self.pending.clear();
        self.fills = 0;
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch_index::PredecodedBranch;
    use ignite_uarch::btb::BranchKind;
    use ignite_uarch::config::UarchConfig;

    fn setup() -> (Hierarchy, Btb, BranchIndex) {
        let cfg = UarchConfig::tiny_for_tests();
        let index = BranchIndex::from_branches([
            PredecodedBranch {
                pc: Addr::new(0x1008),
                kind: BranchKind::Conditional,
                static_target: Some(Addr::new(0x1100)),
            },
            PredecodedBranch {
                pc: Addr::new(0x1030),
                kind: BranchKind::Indirect,
                static_target: None,
            },
        ]);
        (Hierarchy::new(&cfg.hierarchy), Btb::new(&cfg.btb), index)
    }

    #[test]
    fn fill_inserts_static_branches_only() {
        let (mut h, mut btb, index) = setup();
        let mut b = Boomerang::new(BoomerangConfig::default());
        let outcome = b.request_fill(Addr::new(0x1008), 0, &mut h, &index, &mut btb).unwrap();
        assert_eq!(outcome.branches_filled, 1, "indirect branch cannot be prefilled");
        assert!(btb.probe(Addr::new(0x1008)).is_some());
        assert!(btb.probe(Addr::new(0x1030)).is_none());
    }

    #[test]
    fn fill_latency_includes_predecode() {
        let (mut h, mut btb, index) = setup();
        let mut b = Boomerang::new(BoomerangConfig::default());
        let outcome = b.request_fill(Addr::new(0x1008), 0, &mut h, &index, &mut btb).unwrap();
        // Cold line: memory latency + predecode.
        assert!(outcome.ready_at >= h.config().memory_latency + 6);
        assert_eq!(outcome.memory_bytes, 64);
    }

    #[test]
    fn resident_line_fills_quickly() {
        let (mut h, mut btb, index) = setup();
        let done = h.fetch(Addr::new(0x1008), 0).ready_at;
        let mut b = Boomerang::new(BoomerangConfig::default());
        let outcome = b.request_fill(Addr::new(0x1008), done, &mut h, &index, &mut btb).unwrap();
        assert_eq!(outcome.ready_at, done + 6);
        assert_eq!(outcome.memory_bytes, 0);
    }

    #[test]
    fn buffer_capacity_drops_requests() {
        let (mut h, mut btb, _) = setup();
        // An index with a branch in every line so fills always succeed.
        let branches: Vec<_> = (0..40u64)
            .map(|i| PredecodedBranch {
                pc: Addr::new(0x4000 + i * 64),
                kind: BranchKind::Unconditional,
                static_target: Some(Addr::new(0x9000)),
            })
            .collect();
        let index = BranchIndex::from_branches(branches);
        let mut b = Boomerang::new(BoomerangConfig { predecode_latency: 6, buffer_entries: 4 });
        let mut dropped = false;
        for i in 0..40u64 {
            if b.request_fill(Addr::new(0x4000 + i * 64), 0, &mut h, &index, &mut btb).is_none() {
                dropped = true;
            }
        }
        assert!(dropped);
        assert!(b.dropped() > 0);
        // After time passes, capacity frees up.
        assert!(
            b.request_fill(Addr::new(0x4000), 1_000_000, &mut h, &index, &mut btb).is_some()
                || btb.probe(Addr::new(0x4000)).is_some()
        );
    }

    #[test]
    fn line_without_branches_returns_none() {
        let (mut h, mut btb, index) = setup();
        let mut b = Boomerang::new(BoomerangConfig::default());
        assert!(b.request_fill(Addr::new(0x9000), 0, &mut h, &index, &mut btb).is_none());
    }

    #[test]
    fn reset_clears_state() {
        let (mut h, mut btb, index) = setup();
        let mut b = Boomerang::new(BoomerangConfig::default());
        b.request_fill(Addr::new(0x1008), 0, &mut h, &index, &mut btb);
        b.reset();
        assert_eq!(b.fills(), 0);
    }
}
