#![warn(missing_docs)]
//! Baseline front-end prefetchers evaluated against Ignite.
//!
//! Implements the prior art the paper compares with (§2.4, §5.3):
//!
//! * [`next_line::NextLine`] — the aggressive tagged next-line prefetcher
//!   used as the baseline *and kept on in every configuration*.
//! * [`boomerang::Boomerang`] — FDP augmented with BTB prefilling: BTB
//!   misses discovered in the FTQ are resolved by predecoding the target
//!   cache block (Kumar et al., HPCA'17).
//! * [`jukebox::Jukebox`] — record-and-replay region prefetching of L2
//!   instruction misses into the L2 (Schall et al., ISCA'22).
//! * [`confluence::Confluence`] — unified temporal-streaming prefetching of
//!   instruction blocks into the L1-I with predecode-driven BTB fill
//!   (Kaynak et al., MICRO'15).
//! * [`branch_index::BranchIndex`] — the predecode oracle: given a cache
//!   line, which branches live in it (used by Boomerang and Confluence).
//!
//! The simulation engine owns fetch and FTQ policy; these types own the
//! prefetcher-local state (buffers, metadata, latencies) and act on the
//! shared [`ignite_uarch`] structures.

pub mod boomerang;
pub mod branch_index;
pub mod confluence;
pub mod jukebox;
pub mod next_line;

pub use boomerang::Boomerang;
pub use branch_index::BranchIndex;
pub use confluence::Confluence;
pub use jukebox::Jukebox;
pub use next_line::NextLine;
