//! Predecode oracle: which branches live in a given cache line.
//!
//! Boomerang and Confluence fill the BTB by *predecoding* fetched cache
//! blocks — scanning the raw bytes for branch instructions and extracting
//! their targets. The simulator has no raw bytes, so this index plays the
//! predecoder's role: it maps a cache line to the branches whose PCs fall in
//! it. Only information a real predecoder could extract is exposed: branch
//! PC, kind, and (for direct branches) the encoded target.

use std::collections::HashMap;

use ignite_uarch::addr::Addr;
use ignite_uarch::btb::{BranchKind, BtbEntry};

/// A branch as seen by a predecoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredecodedBranch {
    /// Branch instruction address.
    pub pc: Addr,
    /// Branch kind.
    pub kind: BranchKind,
    /// Statically encoded target. `None` for indirect branches and returns,
    /// whose targets a predecoder cannot know.
    pub static_target: Option<Addr>,
}

impl PredecodedBranch {
    /// Converts to a BTB entry, if the target is statically known.
    pub fn to_btb_entry(self) -> Option<BtbEntry> {
        self.static_target.map(|t| BtbEntry::new(self.pc, t, self.kind))
    }
}

/// Line-granular index over all static branches of a code image.
///
/// # Example
///
/// ```
/// use ignite_prefetch::branch_index::{BranchIndex, PredecodedBranch};
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::btb::BranchKind;
///
/// let index = BranchIndex::from_branches([PredecodedBranch {
///     pc: Addr::new(0x1010),
///     kind: BranchKind::Unconditional,
///     static_target: Some(Addr::new(0x2000)),
/// }]);
/// assert_eq!(index.branches_in_line(Addr::new(0x1000)).len(), 1);
/// assert!(index.branches_in_line(Addr::new(0x3000)).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct BranchIndex {
    by_line: HashMap<u64, Vec<PredecodedBranch>>,
    total: usize,
}

impl BranchIndex {
    /// Builds the index from an iterator of predecoded branches.
    pub fn from_branches<I>(branches: I) -> Self
    where
        I: IntoIterator<Item = PredecodedBranch>,
    {
        let mut by_line: HashMap<u64, Vec<PredecodedBranch>> = HashMap::new();
        let mut total = 0;
        for b in branches {
            by_line.entry(b.pc.line_number()).or_default().push(b);
            total += 1;
        }
        for v in by_line.values_mut() {
            v.sort_by_key(|b| b.pc);
        }
        BranchIndex { by_line, total }
    }

    /// Branches whose PC falls in the line containing `addr`, in PC order.
    pub fn branches_in_line(&self, addr: Addr) -> &[PredecodedBranch] {
        self.by_line.get(&addr.line_number()).map_or(&[], Vec::as_slice)
    }

    /// The branch at exactly `pc`, if any.
    pub fn branch_at(&self, pc: Addr) -> Option<PredecodedBranch> {
        self.branches_in_line(pc).iter().copied().find(|b| b.pc == pc)
    }

    /// Total indexed branches.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn branch(pc: u64, kind: BranchKind, target: Option<u64>) -> PredecodedBranch {
        PredecodedBranch { pc: Addr::new(pc), kind, static_target: target.map(Addr::new) }
    }

    #[test]
    fn groups_by_line() {
        let idx = BranchIndex::from_branches([
            branch(0x1004, BranchKind::Conditional, Some(0x1100)),
            branch(0x103c, BranchKind::Call, Some(0x2000)),
            branch(0x1040, BranchKind::Return, None),
        ]);
        assert_eq!(idx.branches_in_line(Addr::new(0x1000)).len(), 2);
        assert_eq!(idx.branches_in_line(Addr::new(0x1040)).len(), 1);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn branches_sorted_by_pc() {
        let idx = BranchIndex::from_branches([
            branch(0x1030, BranchKind::Conditional, Some(0x1100)),
            branch(0x1004, BranchKind::Conditional, Some(0x1200)),
        ]);
        let v = idx.branches_in_line(Addr::new(0x1000));
        assert!(v[0].pc < v[1].pc);
    }

    #[test]
    fn branch_at_exact_pc() {
        let idx = BranchIndex::from_branches([branch(0x1004, BranchKind::Call, Some(0x9000))]);
        assert!(idx.branch_at(Addr::new(0x1004)).is_some());
        assert!(idx.branch_at(Addr::new(0x1005)).is_none());
    }

    #[test]
    fn indirect_has_no_btb_entry() {
        let b = branch(0x10, BranchKind::Indirect, None);
        assert!(b.to_btb_entry().is_none());
        let d = branch(0x10, BranchKind::Unconditional, Some(0x20));
        assert_eq!(d.to_btb_entry().unwrap().target, Addr::new(0x20));
    }

    #[test]
    fn empty_index() {
        let idx = BranchIndex::default();
        assert!(idx.is_empty());
        assert!(idx.branches_in_line(Addr::new(0)).is_empty());
    }
}
