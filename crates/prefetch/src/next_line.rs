//! Aggressive tagged next-line L1-I prefetcher (the paper's baseline).
//!
//! Triggers on an L1-I demand miss *and* on a demand hit to a line that was
//! brought in by a prefetch (tagged propagation), issuing prefetches for the
//! following `degree` sequential lines (§5.3 "Baseline (NL)").

use ignite_uarch::addr::{Addr, LINE_BYTES};
use ignite_uarch::cache::FillKind;
use ignite_uarch::hierarchy::{AccessResult, Hierarchy};
use ignite_uarch::Cycle;

/// Next-line prefetcher.
///
/// # Example
///
/// ```
/// use ignite_prefetch::next_line::NextLine;
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::config::UarchConfig;
/// use ignite_uarch::hierarchy::{AccessResult, Hierarchy};
///
/// let mut h = Hierarchy::new(&UarchConfig::ice_lake_like().hierarchy);
/// let mut nl = NextLine::new(2);
/// let bytes = nl.trigger(Addr::new(0x1000), 0, &mut h);
/// assert!(bytes > 0, "two cold next lines fetched from memory");
/// assert!(h.probe_l1i(Addr::new(0x1040)));
/// ```
#[derive(Debug, Clone)]
pub struct NextLine {
    degree: usize,
    issued: u64,
    triggered: u64,
}

impl NextLine {
    /// Creates a prefetcher issuing `degree` sequential lines per trigger.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        NextLine { degree, issued: 0, triggered: 0 }
    }

    /// Prefetch degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Prefetches issued (after dedup/MSHR drops).
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Trigger events observed.
    pub fn triggered(&self) -> u64 {
        self.triggered
    }

    /// Fires the prefetcher for a trigger access to `line`.
    ///
    /// Returns the bytes this trigger pulled from DRAM (for bandwidth
    /// accounting).
    pub fn trigger(&mut self, line: Addr, now: Cycle, hierarchy: &mut Hierarchy) -> u64 {
        self.trigger_observed(line, now, hierarchy).iter().map(|(_, r)| r.bytes_from_memory).sum()
    }

    /// Like [`NextLine::trigger`], but returns each issued prefetch with its
    /// line address so callers (e.g. Jukebox's off-chip-miss recorder) can
    /// observe the fills.
    pub fn trigger_observed(
        &mut self,
        line: Addr,
        now: Cycle,
        hierarchy: &mut Hierarchy,
    ) -> Vec<(Addr, AccessResult)> {
        self.triggered += 1;
        let mut issued = Vec::with_capacity(self.degree);
        for i in 1..=self.degree as u64 {
            let next = line.line() + i * LINE_BYTES;
            if let Some(result) = hierarchy.prefetch_l1i(next, now, FillKind::Prefetch) {
                self.issued += 1;
                issued.push((next, result));
            }
        }
        issued
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.issued = 0;
        self.triggered = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_uarch::config::UarchConfig;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&UarchConfig::tiny_for_tests().hierarchy)
    }

    #[test]
    fn prefetches_degree_lines() {
        let mut h = hierarchy();
        let mut nl = NextLine::new(3);
        nl.trigger(Addr::new(0x1000), 0, &mut h);
        assert!(h.probe_l1i(Addr::new(0x1040)));
        assert!(h.probe_l1i(Addr::new(0x1080)));
        assert!(h.probe_l1i(Addr::new(0x10c0)));
        assert!(!h.probe_l1i(Addr::new(0x1100)));
        assert_eq!(nl.issued(), 3);
    }

    #[test]
    fn resident_lines_not_reissued() {
        let mut h = hierarchy();
        let mut nl = NextLine::new(1);
        nl.trigger(Addr::new(0x1000), 0, &mut h);
        let issued_before = nl.issued();
        nl.trigger(Addr::new(0x1000), 100_000, &mut h);
        assert_eq!(nl.issued(), issued_before, "next line already resident");
    }

    #[test]
    fn counts_memory_bytes() {
        let mut h = hierarchy();
        let mut nl = NextLine::new(2);
        let bytes = nl.trigger(Addr::new(0x2000), 0, &mut h);
        assert_eq!(bytes, 128, "two cold lines from memory");
    }

    #[test]
    fn reset_stats() {
        let mut nl = NextLine::new(1);
        let mut h = hierarchy();
        nl.trigger(Addr::new(0x1000), 0, &mut h);
        nl.reset_stats();
        assert_eq!(nl.issued(), 0);
        assert_eq!(nl.triggered(), 0);
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_panics() {
        NextLine::new(0);
    }
}
