//! A minimal, dependency-free property-testing shim.
//!
//! This crate implements the subset of the [proptest](https://docs.rs/proptest)
//! API that this workspace's test suites use, so that `cargo test` works with
//! no network or registry cache (the build environment is fully offline; see
//! the repository README, "Offline builds").
//!
//! Scope and deliberate differences from the real crate:
//!
//! * **No shrinking.** A failing case panics with the generated case index
//!   and seed; re-running reproduces it exactly (generation is a pure
//!   function of the test name and case number).
//! * **Deterministic by default.** The RNG is seeded from the test name, so
//!   results are stable across runs and machines. Set `PROPTEST_SEED` to
//!   explore a different stream, and `PROPTEST_CASES` to change the case
//!   count globally.
//! * Only the strategies the workspace needs: integer/float ranges, `Just`,
//!   tuples, `prop_map`, `any`, `prop::collection::vec`, `prop_oneof!`.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Everything a test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of values from `element`, with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic SplitMix64 stream driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream; equal seeds yield equal value sequences.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`; `bound` 0 returns 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be re-drawn.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    /// Builds a rejection.
    pub fn reject(msg: &str) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required.
    pub cases: u32,
    /// Maximum `prop_assume!` rejections before the test errors out.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, max_global_rejects: cases.saturating_mul(64).max(1024) }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases =
            std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
        ProptestConfig::with_cases(cases)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives the generate–run loop for one `proptest!` test function.
#[derive(Debug)]
pub struct TestRunner {
    cfg: ProptestConfig,
    name: &'static str,
    seed_base: u64,
    passed: u32,
    rejects: u32,
    attempt: u64,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(cfg: ProptestConfig, name: &'static str) -> Self {
        let env_seed =
            std::env::var("PROPTEST_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(0u64);
        TestRunner {
            cfg,
            name,
            seed_base: fnv1a(name.as_bytes()) ^ env_seed,
            passed: 0,
            rejects: 0,
            attempt: 0,
        }
    }

    /// Whether enough cases have passed.
    pub fn finished(&self) -> bool {
        self.passed >= self.cfg.cases
    }

    /// The RNG for the next case (advances the attempt counter).
    pub fn case_rng(&mut self) -> TestRng {
        self.attempt += 1;
        TestRng::new(self.seed_base.wrapping_add(self.attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Records a case outcome; panics on failure with reproduction info.
    pub fn finish_case(&mut self, outcome: Result<(), TestCaseError>) {
        match outcome {
            Ok(()) => self.passed += 1,
            Err(TestCaseError::Reject(_)) => {
                self.rejects += 1;
                assert!(
                    self.rejects <= self.cfg.max_global_rejects,
                    "proptest '{}': too many prop_assume! rejections ({})",
                    self.name,
                    self.rejects
                );
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest '{}' failed at attempt #{} (seed base {:#x}): {}",
                self.name, self.attempt, self.seed_base, msg
            ),
        }
    }
}

/// Values generable by [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> i64 {
        rng.next_u64() as i64
    }
}

/// Strategy producing unconstrained values of `T` (`any::<T>()`).
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// The `proptest::prelude::any` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Fails the surrounding property if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the surrounding property if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the surrounding property if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![$($crate::strategy::union_arm($s)),+])
    };
}

/// Defines deterministic property tests over generated inputs.
///
/// Supports the standard form: an optional `#![proptest_config(expr)]`
/// header followed by `#[test] fn name(pattern in strategy, ...) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($(#[$meta:meta])* fn $name:ident ($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(config, ::std::stringify!($name));
                while !runner.finished() {
                    let mut rng = runner.case_rng();
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                    runner.finish_case(outcome);
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Color {
        Red,
        Green,
    }

    fn arb_color() -> impl Strategy<Value = Color> {
        prop_oneof![Just(Color::Red), Just(Color::Green)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        #[test]
        fn tuples_and_vecs((a, b) in (0u32..10, any::<bool>()), v in prop::collection::vec(0u8..5, 1..9)) {
            prop_assert!(a < 10);
            let _ = b;
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn map_and_oneof(c in arb_color(), n in (1u64..5).prop_map(|n| n * 2)) {
            prop_assert!(c == Color::Red || c == Color::Green);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn assume_rejects(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        let mut a = crate::TestRunner::new(ProptestConfig::with_cases(4), "det");
        let mut b = crate::TestRunner::new(ProptestConfig::with_cases(4), "det");
        for _ in 0..4 {
            let (mut ra, mut rb) = (a.case_rng(), b.case_rng());
            assert_eq!((0u64..1000).generate(&mut ra), (0u64..1000).generate(&mut rb));
        }
    }

    #[test]
    #[should_panic(expected = "failed at attempt")]
    fn failure_panics_with_reproduction_info() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(1), "boom");
        let _ = runner.case_rng();
        runner.finish_case(Err(crate::TestCaseError::fail("nope".into())));
    }
}
