//! Value-generation strategies: the `Strategy` trait and its combinators.

use crate::TestRng;

/// Produces values of a given type from a deterministic RNG stream.
///
/// Unlike the real proptest `Strategy`, there is no value tree and no
/// shrinking — `generate` draws a finished value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (parity with proptest's `boxed`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// References to strategies generate like the strategy itself.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// One type-erased `prop_oneof!` arm: a boxed generation closure.
pub type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// A uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Builds a union from pre-erased arms (see [`union_arm`]).
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

/// Erases one `prop_oneof!` arm to a generation closure.
pub fn union_arm<S>(s: S) -> UnionArm<S::Value>
where
    S: Strategy + 'static,
{
    Box::new(move |rng| s.generate(rng))
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        (self.arms[i])(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
    (A, B, C, D, E, F, G, H, I, J, K)
    (A, B, C, D, E, F, G, H, I, J, K, L)
}
