//! Property-based tests for workload generation and tracing.

use proptest::prelude::*;

use ignite_uarch::addr::Addr;
use ignite_uarch::btb::BranchKind;
use ignite_workloads::arrival::{ArrivalConfig, Trace, TraceParseError};
use ignite_workloads::gen::{generate, GenParams};
use ignite_workloads::trace::TraceWalker;

fn arb_params() -> impl Strategy<Value = GenParams> {
    (
        64u32..2000,  // target_branches
        8u64..48,     // avg block bytes (via code size)
        0.0f64..0.08, // indirect fraction
        0.0f64..0.15, // call fraction
        0.4f64..0.75, // cond fraction
        0.0f64..0.4,  // backward fraction
        0.3f64..0.95, // high bias fraction
        8u32..96,     // blocks per function
        0.0f64..0.8,  // dead code fraction
        any::<u64>(), // seed
    )
        .prop_map(|(branches, avg_bytes, ind, call, cond, back, hb, bpf, dead, seed)| {
            GenParams {
                name: format!("prop-{seed}"),
                seed,
                base: Addr::new(0x0040_0000),
                target_code_bytes: u64::from(branches) * avg_bytes,
                target_branches: branches,
                indirect_fraction: ind,
                call_fraction: call,
                cond_fraction: cond,
                backward_fraction: back,
                high_bias_fraction: hb,
                blocks_per_function: bpf,
                dead_code_fraction: dead,
            }
        })
}

/// Arrival configs whose expected count (rate × horizon / 1e6) is at
/// least ~100, so statistical assertions have headroom.
fn arb_arrivals() -> impl Strategy<Value = ArrivalConfig> {
    (any::<u64>(), 1usize..32, 60.0f64..160.0, 0.0f64..2.0, 1_800_000u64..3_500_000).prop_map(
        |(seed, functions, rate_per_mcycle, zipf_s, horizon_cycles)| ArrivalConfig {
            seed,
            functions,
            rate_per_mcycle,
            zipf_s,
            horizon_cycles,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The generator must produce a valid image for any parameter point —
    /// `generate` panics internally if `CodeImage::new` rejects it.
    #[test]
    fn generator_always_produces_valid_images(p in arb_params()) {
        let img = generate(&p);
        prop_assert!(img.static_branches() > 0);
        prop_assert!(img.functions().iter().any(|f| f.live));
    }

    /// Trace continuity: each block begins where the previous block's
    /// branch said control goes. This is the core walker invariant the
    /// whole simulation relies on.
    #[test]
    fn traces_are_continuous(p in arb_params(), invocation in 0u64..8) {
        let img = generate(&p);
        let blocks: Vec<_> = TraceWalker::new(&img, invocation, 5_000).collect();
        for pair in blocks.windows(2) {
            prop_assert_eq!(pair[1].start, pair[0].next_pc());
        }
    }

    /// The walker never emits blocks from dead functions.
    #[test]
    fn dead_code_never_executes(p in arb_params(), invocation in 0u64..4) {
        let img = generate(&p);
        let dead_ranges: Vec<_> = img
            .functions()
            .iter()
            .filter(|f| !f.live)
            .map(|f| {
                let first = img.block(f.first_block).start;
                let last = img.block(f.first_block + f.block_count - 1);
                (first, last.fallthrough())
            })
            .collect();
        for b in TraceWalker::new(&img, invocation, 3_000) {
            for &(lo, hi) in &dead_ranges {
                prop_assert!(
                    b.start < lo || b.start >= hi,
                    "executed dead block at {}",
                    b.start
                );
            }
        }
    }

    /// Returns match their calls (call-stack integrity).
    #[test]
    fn call_stack_integrity(p in arb_params(), invocation in 0u64..4) {
        let img = generate(&p);
        let blocks: Vec<_> = TraceWalker::new(&img, invocation, 5_000).collect();
        let mut stack: Vec<Addr> = Vec::new();
        for pair in blocks.windows(2) {
            let b = &pair[0];
            match b.branch.kind {
                BranchKind::Call if pair[1].start == b.branch.target => {
                    stack.push(b.fallthrough());
                }
                BranchKind::Return => {
                    if let Some(expect) = stack.pop() {
                        prop_assert_eq!(b.branch.target, expect);
                    }
                }
                _ => {}
            }
        }
    }

    /// The dynamic budget is respected within one block's worth of slack.
    #[test]
    fn budget_respected(p in arb_params(), budget in 100u64..20_000) {
        let img = generate(&p);
        let mut walker = TraceWalker::new(&img, 0, budget);
        let mut last_block_instrs = 0;
        for b in walker.by_ref() {
            last_block_instrs = u64::from(b.instrs);
        }
        let emitted = walker.instructions();
        prop_assert!(emitted >= budget.min(1));
        prop_assert!(emitted < budget + last_block_instrs.max(1) + 64);
    }

    /// Same invocation index ⇒ identical trace; the walk is a pure
    /// function of (image, invocation, budget).
    #[test]
    fn walker_is_pure(p in arb_params(), invocation in 0u64..16) {
        let img = generate(&p);
        let a: Vec<_> = TraceWalker::new(&img, invocation, 2_000).collect();
        let b: Vec<_> = TraceWalker::new(&img, invocation, 2_000).collect();
        prop_assert_eq!(a, b);
    }

    /// Arrival generation is a pure function of the config: same seed ⇒
    /// bit-identical trace, different seeds ⇒ different traces (for any
    /// non-degenerate rate).
    #[test]
    fn arrivals_are_seed_deterministic(cfg in arb_arrivals(), other_seed in any::<u64>()) {
        let a = cfg.generate();
        let b = cfg.generate();
        prop_assert_eq!(&a.arrivals, &b.arrivals);
        if other_seed != cfg.seed {
            let c = ArrivalConfig { seed: other_seed, ..cfg }.generate();
            prop_assert_ne!(&a.arrivals, &c.arrivals);
        }
    }

    /// Arrivals are well-formed: nondecreasing cycles within the horizon,
    /// function ids within range, and per-function counts summing to the
    /// trace length.
    #[test]
    fn arrivals_are_well_formed(cfg in arb_arrivals()) {
        let trace = cfg.generate();
        for pair in trace.arrivals.windows(2) {
            prop_assert!(pair[0].cycle <= pair[1].cycle, "arrival order");
        }
        for a in &trace.arrivals {
            prop_assert!(a.cycle <= cfg.horizon_cycles);
            prop_assert!((a.function as usize) < cfg.functions);
        }
        let counts = trace.counts();
        prop_assert_eq!(counts.len(), cfg.functions);
        prop_assert_eq!(counts.iter().sum::<u64>(), trace.arrivals.len() as u64);
    }

    /// The empirical arrival rate tracks the configured Poisson rate.
    /// The expected count is ≥100 for every point in the strategy, so a
    /// ±45% band is many standard deviations wide — failures mean a
    /// broken generator, not bad luck.
    #[test]
    fn arrival_rate_is_honored(cfg in arb_arrivals()) {
        let trace = cfg.generate();
        let expected = cfg.rate_per_mcycle * cfg.horizon_cycles as f64 / 1e6;
        let got = trace.arrivals.len() as f64;
        prop_assert!(
            got > expected * 0.55 && got < expected * 1.45,
            "expected ~{expected} arrivals, generated {got}"
        );
    }

    /// The trace text format round-trips exactly for any generated trace.
    #[test]
    fn trace_text_round_trips(cfg in arb_arrivals()) {
        let trace = cfg.generate();
        let parsed = Trace::parse(&trace.to_text());
        prop_assert!(parsed.is_ok(), "emitted trace must parse: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.functions, trace.functions);
        prop_assert_eq!(parsed.arrivals, trace.arrivals);
    }

    /// CRLF corruption of any valid trace is rejected with a typed error
    /// naming the first converted line — never silently accepted.
    #[test]
    fn crlf_corruption_is_rejected(cfg in arb_arrivals(), corrupt_all in any::<bool>()) {
        let trace = cfg.generate();
        let text = trace.to_text();
        let corrupted = if corrupt_all {
            // The whole file converted (e.g. a checkout with autocrlf).
            text.replace('\n', "\r\n")
        } else {
            // Only the final line ending converted (e.g. an append from a
            // CRLF editor).
            let mut t = text.trim_end_matches('\n').to_string();
            t.push_str("\r\n");
            t
        };
        match Trace::parse(&corrupted) {
            Err(TraceParseError::CrlfLineEnding { line }) => {
                let expect = if corrupt_all { 1 } else { 1 + trace.arrivals.len() };
                prop_assert_eq!(line, expect, "error must name the first CRLF line");
            }
            other => prop_assert!(false, "CRLF trace must be rejected, got {:?}", other),
        }
    }

    /// Trailing-whitespace corruption of a data line is likewise typed
    /// and line-numbered.
    #[test]
    fn trailing_whitespace_is_rejected(cfg in arb_arrivals()) {
        let trace = cfg.generate();
        prop_assume!(!trace.arrivals.is_empty());
        let mut lines: Vec<String> = trace.to_text().lines().map(String::from).collect();
        let victim = 1 + (cfg.seed as usize % trace.arrivals.len());
        lines[victim].push(' ');
        let corrupted = lines.join("\n") + "\n";
        match Trace::parse(&corrupted) {
            Err(TraceParseError::StrayWhitespace { line }) => {
                prop_assert_eq!(line, victim + 1);
            }
            other => prop_assert!(false, "stray whitespace must be rejected, got {:?}", other),
        }
    }

    /// Cross-invocation commonality: executed-block overlap stays high for
    /// all generated workloads (the property Ignite depends on). The budget
    /// scales with the image so both walks complete full passes — with a
    /// too-small budget, overlap measures where the walk frontier stopped
    /// rather than which blocks the function executes.
    #[test]
    fn invocations_share_most_blocks(p in arb_params()) {
        let img = generate(&p);
        let budget = u64::from(p.target_branches) * 5 * 4;
        let collect = |inv| -> std::collections::HashSet<Addr> {
            TraceWalker::new(&img, inv, budget).map(|b| b.start).collect()
        };
        let a = collect(0);
        let b = collect(1);
        let inter = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        prop_assert!(inter / union > 0.6, "overlap {}", inter / union);
    }
}
