#![warn(missing_docs)]
//! Synthetic serverless workload generation for the Ignite simulator.
//!
//! The paper evaluates 20 vSwarm serverless functions (Table 1) running under
//! gem5 full-system simulation. That software stack is not reproducible here,
//! so this crate synthesizes *function images* — control-flow graphs laid out
//! in a virtual address space — whose front-end-relevant characteristics are
//! calibrated to the paper's measurements (Fig. 2):
//!
//! * instruction working sets of 240–620 KiB per invocation,
//! * branch (BTB) working sets of 5.4 K–14 K taken branches,
//! * language-runtime flavours: Python (interpreter dispatch, indirect
//!   branches), NodeJS (branch-dense JIT code), Go (AOT code, longer basic
//!   blocks).
//!
//! A [`trace::TraceWalker`] performs a deterministic seeded walk of the CFG,
//! producing the dynamic basic-block stream the simulation engine consumes.
//! Per-invocation seeds differ, so consecutive invocations share most — but
//! not all — of their control flow, mirroring the high commonality the paper
//! measures across invocations (§6.2).
//!
//! # Example
//!
//! ```
//! use ignite_workloads::suite::Suite;
//! use ignite_workloads::trace::TraceWalker;
//!
//! let suite = Suite::paper_suite_scaled(0.02); // 2% scale for quick runs
//! let function = &suite.functions()[0];
//! let mut instrs = 0u64;
//! for block in TraceWalker::new(&function.image, 0, 5_000) {
//!     instrs += u64::from(block.instrs);
//! }
//! assert!(instrs >= 5_000);
//! ```

pub mod arrival;
pub mod cfg;
pub mod gen;
pub mod suite;
pub mod trace;

pub use arrival::{Arrival, ArrivalConfig, ArrivalSource, PoissonZipfSource, Trace, TraceSource};
pub use cfg::{BasicBlock, CodeImage, Terminator};
pub use suite::{FunctionProfile, Language, Suite, SuiteFunction};
pub use trace::{BlockExec, ExecutedBranch, TraceWalker};
