//! Synthesizes calibrated [`CodeImage`]s.
//!
//! The generator turns a small set of knobs (total code size, static branch
//! count, language-flavour fractions) into a concrete CFG. Since every basic
//! block ends in exactly one branch, the static block count directly targets
//! the branch working set, and code size divided by block count sets the
//! block size — which is how the paper's per-language character (Go has
//! longer straight-line runs than NodeJS) is expressed.

use ignite_uarch::addr::Addr;
use ignite_uarch::rng::SplitMix64;

use crate::cfg::{BasicBlock, CodeImage, Function, Terminator};

/// Knobs controlling image synthesis.
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Container name.
    pub name: String,
    /// Seed for all structural randomness (layout is deterministic per seed).
    pub seed: u64,
    /// Base virtual address of the code.
    pub base: Addr,
    /// Target total code bytes.
    pub target_code_bytes: u64,
    /// Target static branch count (≈ BTB working-set size).
    pub target_branches: u32,
    /// Fraction of blocks ending in an indirect branch.
    pub indirect_fraction: f64,
    /// Fraction of blocks ending in a call.
    pub call_fraction: f64,
    /// Fraction of blocks ending in a conditional branch.
    pub cond_fraction: f64,
    /// Of conditionals, the fraction that are backward (loop) edges.
    pub backward_fraction: f64,
    /// Of forward conditionals, the fraction that are heavily biased taken.
    pub high_bias_fraction: f64,
    /// Blocks per function.
    pub blocks_per_function: u32,
    /// Dead (never-executed) code appended after each function, as a
    /// fraction of its block count — the cold code wrong paths run into.
    pub dead_code_fraction: f64,
}

impl GenParams {
    /// Reasonable defaults for a mid-sized Go-like function.
    pub fn example(name: impl Into<String>) -> Self {
        GenParams {
            name: name.into(),
            seed: 1,
            base: Addr::new(0x0040_0000),
            target_code_bytes: 300 * 1024,
            target_branches: 8_000,
            indirect_fraction: 0.02,
            call_fraction: 0.10,
            cond_fraction: 0.65,
            backward_fraction: 0.20,
            high_bias_fraction: 0.80,
            blocks_per_function: 64,
            dead_code_fraction: 0.6,
        }
    }
}

/// Generates a [`CodeImage`] from the parameters.
///
/// The same parameters always produce the same image.
///
/// # Panics
///
/// Panics if the parameters are degenerate (zero branches, zero code bytes,
/// or fractions that do not fit in `[0, 1]`).
pub fn generate(params: &GenParams) -> CodeImage {
    assert!(params.target_branches >= 8, "need at least 8 branches");
    assert!(params.target_code_bytes > 0, "code size must be positive");
    let frac_sum = params.indirect_fraction + params.call_fraction + params.cond_fraction;
    assert!(
        (0.0..=1.0).contains(&frac_sum),
        "terminator fractions must sum to at most 1 (rest become jumps)"
    );

    let mut rng = SplitMix64::new(params.seed);
    let n_blocks = params.target_branches;
    let avg_block_bytes = (params.target_code_bytes / u64::from(n_blocks)).max(8);
    let logic_blocks = params.blocks_per_function.clamp(8, n_blocks);

    // Function plan: every third function is a "logic" function (large,
    // makes calls); the rest are small utility "leaves" (no calls). This
    // mirrors real call profiles — most dynamic calls hit small helpers —
    // and bounds the dynamic call amplification, so one invocation can
    // actually cover the working set the way the paper's functions do.
    let mut plan: Vec<u32> = Vec::new(); // block counts per function
    let mut planned: u32 = 0;
    while planned < n_blocks {
        let count = if plan.len().is_multiple_of(3) {
            logic_blocks
        } else {
            rng.range_inclusive(8, 16) as u32
        };
        let count = count.min(n_blocks.saturating_sub(planned).max(4));
        plan.push(count);
        planned += count;
    }
    let n_live = plan.len() as u32;
    let is_leaf = |f: u32| !f.is_multiple_of(3) || f + 1 == n_live;
    // Each live function is followed by one dead function in the emitted
    // layout, so live function `i` lands at emitted index `2 * i`.
    let leaves: Vec<u32> = (0..n_live).filter(|&f| is_leaf(f)).map(|f| 2 * f).collect();

    let mut blocks: Vec<BasicBlock> = Vec::with_capacity(planned as usize);
    let mut functions: Vec<Function> = Vec::with_capacity(plan.len() * 2);
    let mut cursor = params.base;

    for (f, &count) in plan.iter().enumerate() {
        let f = f as u32;
        let first_block = blocks.len() as u32;
        for local in 0..count {
            let global = first_block + local;
            let is_last = local == count - 1;
            // Size: average ± 50%, at least 8 bytes (2 instructions).
            let bytes =
                rng.range_inclusive(avg_block_bytes / 2, avg_block_bytes * 3 / 2).max(8) as u32;
            let instrs = (f64::from(bytes) / 4.5).round().max(2.0) as u32;
            let term = if is_last {
                Terminator::Ret
            } else {
                let local_last = count - 1;
                let roll = rng.next_f64();
                let want_call = roll >= params.cond_fraction
                    && roll < params.cond_fraction + params.call_fraction
                    && !is_leaf(f);
                if roll < params.cond_fraction {
                    make_conditional(&mut rng, params, local, local_last, first_block)
                } else if want_call {
                    let callee = leaves[rng.next_below(leaves.len() as u64) as usize];
                    Terminator::Call { callee }
                } else if roll < frac_sum && roll >= params.cond_fraction + params.call_fraction {
                    make_indirect(&mut rng, local, local_last, first_block)
                } else {
                    // Unconditional jump (also the leaf substitute for a
                    // call), short forward hop.
                    let hop = rng.range_inclusive(1, 3).min(u64::from(local_last - local));
                    Terminator::Jump { target: global + hop.max(1) as u32 }
                }
            };
            blocks.push(BasicBlock { start: cursor, bytes, instrs, term });
            cursor += u64::from(bytes);
        }
        functions.push(Function { first_block, block_count: count, live: true });
        // Pad between functions (symbol alignment); keeps layout contiguity
        // *within* functions only, so bump the cursor to a fresh line.
        cursor = cursor.next_line();

        // Dead code region: a never-called function directly after the hot
        // one, as in real binaries (cold error paths, unused library code).
        // Wrong-path sequential fetches run off the live function's end
        // into these lines.
        let dead_count = ((f64::from(count) * params.dead_code_fraction).round() as u32).max(2);
        let dead_first = blocks.len() as u32;
        for local in 0..dead_count {
            let bytes =
                rng.range_inclusive(avg_block_bytes / 2, avg_block_bytes * 3 / 2).max(8) as u32;
            let instrs = (f64::from(bytes) / 4.5).round().max(2.0) as u32;
            let term = if local == dead_count - 1 {
                Terminator::Ret
            } else {
                Terminator::Cond { target: dead_first + local + 1, bias: 0.5 }
            };
            blocks.push(BasicBlock { start: cursor, bytes, instrs, term });
            cursor += u64::from(bytes);
        }
        functions.push(Function { first_block: dead_first, block_count: dead_count, live: false });
        cursor = cursor.next_line();
    }

    CodeImage::new(params.name.clone(), blocks, functions, 0)
        .expect("generator must produce a valid image")
}

fn make_conditional(
    rng: &mut SplitMix64,
    params: &GenParams,
    local: u32,
    local_last: u32,
    first_block: u32,
) -> Terminator {
    let global = first_block + local;
    let backward = local > 2 && rng.chance(params.backward_fraction);
    if backward {
        // Loop back-edge: taken keeps looping. Biased taken so loops run
        // ~2-4 iterations; spans stay short to bound nesting amplification.
        let span = rng.range_inclusive(1, u64::from(local.min(3)));
        let bias = 0.50 + rng.next_f64() * 0.25;
        Terminator::Cond { target: global - span as u32, bias }
    } else {
        let remaining = u64::from(local_last - local).max(1);
        // Forward branches follow real-code shape: mostly not-taken
        // (error checks, slow paths), so the fall-through path covers the
        // code; the taken direction skips a short span. A minority are
        // mostly-taken with a minimal span so coverage survives.
        let (bias, max_span) = if rng.chance(params.high_bias_fraction) {
            if rng.chance(0.7) {
                (0.02 + rng.next_f64() * 0.08, 6) // almost never taken
            } else {
                (0.90 + rng.next_f64() * 0.08, 1) // almost always taken
            }
        } else if rng.chance(0.7) {
            (0.10 + rng.next_f64() * 0.25, 3) // leaning not-taken
        } else {
            (0.35 + rng.next_f64() * 0.40, 1) // genuinely unpredictable
        };
        let span = rng.range_inclusive(1, max_span.min(remaining));
        Terminator::Cond { target: global + span as u32, bias }
    }
}

fn make_indirect(
    rng: &mut SplitMix64,
    local: u32,
    local_last: u32,
    first_block: u32,
) -> Terminator {
    // Switch-table shape: all targets are forward, so dispatch cannot form
    // cycles (loops come only from conditional back-edges).
    let fan = rng.range_inclusive(3, 10) as u32;
    let mut targets = Vec::with_capacity(fan as usize);
    for _ in 0..fan {
        let t = rng.range_inclusive(u64::from(local) + 1, u64::from(local_last)) as u32;
        targets.push(first_block + t);
    }
    Terminator::Indirect { targets }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Terminator;

    #[test]
    fn generated_image_is_deterministic() {
        let p = GenParams::example("det");
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = GenParams::example("x");
        let a = generate(&p);
        p.seed = 999;
        let b = generate(&p);
        assert_ne!(a, b);
    }

    #[test]
    fn code_size_near_target() {
        let p = GenParams::example("size");
        let img = generate(&p);
        let live = img.live_code_bytes() as f64;
        let target = p.target_code_bytes as f64;
        assert!((live / target - 1.0).abs() < 0.15, "live bytes {live} vs target {target}");
        // Dead code adds roughly the configured fraction on top.
        let dead = img.code_bytes() as f64 - live;
        let frac = dead / live;
        assert!(
            (frac - p.dead_code_fraction).abs() < 0.15,
            "dead fraction {frac} vs {}",
            p.dead_code_fraction
        );
    }

    #[test]
    fn branch_count_matches_target() {
        let p = GenParams::example("branches");
        let img = generate(&p);
        let live: i64 =
            img.functions().iter().filter(|f| f.live).map(|f| i64::from(f.block_count)).sum();
        let t = i64::from(p.target_branches);
        assert!((live - t).abs() <= i64::from(p.blocks_per_function), "{live} vs {t}");
    }

    #[test]
    fn terminator_mix_respects_fractions() {
        let p = GenParams::example("mix");
        let img = generate(&p);
        // Measure the mix over live code only (dead filler is cond-chained).
        let live: Vec<_> = img
            .functions()
            .iter()
            .filter(|f| f.live)
            .flat_map(|f| f.blocks())
            .map(|bi| img.block(bi))
            .collect();
        let n = live.len() as f64;
        let conds =
            live.iter().filter(|b| matches!(b.term, Terminator::Cond { .. })).count() as f64;
        let calls =
            live.iter().filter(|b| matches!(b.term, Terminator::Call { .. })).count() as f64;
        assert!((conds / n - p.cond_fraction).abs() < 0.05, "cond fraction {}", conds / n);
        // Leaves make no calls, so the overall call fraction is below the
        // knob but must still be material.
        assert!(
            calls / n > 0.02 && calls / n <= p.call_fraction + 0.02,
            "call fraction {}",
            calls / n
        );
    }

    #[test]
    fn dead_functions_have_no_calls_or_indirects() {
        let img = generate(&GenParams::example("dead"));
        assert!(img.functions().iter().any(|f| !f.live), "dead code generated");
        for func in img.functions().iter().filter(|f| !f.live) {
            for bi in func.blocks() {
                assert!(matches!(img.block(bi).term, Terminator::Cond { .. } | Terminator::Ret));
            }
        }
    }

    #[test]
    fn calls_target_live_leaves_only() {
        let img = generate(&GenParams::example("call-targets"));
        for b in img.blocks() {
            if let Terminator::Call { callee } = b.term {
                let func = &img.functions()[callee as usize];
                assert!(func.live, "call to dead function {callee}");
                // Leaves make no calls themselves.
                for bi in func.blocks() {
                    assert!(!matches!(img.block(bi).term, Terminator::Call { .. }));
                }
            }
        }
    }

    #[test]
    fn functions_start_line_aligned() {
        let img = generate(&GenParams::example("align"));
        for f in img.functions() {
            let entry = img.block(f.first_block);
            assert_eq!(entry.start.line_offset() % 64, entry.start.line_offset());
        }
        // First function exactly at base.
        assert_eq!(img.base(), Addr::new(0x0040_0000));
    }

    #[test]
    fn small_image_generates() {
        let mut p = GenParams::example("small");
        p.target_branches = 32;
        p.target_code_bytes = 2048;
        let img = generate(&p);
        assert!(img.static_branches() >= 32);
    }

    #[test]
    #[should_panic(expected = "at least 8 branches")]
    fn rejects_tiny_branch_target() {
        let mut p = GenParams::example("bad");
        p.target_branches = 2;
        generate(&p);
    }
}
