//! The 20-function benchmark suite (paper Table 1).
//!
//! Each function gets a [`FunctionProfile`] whose code size and branch
//! working set are calibrated to the paper's Fig. 2 (instruction working
//! sets of 240–620 KiB; branch working sets of 5.4 K BTB entries for Auth-G
//! up to ~14 K for RecO-P), with language-flavour parameters controlling
//! branch density and indirect-branch (interpreter dispatch) usage.

use ignite_uarch::addr::Addr;

use crate::cfg::CodeImage;
use crate::gen::{generate, GenParams};

/// Language runtime of a serverless function (Table 1 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// CPython: interpreter dispatch loops, large code footprint.
    Python,
    /// NodeJS/V8: JIT-compiled, branch-dense code.
    NodeJs,
    /// Go: AOT-compiled, longer basic blocks.
    Go,
}

impl Language {
    /// Table 1 abbreviation suffix.
    pub const fn suffix(self) -> &'static str {
        match self {
            Language::Python => "P",
            Language::NodeJs => "N",
            Language::Go => "G",
        }
    }

    fn indirect_fraction(self) -> f64 {
        match self {
            Language::Python => 0.04,
            Language::NodeJs => 0.02,
            Language::Go => 0.008,
        }
    }

    fn cond_fraction(self) -> f64 {
        match self {
            Language::Python => 0.60,
            Language::NodeJs => 0.70,
            Language::Go => 0.62,
        }
    }

    fn call_fraction(self) -> f64 {
        match self {
            Language::Python => 0.12,
            Language::NodeJs => 0.10,
            Language::Go => 0.10,
        }
    }
}

impl std::fmt::Display for Language {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Language::Python => write!(f, "Python"),
            Language::NodeJs => write!(f, "NodeJS"),
            Language::Go => write!(f, "Go"),
        }
    }
}

/// Calibration targets for one suite function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionProfile {
    /// Full name (Table 1).
    pub name: String,
    /// Abbreviation, e.g. `RecO-P` (Table 1 / figure x-axes).
    pub abbr: String,
    /// Language runtime.
    pub language: Language,
    /// Target static code size in KiB (Fig. 2a: 240–620).
    pub code_kib: u32,
    /// Target branch working set in BTB entries (Fig. 2b: 5.4 K–14 K).
    pub branch_ws: u32,
    /// Dynamic instructions per invocation.
    pub invocation_instrs: u64,
    /// Approximate data working set in cache lines (back-end stall model).
    pub data_ws_lines: u64,
}

/// A suite function: its profile plus the generated code image.
#[derive(Debug, Clone)]
pub struct SuiteFunction {
    /// Calibration profile.
    pub profile: FunctionProfile,
    /// Generated code image.
    pub image: CodeImage,
}

/// The benchmark suite.
#[derive(Debug, Clone)]
pub struct Suite {
    functions: Vec<SuiteFunction>,
}

/// `(name, abbr, language, code KiB, branch WS)` for the 20 paper functions.
const PAPER_FUNCTIONS: [(&str, &str, Language, u32, u32); 20] = [
    ("AES", "AES-P", Language::Python, 420, 9_500),
    ("Authentication", "Auth-P", Language::Python, 390, 9_000),
    ("Fibonacci", "Fib-P", Language::Python, 300, 8_000),
    ("Email", "Email-P", Language::Python, 500, 11_000),
    ("Recommend (Online Boutique)", "RecO-P", Language::Python, 620, 14_000),
    ("AES", "AES-N", Language::NodeJs, 400, 11_000),
    ("Authentication", "Auth-N", Language::NodeJs, 380, 10_500),
    ("Fibonacci", "Fib-N", Language::NodeJs, 320, 9_500),
    ("Currency", "Curr-N", Language::NodeJs, 420, 11_500),
    ("Payment", "Pay-N", Language::NodeJs, 440, 12_000),
    ("AES", "AES-G", Language::Go, 300, 7_000),
    ("Authentication", "Auth-G", Language::Go, 240, 5_400),
    ("Fibonacci", "Fib-G", Language::Go, 250, 5_800),
    ("Geo", "Geo-G", Language::Go, 320, 7_500),
    ("Profile", "Prof-G", Language::Go, 340, 8_000),
    ("Rate", "Rate-G", Language::Go, 300, 7_200),
    ("Recommend (Hotel)", "RecH-G", Language::Go, 360, 8_500),
    ("Reservation", "Res-G", Language::Go, 330, 7_800),
    ("User", "User-G", Language::Go, 310, 7_400),
    ("Shipping", "Ship-G", Language::Go, 350, 8_200),
];

impl Suite {
    /// The full 20-function suite at paper scale.
    ///
    /// Invocation lengths are set so the cold-front-end miss rates land in
    /// the paper's MPKI range (hundreds of thousands of instructions per
    /// invocation, matching millisecond-scale functions).
    pub fn paper_suite() -> Self {
        Suite::paper_suite_scaled(1.0)
    }

    /// The suite with code size, branch working set and invocation length
    /// scaled by `factor` (use small factors, e.g. `0.02`, for fast tests).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn paper_suite_scaled(factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        let functions = PAPER_FUNCTIONS
            .iter()
            .enumerate()
            .map(|(i, (name, abbr, language, code_kib, branch_ws))| {
                let code_kib = ((f64::from(*code_kib) * factor) as u32).max(16);
                let branch_ws = ((f64::from(*branch_ws) * factor) as u32).max(64);
                let profile = FunctionProfile {
                    name: (*name).to_string(),
                    abbr: (*abbr).to_string(),
                    language: *language,
                    code_kib,
                    branch_ws,
                    invocation_instrs: (u64::from(code_kib) * 1_600).max(4_000),
                    data_ws_lines: (u64::from(code_kib) * 8).max(256),
                };
                SuiteFunction { image: build_image(&profile, i as u64), profile }
            })
            .collect();
        Suite { functions }
    }

    /// All functions, in Table 1 / figure order.
    pub fn functions(&self) -> &[SuiteFunction] {
        &self.functions
    }

    /// Looks up a function by its abbreviation (e.g. `"Auth-G"`).
    pub fn by_abbr(&self, abbr: &str) -> Option<&SuiteFunction> {
        self.functions.iter().find(|f| f.profile.abbr == abbr)
    }
}

/// Generates the code image for a profile.
pub fn build_image(profile: &FunctionProfile, index: u64) -> CodeImage {
    let params = GenParams {
        name: profile.abbr.clone(),
        // Structural seed derives from the abbreviation so each function has
        // distinct but stable code.
        seed: profile
            .abbr
            .bytes()
            .fold(0x9E37_79B9u64, |h, b| h.wrapping_mul(31).wrapping_add(u64::from(b))),
        // Distinct 16 MiB-spaced address spaces per container.
        base: Addr::new(0x0040_0000 + index * 0x0100_0000),
        target_code_bytes: u64::from(profile.code_kib) * 1024,
        // Roughly half of the static branches are taken at least once per
        // invocation (rarely-taken checks never allocate), so target twice
        // the desired BTB working set.
        target_branches: profile.branch_ws * 2,
        indirect_fraction: profile.language.indirect_fraction(),
        call_fraction: profile.language.call_fraction(),
        cond_fraction: profile.language.cond_fraction(),
        backward_fraction: 0.20,
        high_bias_fraction: 0.80,
        blocks_per_function: 64,
        dead_code_fraction: 0.6,
    };
    generate(&params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::measure_working_set;

    #[test]
    fn suite_has_twenty_functions() {
        let s = Suite::paper_suite_scaled(0.02);
        assert_eq!(s.functions().len(), 20);
    }

    #[test]
    fn abbreviations_unique_and_ordered() {
        let s = Suite::paper_suite_scaled(0.02);
        let abbrs: Vec<_> = s.functions().iter().map(|f| f.profile.abbr.as_str()).collect();
        assert_eq!(abbrs[0], "AES-P");
        assert_eq!(abbrs[19], "Ship-G");
        let mut dedup = abbrs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 20);
    }

    #[test]
    fn language_split_is_5_5_10() {
        let s = Suite::paper_suite_scaled(0.02);
        let count = |l: Language| s.functions().iter().filter(|f| f.profile.language == l).count();
        assert_eq!(count(Language::Python), 5);
        assert_eq!(count(Language::NodeJs), 5);
        assert_eq!(count(Language::Go), 10);
    }

    #[test]
    fn by_abbr_lookup() {
        let s = Suite::paper_suite_scaled(0.02);
        assert!(s.by_abbr("Auth-G").is_some());
        assert!(s.by_abbr("Nope-X").is_none());
    }

    #[test]
    fn address_spaces_do_not_overlap() {
        let s = Suite::paper_suite_scaled(0.05);
        for pair in s.functions().windows(2) {
            let a_end = pair[0].image.base().as_u64() + pair[0].image.code_bytes() * 2;
            let b_start = pair[1].image.base().as_u64();
            assert!(a_end < b_start, "images overlap");
        }
    }

    #[test]
    fn auth_g_smallest_branch_ws_reco_p_largest() {
        let s = Suite::paper_suite_scaled(0.02);
        let min = s.functions().iter().min_by_key(|f| f.profile.branch_ws).unwrap();
        let max = s.functions().iter().max_by_key(|f| f.profile.branch_ws).unwrap();
        assert_eq!(min.profile.abbr, "Auth-G");
        assert_eq!(max.profile.abbr, "RecO-P");
    }

    #[test]
    fn scaled_working_sets_track_profiles() {
        // At 5% scale, the measured working set should be within a factor of
        // ~2 of the scaled calibration target.
        let s = Suite::paper_suite_scaled(0.05);
        let f = s.by_abbr("RecO-P").unwrap();
        let ws = measure_working_set(&f.image, 0, f.profile.invocation_instrs);
        let target = u64::from(f.profile.code_kib) * 1024;
        assert!(
            ws.instruction_bytes > target / 2 && ws.instruction_bytes < target * 2,
            "instruction ws {} vs target {target}",
            ws.instruction_bytes
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        Suite::paper_suite_scaled(0.0);
    }
}
