//! Dynamic tracing: a deterministic seeded walk of a [`CodeImage`].
//!
//! One [`TraceWalker`] models one *invocation* of the serverless function:
//! it enters the image's functions in a fixed, image-derived root order
//! (modelling the runtime's request-handling phases) and walks the CFG,
//! resolving conditional biases and indirect fans with an invocation-seeded
//! RNG. Two invocations of the same image therefore execute highly — but
//! not perfectly — similar control flow, which is the property Ignite's
//! record/replay exploits (§6.2 "high commonality").

use std::collections::HashSet;

use ignite_uarch::addr::{Addr, LINE_BYTES};
use ignite_uarch::btb::BranchKind;
use ignite_uarch::rng::SplitMix64;

use crate::cfg::{CodeImage, Terminator};

/// Maximum modelled call depth; deeper calls are treated as immediately
/// returning (documented walker simplification).
const MAX_CALL_DEPTH: usize = 128;

/// The branch executed at the end of a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutedBranch {
    /// Address of the branch instruction.
    pub pc: Addr,
    /// Branch classification.
    pub kind: BranchKind,
    /// Whether the branch was taken on this execution.
    pub taken: bool,
    /// The architectural target: where the branch goes *when taken* (for
    /// returns, the dynamic return address).
    pub target: Addr,
}

/// One dynamic basic-block execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockExec {
    /// Address of the first instruction.
    pub start: Addr,
    /// Code bytes fetched for the block.
    pub bytes: u32,
    /// Instructions executed.
    pub instrs: u32,
    /// The terminating branch.
    pub branch: ExecutedBranch,
}

impl BlockExec {
    /// Address of the first byte after the block.
    pub fn fallthrough(&self) -> Addr {
        self.start + u64::from(self.bytes)
    }

    /// The address control flow actually continued at.
    pub fn next_pc(&self) -> Addr {
        if self.branch.taken {
            self.branch.target
        } else {
            self.fallthrough()
        }
    }
}

/// Memoized structural behaviour of one branch site.
///
/// Every variant is a pure function of `(image_seed, block)` — plus the
/// invocation-fixed deviation bit — so it is derived once per walker and
/// replayed from the cache instead of reseeding an RNG per execution.
#[derive(Debug, Clone, Copy)]
enum Pattern {
    /// Loop back-edge trip pattern (period 4 or 8, guaranteed exit bit).
    Loop { bits: u8, period: u32 },
    /// Direction fixed for the whole invocation.
    Fixed { taken: bool },
    /// 8-bit periodic direction pattern.
    Periodic { bits: u8 },
    /// Direction fixed per (branch, caller) pair; resolved at execution
    /// time from the call stack.
    Context { base_seed: u64 },
    /// Indirect dispatch: the target index for each pattern phase.
    Indirect { period: u32, idx: [usize; 2] },
}

/// Per-block memo: the invocation-fixed deviation bit plus the pattern.
#[derive(Debug, Clone, Copy)]
struct BlockMemo {
    deviates: bool,
    pattern: Pattern,
}

/// Iterator over the dynamic basic blocks of one invocation.
///
/// # Example
///
/// ```
/// use ignite_workloads::gen::{generate, GenParams};
/// use ignite_workloads::trace::TraceWalker;
///
/// let image = generate(&GenParams::example("doc"));
/// let blocks: Vec<_> = TraceWalker::new(&image, 0, 1_000).collect();
/// let instrs: u64 = blocks.iter().map(|b| u64::from(b.instrs)).sum();
/// assert!(instrs >= 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWalker<'a> {
    image: &'a CodeImage,
    image_seed: u64,
    invocation_seed: u64,
    /// Probability that a branch *site* deviates from its structural
    /// behaviour for the whole invocation (cross-invocation divergence).
    noise: f64,
    budget_instrs: u64,
    emitted_instrs: u64,
    /// Return-to block indices (global).
    stack: Vec<u32>,
    current: Option<u32>,
    /// Function visit order; stable across invocations of the same image.
    roots: Vec<u32>,
    root_pos: usize,
    /// Per-block dynamic execution counters (pattern phase).
    exec_counts: Vec<u32>,
    /// Lazily classified per-block behaviour (conditional and indirect
    /// sites only).
    memo: Vec<Option<BlockMemo>>,
    truncated_calls: u64,
}

/// Default per-branch-site deviation probability between invocations.
///
/// Small, matching the high cross-invocation commonality the paper measures
/// (§6.2: ~1-4% of restored state is unused). A deviating site behaves
/// differently for the *whole* invocation — the way a request that takes a
/// different path exercises different branches — rather than flipping
/// randomly per execution.
pub const DEFAULT_NOISE: f64 = 0.03;

impl<'a> TraceWalker<'a> {
    /// Creates a walker for invocation number `invocation` with the given
    /// dynamic instruction budget and the default divergence
    /// ([`DEFAULT_NOISE`]).
    ///
    /// Branch outcomes follow short per-branch *patterns* derived from the
    /// image structure — the way real branches repeat their behaviour across
    /// loop iterations and invocations — perturbed per invocation with a
    /// small noise probability. Two invocations therefore share most, but
    /// not all, of their control flow, and history predictors (TAGE) can
    /// learn the patterns.
    pub fn new(image: &'a CodeImage, invocation: u64, budget_instrs: u64) -> Self {
        TraceWalker::with_noise(image, invocation, budget_instrs, DEFAULT_NOISE)
    }

    /// Creates a walker with an explicit divergence probability.
    ///
    /// # Panics
    ///
    /// Panics if `noise` is outside `[0, 1]`.
    pub fn with_noise(
        image: &'a CodeImage,
        invocation: u64,
        budget_instrs: u64,
        noise: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&noise), "noise must be a probability");
        // Image-stable root order: a seeded shuffle of all functions with
        // the entry function first.
        let image_seed = image.name().bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        let mut order_rng = SplitMix64::new(image_seed);
        let mut roots: Vec<u32> = image.live_functions().collect();
        for i in (1..roots.len()).rev() {
            let j = order_rng.next_below(i as u64 + 1) as usize;
            roots.swap(i, j);
        }
        if let Some(pos) = roots.iter().position(|&f| f == image.entry_function()) {
            roots.swap(0, pos);
        }
        let block_count = image.blocks().len();
        TraceWalker {
            image,
            image_seed,
            invocation_seed: image_seed
                ^ invocation.wrapping_add(1).wrapping_mul(0xD6E8_FEB8_6659_FD93),
            noise,
            budget_instrs,
            emitted_instrs: 0,
            stack: Vec::new(),
            current: None,
            roots,
            root_pos: 0,
            exec_counts: vec![0; block_count],
            memo: vec![None; block_count],
            truncated_calls: 0,
        }
    }

    /// Whether this branch site deviates from its structural behaviour for
    /// the whole invocation.
    fn deviates(&self, block: u32) -> bool {
        let mut r = SplitMix64::new(
            self.invocation_seed ^ u64::from(block).wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        r.next_f64() < self.noise
    }

    /// Advances and returns this block's execution count (pattern phase).
    fn bump_count(&mut self, block: u32) -> u32 {
        let c = &mut self.exec_counts[block as usize];
        let k = *c;
        *c = c.wrapping_add(1);
        k
    }

    /// Classifies conditional `block` into its per-invocation pattern: a
    /// deterministic per-branch pattern of period 1–8 whose taken-rate
    /// approximates `bias`. Identical across invocations. Loop back-edges
    /// (`is_loop`) always carry at least one not-taken bit so loops
    /// terminate. Derived once per block; [`TraceWalker::pattern_taken`]
    /// replays it per execution.
    fn classify_cond(&self, block: u32, bias: f64, is_loop: bool) -> Pattern {
        let base_seed = self.image_seed ^ (u64::from(block)).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut struct_rng = SplitMix64::new(base_seed);
        // Most branches are fixed-direction within an invocation (what a
        // warm bimodal captures); the rest follow short patterns whose bits
        // also depend on the *call context*, which only a history-based
        // predictor (TAGE) can separate. Loops get longer periods so they
        // carry stable trip counts.
        let roll = struct_rng.next_u64() % 100;
        if is_loop {
            // Loops: a fixed trip-count pattern of period 4 or 8 with a
            // guaranteed exit. TAGE can learn trip counts from its own
            // taken-bits accumulating in the history.
            let period: u32 = if roll < 50 { 4 } else { 8 };
            let mut bits: u8 = 0;
            for j in 0..period {
                if struct_rng.chance(bias) {
                    bits |= 1 << j;
                }
            }
            if bits == ((1u16 << period) - 1) as u8 {
                bits &= !(1 << (period - 1));
            }
            return Pattern::Loop { bits, period };
        }
        if roll < 60 {
            // Fixed direction: one draw at `bias`, stable across executions
            // and invocations. A warm bimodal captures these perfectly.
            return Pattern::Fixed { taken: struct_rng.chance(bias) };
        }
        if roll < 85 {
            // Periodic: an 8-bit pattern with each bit drawn at `bias`.
            // Low-bias branches take their alternate path on a stable
            // subset of executions (slow paths that recur), which is what
            // populates the taken working set without per-execution
            // randomness.
            let mut bits: u8 = 0;
            for j in 0..8 {
                if struct_rng.chance(bias) {
                    bits |= 1 << j;
                }
            }
            return Pattern::Periodic { bits };
        }
        // Context-sensitive: direction fixed per (branch, caller) pair —
        // separable by a path-history predictor (TAGE) but aliased in the
        // bimodal, which sees only the majority direction.
        Pattern::Context { base_seed }
    }

    /// The structural outcome of a classified conditional at execution `k`.
    fn pattern_taken(&self, pattern: Pattern, k: u32, bias: f64) -> bool {
        match pattern {
            Pattern::Loop { bits, period } => (bits >> (k % period)) & 1 == 1,
            Pattern::Fixed { taken } => taken,
            Pattern::Periodic { bits } => (bits >> (k % 8)) & 1 == 1,
            Pattern::Context { base_seed } => {
                let context = u64::from(self.stack.last().copied().unwrap_or(0));
                let mut ctx_rng =
                    SplitMix64::new(base_seed ^ context.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                ctx_rng.chance(bias)
            }
            Pattern::Indirect { .. } => unreachable!("conditional block with indirect pattern"),
        }
    }

    /// Classifies indirect `block`: a skewed, patterned index into the
    /// target list for each phase of the (1- or 2-execution) period.
    fn classify_indirect(&self, block: u32, fan: usize) -> Pattern {
        let seed = self.image_seed ^ (u64::from(block)).wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut pat_rng = SplitMix64::new(seed);
        // Most dispatch sites are effectively monomorphic (one hot target);
        // a minority alternate between two targets. The phase-1 index
        // continues the phase-0 RNG stream, as the unmemoized walk did.
        let period = if pat_rng.chance(0.85) { 1 } else { 2 };
        let mut idx = [0usize; 2];
        for slot in &mut idx {
            let mut i = 0;
            while i + 1 < fan && pat_rng.chance(0.15) {
                i += 1;
            }
            *slot = i;
        }
        Pattern::Indirect { period, idx }
    }

    /// The memoized behaviour of conditional/indirect `block`, classifying
    /// on first execution.
    fn memo(&mut self, block: u32, classify: impl Fn(&Self) -> Pattern) -> BlockMemo {
        match self.memo[block as usize] {
            Some(m) => m,
            None => {
                let m = BlockMemo { deviates: self.deviates(block), pattern: classify(self) };
                self.memo[block as usize] = Some(m);
                m
            }
        }
    }

    /// Instructions emitted so far.
    pub fn instructions(&self) -> u64 {
        self.emitted_instrs
    }

    /// Calls skipped because the modelled call depth was exceeded.
    pub fn truncated_calls(&self) -> u64 {
        self.truncated_calls
    }

    fn next_root(&mut self) -> u32 {
        let f = self.roots[self.root_pos % self.roots.len()];
        self.root_pos += 1;
        self.image.functions()[f as usize].first_block
    }
}

impl Iterator for TraceWalker<'_> {
    type Item = BlockExec;

    fn next(&mut self) -> Option<BlockExec> {
        if self.emitted_instrs >= self.budget_instrs {
            return None;
        }
        let bi = match self.current {
            Some(b) => b,
            None => {
                self.stack.clear();
                self.next_root()
            }
        };
        let block = self.image.block(bi);
        let pc = block.branch_pc();
        let (branch, next) = match &block.term {
            Terminator::Cond { target, bias } => {
                let target_addr = self.image.block(*target).start;
                let k = self.bump_count(bi);
                let is_loop = *target <= bi;
                let memo = self.memo(bi, |w| w.classify_cond(bi, *bias, is_loop));
                let mut taken = self.pattern_taken(memo.pattern, k, *bias);
                // Deviation flips forward branches only: flipping a loop
                // back-edge could turn it into an infinite loop. Deviating
                // loops shift their phase instead (a different trip count).
                if memo.deviates {
                    if is_loop {
                        taken = self.pattern_taken(memo.pattern, k + 1, *bias);
                    } else {
                        taken = !taken;
                    }
                }
                let next = if taken { *target } else { bi + 1 };
                (
                    ExecutedBranch {
                        pc,
                        kind: BranchKind::Conditional,
                        taken,
                        target: target_addr,
                    },
                    Some(next),
                )
            }
            Terminator::Jump { target } => (
                ExecutedBranch {
                    pc,
                    kind: BranchKind::Unconditional,
                    taken: true,
                    target: self.image.block(*target).start,
                },
                Some(*target),
            ),
            Terminator::Call { callee } => {
                let entry = self.image.functions()[*callee as usize].first_block;
                let entry_addr = self.image.block(entry).start;
                if self.stack.len() < MAX_CALL_DEPTH {
                    self.stack.push(bi + 1);
                    (
                        ExecutedBranch {
                            pc,
                            kind: BranchKind::Call,
                            taken: true,
                            target: entry_addr,
                        },
                        Some(entry),
                    )
                } else {
                    // Depth cap: model the call as immediately returning.
                    self.truncated_calls += 1;
                    (
                        ExecutedBranch {
                            pc,
                            kind: BranchKind::Call,
                            taken: true,
                            target: entry_addr,
                        },
                        Some(bi + 1),
                    )
                }
            }
            Terminator::Ret => match self.stack.pop() {
                Some(ret_to) => (
                    ExecutedBranch {
                        pc,
                        kind: BranchKind::Return,
                        taken: true,
                        target: self.image.block(ret_to).start,
                    },
                    Some(ret_to),
                ),
                None => {
                    // Root function finished: "return" into the runtime,
                    // which dispatches the next phase.
                    let next = self.next_root();
                    (
                        ExecutedBranch {
                            pc,
                            kind: BranchKind::Return,
                            taken: true,
                            target: self.image.block(next).start,
                        },
                        Some(next),
                    )
                }
            },
            Terminator::Indirect { targets } => {
                let k = self.bump_count(bi);
                let memo = self.memo(bi, |w| w.classify_indirect(bi, targets.len()));
                let Pattern::Indirect { period, idx } = memo.pattern else {
                    unreachable!("indirect block with conditional pattern")
                };
                let mut idx = idx[(k % period) as usize];
                if memo.deviates {
                    // A deviating dispatch site favours a different target
                    // this invocation.
                    idx = (idx + 1) % targets.len();
                }
                let pick = targets[idx];
                (
                    ExecutedBranch {
                        pc,
                        kind: BranchKind::Indirect,
                        taken: true,
                        target: self.image.block(pick).start,
                    },
                    Some(pick),
                )
            }
        };
        self.current = next;
        self.emitted_instrs += u64::from(block.instrs);
        Some(BlockExec { start: block.start, bytes: block.bytes, instrs: block.instrs, branch })
    }
}

/// Front-end working set of one invocation (paper Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingSet {
    /// Distinct instruction bytes touched, at cache-block granularity.
    pub instruction_bytes: u64,
    /// Distinct taken branches (BTB working set).
    pub btb_entries: u64,
    /// Dynamic instructions executed.
    pub instructions: u64,
}

/// Measures the instruction and branch working set of one invocation.
///
/// Mirrors the paper's §2.3 methodology: record instruction-cache accesses at
/// block granularity and BTB allocations (taken branches only), de-duplicated.
pub fn measure_working_set(image: &CodeImage, invocation: u64, budget_instrs: u64) -> WorkingSet {
    let mut lines: HashSet<u64> = HashSet::new();
    let mut branches: HashSet<u64> = HashSet::new();
    let mut instructions = 0u64;
    for block in TraceWalker::new(image, invocation, budget_instrs) {
        instructions += u64::from(block.instrs);
        let mut line = block.start.line_number();
        let last = (block.start + u64::from(block.bytes.saturating_sub(1))).line_number();
        while line <= last {
            lines.insert(line);
            line += 1;
        }
        if block.branch.taken {
            branches.insert(block.branch.pc.as_u64());
        }
    }
    WorkingSet {
        instruction_bytes: lines.len() as u64 * LINE_BYTES,
        btb_entries: branches.len() as u64,
        instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenParams};

    fn small_image() -> CodeImage {
        let mut p = GenParams::example("walker-test");
        p.target_branches = 400;
        p.target_code_bytes = 16 * 1024;
        generate(&p)
    }

    #[test]
    fn walker_is_deterministic_per_invocation() {
        let img = small_image();
        let a: Vec<_> = TraceWalker::new(&img, 3, 5_000).collect();
        let b: Vec<_> = TraceWalker::new(&img, 3, 5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn invocations_differ_but_share_most_control_flow() {
        let img = small_image();
        let a: Vec<_> = TraceWalker::new(&img, 0, 20_000).collect();
        let b: Vec<_> = TraceWalker::new(&img, 1, 20_000).collect();
        assert_ne!(a, b, "different invocations must diverge somewhere");
        // Commonality: the sets of executed block start addresses overlap
        // strongly (the paper measures ~96%+ metadata usefulness).
        let sa: HashSet<_> = a.iter().map(|x| x.start).collect();
        let sb: HashSet<_> = b.iter().map(|x| x.start).collect();
        let inter = sa.intersection(&sb).count() as f64;
        let union = sa.union(&sb).count() as f64;
        assert!(inter / union > 0.80, "block overlap {}", inter / union);
    }

    #[test]
    fn control_flow_is_consistent() {
        // Each block must begin where the previous block said control goes.
        let img = small_image();
        let blocks: Vec<_> = TraceWalker::new(&img, 7, 10_000).collect();
        for pair in blocks.windows(2) {
            assert_eq!(pair[1].start, pair[0].next_pc(), "discontinuous trace");
        }
    }

    #[test]
    fn budget_respected() {
        let img = small_image();
        let mut w = TraceWalker::new(&img, 0, 1_000);
        while w.next().is_some() {}
        let n = w.instructions();
        assert!((1_000..1_100).contains(&n), "emitted {n}");
    }

    #[test]
    fn returns_follow_calls() {
        let img = small_image();
        let blocks: Vec<_> = TraceWalker::new(&img, 0, 30_000).collect();
        let mut stack: Vec<Addr> = Vec::new();
        for pair in blocks.windows(2) {
            let b = &pair[0];
            match b.branch.kind {
                BranchKind::Call if pair[1].start == b.branch.target => {
                    stack.push(b.fallthrough());
                }
                BranchKind::Return => {
                    if let Some(expect) = stack.pop() {
                        assert_eq!(b.branch.target, expect, "return to wrong address");
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn working_set_instruction_bytes_reasonable() {
        let mut p = GenParams::example("ws");
        p.target_branches = 2_000;
        p.target_code_bytes = 80 * 1024;
        let img = generate(&p);
        // Budget large enough to touch most of the code.
        let ws = measure_working_set(&img, 0, 400_000);
        let code = img.live_code_bytes();
        assert!(
            ws.instruction_bytes as f64 > 0.6 * code as f64,
            "ws {} vs live code {code}",
            ws.instruction_bytes
        );
        let live_blocks: u32 =
            img.functions().iter().filter(|f| f.live).map(|f| f.block_count).sum();
        assert!(ws.btb_entries as f64 > 0.35 * f64::from(live_blocks));
    }

    #[test]
    fn root_order_is_invocation_invariant() {
        let img = small_image();
        let a = TraceWalker::new(&img, 0, 10).roots.clone();
        let b = TraceWalker::new(&img, 42, 10).roots.clone();
        assert_eq!(a, b, "root order must not depend on the invocation");
    }

    #[test]
    fn conditional_bias_respected_in_aggregate() {
        // Many conditionals with bias 0.8: individual branches follow
        // quantized patterns, but the aggregate taken-rate tracks the bias.
        use crate::cfg::{BasicBlock, CodeImage, Function, Terminator};
        let n = 64u32;
        let mut blocks = Vec::new();
        for i in 0..n {
            blocks.push(BasicBlock {
                start: Addr::new(0x1000 + u64::from(i) * 16),
                bytes: 16,
                instrs: 4,
                term: Terminator::Cond { target: i + 1, bias: 0.8 },
            });
        }
        blocks.push(BasicBlock {
            start: Addr::new(0x1000 + u64::from(n) * 16),
            bytes: 16,
            instrs: 4,
            term: Terminator::Ret,
        });
        let img = CodeImage::new(
            "bias",
            blocks,
            vec![Function { first_block: 0, block_count: n + 1, live: true }],
            0,
        )
        .unwrap();
        let blocks: Vec<_> = TraceWalker::new(&img, 0, 100_000).collect();
        let conds: Vec<_> =
            blocks.iter().filter(|b| b.branch.kind == BranchKind::Conditional).collect();
        assert!(conds.len() > 1000);
        let taken = conds.iter().filter(|b| b.branch.taken).count() as f64;
        let frac = taken / conds.len() as f64;
        assert!((0.62..0.95).contains(&frac), "empirical bias {frac}");
    }

    #[test]
    fn patterns_are_invocation_stable() {
        // With zero noise, two invocations produce identical traces.
        let img = small_image();
        let a: Vec<_> = TraceWalker::with_noise(&img, 0, 10_000, 0.0).collect();
        let b: Vec<_> = TraceWalker::with_noise(&img, 99, 10_000, 0.0).collect();
        assert_eq!(a, b, "noise-free walks must be invocation-invariant");
    }

    #[test]
    fn loops_always_terminate() {
        // A single always-taken-bias back-edge must still exit via the
        // forced not-taken pattern bit.
        use crate::cfg::{BasicBlock, CodeImage, Function, Terminator};
        let blocks = vec![
            BasicBlock {
                start: Addr::new(0x1000),
                bytes: 16,
                instrs: 4,
                term: Terminator::Cond { target: 0, bias: 1.0 },
            },
            BasicBlock { start: Addr::new(0x1010), bytes: 16, instrs: 4, term: Terminator::Ret },
        ];
        let img = CodeImage::new(
            "loop",
            blocks,
            vec![Function { first_block: 0, block_count: 2, live: true }],
            0,
        )
        .unwrap();
        let trace: Vec<_> = TraceWalker::with_noise(&img, 0, 1_000, 0.0).collect();
        assert!(
            trace.iter().any(|b| b.branch.kind == BranchKind::Return),
            "the loop must exit and reach the return"
        );
    }
}
