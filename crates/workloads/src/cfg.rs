//! Control-flow-graph representation of a synthetic function image.
//!
//! A [`CodeImage`] is the code of one serverless function *container*: a set
//! of functions laid out contiguously in the virtual address space, each a
//! run of basic blocks. Control flow is explicit: every block ends in a
//! terminator, and conditional fall-through is the next block in layout
//! order.

use ignite_uarch::addr::Addr;
use ignite_uarch::btb::BranchKind;

/// How a basic block ends.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Conditional branch: taken → `target` (global block index), not taken
    /// → fall through to the next block. `bias` is the probability the
    /// branch is taken on a given execution.
    Cond {
        /// Global index of the taken-path block.
        target: u32,
        /// Probability of the branch being taken.
        bias: f64,
    },
    /// Unconditional direct jump to a block in the same function.
    Jump {
        /// Global index of the target block.
        target: u32,
    },
    /// Direct call; control continues in the callee and falls through to the
    /// next block after the callee returns.
    Call {
        /// Index of the callee function.
        callee: u32,
    },
    /// Return to the caller (or end of the invocation at the root).
    Ret,
    /// Indirect jump: each execution picks one of `targets` (interpreter
    /// dispatch, virtual calls, JIT stubs).
    Indirect {
        /// Global indices of possible target blocks (non-empty).
        targets: Vec<u32>,
    },
}

impl Terminator {
    /// The branch kind this terminator presents to the BTB.
    pub fn branch_kind(&self) -> BranchKind {
        match self {
            Terminator::Cond { .. } => BranchKind::Conditional,
            Terminator::Jump { .. } => BranchKind::Unconditional,
            Terminator::Call { .. } => BranchKind::Call,
            Terminator::Ret => BranchKind::Return,
            Terminator::Indirect { .. } => BranchKind::Indirect,
        }
    }
}

/// A straight-line run of instructions ended by a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: Addr,
    /// Total code bytes, including the terminating branch instruction.
    pub bytes: u32,
    /// Number of instructions.
    pub instrs: u32,
    /// How the block ends.
    pub term: Terminator,
}

impl BasicBlock {
    /// Address of the terminating branch instruction (modelled as the last
    /// four bytes of the block).
    pub fn branch_pc(&self) -> Addr {
        self.start + u64::from(self.bytes.saturating_sub(4))
    }

    /// Address of the first byte after the block (conditional fall-through).
    pub fn fallthrough(&self) -> Addr {
        self.start + u64::from(self.bytes)
    }
}

/// One function: a contiguous range of blocks, entered at the first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Function {
    /// Global index of the entry block.
    pub first_block: u32,
    /// Number of blocks (all at `first_block..first_block + block_count`).
    pub block_count: u32,
    /// Whether the function is reachable. Dead functions model the cold
    /// code real binaries interleave with hot code (error handlers,
    /// unused library paths); wrong-path fetches run into them.
    pub live: bool,
}

impl Function {
    /// Global block index range.
    pub fn blocks(&self) -> std::ops::Range<u32> {
        self.first_block..self.first_block + self.block_count
    }
}

/// Errors detected when assembling a [`CodeImage`].
#[derive(Debug, Clone, PartialEq)]
pub enum ImageError {
    /// A block's terminator targets a block outside its own function.
    TargetOutOfFunction {
        /// Offending block.
        block: u32,
    },
    /// A call appears in a function's last block (no fall-through to return
    /// to).
    CallWithoutFallthrough {
        /// Offending block.
        block: u32,
    },
    /// A callee index exceeds the function count.
    BadCallee {
        /// Offending block.
        block: u32,
    },
    /// A conditional bias is outside `[0, 1]`.
    BadBias {
        /// Offending block.
        block: u32,
    },
    /// An indirect terminator has no targets.
    EmptyIndirect {
        /// Offending block.
        block: u32,
    },
    /// Blocks are not laid out contiguously in ascending address order.
    BadLayout {
        /// First offending block.
        block: u32,
    },
    /// A function has no blocks.
    EmptyFunction {
        /// Offending function index.
        function: u32,
    },
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::TargetOutOfFunction { block } => {
                write!(f, "block {block} targets a block outside its function")
            }
            ImageError::CallWithoutFallthrough { block } => {
                write!(f, "block {block} is a call in its function's last block")
            }
            ImageError::BadCallee { block } => write!(f, "block {block} calls a missing function"),
            ImageError::BadBias { block } => write!(f, "block {block} has a bias outside [0, 1]"),
            ImageError::EmptyIndirect { block } => {
                write!(f, "block {block} has an indirect branch with no targets")
            }
            ImageError::BadLayout { block } => {
                write!(f, "block {block} is not contiguous with its predecessor")
            }
            ImageError::EmptyFunction { function } => {
                write!(f, "function {function} has no blocks")
            }
        }
    }
}

impl std::error::Error for ImageError {}

/// The code of one serverless function container.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeImage {
    name: String,
    blocks: Vec<BasicBlock>,
    functions: Vec<Function>,
    /// Index of the function the invocation enters first.
    entry_function: u32,
}

impl CodeImage {
    /// Assembles an image from parts.
    ///
    /// # Errors
    ///
    /// Returns the first [`ImageError`] found: non-contiguous layout,
    /// targets escaping their function, calls without fall-through, bad
    /// biases, empty indirect target lists, or empty functions.
    pub fn new(
        name: impl Into<String>,
        blocks: Vec<BasicBlock>,
        functions: Vec<Function>,
        entry_function: u32,
    ) -> Result<Self, ImageError> {
        let image = CodeImage { name: name.into(), blocks, functions, entry_function };
        image.validate()?;
        Ok(image)
    }

    fn validate(&self) -> Result<(), ImageError> {
        for (fi, func) in self.functions.iter().enumerate() {
            if func.block_count == 0 {
                return Err(ImageError::EmptyFunction { function: fi as u32 });
            }
            let range = func.blocks();
            for bi in range.clone() {
                let block = &self.blocks[bi as usize];
                // Layout contiguity within a function.
                if bi > range.start {
                    let prev = &self.blocks[bi as usize - 1];
                    if prev.fallthrough() != block.start {
                        return Err(ImageError::BadLayout { block: bi });
                    }
                }
                let in_function = |t: u32| t >= range.start && t < range.end;
                match &block.term {
                    Terminator::Cond { target, bias } => {
                        if !in_function(*target) {
                            return Err(ImageError::TargetOutOfFunction { block: bi });
                        }
                        if !(0.0..=1.0).contains(bias) {
                            return Err(ImageError::BadBias { block: bi });
                        }
                        // Conditional fall-through must stay in the function.
                        if bi + 1 >= range.end {
                            return Err(ImageError::TargetOutOfFunction { block: bi });
                        }
                    }
                    Terminator::Jump { target } => {
                        if !in_function(*target) {
                            return Err(ImageError::TargetOutOfFunction { block: bi });
                        }
                    }
                    Terminator::Call { callee } => {
                        if *callee as usize >= self.functions.len() {
                            return Err(ImageError::BadCallee { block: bi });
                        }
                        if bi + 1 >= range.end {
                            return Err(ImageError::CallWithoutFallthrough { block: bi });
                        }
                    }
                    Terminator::Ret => {}
                    Terminator::Indirect { targets } => {
                        if targets.is_empty() {
                            return Err(ImageError::EmptyIndirect { block: bi });
                        }
                        for t in targets {
                            if !in_function(*t) {
                                return Err(ImageError::TargetOutOfFunction { block: bi });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Container name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All basic blocks, in layout order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All functions.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Index of the invocation entry function.
    pub fn entry_function(&self) -> u32 {
        self.entry_function
    }

    /// The block a given global index refers to.
    pub fn block(&self, index: u32) -> &BasicBlock {
        &self.blocks[index as usize]
    }

    /// Total static code size in bytes (live + dead).
    pub fn code_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.bytes)).sum()
    }

    /// Static code size of reachable functions only.
    pub fn live_code_bytes(&self) -> u64 {
        self.functions
            .iter()
            .filter(|f| f.live)
            .flat_map(|f| f.blocks())
            .map(|bi| u64::from(self.blocks[bi as usize].bytes))
            .sum()
    }

    /// Indices of reachable functions.
    pub fn live_functions(&self) -> impl Iterator<Item = u32> + '_ {
        self.functions.iter().enumerate().filter(|(_, f)| f.live).map(|(i, _)| i as u32)
    }

    /// Number of static branches (one per block).
    pub fn static_branches(&self) -> usize {
        self.blocks.len()
    }

    /// Lowest code address.
    pub fn base(&self) -> Addr {
        self.blocks.first().map_or(Addr::NULL, |b| b.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal valid image: one function, three blocks.
    ///
    /// ```text
    /// b0: cond -> b2 (bias 0.5), fallthrough b1
    /// b1: jump -> b2
    /// b2: ret
    /// ```
    pub(crate) fn tiny_image() -> CodeImage {
        let base = 0x1000u64;
        let blocks = vec![
            BasicBlock {
                start: Addr::new(base),
                bytes: 32,
                instrs: 7,
                term: Terminator::Cond { target: 2, bias: 0.5 },
            },
            BasicBlock {
                start: Addr::new(base + 32),
                bytes: 16,
                instrs: 4,
                term: Terminator::Jump { target: 2 },
            },
            BasicBlock { start: Addr::new(base + 48), bytes: 24, instrs: 5, term: Terminator::Ret },
        ];
        let functions = vec![Function { first_block: 0, block_count: 3, live: true }];
        CodeImage::new("tiny", blocks, functions, 0).expect("valid image")
    }

    #[test]
    fn tiny_image_valid() {
        let img = tiny_image();
        assert_eq!(img.code_bytes(), 72);
        assert_eq!(img.static_branches(), 3);
        assert_eq!(img.base(), Addr::new(0x1000));
        assert_eq!(img.name(), "tiny");
    }

    #[test]
    fn branch_pc_is_near_block_end() {
        let img = tiny_image();
        let b = img.block(0);
        assert_eq!(b.branch_pc(), Addr::new(0x1000 + 28));
        assert_eq!(b.fallthrough(), Addr::new(0x1020));
    }

    #[test]
    fn rejects_target_outside_function() {
        let mut img = tiny_image();
        let blocks = {
            let mut b = img.blocks.clone();
            b[1].term = Terminator::Jump { target: 99 };
            b
        };
        let err = CodeImage::new("bad", blocks, img.functions.clone(), 0).unwrap_err();
        assert_eq!(err, ImageError::TargetOutOfFunction { block: 1 });
        img.name.clear(); // silence unused-mut lint by using img
    }

    #[test]
    fn rejects_bad_bias() {
        let img = tiny_image();
        let mut blocks = img.blocks.clone();
        blocks[0].term = Terminator::Cond { target: 2, bias: 1.5 };
        let err = CodeImage::new("bad", blocks, img.functions.clone(), 0).unwrap_err();
        assert_eq!(err, ImageError::BadBias { block: 0 });
    }

    #[test]
    fn rejects_call_in_last_block() {
        let img = tiny_image();
        let mut blocks = img.blocks.clone();
        blocks[2].term = Terminator::Call { callee: 0 };
        let err = CodeImage::new("bad", blocks, img.functions.clone(), 0).unwrap_err();
        assert_eq!(err, ImageError::CallWithoutFallthrough { block: 2 });
    }

    #[test]
    fn rejects_gap_in_layout() {
        let img = tiny_image();
        let mut blocks = img.blocks.clone();
        blocks[2].start = Addr::new(0x9000);
        let err = CodeImage::new("bad", blocks, img.functions.clone(), 0).unwrap_err();
        assert_eq!(err, ImageError::BadLayout { block: 2 });
    }

    #[test]
    fn rejects_empty_indirect() {
        let img = tiny_image();
        let mut blocks = img.blocks.clone();
        blocks[1].term = Terminator::Indirect { targets: vec![] };
        let err = CodeImage::new("bad", blocks, img.functions.clone(), 0).unwrap_err();
        assert_eq!(err, ImageError::EmptyIndirect { block: 1 });
    }

    #[test]
    fn rejects_conditional_in_last_block() {
        let img = tiny_image();
        let mut blocks = img.blocks.clone();
        blocks[2].term = Terminator::Cond { target: 0, bias: 0.5 };
        let err = CodeImage::new("bad", blocks, img.functions.clone(), 0).unwrap_err();
        assert_eq!(err, ImageError::TargetOutOfFunction { block: 2 });
    }

    #[test]
    fn terminator_branch_kinds() {
        use ignite_uarch::btb::BranchKind;
        assert_eq!(Terminator::Ret.branch_kind(), BranchKind::Return);
        assert_eq!(Terminator::Jump { target: 0 }.branch_kind(), BranchKind::Unconditional);
        assert_eq!(
            Terminator::Cond { target: 0, bias: 0.5 }.branch_kind(),
            BranchKind::Conditional
        );
        assert_eq!(Terminator::Call { callee: 0 }.branch_kind(), BranchKind::Call);
        assert_eq!(Terminator::Indirect { targets: vec![0] }.branch_kind(), BranchKind::Indirect);
    }

    #[test]
    fn error_display_non_empty() {
        let e = ImageError::BadBias { block: 3 };
        assert!(!format!("{e}").is_empty());
    }
}
