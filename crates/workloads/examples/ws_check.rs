//! Prints each suite function's measured working sets against its
//! calibration targets (paper Fig. 2).
//!
//! Run with `cargo run --release -p ignite-workloads --example ws_check`.

use ignite_workloads::suite::Suite;
use ignite_workloads::trace::measure_working_set;

fn main() {
    let s = Suite::paper_suite();
    for f in s.functions() {
        let ws = measure_working_set(&f.image, 0, f.profile.invocation_instrs);
        println!(
            "{:8} code={:4}KiB ws_instr={:4}KiB btb_ws={:6} (target {:6}) instrs={}",
            f.profile.abbr,
            f.image.code_bytes() / 1024,
            ws.instruction_bytes / 1024,
            ws.btb_entries,
            f.profile.branch_ws,
            ws.instructions
        );
    }
}
