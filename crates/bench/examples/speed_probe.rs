//! Quick calibration probe: one function, all front-end configurations.
//!
//! Run with `cargo run --release -p ignite-bench --example speed_probe`.
//!
//! Speedup is the plain cycle ratio `nl.cycles / r.cycles` (instruction
//! counts are printed separately; configs retire the same instruction
//! stream, so no ratio correction applies). Wall time per config is
//! summarized with the bench crate's median/MAD statistics over a few
//! repetitions.

use ignite_bench::e2e::configs;
use ignite_bench::stats;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::stats::speedup;
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;
use std::time::Instant;

fn main() {
    let suite = Suite::paper_suite();
    let uarch = UarchConfig::ice_lake_like();
    let f = PreparedFunction::from_suite(&suite.functions()[0], 0);
    let opts = RunOptions::quick();
    let configs = configs();
    let nl = run_function(&uarch, &configs[0], &f, opts);
    const REPS: u32 = 3;
    for c in &configs {
        let mut samples = Vec::new();
        let mut r = None;
        for _ in 0..REPS {
            let t = Instant::now();
            r = Some(run_function(&uarch, c, &f, opts));
            samples.push(t.elapsed().as_nanos() as u64);
        }
        let r = r.expect("at least one rep");
        let wall = stats(&samples);
        let n = r.instructions as f64;
        println!(
            "{:16} speedup={:.3} instrs={} cpi={:.3} [ret={:.2} fetch={:.2} bad={:.2} be={:.2}] \
             l1i={:5.1} btb={:5.1} cbp={:5.1} ({:.1}ms ±{:.2}ms)",
            c.name,
            speedup(nl.cycles, r.cycles),
            r.instructions,
            r.cpi(),
            r.topdown.retiring / n,
            r.topdown.fetch_bound / n,
            r.topdown.bad_speculation / n,
            r.topdown.backend_bound / n,
            r.l1i_mpki(),
            r.btb_mpki(),
            r.cbp_mpki(),
            wall.median_ns as f64 / 1e6,
            wall.mad_ns as f64 / 1e6,
        );
    }
}
