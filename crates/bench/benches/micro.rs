//! Microbenchmarks of the simulator's core data structures.
//!
//! These quantify the substrate costs behind every experiment: cache and
//! BTB lookups, TAGE prediction, Ignite's metadata codec, and the trace
//! walker. Run with `cargo bench -p ignite-bench --bench micro`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use ignite_core::codec::{CodecConfig, Encoder};
use ignite_uarch::addr::Addr;
use ignite_uarch::btb::{BranchKind, Btb, BtbEntry};
use ignite_uarch::cache::{FillKind, SetAssocCache};
use ignite_uarch::cbp::Cbp;
use ignite_uarch::hierarchy::Hierarchy;
use ignite_uarch::rng::SplitMix64;
use ignite_uarch::UarchConfig;
use ignite_workloads::gen::{generate, GenParams};
use ignite_workloads::trace::TraceWalker;

fn bench_cache(c: &mut Criterion) {
    let cfg = UarchConfig::ice_lake_like();
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("l1i_lookup_fill_mix", |b| {
        let mut cache = SetAssocCache::new(cfg.hierarchy.l1i);
        let mut rng = SplitMix64::new(7);
        b.iter(|| {
            for _ in 0..1024 {
                let addr = Addr::new(rng.next_below(1 << 20) & !63);
                if !cache.lookup(addr) {
                    cache.fill(addr, FillKind::Demand);
                }
            }
        });
    });
    group.finish();
}

fn bench_hierarchy(c: &mut Criterion) {
    let cfg = UarchConfig::ice_lake_like();
    let mut group = c.benchmark_group("hierarchy");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("fetch_sequential", |b| {
        let mut h = Hierarchy::new(&cfg.hierarchy);
        let mut now = 0;
        let mut pc = 0u64;
        b.iter(|| {
            for _ in 0..1024 {
                let r = h.fetch(Addr::new(pc & ((1 << 24) - 1)), now);
                now = r.ready_at;
                pc += 64;
            }
        });
    });
    group.finish();
}

fn bench_btb(c: &mut Criterion) {
    let cfg = UarchConfig::ice_lake_like();
    let mut group = c.benchmark_group("btb");
    group.throughput(Throughput::Elements(1024));
    group.bench_function("lookup_insert_mix", |b| {
        let mut btb = Btb::new(&cfg.btb);
        let mut rng = SplitMix64::new(3);
        b.iter(|| {
            for _ in 0..1024 {
                let pc = Addr::new(rng.next_below(1 << 18) & !3);
                if btb.lookup(pc).is_none() {
                    btb.insert(
                        BtbEntry::new(pc, pc + 64, BranchKind::Conditional),
                        false,
                    );
                }
            }
            btb.drain_insertions();
        });
    });
    group.finish();
}

fn bench_cbp(c: &mut Criterion) {
    let cfg = UarchConfig::ice_lake_like();
    let mut group = c.benchmark_group("cbp");
    group.throughput(Throughput::Elements(256));
    group.bench_function("predict_resolve", |b| {
        let mut cbp = Cbp::new(&cfg.cbp);
        let mut rng = SplitMix64::new(11);
        b.iter(|| {
            for _ in 0..256 {
                let pc = Addr::new(rng.next_below(1 << 16) & !3);
                let taken = rng.chance(0.6);
                let p = cbp.predict(pc);
                cbp.resolve(pc, taken, pc + 32, &p);
            }
        });
    });
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let entries: Vec<BtbEntry> = {
        // Execution-chained stream, as the recorder produces it: each
        // branch sits shortly after the previous branch's target.
        let mut rng = SplitMix64::new(5);
        let mut cursor = 0x40_0000u64;
        (0..8_192)
            .map(|_| {
                let pc = cursor + rng.range_inclusive(8, 48);
                let target = pc + rng.range_inclusive(4, 4096);
                cursor = target;
                BtbEntry::new(Addr::new(pc), Addr::new(target), BranchKind::Conditional)
            })
            .collect()
    };
    group.throughput(Throughput::Elements(entries.len() as u64));
    group.bench_function("encode_8k_records", |b| {
        b.iter(|| {
            let mut enc = Encoder::new(CodecConfig::default());
            for e in &entries {
                enc.push(e);
            }
            enc.finish()
        });
    });
    let metadata = {
        let mut enc = Encoder::new(CodecConfig::default());
        for e in &entries {
            enc.push(e);
        }
        enc.finish()
    };
    group.bench_function("decode_8k_records", |b| {
        b.iter(|| metadata.decode().count());
    });
    group.finish();
    println!(
        "codec: {} records in {} bytes ({:.1} bits/record)",
        metadata.entries(),
        metadata.byte_len(),
        metadata.byte_len() as f64 * 8.0 / metadata.entries() as f64
    );
}

fn bench_walker(c: &mut Criterion) {
    let mut params = GenParams::example("bench-walker");
    params.target_branches = 4_000;
    params.target_code_bytes = 160 * 1024;
    let image = generate(&params);
    let mut group = c.benchmark_group("walker");
    group.throughput(Throughput::Elements(50_000));
    group.bench_function("trace_50k_instrs", |b| {
        let mut invocation = 0;
        b.iter_batched(
            || {
                invocation += 1;
                TraceWalker::new(&image, invocation, 50_000)
            },
            |walker| walker.count(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_hierarchy,
    bench_btb,
    bench_cbp,
    bench_codec,
    bench_walker
);
criterion_main!(benches);
