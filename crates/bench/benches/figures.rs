//! One benchmark per reproduced paper table/figure.
//!
//! Each benchmark regenerates its experiment at reduced scale (2% of paper
//! scale so `cargo bench` completes in minutes) and prints the figure's
//! rows once, so a bench run doubles as a smoke regeneration of the whole
//! evaluation. For paper-scale numbers use the harness binary:
//!
//! ```text
//! cargo run --release -p ignite-harness --bin figures -- all
//! ```

use std::sync::OnceLock;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ignite_engine::protocol::RunOptions;
use ignite_harness::{figures, Figure, Harness};

fn harness() -> &'static Harness {
    static HARNESS: OnceLock<Harness> = OnceLock::new();
    HARNESS.get_or_init(|| Harness::new(0.02, RunOptions::quick()))
}

fn bench_figure(c: &mut Criterion, id: &str, run: fn(&Harness) -> Figure) {
    // Print the regenerated rows once per bench target.
    println!("{}", run(harness()).render());
    let mut group = c.benchmark_group("figures");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    group.bench_function(id, |b| b.iter(|| run(harness())));
    group.finish();
}

fn fig1(c: &mut Criterion) {
    bench_figure(c, "fig01_cpi_stack", figures::fig1::run);
}
fn fig2(c: &mut Criterion) {
    bench_figure(c, "fig02_working_sets", figures::fig2::run);
}
fn fig3(c: &mut Criterion) {
    bench_figure(c, "fig03_prefetchers", figures::fig3::run);
}
fn fig4(c: &mut Criterion) {
    bench_figure(c, "fig04_warm_bpu", figures::fig4::run);
}
fn fig5(c: &mut Criterion) {
    bench_figure(c, "fig05_cbp_split", figures::fig5::run);
}
fn fig6(c: &mut Criterion) {
    bench_figure(c, "fig06_initial_misses", figures::fig6::run);
}
fn fig8(c: &mut Criterion) {
    bench_figure(c, "fig08_performance", figures::fig8::run);
}
fn fig9a(c: &mut Criterion) {
    bench_figure(c, "fig09a_coverage", figures::fig9::run_a);
}
fn fig9b(c: &mut Criterion) {
    bench_figure(c, "fig09b_initial_coverage", figures::fig9::run_b);
}
fn fig9c(c: &mut Criterion) {
    bench_figure(c, "fig09c_restore_accuracy", figures::fig9::run_c);
}
fn fig10(c: &mut Criterion) {
    bench_figure(c, "fig10_bandwidth", figures::fig10::run);
}
fn fig11(c: &mut Criterion) {
    bench_figure(c, "fig11_bim_policy", figures::fig11::run);
}
fn fig12(c: &mut Criterion) {
    bench_figure(c, "fig12_temporal_streaming", figures::fig12::run);
}
fn table1(c: &mut Criterion) {
    bench_figure(c, "table1_suite", figures::tables::table1);
}
fn table2(c: &mut Criterion) {
    bench_figure(c, "table2_processor", figures::tables::table2);
}

criterion_group!(
    benches, table1, table2, fig1, fig2, fig3, fig4, fig5, fig6, fig8, fig9a, fig9b, fig9c,
    fig10, fig11, fig12
);
criterion_main!(benches);
