//! Micro-kernels over the simulator's hot data structures.
//!
//! Each kernel exercises one structure with a deterministic access stream
//! (seeded [`SplitMix64`]), so the work per rep is identical across runs
//! and machines — timings are comparable against a committed baseline.

use ignite_core::codec::{CodecConfig, Encoder, Metadata};
use ignite_uarch::addr::Addr;
use ignite_uarch::bimodal::Bimodal;
use ignite_uarch::btb::{BranchKind, Btb, BtbEntry};
use ignite_uarch::cache::{FillKind, SetAssocCache};
use ignite_uarch::cbp::Cbp;
use ignite_uarch::hierarchy::Hierarchy;
use ignite_uarch::rng::SplitMix64;
use ignite_uarch::UarchConfig;
use ignite_workloads::gen::{generate, GenParams};
use ignite_workloads::trace::TraceWalker;

use crate::{Bench, Kind, Mode};

fn micro(name: &str, run: Box<dyn FnMut() -> (u64, u64)>) -> Bench {
    Bench { name: format!("micro/{name}"), kind: Kind::Micro, config: None, cpi: None, run }
}

/// Builds every micro-kernel at the given mode's scale.
pub fn kernels(mode: Mode) -> Vec<Bench> {
    let ops: u64 = match mode {
        Mode::Quick => 16 * 1024,
        Mode::Full => 64 * 1024,
    };
    let cfg = UarchConfig::ice_lake_like();
    let mut out = Vec::new();

    out.push(micro("cache/l1i_lookup_fill_mix", {
        let mut cache = SetAssocCache::new(cfg.hierarchy.l1i);
        Box::new(move || {
            let mut rng = SplitMix64::new(7);
            let mut filled = 0u64;
            for _ in 0..ops {
                let addr = Addr::new(rng.next_below(1 << 20) & !63);
                if !cache.lookup(addr) {
                    cache.fill(addr, FillKind::Demand);
                    filled += 1;
                }
            }
            (ops, filled)
        })
    }));

    out.push(micro("hierarchy/fetch_sequential", {
        let mut h = Hierarchy::new(&cfg.hierarchy);
        let mut now = 0;
        let mut pc = 0u64;
        Box::new(move || {
            for _ in 0..ops {
                let r = h.fetch(Addr::new(pc & ((1 << 24) - 1)), now);
                now = r.ready_at;
                pc += 64;
            }
            (ops, now)
        })
    }));

    out.push(micro("btb/lookup_insert_mix", {
        let mut btb = Btb::new(&cfg.btb);
        Box::new(move || {
            let mut rng = SplitMix64::new(3);
            let mut inserted = 0u64;
            for _ in 0..ops {
                let pc = Addr::new(rng.next_below(1 << 18) & !3);
                if btb.lookup(pc).is_none() {
                    btb.insert(BtbEntry::new(pc, pc + 64, BranchKind::Conditional), false);
                    inserted += 1;
                }
            }
            btb.drain_insertions();
            (ops, inserted)
        })
    }));

    out.push(micro("cbp/tage_predict_resolve", {
        let mut cbp = Cbp::new(&cfg.cbp);
        let ops = ops / 2; // predictions are heavier than raw lookups
        Box::new(move || {
            let mut rng = SplitMix64::new(11);
            let mut taken_count = 0u64;
            for _ in 0..ops {
                let pc = Addr::new(rng.next_below(1 << 16) & !3);
                let taken = rng.chance(0.6);
                let p = cbp.predict(pc);
                cbp.resolve(pc, taken, pc + 32, &p);
                taken_count += taken as u64;
            }
            (ops, taken_count)
        })
    }));

    out.push(micro("bimodal/predict_update", {
        let mut bim = Bimodal::new(&cfg.cbp.bimodal);
        Box::new(move || {
            let mut rng = SplitMix64::new(13);
            let mut agree = 0u64;
            for _ in 0..ops {
                let pc = Addr::new(rng.next_below(1 << 16) & !3);
                let taken = rng.chance(0.6);
                agree += (bim.predict(pc) == taken) as u64;
                bim.update(pc, taken);
            }
            (ops, agree)
        })
    }));

    let entries = chained_records(8_192);
    out.push(micro("codec/encode_8k_records", {
        let entries = entries.clone();
        Box::new(move || {
            let md = encode(&entries);
            (entries.len() as u64, md.byte_len() as u64)
        })
    }));
    out.push(micro("codec/decode_8k_records", {
        let metadata = encode(&entries);
        let n = entries.len() as u64;
        Box::new(move || (n, metadata.decode().count() as u64))
    }));

    out.push(micro("walker/trace", {
        let mut params = GenParams::example("bench-walker");
        params.target_branches = 4_000;
        params.target_code_bytes = 160 * 1024;
        let image = generate(&params);
        let instrs: u64 = match mode {
            Mode::Quick => 50_000,
            Mode::Full => 200_000,
        };
        let mut invocation = 0;
        Box::new(move || {
            invocation += 1;
            let walked = TraceWalker::new(&image, invocation, instrs).count();
            (instrs, walked as u64)
        })
    }));

    out
}

/// An execution-chained record stream, as the recorder produces it: each
/// branch sits shortly after the previous branch's target.
fn chained_records(n: usize) -> Vec<BtbEntry> {
    let mut rng = SplitMix64::new(5);
    let mut cursor = 0x40_0000u64;
    (0..n)
        .map(|_| {
            let pc = cursor + rng.range_inclusive(8, 48);
            let target = pc + rng.range_inclusive(4, 4096);
            cursor = target;
            BtbEntry::new(Addr::new(pc), Addr::new(target), BranchKind::Conditional)
        })
        .collect()
}

fn encode(entries: &[BtbEntry]) -> Metadata {
    let mut enc = Encoder::new(CodecConfig::default());
    for e in entries {
        enc.push(e);
    }
    enc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_bench;

    #[test]
    fn all_kernels_run_and_report_work() {
        for mut bench in kernels(Mode::Quick) {
            let (work, _) = (bench.run)();
            assert!(work > 0, "{} reported no work", bench.name);
            let r = run_bench(&mut bench, 0, 1);
            assert_eq!(r.instructions, work, "{} work not deterministic", bench.name);
            assert!(r.name.starts_with("micro/"));
        }
    }

    #[test]
    fn full_mode_does_more_work() {
        let quick: u64 = kernels(Mode::Quick).iter_mut().map(|b| (b.run)().0).sum();
        let full: u64 = kernels(Mode::Full).iter_mut().map(|b| (b.run)().0).sum();
        assert!(full > quick);
    }
}
