//! `ignite-bench`: offline benchmark runner.
//!
//! ```text
//! cargo run --release -p ignite-bench -- [OPTIONS]
//!
//! OPTIONS:
//!   --quick            CI smoke scale (small loops, few reps)
//!   --filter SUBSTR    only run benches whose name contains SUBSTR
//!   --out PATH         output JSON path (default BENCH_ignite.json)
//!   --baseline PATH    compare against a committed report; record
//!                      speedups and fail on micro regressions >25%
//!   --list             print bench names and exit
//! ```

use std::process::ExitCode;

use ignite_bench::{e2e, kernels, run_bench, Mode, Report, REGRESSION_GATE};

struct Args {
    mode: Mode,
    filter: Option<String>,
    out: String,
    baseline: Option<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        mode: Mode::Full,
        filter: None,
        out: "BENCH_ignite.json".to_string(),
        baseline: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => args.mode = Mode::Quick,
            "--list" => args.list = true,
            "--filter" => {
                args.filter = Some(it.next().ok_or("--filter needs a value")?);
            }
            "--out" => {
                args.out = it.next().ok_or("--out needs a value")?;
            }
            "--baseline" => {
                args.baseline = Some(it.next().ok_or("--baseline needs a value")?);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("ignite-bench: {e}");
            return ExitCode::FAILURE;
        }
    };

    let (warmup, reps) = match args.mode {
        Mode::Quick => (1, 5),
        Mode::Full => (3, 15),
    };

    let mut benches = kernels::kernels(args.mode);
    benches.extend(e2e::e2e_benches(args.mode));
    if let Some(f) = &args.filter {
        benches.retain(|b| b.name.contains(f));
    }
    if args.list {
        for b in &benches {
            println!("{}", b.name);
        }
        return ExitCode::SUCCESS;
    }
    if benches.is_empty() {
        eprintln!("ignite-bench: no benches match the filter");
        return ExitCode::FAILURE;
    }

    let mut report = Report { mode: args.mode.name().to_string(), results: Vec::new() };
    for bench in &mut benches {
        // End-to-end benches warmed up while computing their CPI.
        let w = match bench.kind {
            ignite_bench::Kind::Micro => warmup,
            ignite_bench::Kind::EndToEnd => 0,
        };
        let r = run_bench(bench, w, reps);
        println!(
            "{:36} {:>12} work {:>12} ns (±{} ns)  {:8.1} MIPS{}",
            r.name,
            r.instructions,
            r.wall_ns,
            r.mad_ns,
            r.mips,
            r.cpi.map(|c| format!("  cpi={c:.3}")).unwrap_or_default(),
        );
        report.results.push(r);
    }

    let mut failed = false;
    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| Report::from_json(&t))
        {
            Ok(baseline) => {
                let regressions = report.apply_baseline(&baseline);
                for r in &report.results {
                    if let Some(s) = r.speedup {
                        println!("{:36} speedup vs baseline: {:.2}x", r.name, s);
                    }
                }
                for reg in &regressions {
                    eprintln!(
                        "REGRESSION {}: {} ns -> {} ns (> {:.0}% gate)",
                        reg.name,
                        reg.baseline_ns,
                        reg.current_ns,
                        (REGRESSION_GATE - 1.0) * 100.0
                    );
                }
                failed = !regressions.is_empty();
            }
            Err(e) => {
                eprintln!("ignite-bench: cannot load baseline {path}: {e}");
                failed = true;
            }
        }
    }

    if let Err(e) = std::fs::write(&args.out, report.to_json()) {
        eprintln!("ignite-bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", args.out);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
