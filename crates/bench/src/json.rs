//! Minimal JSON support, re-exported from `ignite-cluster` (one shared
//! implementation for bench and cluster reports).

pub use ignite_cluster::json::*;
