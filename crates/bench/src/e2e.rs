//! Reduced-scale end-to-end benches: one per front-end configuration,
//! plus a cluster-layer run.
//!
//! Each per-config bench simulates the first paper-suite function under
//! one configuration at reduced scale with [`RunOptions::quick`],
//! reporting simulated instructions per second of wall time (MIPS) and
//! the config's CPI. The `e2e/cluster` bench serves a reduced Zipf
//! arrival trace over a small fleet through `ignite-cluster`, tracking
//! the throughput of the scheduler + metadata-store layer end to end.
//! The simulations are deterministic, so instructions and CPI are
//! identical across reps and runs — only wall time varies.

use std::rc::Rc;

use ignite_cluster::{ClusterConfig, ClusterSim, MemoCache};
use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::UarchConfig;
use ignite_workloads::arrival::ArrivalConfig;
use ignite_workloads::suite::Suite;

use crate::{Bench, Kind, Mode};

/// Every front-end configuration the paper evaluates.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::nl(),
        FrontEndConfig::jukebox(),
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ignite(),
        FrontEndConfig::ignite_tage(),
        FrontEndConfig::ideal(),
    ]
}

/// Workload scale (fraction of paper scale) for each mode.
pub fn scale(mode: Mode) -> f64 {
    match mode {
        Mode::Quick => 0.06,
        Mode::Full => 0.25,
    }
}

/// Builds one end-to-end bench per front-end configuration.
///
/// The returned benches carry their (deterministic) CPI, computed from an
/// initial run that also serves as cache warmup.
pub fn e2e_benches(mode: Mode) -> Vec<Bench> {
    let suite = Suite::paper_suite_scaled(scale(mode));
    let f = Rc::new(PreparedFunction::from_suite(&suite.functions()[0], 0));
    let uarch = Rc::new(UarchConfig::ice_lake_like());
    let opts = RunOptions::quick();
    configs()
        .into_iter()
        .map(|config| {
            let first = run_function(&uarch, &config, &f, opts);
            let name = format!("e2e/{}", config.name);
            let config_name = config.name.clone();
            let f = Rc::clone(&f);
            let uarch = Rc::clone(&uarch);
            Bench {
                name,
                kind: Kind::EndToEnd,
                config: Some(config_name),
                cpi: Some(first.cpi()),
                run: Box::new(move || {
                    let r = run_function(&uarch, &config, &f, opts);
                    (r.instructions, r.cycles)
                }),
            }
        })
        .chain(std::iter::once(cluster_bench(mode)))
        .chain(std::iter::once(cluster_obs_bench(mode)))
        .chain(std::iter::once(cluster_traffic_bench(mode)))
        .chain(std::iter::once(cluster_memo_bench(mode)))
        .chain(std::iter::once(cluster_control_bench(mode)))
        .collect()
}

fn cluster_config(mode: Mode) -> ClusterConfig {
    let horizon = match mode {
        Mode::Quick => 600_000,
        Mode::Full => 3_000_000,
    };
    ClusterConfig {
        cores: 2,
        arrival: ArrivalConfig { horizon_cycles: horizon, ..ArrivalConfig::default() },
        ..ClusterConfig::default()
    }
}

/// The cluster-layer bench: a reduced fleet (2 cores) serving a fixed-seed
/// Zipf(1.0) trace under the Ignite config with a bounded metadata store.
fn cluster_bench(mode: Mode) -> Bench {
    let sim = Rc::new(ClusterSim::new(cluster_config(mode)));
    let first = sim.run().total_result();
    Bench {
        name: "e2e/cluster".to_string(),
        kind: Kind::EndToEnd,
        config: Some("cluster".to_string()),
        cpi: Some(first.cpi()),
        run: Box::new(move || {
            let r = sim.run().total_result();
            (r.instructions, r.cycles)
        }),
    }
}

/// The same cluster run with event tracing enabled into a ring buffer.
/// Comparing its MIPS against `e2e/cluster` measures the end-to-end
/// observability overhead, which the acceptance gate keeps under 2%.
fn cluster_obs_bench(mode: Mode) -> Bench {
    let sim = Rc::new(ClusterSim::new(cluster_config(mode)));
    let first = sim.run().total_result();
    Bench {
        name: "e2e/cluster-obs".to_string(),
        kind: Kind::EndToEnd,
        config: Some("cluster".to_string()),
        cpi: Some(first.cpi()),
        run: Box::new(move || {
            let mut buf = ignite_obs::TraceBuffer::new(1 << 18);
            let r = sim.run_obs(&mut buf).total_result();
            // Keep the buffer alive through the run; its length depends on
            // the trace and must not be optimized away.
            assert!(!buf.is_empty());
            (r.instructions, r.cycles)
        }),
    }
}

/// Streaming-workload bench: the same reduced fleet serving an MMPP
/// shaped source pulled lazily through `run_source` (source
/// construction included — it is part of the streaming arrival path).
/// Work units are *invocations*, so `mips` reads as millions of
/// invocations per wall-second and `cpi` as simulated cycles per
/// invocation.
fn cluster_traffic_bench(mode: Mode) -> Bench {
    let cfg = cluster_config(mode);
    let spec = ignite_traffic::TrafficSpec::parse("mmpp:mults=1/6,dwells=300000/60000")
        .expect("pinned mmpp spec parses");
    let suite = Suite::paper_suite_scaled(cfg.scale);
    let first = {
        let mut source = spec.build(&cfg.arrival, &suite).expect("pinned mmpp spec builds");
        ClusterSim::new(cfg.clone()).run_source(&mut *source)
    };
    let cycles_per_invocation =
        first.total_result().cycles as f64 / first.workload.arrivals.max(1) as f64;
    Bench {
        name: "e2e/cluster-traffic".to_string(),
        kind: Kind::EndToEnd,
        config: Some("cluster".to_string()),
        cpi: Some(cycles_per_invocation),
        run: Box::new(move || {
            let mut source = spec.build(&cfg.arrival, &suite).expect("pinned mmpp spec builds");
            let out = ClusterSim::new(cfg.clone()).run_source(&mut *source);
            (out.workload.arrivals, out.total_result().cycles)
        }),
    }
}

/// Memoized streaming bench: exactly the `e2e/cluster-traffic` MMPP
/// burst workload, run through a shared [`MemoCache`]. The warmup run
/// populates the cache, so every measured rep replays entirely from
/// hits — its `mips` (millions of invocations per wall-second, same
/// units as `e2e/cluster-traffic`) over the traffic bench's is the
/// steady-state memoization speedup on a recurrence-heavy burst.
fn cluster_memo_bench(mode: Mode) -> Bench {
    let cfg = cluster_config(mode);
    let spec = ignite_traffic::TrafficSpec::parse("mmpp:mults=1/6,dwells=300000/60000")
        .expect("pinned mmpp spec parses");
    let suite = Suite::paper_suite_scaled(cfg.scale);
    let cache = Rc::new(MemoCache::default());
    let first = {
        let mut source = spec.build(&cfg.arrival, &suite).expect("pinned mmpp spec builds");
        ClusterSim::new(cfg.clone()).run_source_memo_obs(
            &mut *source,
            &mut ignite_obs::NullSink,
            &cache,
        )
    };
    let cycles_per_invocation =
        first.total_result().cycles as f64 / first.workload.arrivals.max(1) as f64;
    Bench {
        name: "e2e/cluster-memo".to_string(),
        kind: Kind::EndToEnd,
        config: Some("cluster".to_string()),
        cpi: Some(cycles_per_invocation),
        run: Box::new(move || {
            let mut source = spec.build(&cfg.arrival, &suite).expect("pinned mmpp spec builds");
            let out = ClusterSim::new(cfg.clone()).run_source_memo_obs(
                &mut *source,
                &mut ignite_obs::NullSink,
                &cache,
            );
            let stats = out.memo.expect("memoized run carries counters");
            assert_eq!(stats.misses, 0, "warmed reps must replay entirely from hits");
            (out.workload.arrivals, out.total_result().cycles)
        }),
    }
}

/// Controlled streaming bench: the `e2e/cluster-traffic` MMPP burst
/// workload with the default online policy controller in the loop
/// (fresh per rep — its decision state is part of the measured work).
/// Its `mips` (millions of invocations per wall-second) against
/// `e2e/cluster-traffic`'s is the decision-path overhead of the
/// per-completion `OnlineScope` fold plus epoch-boundary actuation.
fn cluster_control_bench(mode: Mode) -> Bench {
    let cfg = cluster_config(mode);
    let spec = ignite_traffic::TrafficSpec::parse("mmpp:mults=1/6,dwells=300000/60000")
        .expect("pinned mmpp spec parses");
    let suite = Suite::paper_suite_scaled(cfg.scale);
    let controlled = move |cfg: &ClusterConfig| {
        let mut source = spec.build(&cfg.arrival, &suite).expect("pinned mmpp spec builds");
        let mut controller = ignite_control::Controller::new(
            ignite_control::ControllerSpec::parse("default").expect("default spec parses"),
        );
        ClusterSim::new(cfg.clone()).run_source_policy_obs(
            &mut *source,
            &mut ignite_obs::NullSink,
            &mut controller,
        )
    };
    let first = controlled(&cfg);
    assert!(first.controller.is_some(), "controlled bench must carry stats");
    let cycles_per_invocation =
        first.total_result().cycles as f64 / first.workload.arrivals.max(1) as f64;
    Bench {
        name: "e2e/cluster-control".to_string(),
        kind: Kind::EndToEnd,
        config: Some("cluster".to_string()),
        cpi: Some(cycles_per_invocation),
        run: Box::new(move || {
            let out = controlled(&cfg);
            (out.workload.arrivals, out.total_result().cycles)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_bench;

    #[test]
    fn e2e_benches_cover_every_config() {
        let benches = e2e_benches(Mode::Quick);
        assert_eq!(
            benches.len(),
            configs().len() + 5,
            "per-config benches plus e2e/cluster, e2e/cluster-obs, e2e/cluster-traffic, \
             e2e/cluster-memo, and e2e/cluster-control"
        );
        assert!(benches.iter().any(|b| b.name == "e2e/cluster"));
        assert!(benches.iter().any(|b| b.name == "e2e/cluster-obs"));
        assert!(benches.iter().any(|b| b.name == "e2e/cluster-traffic"));
        assert!(benches.iter().any(|b| b.name == "e2e/cluster-memo"));
        assert!(benches.iter().any(|b| b.name == "e2e/cluster-control"));
        for b in &benches {
            assert!(b.cpi.unwrap() > 0.0, "{}: degenerate CPI", b.name);
        }
    }

    #[test]
    fn e2e_work_is_deterministic() {
        let mut benches = e2e_benches(Mode::Quick);
        let b = &mut benches[0];
        let r = run_bench(b, 0, 2);
        assert!(r.instructions > 0);
        assert!(r.mips > 0.0);
    }
}
