//! Reduced-scale end-to-end benches: one per front-end configuration.
//!
//! Each bench simulates the first paper-suite function under one
//! configuration at reduced scale with [`RunOptions::quick`], reporting
//! simulated instructions per second of wall time (MIPS) and the config's
//! CPI. The simulation is deterministic, so instructions and CPI are
//! identical across reps and runs — only wall time varies.

use std::rc::Rc;

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;

use crate::{Bench, Kind, Mode};

/// Every front-end configuration the paper evaluates.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::nl(),
        FrontEndConfig::jukebox(),
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ignite(),
        FrontEndConfig::ignite_tage(),
        FrontEndConfig::ideal(),
    ]
}

/// Workload scale (fraction of paper scale) for each mode.
pub fn scale(mode: Mode) -> f64 {
    match mode {
        Mode::Quick => 0.06,
        Mode::Full => 0.25,
    }
}

/// Builds one end-to-end bench per front-end configuration.
///
/// The returned benches carry their (deterministic) CPI, computed from an
/// initial run that also serves as cache warmup.
pub fn e2e_benches(mode: Mode) -> Vec<Bench> {
    let suite = Suite::paper_suite_scaled(scale(mode));
    let f = Rc::new(PreparedFunction::from_suite(&suite.functions()[0], 0));
    let uarch = Rc::new(UarchConfig::ice_lake_like());
    let opts = RunOptions::quick();
    configs()
        .into_iter()
        .map(|config| {
            let first = run_function(&uarch, &config, &f, opts);
            let name = format!("e2e/{}", config.name);
            let config_name = config.name.clone();
            let f = Rc::clone(&f);
            let uarch = Rc::clone(&uarch);
            Bench {
                name,
                kind: Kind::EndToEnd,
                config: Some(config_name),
                cpi: Some(first.cpi()),
                run: Box::new(move || {
                    let r = run_function(&uarch, &config, &f, opts);
                    (r.instructions, r.cycles)
                }),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_bench;

    #[test]
    fn e2e_benches_cover_every_config() {
        let benches = e2e_benches(Mode::Quick);
        assert_eq!(benches.len(), configs().len());
        for b in &benches {
            assert!(b.cpi.unwrap() > 0.0, "{}: degenerate CPI", b.name);
        }
    }

    #[test]
    fn e2e_work_is_deterministic() {
        let mut benches = e2e_benches(Mode::Quick);
        let b = &mut benches[0];
        let r = run_bench(b, 0, 2);
        assert!(r.instructions > 0);
        assert!(r.mips > 0.0);
    }
}
