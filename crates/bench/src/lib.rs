#![warn(missing_docs)]
//! Offline, dependency-free benchmark harness for the Ignite simulator.
//!
//! Replaces the old Criterion benches (which needed crates.io access) with
//! a plain binary the workspace can always build:
//!
//! ```text
//! cargo run --release -p ignite-bench            # full run
//! cargo run --release -p ignite-bench -- --quick # CI smoke run
//! ```
//!
//! Two bench families are timed (see [`kernels`] and [`e2e`]):
//!
//! * **micro** — the hot data structures behind every simulation: L1-I and
//!   hierarchy lookups, BTB associative search, TAGE/bimodal prediction,
//!   the Ignite metadata codec, and the trace walker.
//! * **e2e** — reduced-scale end-to-end runs of each front-end
//!   configuration, reporting simulated MIPS and CPI.
//!
//! Each bench runs `warmup + reps` times; the median and the median
//! absolute deviation (MAD) of the per-rep wall time summarize it. Results
//! are written as machine-readable JSON (`BENCH_ignite.json`) with the
//! schema: name, instructions, wall_ns, MIPS, and per-config CPI. When a
//! committed baseline JSON is supplied, per-bench speedups are recorded
//! and micro-kernel regressions beyond 25% fail the run.

pub mod e2e;
pub mod json;
pub mod kernels;

use std::time::Instant;

/// How much work a bench run does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CI smoke scale: small loops, few reps.
    Quick,
    /// Default scale: larger loops, more reps for stabler medians.
    Full,
}

impl Mode {
    /// The mode's name as written into the report.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Quick => "quick",
            Mode::Full => "full",
        }
    }
}

/// Bench family, for reporting and for the regression gate (only `micro`
/// kernels gate CI; e2e timings are informational).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Data-structure micro-kernel.
    Micro,
    /// Reduced-scale end-to-end simulation of one front-end config.
    EndToEnd,
}

impl Kind {
    /// The kind's name as written into the report.
    pub fn name(self) -> &'static str {
        match self {
            Kind::Micro => "micro",
            Kind::EndToEnd => "e2e",
        }
    }
}

/// One runnable benchmark: a name, a work-unit count per rep, and the
/// closure that performs the work (returning a value to keep the
/// optimizer honest; it is `black_box`ed by [`run_bench`]).
pub struct Bench {
    /// Stable identifier, e.g. `micro/btb/lookup_insert_mix`.
    pub name: String,
    /// Bench family.
    pub kind: Kind,
    /// Front-end config name for e2e benches.
    pub config: Option<String>,
    /// Simulated CPI, for e2e benches (deterministic, so known up front).
    pub cpi: Option<f64>,
    /// The benchmark body. Returns (work units done, value to black-box).
    pub run: Box<dyn FnMut() -> (u64, u64)>,
}

/// Median and median-absolute-deviation of per-rep wall times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stats {
    /// Median wall time per rep, nanoseconds.
    pub median_ns: u64,
    /// Median absolute deviation around the median, nanoseconds.
    pub mad_ns: u64,
}

/// Computes [`Stats`] over raw per-rep nanosecond timings.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn stats(samples: &[u64]) -> Stats {
    assert!(!samples.is_empty(), "no samples");
    let median_ns = median(samples.to_vec());
    let deviations: Vec<u64> = samples.iter().map(|&s| s.abs_diff(median_ns)).collect();
    Stats { median_ns, mad_ns: median(deviations) }
}

fn median(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        // Midpoint of the two central samples, rounding down.
        xs[n / 2 - 1].midpoint(xs[n / 2])
    }
}

/// Result of one benchmark, plus optional baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Stable identifier.
    pub name: String,
    /// Bench family.
    pub kind: Kind,
    /// Front-end config name for e2e benches.
    pub config: Option<String>,
    /// Work units (instructions / elements) per rep.
    pub instructions: u64,
    /// Median wall time per rep, nanoseconds.
    pub wall_ns: u64,
    /// MAD of wall time, nanoseconds.
    pub mad_ns: u64,
    /// Millions of work units per second of wall time.
    pub mips: f64,
    /// Simulated cycles per instruction (e2e benches only).
    pub cpi: Option<f64>,
    /// Baseline median wall time when a baseline report was supplied.
    pub baseline_wall_ns: Option<u64>,
    /// `baseline_wall_ns / wall_ns` when a baseline report was supplied
    /// (>1 means this run is faster than the baseline).
    pub speedup: Option<f64>,
}

/// Runs one benchmark: `warmup` discarded reps, then `reps` timed reps.
///
/// # Panics
///
/// Panics if `reps` is zero or the bench reports inconsistent work counts
/// across reps (work must be deterministic for baselines to compare).
pub fn run_bench(bench: &mut Bench, warmup: u32, reps: u32) -> BenchResult {
    assert!(reps > 0, "need at least one timed rep");
    for _ in 0..warmup {
        std::hint::black_box((bench.run)());
    }
    let mut samples = Vec::with_capacity(reps as usize);
    let mut work = None;
    for _ in 0..reps {
        let start = Instant::now();
        let (done, sink) = (bench.run)();
        let elapsed = start.elapsed();
        std::hint::black_box(sink);
        let prev = *work.get_or_insert(done);
        assert_eq!(prev, done, "{}: work count changed between reps", bench.name);
        samples.push(elapsed.as_nanos().min(u64::MAX as u128) as u64);
    }
    let work = work.expect("at least one rep ran");
    let s = stats(&samples);
    BenchResult {
        name: bench.name.clone(),
        kind: bench.kind,
        config: bench.config.clone(),
        instructions: work,
        wall_ns: s.median_ns,
        mad_ns: s.mad_ns,
        mips: work as f64 * 1000.0 / s.median_ns.max(1) as f64,
        cpi: bench.cpi,
        baseline_wall_ns: None,
        speedup: None,
    }
}

/// A full bench report: what `BENCH_ignite.json` serializes.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Mode the run used (`quick` or `full`).
    pub mode: String,
    /// All bench results, in execution order.
    pub results: Vec<BenchResult>,
}

/// A micro-kernel that got slower than the regression gate allows.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The offending bench.
    pub name: String,
    /// Baseline median, nanoseconds.
    pub baseline_ns: u64,
    /// Current median, nanoseconds.
    pub current_ns: u64,
}

/// Micro-kernels may regress by at most this factor vs. the baseline.
pub const REGRESSION_GATE: f64 = 1.25;

impl Report {
    /// Schema identifier written into the JSON.
    pub const SCHEMA: &'static str = "ignite-bench-v1";

    /// Annotates results with speedups vs. `baseline` (matched by name,
    /// comparable only when work counts agree) and returns every micro
    /// kernel that regressed beyond [`REGRESSION_GATE`].
    pub fn apply_baseline(&mut self, baseline: &Report) -> Vec<Regression> {
        let mut regressions = Vec::new();
        for r in &mut self.results {
            let Some(b) = baseline.results.iter().find(|b| b.name == r.name) else {
                continue;
            };
            if b.instructions != r.instructions {
                continue; // different scale; not comparable
            }
            r.baseline_wall_ns = Some(b.wall_ns);
            r.speedup = Some(b.wall_ns as f64 / r.wall_ns.max(1) as f64);
            if r.kind == Kind::Micro && r.wall_ns as f64 > b.wall_ns as f64 * REGRESSION_GATE {
                regressions.push(Regression {
                    name: r.name.clone(),
                    baseline_ns: b.wall_ns,
                    current_ns: r.wall_ns,
                });
            }
        }
        regressions
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": {},", json::escape(Self::SCHEMA));
        let _ = writeln!(out, "  \"mode\": {},", json::escape(&self.mode));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": {},", json::escape(&r.name));
            let _ = writeln!(out, "      \"kind\": {},", json::escape(r.kind.name()));
            if let Some(c) = &r.config {
                let _ = writeln!(out, "      \"config\": {},", json::escape(c));
            }
            let _ = writeln!(out, "      \"instructions\": {},", r.instructions);
            let _ = writeln!(out, "      \"wall_ns\": {},", r.wall_ns);
            let _ = writeln!(out, "      \"mad_ns\": {},", r.mad_ns);
            if let Some(cpi) = r.cpi {
                let _ = writeln!(out, "      \"cpi\": {},", json::number(cpi));
            }
            if let (Some(b), Some(s)) = (r.baseline_wall_ns, r.speedup) {
                let _ = writeln!(out, "      \"baseline_wall_ns\": {},", b);
                let _ = writeln!(out, "      \"speedup\": {},", json::number(s));
            }
            let _ = writeln!(out, "      \"mips\": {}", json::number(r.mips));
            out.push_str(if i + 1 == self.results.len() { "    }\n" } else { "    },\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report previously written by [`Report::to_json`].
    ///
    /// Unknown fields are ignored so older/newer reports stay loadable.
    pub fn from_json(text: &str) -> Result<Report, String> {
        let v = json::parse(text)?;
        let obj = v.as_object().ok_or("report is not a JSON object")?;
        let mode =
            json::get(obj, "mode").and_then(json::Value::as_str).unwrap_or("unknown").to_string();
        let mut results = Vec::new();
        let rows = json::get(obj, "results")
            .and_then(json::Value::as_array)
            .ok_or("report has no results array")?;
        for row in rows {
            let row = row.as_object().ok_or("result row is not an object")?;
            let name = json::get(row, "name")
                .and_then(json::Value::as_str)
                .ok_or("result row lacks a name")?
                .to_string();
            let kind = match json::get(row, "kind").and_then(json::Value::as_str) {
                Some("e2e") => Kind::EndToEnd,
                _ => Kind::Micro,
            };
            let num = |key: &str| json::get(row, key).and_then(json::Value::as_f64).unwrap_or(0.0);
            results.push(BenchResult {
                name,
                kind,
                config: json::get(row, "config").and_then(json::Value::as_str).map(str::to_string),
                instructions: num("instructions") as u64,
                wall_ns: num("wall_ns") as u64,
                mad_ns: num("mad_ns") as u64,
                mips: num("mips"),
                cpi: json::get(row, "cpi").and_then(json::Value::as_f64),
                baseline_wall_ns: None,
                speedup: None,
            });
        }
        Ok(Report { mode, results })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad() {
        let s = stats(&[10, 30, 20]);
        assert_eq!(s.median_ns, 20);
        assert_eq!(s.mad_ns, 10);
        let s = stats(&[10, 20, 30, 100]);
        assert_eq!(s.median_ns, 25);
        assert_eq!(s.mad_ns, 10);
        let s = stats(&[7]);
        assert_eq!(s.median_ns, 7);
        assert_eq!(s.mad_ns, 0);
    }

    #[test]
    fn run_bench_counts_work() {
        let mut bench = Bench {
            name: "micro/test/noop".into(),
            kind: Kind::Micro,
            config: None,
            cpi: None,
            run: Box::new(|| (1000, 42)),
        };
        let r = run_bench(&mut bench, 1, 3);
        assert_eq!(r.instructions, 1000);
        assert!(r.mips > 0.0);
    }

    #[test]
    fn report_json_roundtrip() {
        let report = Report {
            mode: "quick".into(),
            results: vec![
                BenchResult {
                    name: "micro/a".into(),
                    kind: Kind::Micro,
                    config: None,
                    instructions: 1024,
                    wall_ns: 5000,
                    mad_ns: 12,
                    mips: 204.8,
                    cpi: None,
                    baseline_wall_ns: None,
                    speedup: None,
                },
                BenchResult {
                    name: "e2e/nl".into(),
                    kind: Kind::EndToEnd,
                    config: Some("nl".into()),
                    instructions: 250_000,
                    wall_ns: 1_000_000,
                    mad_ns: 900,
                    mips: 250.0,
                    cpi: Some(1.625),
                    baseline_wall_ns: None,
                    speedup: None,
                },
            ],
        };
        let parsed = Report::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn baseline_regression_gate() {
        let mk = |wall_ns| BenchResult {
            name: "micro/a".into(),
            kind: Kind::Micro,
            config: None,
            instructions: 1024,
            wall_ns,
            mad_ns: 0,
            mips: 1.0,
            cpi: None,
            baseline_wall_ns: None,
            speedup: None,
        };
        let baseline = Report { mode: "quick".into(), results: vec![mk(1000)] };
        let mut ok = Report { mode: "quick".into(), results: vec![mk(1200)] };
        assert!(ok.apply_baseline(&baseline).is_empty());
        assert_eq!(ok.results[0].baseline_wall_ns, Some(1000));
        let mut slow = Report { mode: "quick".into(), results: vec![mk(1300)] };
        let regs = slow.apply_baseline(&baseline);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].baseline_ns, 1000);
    }
}
