//! Benchmark-only crate; see `benches/` for the Criterion harnesses:
//!
//! * `micro` — microbenchmarks of the core data structures (caches, BTB,
//!   TAGE, metadata codec, trace walker).
//! * `figures` — one benchmark per reproduced paper table/figure, running
//!   the corresponding experiment at reduced scale and printing its rows.
