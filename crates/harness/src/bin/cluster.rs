//! `cluster`: serve interleaved serverless traffic over the front-end
//! model and emit a versioned JSON report.
//!
//! ```text
//! cargo run --release -p ignite-harness --bin cluster -- [OPTIONS]
//!
//! OPTIONS:
//!   --cores N          simulated cores per node (default 4)
//!   --nodes N          cluster nodes, each with its own cores, store
//!                      and failure domain (default 1)
//!   --scheduler P      placement policy: fifo, least-loaded, random[:N]
//!                      (power-of-N-choices, default N=2), affinity
//!                      (route to the node holding the function's Ignite
//!                      metadata) (default fifo)
//!   --keepalive P      pre-warm retention: none, fixed:CYCLES, or
//!                      hybrid[:CYCLES] (per-function idle-window
//!                      histogram, p99) (default none)
//!   --fe NAME          front-end config: nl, boomerang, jukebox,
//!                      boomerang-jukebox, confluence, ignite,
//!                      ignite-tage, ideal (default ignite)
//!   --scale F          suite scale, 1.0 = paper (default 0.02)
//!   --seed S           arrival seed (default 42)
//!   --rate R           arrivals per million cycles (default 60)
//!   --zipf S           Zipf popularity exponent (default 1.0)
//!   --horizon CYCLES   arrival horizon (default 4000000)
//!   --capacity BYTES   metadata store capacity (default 262144)
//!   --policy P         eviction: lru, size-aware, pin-hot (default lru)
//!   --memo             memoize invocation results across the run (and
//!                      across sweep points): a bounded, sharded cache
//!                      keyed by (function, quantized context, config
//!                      fingerprint, machine-state digest). Output is
//!                      byte-identical to a non-memoized run; the report
//!                      gains a 'memo' counter section and the summary a
//!                      memoization_cycles_saved figure
//!   --jobs N           sweep worker threads (default 1; the sweep
//!                      output is byte-identical at any job count)
//!   --threads N        alias for --jobs
//!   --sweep B1,B2,...  run a store-capacity sweep, print a table
//!   --trace FILE       replay an ignite-trace-v1 file
//!   --traffic SPEC     drive the run from a shaped workload instead of
//!                      the stationary Poisson process:
//!                        azure:PATH[,cpm=N]  Azure-style CSV import
//!                        mmpp[:mults=A/B,dwells=X/Y]  Markov-modulated
//!                        diurnal[:period=P,amp=A]     triangle wave
//!                        burst[:every=E,width=W,mult=M]  burst trains
//!                      Synthetic kinds stream lazily (O(1) arrival
//!                      state) and use --rate/--zipf/--seed/--horizon as
//!                      the base process. The report gains a validated
//!                      'workload' fingerprint section.
//!   --stats            print workload statistics (invocation count,
//!                      per-function shares, inter-arrival CV², horizon)
//!                      for the configured workload and exit without
//!                      simulating
//!   --emit-trace FILE  write the generated trace and exit
//!   --out FILE         write the JSON report here (default: stdout)
//!   --validate FILE    validate an existing report and exit
//!   --trace-out FILE     write a Chrome trace (Perfetto-loadable) of the
//!                        run; one track per core plus queue/store tracks
//!   --metrics-out FILE   write Prometheus-style metrics; with --sweep,
//!                        every point appears under a store_capacity label
//!   --validate-trace FILE  validate an existing Chrome trace and exit
//!   --scope-out FILE     write an ignite-scope-v1 causal latency
//!                        attribution report for the run
//!   --slo SPEC           enable burn-rate SLO alerting; SPEC is 'default'
//!                        or comma-separated k=v pairs: threshold=CYCLES,
//!                        objective=PCT, fast=CYCLES, slow=CYCLES,
//!                        burn=MULT, min=N. Alerts land on their own
//!                        trace track and in the scope report.
//!   --controller SPEC    close the loop: fold the live obs stream into
//!                        an online scope window and actuate policy at
//!                        epoch boundaries (replay on/off per function,
//!                        store admission, active cores, keep-alive
//!                        windows). SPEC is 'default' or comma-separated
//!                        k=v pairs: epoch=CYCLES, slo=CYCLES,
//!                        min-samples=N, probe=EPOCHS, min-cores=N.
//!                        Every decision lands in the report's
//!                        'controller' section, the ignite_ctrl_*
//!                        metric family and (with --trace-out) its own
//!                        trace track. Conflicts with --memo and
//!                        --sweep.
//!   --chaos SPEC         enable failure injection; SPEC is 'default',
//!                        'none', or comma-separated k=v pairs:
//!                        crash-mtbf, crash-repair, straggle-mtbf,
//!                        straggle-dur, straggle-factor, store-mtbf,
//!                        store-dur, corrupt-ppm, loss-ppm, drop-ppm.
//!                        The report switches to ignite-cluster-v2.
//!   --chaos-seed S       failure-schedule seed, independent of --seed
//!                        (default 1; re-seeding chaos never perturbs
//!                        the arrival stream)
//!   --retry SPEC         recovery policy as k=v pairs: attempts, base,
//!                        mult, max, jitter-ppm, deadline,
//!                        breaker-threshold, breaker-cooldown
//! ```

use std::process::ExitCode;

use ignite_chaos::{parse_chaos_spec, parse_retry_spec, ChaosPlan};
use ignite_cluster::{
    metrics_for, record_metrics, record_trace_health, sweep_capacities, sweep_capacities_memo,
    validate_trace, ClusterConfig, ClusterOutcome, ClusterReport, ClusterSim, KeepAliveKind,
    MemoCache, ObsSummary, SchedulerKind,
};
use ignite_control::{Controller, ControllerSpec};
use ignite_core::EvictionPolicy;
use ignite_engine::config::FrontEndConfig;
use ignite_obs::{
    to_chrome_json, ChromeOptions, EventSink, MetricsRegistry, NullSink, TraceBuffer,
};
use ignite_scope::{
    record_scope_metrics, record_slo_metrics, ScopeAnalyzer, ScopeReport, SloConfig,
};
use ignite_traffic::{materialize, FingerprintAccum, TrafficSpec};
use ignite_workloads::arrival::{ArrivalSource, Trace, TraceSource};
use ignite_workloads::suite::Suite;

/// Ring capacity for `--trace-out`: comfortably above the event count of
/// the default configuration; overflow drops oldest events and is
/// reported in the export's `dropped_events`.
const TRACE_BUFFER_EVENTS: usize = 1 << 18;

struct Args {
    cfg: ClusterConfig,
    memo: bool,
    threads: usize,
    sweep: Option<Vec<usize>>,
    trace: Option<String>,
    traffic: Option<String>,
    stats: bool,
    emit_trace: Option<String>,
    out: Option<String>,
    validate: Option<String>,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    validate_trace: Option<String>,
    scope_out: Option<String>,
    slo: Option<SloConfig>,
    controller: Option<String>,
    chaos: Option<ChaosPlan>,
    chaos_seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: cluster [--cores N] [--nodes N] [--scheduler P] [--keepalive P] \
         [--fe NAME] [--scale F] [--seed S] [--rate R] \
         [--zipf S] [--horizon CYCLES] [--capacity BYTES] [--policy P] [--memo] \
         [--jobs N] [--threads N] \
         [--sweep B1,B2,...] [--trace FILE] [--traffic SPEC] [--stats] \
         [--emit-trace FILE] [--out FILE] \
         [--validate FILE] [--trace-out FILE] [--metrics-out FILE] \
         [--validate-trace FILE] [--scope-out FILE] [--slo SPEC] \
         [--controller SPEC] [--chaos SPEC] [--chaos-seed S] [--retry SPEC]"
    );
    std::process::exit(2);
}

/// Parses an `--slo` spec: `default`, or comma-separated `k=v` pairs
/// over [`SloConfig::default`]. `objective` is a percent (95 -> 950
/// milli) and `burn` a multiplier (2 -> 2000 milli); everything else is
/// taken verbatim.
fn parse_slo(spec: &str) -> SloConfig {
    let mut slo = SloConfig::default();
    if spec == "default" {
        return slo;
    }
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let Some((k, v)) = part.split_once('=') else {
            eprintln!("cluster: --slo expects k=v pairs, got '{part}'");
            usage();
        };
        match k {
            "threshold" => slo.threshold_cycles = parse(v, "--slo threshold"),
            "objective" => {
                let pct: f64 = parse(v, "--slo objective");
                if !(0.0..100.0).contains(&pct) {
                    eprintln!("cluster: --slo objective must be in [0, 100), got {pct}");
                    usage();
                }
                slo.objective_milli = (pct * 10.0).round() as u32;
            }
            "fast" => slo.fast_window_cycles = parse(v, "--slo fast"),
            "slow" => slo.slow_window_cycles = parse(v, "--slo slow"),
            "burn" => {
                let mult: f64 = parse(v, "--slo burn");
                if !mult.is_finite() || mult <= 0.0 {
                    eprintln!("cluster: --slo burn must be positive, got {mult}");
                    usage();
                }
                slo.burn_milli = (mult * 1000.0).round() as u64;
            }
            "min" => slo.min_count = parse(v, "--slo min"),
            _ => {
                eprintln!("cluster: unknown --slo key '{k}'");
                usage();
            }
        }
    }
    slo
}

fn front_end(name: &str) -> Option<FrontEndConfig> {
    Some(match name {
        "nl" => FrontEndConfig::nl(),
        "boomerang" => FrontEndConfig::boomerang(),
        "jukebox" => FrontEndConfig::jukebox(),
        "boomerang-jukebox" => FrontEndConfig::boomerang_jukebox(),
        "confluence" => FrontEndConfig::confluence(),
        "ignite" => FrontEndConfig::ignite(),
        "ignite-tage" => FrontEndConfig::ignite_tage(),
        "ideal" => FrontEndConfig::ideal(),
        _ => return None,
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        cfg: ClusterConfig::default(),
        memo: false,
        // Single-threaded by default: the sweep output is byte-identical
        // at any job count, so parallelism is strictly opt-in speed.
        threads: 1,
        sweep: None,
        trace: None,
        traffic: None,
        stats: false,
        emit_trace: None,
        out: None,
        validate: None,
        trace_out: None,
        metrics_out: None,
        validate_trace: None,
        scope_out: None,
        slo: None,
        controller: None,
        chaos: None,
        chaos_seed: 1,
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| {
        it.next().unwrap_or_else(|| {
            eprintln!("cluster: {flag} needs a value");
            usage();
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cores" => args.cfg.cores = parse(&value(&mut it, "--cores"), "--cores"),
            "--nodes" => args.cfg.topology.nodes = parse(&value(&mut it, "--nodes"), "--nodes"),
            "--scheduler" => {
                let spec = value(&mut it, "--scheduler");
                args.cfg.topology.scheduler = SchedulerKind::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("cluster: --scheduler: {e}");
                    usage();
                });
            }
            "--keepalive" => {
                let spec = value(&mut it, "--keepalive");
                args.cfg.topology.keepalive = KeepAliveKind::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("cluster: --keepalive: {e}");
                    usage();
                });
            }
            "--fe" => {
                let name = value(&mut it, "--fe");
                args.cfg.fe = front_end(&name).unwrap_or_else(|| {
                    eprintln!("cluster: unknown front-end '{name}'");
                    usage();
                });
            }
            "--scale" => args.cfg.scale = parse(&value(&mut it, "--scale"), "--scale"),
            "--seed" => args.cfg.arrival.seed = parse(&value(&mut it, "--seed"), "--seed"),
            "--rate" => {
                args.cfg.arrival.rate_per_mcycle = parse(&value(&mut it, "--rate"), "--rate");
            }
            "--zipf" => args.cfg.arrival.zipf_s = parse(&value(&mut it, "--zipf"), "--zipf"),
            "--horizon" => {
                args.cfg.arrival.horizon_cycles = parse(&value(&mut it, "--horizon"), "--horizon");
            }
            "--capacity" => {
                args.cfg.store.capacity_bytes = parse(&value(&mut it, "--capacity"), "--capacity");
            }
            "--policy" => {
                let name = value(&mut it, "--policy");
                args.cfg.store.policy = EvictionPolicy::parse(&name).unwrap_or_else(|| {
                    eprintln!("cluster: unknown policy '{name}'");
                    usage();
                });
            }
            "--memo" => args.memo = true,
            "--jobs" => args.threads = parse(&value(&mut it, "--jobs"), "--jobs"),
            "--threads" => args.threads = parse(&value(&mut it, "--threads"), "--threads"),
            "--sweep" => {
                let list = value(&mut it, "--sweep");
                args.sweep = Some(list.split(',').map(|c| parse(c.trim(), "--sweep")).collect());
            }
            "--trace" => args.trace = Some(value(&mut it, "--trace")),
            "--traffic" => args.traffic = Some(value(&mut it, "--traffic")),
            "--stats" => args.stats = true,
            "--emit-trace" => args.emit_trace = Some(value(&mut it, "--emit-trace")),
            "--out" => args.out = Some(value(&mut it, "--out")),
            "--validate" => args.validate = Some(value(&mut it, "--validate")),
            "--trace-out" => args.trace_out = Some(value(&mut it, "--trace-out")),
            "--metrics-out" => args.metrics_out = Some(value(&mut it, "--metrics-out")),
            "--validate-trace" => {
                args.validate_trace = Some(value(&mut it, "--validate-trace"));
            }
            "--scope-out" => args.scope_out = Some(value(&mut it, "--scope-out")),
            "--slo" => args.slo = Some(parse_slo(&value(&mut it, "--slo"))),
            "--controller" => args.controller = Some(value(&mut it, "--controller")),
            "--chaos" => {
                let spec = value(&mut it, "--chaos");
                args.chaos = Some(parse_chaos_spec(&spec).unwrap_or_else(|e| {
                    eprintln!("cluster: --chaos: {e}");
                    usage();
                }));
            }
            "--chaos-seed" => {
                args.chaos_seed = parse(&value(&mut it, "--chaos-seed"), "--chaos-seed");
            }
            "--retry" => {
                let spec = value(&mut it, "--retry");
                args.cfg.retry = parse_retry_spec(&spec).unwrap_or_else(|e| {
                    eprintln!("cluster: --retry: {e}");
                    usage();
                });
            }
            _ => {
                eprintln!("cluster: unknown argument '{arg}'");
                usage();
            }
        }
    }
    args
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("cluster: bad value '{s}' for {flag}");
        usage();
    })
}

/// Builds the configured workload as a stream: the traffic spec, a
/// replayed trace file, or the built-in Poisson/Zipf process.
fn build_source<'a>(
    spec: &Option<TrafficSpec>,
    trace: &'a Option<Trace>,
    cfg: &ClusterConfig,
) -> Result<Box<dyn ArrivalSource + 'a>, String> {
    match (spec, trace) {
        (Some(spec), _) => {
            let suite = Suite::paper_suite_scaled(cfg.scale);
            spec.build(&cfg.arrival, &suite)
                .map(|s| s as Box<dyn ArrivalSource + 'a>)
                .map_err(|e| e.to_string())
        }
        (None, Some(t)) => Ok(Box::new(TraceSource::new(t))),
        (None, None) => Ok(Box::new(cfg.arrival.source())),
    }
}

fn main() -> ExitCode {
    let args = parse_args();

    if let Some(path) = &args.validate {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cluster: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match ClusterReport::validate(&text) {
            Ok(()) => {
                println!("{path}: valid cluster report");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cluster: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if let Some(path) = &args.validate_trace {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cluster: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match validate_trace(&text) {
            Ok(summary) => {
                println!(
                    "{path}: valid trace, {} events ({} dropped)",
                    summary.total_events(),
                    summary.dropped_events
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cluster: {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut cfg = args.cfg;
    cfg.arrival.functions = 20; // the full paper suite
    if let Some(plan) = args.chaos {
        // The failure schedule draws from its own seed: `--seed` owns
        // the arrival stream, `--chaos-seed` owns the chaos stream.
        cfg.chaos = Some(plan.seeded(args.chaos_seed));
    }
    if let Err(e) = cfg.validate() {
        eprintln!("cluster: invalid configuration: {e}");
        return ExitCode::FAILURE;
    }

    // A shaped workload replaces the arrival process wholesale, so it
    // conflicts with replaying a trace file and with the sweep (whose
    // points regenerate the built-in process).
    let traffic_spec = match &args.traffic {
        None => None,
        Some(raw) => {
            if args.trace.is_some() {
                eprintln!("cluster: --traffic and --trace both define the workload; pick one");
                return ExitCode::FAILURE;
            }
            if args.sweep.is_some() {
                eprintln!("cluster: --traffic is not supported with --sweep");
                return ExitCode::FAILURE;
            }
            match TrafficSpec::parse(raw) {
                Ok(spec) => {
                    cfg.traffic = Some(raw.clone());
                    Some(spec)
                }
                Err(e) => {
                    eprintln!("cluster: --traffic: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    // The controller mutates scheduling state (replay gates, admission,
    // active cores, keep-alive windows) as the run unfolds, so it is
    // incompatible with the memo cache (whose entries assume a static
    // policy across reruns) and with the sweep (which compares static
    // configurations by design).
    let mut controller = match &args.controller {
        None => None,
        Some(raw) => {
            if args.memo {
                eprintln!(
                    "cluster: --controller adapts policy online; the memo cache assumes a \
                     static policy across reruns. Pick one."
                );
                return ExitCode::FAILURE;
            }
            if args.sweep.is_some() {
                eprintln!("cluster: --controller is not supported with --sweep");
                return ExitCode::FAILURE;
            }
            match ControllerSpec::parse(raw) {
                Ok(spec) => {
                    cfg.controller = Some(raw.clone());
                    Some(Controller::new(spec))
                }
                Err(e) => {
                    eprintln!("cluster: --controller: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    let replay_trace = match &args.trace {
        None => None,
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cluster: cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match Trace::parse(&text) {
                Ok(trace) => Some(trace),
                Err(e) => {
                    eprintln!("cluster: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    if args.stats {
        let mut source = match build_source(&traffic_spec, &replay_trace, &cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cluster: --traffic: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut accum = FingerprintAccum::new(source.functions());
        while let Some(a) = source.next_arrival() {
            accum.observe(a);
        }
        let fp = accum.finish();
        println!(
            "{} invocations | horizon {} cycles | rate {:.2}/Mcycle | \
             interarrival cv2 {:.3} | zipf s_hat {:.3}",
            fp.arrivals, fp.horizon_cycles, fp.rate_per_mcycle, fp.interarrival_cv2, fp.zipf_s_hat
        );
        let suite = Suite::paper_suite_scaled(cfg.scale);
        let mut shares: Vec<(usize, u64)> =
            accum.counts().iter().copied().enumerate().filter(|&(_, c)| c > 0).collect();
        shares.sort_by_key(|&(i, c)| (std::cmp::Reverse(c), i));
        for (i, count) in shares {
            let abbr = suite.functions().get(i).map_or("?", |f| f.profile.abbr.as_str());
            println!(
                "{abbr:>8}  {count:>8}  {:.4}",
                if fp.arrivals == 0 { 0.0 } else { count as f64 / fp.arrivals as f64 }
            );
        }
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &args.emit_trace {
        // With --traffic the source is materialized into the same
        // ignite-trace-v1 format, so shaped workloads can be archived
        // and replayed through --trace like any other trace.
        let trace = match build_source(&traffic_spec, &replay_trace, &cfg) {
            Ok(mut s) => materialize(&mut *s),
            Err(e) => {
                eprintln!("cluster: --traffic: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(path, trace.to_text()) {
            eprintln!("cluster: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {} arrivals to {path}", trace.arrivals.len());
        return ExitCode::SUCCESS;
    }

    if let Some(capacities) = &args.sweep {
        if args.trace_out.is_some() {
            eprintln!("cluster: --trace-out traces a single run; not supported with --sweep");
            return ExitCode::FAILURE;
        }
        if args.scope_out.is_some() || args.slo.is_some() {
            eprintln!(
                "cluster: --scope-out/--slo analyze a single run; not supported with --sweep"
            );
            return ExitCode::FAILURE;
        }
        // Independent sweep points shard across threads; a panicking point
        // reports its failure without tearing down the rest.
        let results = if args.memo {
            // Sweep points share one cache: points differ only in store
            // capacity, so their dispatch schedules share long prefixes.
            let cache = MemoCache::default();
            sweep_capacities_memo(&cfg, capacities, args.threads, &cache)
        } else {
            sweep_capacities(&cfg, capacities, args.threads)
        };
        let mut metrics = args.metrics_out.as_ref().map(|_| MetricsRegistry::new());
        println!(
            "{:>12} {:>9} {:>10} {:>14} {:>14} {:>12}",
            "capacity", "hit_rate", "evictions", "mean_lat_cyc", "p95_lat_cyc", "peak_bytes"
        );
        let mut failures = 0;
        for (cap, r) in capacities.iter().zip(results) {
            match r {
                Ok(out) => {
                    println!(
                        "{:>12} {:>9.3} {:>10} {:>14.0} {:>14} {:>12}",
                        cap,
                        out.store.hit_rate(),
                        out.store.evictions,
                        out.mean_latency,
                        out.p95_latency,
                        out.peak_footprint_bytes
                    );
                    if let Some(reg) = &mut metrics {
                        let mut point = cfg.clone();
                        point.store.capacity_bytes = *cap;
                        record_metrics(reg, &point, &out, &[("store_capacity", &cap.to_string())]);
                    }
                }
                Err(f) => {
                    eprintln!("cluster: capacity {cap} failed: {f}");
                    failures += 1;
                }
            }
        }
        if let (Some(path), Some(reg)) = (&args.metrics_out, &metrics) {
            if let Err(e) = std::fs::write(path, reg.expose()) {
                eprintln!("cluster: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        return if failures == 0 { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let sim = ClusterSim::new(cfg.clone());

    // Four sink shapes, picked once: a plain run, a trace ring, the
    // scope analyzer over a discarded stream, or the analyzer teeing
    // into the ring (alerts land in the trace too).
    enum Sinks {
        Plain(NullSink),
        Trace(TraceBuffer),
        Scope(Box<ScopeAnalyzer<NullSink>>),
        Both(Box<ScopeAnalyzer<TraceBuffer>>),
    }
    let scope_on = args.scope_out.is_some() || args.slo.is_some();
    let with_slo = |an: ScopeAnalyzer<TraceBuffer>| match args.slo {
        Some(slo) => an.with_slo(slo),
        None => an,
    };
    let with_slo_null = |an: ScopeAnalyzer<NullSink>| match args.slo {
        Some(slo) => an.with_slo(slo),
        None => an,
    };
    let mut sinks = match (args.trace_out.is_some(), scope_on) {
        (false, false) => Sinks::Plain(NullSink),
        (true, false) => Sinks::Trace(TraceBuffer::new(TRACE_BUFFER_EVENTS)),
        (false, true) => Sinks::Scope(Box::new(with_slo_null(ScopeAnalyzer::new(NullSink)))),
        (true, true) => Sinks::Both(Box::new(with_slo(ScopeAnalyzer::new(TraceBuffer::new(
            TRACE_BUFFER_EVENTS,
        ))))),
    };

    fn run_one<S: EventSink>(
        sim: &ClusterSim,
        source: &mut dyn ArrivalSource,
        sink: &mut S,
        memo: Option<&MemoCache>,
        policy: Option<&mut Controller>,
    ) -> ClusterOutcome {
        match (memo, policy) {
            (Some(cache), None) => sim.run_source_memo_obs(source, sink, cache),
            (None, Some(ctrl)) => sim.run_source_policy_obs(source, sink, ctrl),
            (None, None) => sim.run_source_obs(source, sink),
            (Some(_), Some(_)) => unreachable!("--controller with --memo is rejected above"),
        }
    }
    let memo_cache = args.memo.then(MemoCache::default);
    let mut run_source =
        |sim: &ClusterSim, source: &mut dyn ArrivalSource, sinks: &mut Sinks| -> ClusterOutcome {
            let memo = memo_cache.as_ref();
            let policy = controller.as_mut();
            match sinks {
                Sinks::Plain(s) => run_one(sim, source, s, memo, policy),
                Sinks::Trace(s) => run_one(sim, source, s, memo, policy),
                Sinks::Scope(s) => run_one(sim, source, s.as_mut(), memo, policy),
                Sinks::Both(s) => run_one(sim, source, s.as_mut(), memo, policy),
            }
        };
    let mut source = match build_source(&traffic_spec, &replay_trace, &cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cluster: --traffic: {e}");
            return ExitCode::FAILURE;
        }
    };
    let outcome = run_source(&sim, &mut *source, &mut sinks);

    let abbrs: Vec<String> = outcome.functions.iter().map(|f| f.abbr.clone()).collect();
    // Borrow rather than consume the sinks: the analyzer's live burn-rate
    // trackers are still needed by the metrics exposition below.
    let scope_report = match &sinks {
        Sinks::Scope(an) => Some(ScopeReport::from_analyzer(an, &abbrs)),
        Sinks::Both(an) => Some(ScopeReport::from_analyzer(an, &abbrs)),
        _ => None,
    };
    let trace_buf: Option<&TraceBuffer> = match &sinks {
        Sinks::Trace(buf) => Some(buf),
        Sinks::Both(an) => Some(an.inner()),
        _ => None,
    };

    if let Some(report) = &scope_report {
        let text = report.to_json();
        if let Err(e) = ScopeReport::validate(&text) {
            eprintln!("cluster: emitted scope report failed validation: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "scope: {} invocations attributed | {} SLO violations | {} alert fires",
            report.totals.invocations, report.totals.violations, report.totals.alert_fires
        );
        if let Some(path) = &args.scope_out {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cluster: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
    }

    if let (Some(path), Some(buf)) = (&args.trace_out, trace_buf) {
        let names: Vec<String> = outcome.functions.iter().map(|f| f.abbr.clone()).collect();
        let text = to_chrome_json(
            buf,
            &ChromeOptions { process_name: "ignite-cluster", function_names: &names },
        );
        if let Err(e) = validate_trace(&text) {
            eprintln!("cluster: emitted trace failed validation: {e}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("cluster: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} ({} events, {} dropped)", buf.len(), buf.dropped());
    }
    if let Some(path) = &args.metrics_out {
        let mut reg = metrics_for(&cfg, &outcome);
        if let Some(buf) = trace_buf {
            record_trace_health(&mut reg, buf.len() as u64, buf.dropped());
        }
        if let Some(report) = &scope_report {
            record_scope_metrics(&mut reg, report);
        }
        match &sinks {
            Sinks::Scope(an) => record_slo_metrics(&mut reg, an, &abbrs),
            Sinks::Both(an) => record_slo_metrics(&mut reg, an, &abbrs),
            _ => {}
        }
        if let Err(e) = std::fs::write(path, reg.expose()) {
            eprintln!("cluster: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    let mut report = ClusterReport::new(cfg, outcome);
    if let Some(buf) = trace_buf {
        report = report
            .with_obs(ObsSummary { trace_events: buf.len() as u64, trace_dropped: buf.dropped() });
    }
    let text = report.to_json();
    if let Err(e) = ClusterReport::validate(&text) {
        eprintln!("cluster: emitted report failed validation: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "{} invocations over {} cycles | mean latency {:.0} cycles (p95 {}) | \
         store hit rate {:.3} | peak footprint {} bytes",
        report.outcome.invocations,
        report.outcome.makespan,
        report.outcome.mean_latency,
        report.outcome.p95_latency,
        report.outcome.store.hit_rate(),
        report.outcome.peak_footprint_bytes
    );
    if !report.config.topology.is_default() {
        for (i, nd) in report.outcome.nodes.iter().enumerate() {
            eprintln!(
                "node {i}: {} submitted = {} completed + {} dropped | util {:.3} | \
                 store hit rate {:.3} | wasted keep-alive {} cycles",
                nd.submitted,
                nd.completed,
                nd.dropped,
                nd.utilization,
                nd.store.hit_rate(),
                nd.wasted_keepalive_cycles
            );
        }
    }
    if let Some(m) = &report.outcome.memo {
        eprintln!(
            "memo: {} lookups = {} hits + {} misses | {} inserts | {} evictions | \
             {} stale reruns | memoization_cycles_saved={}",
            m.lookups, m.hits, m.misses, m.inserts, m.evictions, m.stale_reruns, m.cycles_saved
        );
    }
    if let Some(ctrl) = &report.outcome.controller {
        eprintln!(
            "controller: {} epochs | {} decisions | {} samples | replay denied {} | \
             store denied {} | final active cores {}",
            ctrl.epochs,
            ctrl.decisions.len(),
            ctrl.samples,
            ctrl.replay_denied,
            ctrl.store_denied,
            ctrl.final_active_cores
        );
    }
    if let Some(ch) = &report.outcome.chaos {
        eprintln!(
            "chaos: {} submitted = {} completed + {} dropped | {} retried to success | \
             {} degraded to cold | {} crash kills | breaker opened {}x",
            ch.submitted,
            ch.completed,
            ch.dropped_total(),
            ch.retried_to_success,
            ch.degraded_total(),
            ch.crash_kills,
            ch.breaker_opens
        );
    }
    match &args.out {
        None => print!("{text}"),
        Some(path) => {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("cluster: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
    }
    ExitCode::SUCCESS
}
