//! `scope`: validate and compare Ignite run artifacts.
//!
//! ```text
//! cargo run --release -p ignite-harness --bin scope -- COMMAND
//!
//! COMMANDS:
//!   validate FILE                 validate an ignite-scope-v1 report
//!   diff OLD NEW [OPTIONS]        compare two reports and flag
//!                                 significant regressions/improvements
//!
//! DIFF OPTIONS:
//!   --threshold PCT          relative significance threshold (default 5)
//!   --advisory               report but always exit 0 (for advisory CI gates)
//!   --allow-cross-workload   compare despite mismatched workload fingerprints
//! ```
//!
//! `diff` auto-detects each input by schema tag: `ignite-cluster-v1`
//! reports, `ignite-scope-v1` reports, or `ignite-bench-v1` benchmark
//! files. Pass two files of the same schema; only metrics named in
//! both are compared. Exit status is 1 when significant regressions
//! were found and `--advisory` was not given.
//!
//! When both inputs carry workload fingerprints (reports produced with
//! `cluster --traffic`), their identities must match: a latency diff
//! between runs driven by different traffic shapes is meaningless.
//! Mismatches — including one fingerprinted report against one without —
//! are refused with exit 1. `--advisory` does *not* bypass the refusal
//! (it only downgrades regressions); pass `--allow-cross-workload` to
//! compare anyway.

use std::process::ExitCode;

use ignite_scope::{diff, load_samples, workload_identity, ScopeReport};

fn usage() -> ! {
    eprintln!(
        "usage: scope validate FILE\n       scope diff OLD NEW [--threshold PCT] [--advisory] [--allow-cross-workload]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("scope: cannot read {path}: {e}");
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("validate") => {
            let [_, path] = argv.as_slice() else { usage() };
            let text = match read(path) {
                Ok(t) => t,
                Err(code) => return code,
            };
            match ScopeReport::validate(&text) {
                Ok(()) => {
                    println!("{path}: valid {}", ignite_scope::SCOPE_SCHEMA);
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("scope: {path}: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("diff") => {
            let rest = &argv[1..];
            if rest.len() < 2 {
                usage();
            }
            let (old_path, new_path) = (&rest[0], &rest[1]);
            let mut threshold = 5.0f64;
            let mut advisory = false;
            let mut allow_cross_workload = false;
            let mut it = rest[2..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--threshold" => {
                        let v = it.next().unwrap_or_else(|| {
                            eprintln!("scope: --threshold needs a value");
                            usage();
                        });
                        threshold = v.parse().unwrap_or_else(|_| {
                            eprintln!("scope: bad threshold '{v}'");
                            usage();
                        });
                    }
                    "--advisory" => advisory = true,
                    "--allow-cross-workload" => allow_cross_workload = true,
                    other => {
                        eprintln!("scope: unknown argument '{other}'");
                        usage();
                    }
                }
            }
            let (old_text, new_text) = match (read(old_path), read(new_path)) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(code), _) | (_, Err(code)) => return code,
            };
            let (old_id, new_id) = (workload_identity(&old_text), workload_identity(&new_text));
            if old_id != new_id && !allow_cross_workload {
                let show = |id: &Option<String>| id.clone().unwrap_or_else(|| "(none)".into());
                eprintln!(
                    "scope: workload fingerprints differ; refusing to compare\n  {old_path}: {}\n  {new_path}: {}\npass --allow-cross-workload to compare anyway",
                    show(&old_id),
                    show(&new_id)
                );
                return ExitCode::FAILURE;
            }
            let old = match load_samples(&old_text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("scope: {old_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let new = match load_samples(&new_text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("scope: {new_path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let report = diff(&old, &new, threshold);
            print!("{}", report.to_text());
            if report.regressions() > 0 && !advisory {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
