//! Ablation sweeps over Ignite's design parameters (DESIGN.md §3).
//!
//! These go beyond the paper's figures to quantify the design choices its
//! text motivates: delta widths (§4.1, whose two width mentions disagree),
//! the metadata budget (§5.3: 120 KiB), the replay throttle threshold
//! (§5.3: 1 K), the BTB size (§5.3: 5 K Ice Lake vs 12 K Sapphire Rapids,
//! "overall trends ... not affected"), cross-invocation divergence (§4.2),
//! and Ignite stacked on Boomerang instead of FDP.
//!
//! The `faults` sweep additionally injects metadata faults (bit flips and
//! stale entries) at increasing rates, demonstrating that hardened decode
//! degrades Ignite gracefully toward its record-only floor instead of
//! crashing or mis-simulating.
//!
//! ```text
//! sweep [--scale F] [SWEEPS...]
//! sweeps: codec budget throttle btb-size divergence host loop ittage
//!         faults | all
//! ```

use ignite_core::codec::CodecConfig;
use ignite_core::FaultPlan;
use ignite_engine::config::FrontEndConfig;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_harness::Harness;
use ignite_uarch::btb::BtbConfig;
use ignite_uarch::UarchConfig;

fn header(title: &str) {
    println!("\n## {title}\n");
}

/// Mean speedup of `fe` over NL across the suite.
fn mean_speedup(
    h: &Harness,
    fe: &FrontEndConfig,
    baseline: &[ignite_engine::InvocationResult],
) -> f64 {
    let results = h.run_config(fe);
    baseline.iter().zip(&results).map(|(b, r)| b.cpi() / r.cpi()).sum::<f64>()
        / results.len() as f64
}

fn sweep_codec(h: &Harness) {
    header("Codec delta widths (bits source/target; §4.1 vs §5.3 disagree)");
    // Record real metadata by running one function, then re-encode the
    // decoded stream under each width pair. The recorded region is read
    // back through the OS model, exactly as replay would see it.
    let f = &h.functions()[0];
    let mut machine = ignite_engine::machine::Machine::new(&h.uarch, &FrontEndConfig::ignite());
    ignite_engine::sim::run_invocation(&mut machine, f, 0);
    let reference = machine
        .ignite
        .as_ref()
        .expect("ignite")
        .os()
        .metadata(f.container)
        .expect("recording stored a metadata region")
        .clone();
    let entries: Vec<_> = reference.decode().collect();
    println!("{:>6} {:>6} {:>12} {:>12} {:>10}", "src", "tgt", "bytes", "bits/entry", "fallback%");
    for (src, tgt) in [(7, 21), (9, 21), (13, 13), (21, 7), (16, 16), (5, 27), (12, 24)] {
        let mut enc = ignite_core::codec::Encoder::new(CodecConfig {
            src_delta_bits: src,
            tgt_delta_bits: tgt,
        });
        for e in &entries {
            enc.push(e);
        }
        println!(
            "{:>6} {:>6} {:>12} {:>12.1} {:>9.1}%",
            src,
            tgt,
            enc.byte_len(),
            enc.byte_len() as f64 * 8.0 / entries.len().max(1) as f64,
            enc.full_entries() as f64 / entries.len().max(1) as f64 * 100.0,
        );
    }
}

fn sweep_budget(h: &Harness) {
    header("Metadata budget (paper default: 120 KiB)");
    let baseline = h.run_config(&FrontEndConfig::nl());
    println!("{:>12} {:>10}", "budget", "speedup");
    for kib in [4usize, 8, 16, 32, 64, 120] {
        let mut fe = FrontEndConfig::ignite();
        let ignite = fe.select.ignite.as_mut().expect("ignite");
        ignite.metadata_budget_bytes = kib * 1024;
        fe.name = format!("Ignite {kib}KiB");
        println!("{:>9}KiB {:>10.3}", kib, mean_speedup(h, &fe, &baseline));
    }
}

fn sweep_throttle(h: &Harness) {
    header("Replay throttle threshold (paper default: 1K restored-untouched)");
    let baseline = h.run_config(&FrontEndConfig::nl());
    println!("{:>12} {:>10}", "threshold", "speedup");
    for threshold in [64u64, 256, 1_000, 4_000, u64::MAX] {
        let mut fe = FrontEndConfig::ignite();
        fe.select.ignite.as_mut().expect("ignite").replay.throttle_threshold = threshold;
        fe.name = format!("Ignite thr={threshold}");
        let label = if threshold == u64::MAX { "off".to_string() } else { threshold.to_string() };
        println!("{label:>12} {:>10.3}", mean_speedup(h, &fe, &baseline));
    }
}

fn sweep_btb_size(h: &Harness) {
    header("BTB size (5K = Ice Lake, 12K = Sapphire Rapids; §5.3)");
    println!("{:>10} {:>12} {:>12} {:>12}", "entries", "NL", "B+JB", "Ignite");
    for entries in [5 * 1024 + 128, 12 * 1024] {
        // 5 K is not divisible by 6 ways; round to the nearest valid size.
        let mut uarch = UarchConfig::ice_lake_like();
        uarch.btb = BtbConfig { entries: entries - (entries % 6), ways: 6 };
        let mut results = Vec::new();
        let baseline: Vec<_> = h
            .functions()
            .iter()
            .map(|f| run_function(&uarch, &FrontEndConfig::nl(), f, h.opts))
            .collect();
        for fe in [FrontEndConfig::boomerang_jukebox(), FrontEndConfig::ignite()] {
            let mean = h
                .functions()
                .iter()
                .zip(&baseline)
                .map(|(f, b)| {
                    let r = run_function(&uarch, &fe, f, h.opts);
                    b.cpi() / r.cpi()
                })
                .sum::<f64>()
                / h.functions().len() as f64;
            results.push(mean);
        }
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3}",
            uarch.btb.entries, 1.0, results[0], results[1]
        );
    }
}

fn sweep_divergence(h: &Harness) {
    header("Cross-invocation divergence (§4.2; default site-deviation = 3%)");
    let opts = h.opts;
    println!("{:>10} {:>10} {:>12} {:>12}", "noise", "speedup", "BTB MPKI", "init MPKI");
    for noise in [0.0, 0.01, 0.03, 0.10, 0.25] {
        let mut speedups = Vec::new();
        let mut btb = Vec::new();
        let mut init = Vec::new();
        for f in h.functions().iter().take(6) {
            let mut f = f.clone();
            f.noise = noise;
            let b = run_function(&h.uarch, &FrontEndConfig::nl(), &f, opts);
            let r = run_function(&h.uarch, &FrontEndConfig::ignite(), &f, opts);
            speedups.push(b.cpi() / r.cpi());
            btb.push(r.btb_mpki());
            init.push(r.initial_mpki());
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:>10.2} {:>10.3} {:>12.2} {:>12.2}",
            noise,
            mean(&speedups),
            mean(&btb),
            mean(&init)
        );
    }
}

fn sweep_loop_predictor(h: &Harness) {
    header("L-TAGE loop predictor (off in the calibrated default)");
    println!("{:>14} {:>12} {:>12}", "loop pred", "NL CPI", "Ignite CPI");
    for enabled in [false, true] {
        let mut uarch = h.uarch;
        uarch.cbp.loop_predictor =
            enabled.then(ignite_uarch::loop_pred::LoopPredictorConfig::default);
        let mut nl_cpi = Vec::new();
        let mut ig_cpi = Vec::new();
        for f in h.functions().iter().take(8) {
            nl_cpi.push(run_function(&uarch, &FrontEndConfig::nl(), f, h.opts).cpi());
            ig_cpi.push(run_function(&uarch, &FrontEndConfig::ignite(), f, h.opts).cpi());
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:>14} {:>12.3} {:>12.3}",
            if enabled { "on" } else { "off" },
            mean(&nl_cpi),
            mean(&ig_cpi)
        );
    }
}

fn sweep_ittage(h: &Harness) {
    header("ITTAGE indirect target predictor (off in the calibrated default)");
    println!("{:>10} {:>12} {:>12} {:>14}", "ittage", "NL CPI", "Ignite CPI", "Ignite BTB MPKI");
    for enabled in [false, true] {
        let mut uarch = h.uarch;
        uarch.indirect_predictor = enabled.then(ignite_uarch::ittage::IttageConfig::default);
        let mut nl_cpi = Vec::new();
        let mut ig_cpi = Vec::new();
        let mut ig_btb = Vec::new();
        for f in h.functions().iter().take(8) {
            nl_cpi.push(run_function(&uarch, &FrontEndConfig::nl(), f, h.opts).cpi());
            let r = run_function(&uarch, &FrontEndConfig::ignite(), f, h.opts);
            ig_cpi.push(r.cpi());
            ig_btb.push(r.btb_mpki());
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>14.2}",
            if enabled { "on" } else { "off" },
            mean(&nl_cpi),
            mean(&ig_cpi),
            mean(&ig_btb)
        );
    }
}

fn sweep_faults(h: &Harness) {
    header("Metadata fault injection (hardened decode; DESIGN.md fault model)");
    let baseline = h.run_config(&FrontEndConfig::nl());
    let fdp = mean_speedup(h, &FrontEndConfig::fdp(), &baseline);
    println!("record-only floor (FDP): {fdp:.3}");
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>10} {:>8} {:>10}",
        "fault", "rate", "speedup", "decode errs", "dropped", "stale", "watchdog"
    );
    type Mk = fn(f64, u64) -> FaultPlan;
    for (kind, mk) in [("bit-flip", FaultPlan::bit_flips as Mk), ("stale", FaultPlan::stale as Mk)]
    {
        for rate in [0.0, 0.001, 0.01, 0.1, 1.0] {
            let fe = FrontEndConfig::ignite()
                .with_faults(&format!("{kind} {rate}"), mk(rate, 0x0016_117E));
            let results = h.run_config(&fe);
            let speedup =
                baseline.iter().zip(&results).map(|(b, r)| b.cpi() / r.cpi()).sum::<f64>()
                    / results.len() as f64;
            let replay = results.iter().fold(ignite_core::ReplayStats::default(), |mut acc, r| {
                acc.merge(&r.replay);
                acc
            });
            println!(
                "{:>10} {:>8} {:>10.3} {:>12} {:>10} {:>8} {:>10}",
                kind,
                rate,
                speedup,
                replay.decode_errors,
                replay.entries_dropped,
                replay.stale_restored,
                replay.watchdog_abandons,
            );
        }
    }
}

fn sweep_host(h: &Harness) {
    header("Ignite host prefetcher: FDP vs Boomerang (§5.3)");
    let baseline = h.run_config(&FrontEndConfig::nl());
    for fe in [FrontEndConfig::ignite(), FrontEndConfig::ignite_boomerang()] {
        println!("{:<20} {:>10.3}", fe.name.clone(), mean_speedup(h, &fe, &baseline));
    }
}

const SWEEP_NAMES: &[&str] =
    &["codec", "budget", "throttle", "btb-size", "divergence", "host", "loop", "ittage", "faults"];

fn usage() -> ! {
    eprintln!("usage: sweep [--scale F] [NAMES...]");
    eprintln!("names: {} | all", SWEEP_NAMES.join(" "));
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 0.25f64;
    let mut which: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = match it.next().and_then(|v| v.parse().ok()) {
                    Some(s) => s,
                    None => {
                        eprintln!("error: --scale needs a number\n");
                        usage();
                    }
                };
            }
            other => {
                if other != "all" && !SWEEP_NAMES.contains(&other) {
                    eprintln!("error: unknown sweep {other}\n");
                    usage();
                }
                which.push(other.to_string());
            }
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = SWEEP_NAMES.iter().map(|s| s.to_string()).collect();
    }
    let h = Harness::new(scale, RunOptions::quick());
    // Isolate each sweep: one panicking ablation must not cost the rest.
    let mut failures: Vec<(String, String)> = Vec::new();
    for w in &which {
        let run: Option<fn(&Harness)> = match w.as_str() {
            "codec" => Some(sweep_codec),
            "budget" => Some(sweep_budget),
            "throttle" => Some(sweep_throttle),
            "btb-size" => Some(sweep_btb_size),
            "divergence" => Some(sweep_divergence),
            "host" => Some(sweep_host),
            "loop" => Some(sweep_loop_predictor),
            "ittage" => Some(sweep_ittage),
            "faults" => Some(sweep_faults),
            other => {
                eprintln!("unknown sweep {other}");
                None
            }
        };
        let Some(run) = run else { continue };
        if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run(&h))) {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            eprintln!("[sweep {w} FAILED: {msg}]");
            failures.push((w.clone(), msg));
        }
    }
    if !failures.is_empty() {
        eprintln!("\n{} sweep(s) failed:", failures.len());
        for (w, msg) in &failures {
            eprintln!("  {w}: {msg}");
        }
        std::process::exit(1);
    }
}
