//! Regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! figures [OPTIONS] [IDS...]
//!
//! IDS      fig1 fig2 fig3 fig4 fig5 fig6 fig8 fig9a fig9b fig9c fig10
//!          fig11 fig12 table1 table2 | all        (default: all)
//!
//! OPTIONS
//!   --scale <f>         suite scale factor (default 1.0 = paper scale)
//!   --invocations <n>   measured invocations per run (default 3)
//!   --quick             shorthand for --scale 0.25 --invocations 1
//!   --out <path>        also append rendered figures to a markdown file
//!   --experiments <path> run everything and write the paper-vs-measured
//!                        EXPERIMENTS.md report to <path>
//! ```

use std::io::Write;

use ignite_engine::protocol::RunOptions;
use ignite_harness::{figures, Figure, Harness};

const ALL_IDS: [&str; 18] = [
    "table1",
    "table2",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig8",
    "fig9a",
    "fig9b",
    "fig9c",
    "fig10",
    "fig11",
    "fig12",
    "ext-adaptation",
    "ext-metadata",
    "ext-interleaving",
];

fn run_one(h: &Harness, id: &str) -> Option<Figure> {
    Some(match id {
        "fig1" => figures::fig1::run(h),
        "fig2" => figures::fig2::run(h),
        "fig3" => figures::fig3::run(h),
        "fig4" => figures::fig4::run(h),
        "fig5" => figures::fig5::run(h),
        "fig6" => figures::fig6::run(h),
        "fig8" => figures::fig8::run(h),
        "fig9a" => figures::fig9::run_a(h),
        "fig9b" => figures::fig9::run_b(h),
        "fig9c" => figures::fig9::run_c(h),
        "fig10" => figures::fig10::run(h),
        "fig11" => figures::fig11::run(h),
        "fig12" => figures::fig12::run(h),
        "table1" => figures::tables::table1(h),
        "table2" => figures::tables::table2(h),
        "ext-adaptation" => figures::ext::adaptation(h),
        "ext-metadata" => figures::ext::metadata_footprint(h),
        "ext-interleaving" => figures::ext::interleaving(h),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1.0f64;
    let mut invocations = 3usize;
    let mut out: Option<String> = None;
    let mut experiments: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| exit_usage("--scale needs a number"));
            }
            "--invocations" => {
                invocations = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| exit_usage("--invocations needs an integer"));
            }
            "--quick" => {
                scale = 0.25;
                invocations = 1;
            }
            "--out" => {
                out = Some(it.next().unwrap_or_else(|| exit_usage("--out needs a path")));
            }
            "--experiments" => {
                experiments =
                    Some(it.next().unwrap_or_else(|| exit_usage("--experiments needs a path")));
            }
            "--help" | "-h" => exit_usage(""),
            id if id.starts_with('-') => exit_usage(&format!("unknown option {id}")),
            id => ids.push(id.to_string()),
        }
    }
    if ids.is_empty() || ids.iter().any(|i| i == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !ALL_IDS.contains(&id.as_str()) {
            exit_usage(&format!("unknown figure id {id}"));
        }
    }

    let harness = Harness::new(
        scale,
        RunOptions { warmup_invocations: 1, measured_invocations: invocations },
    );
    if let Some(path) = experiments {
        let md = ignite_harness::report::experiments_markdown(&harness);
        std::fs::write(&path, md).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        eprintln!("[wrote {path}]");
        return;
    }
    // Each figure runs under catch_unwind so one broken experiment does
    // not cost the rest of a (potentially hours-long) paper-scale run.
    // Failures are summarised at the end and reflected in the exit code.
    let mut rendered = String::new();
    let mut failures: Vec<(String, String)> = Vec::new();
    for id in &ids {
        let t = std::time::Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one(&harness, id).expect("validated above")
        }));
        match outcome {
            Ok(fig) => {
                let text = fig.render();
                println!("{text}");
                eprintln!("[{} done in {:.1?}]", id, t.elapsed());
                rendered.push_str(&text);
                rendered.push('\n');
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                eprintln!("[{} FAILED after {:.1?}: {}]", id, t.elapsed(), msg);
                failures.push((id.clone(), msg));
            }
        }
    }
    if let Some(path) = out {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
        f.write_all(rendered.as_bytes()).expect("write failed");
        eprintln!("[appended to {path}]");
    }
    if !failures.is_empty() {
        eprintln!("\n{} of {} figure(s) failed:", failures.len(), ids.len());
        for (id, msg) in &failures {
            eprintln!("  {id}: {msg}");
        }
        std::process::exit(1);
    }
}

fn exit_usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}\n");
    }
    eprintln!(
        "usage: figures [--scale F] [--invocations N] [--quick] [--out PATH] [IDS...]\n\
         ids: {} | all",
        ALL_IDS.join(" ")
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
