//! Figure data model and text rendering.

/// One labelled series of (x, value) points — one bar group or line of a
/// paper figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label (e.g. `"Boomerang + JB"`).
    pub label: String,
    /// Points, keyed by x-axis label (function abbreviation or category).
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Creates a series from an iterator of points.
    pub fn new(label: impl Into<String>, points: impl IntoIterator<Item = (String, f64)>) -> Self {
        Series { label: label.into(), points: points.into_iter().collect() }
    }

    /// The value at an x label, if present.
    pub fn value(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|(k, _)| k == x).map(|(_, v)| *v)
    }

    /// Arithmetic mean over all points.
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|(_, v)| v).sum::<f64>() / self.points.len() as f64
    }
}

/// A reproduced table or figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// Paper identifier, e.g. `"fig8"` or `"table1"`.
    pub id: String,
    /// Caption (what the paper's figure shows).
    pub caption: String,
    /// The data series.
    pub series: Vec<Series>,
    /// Free-form commentary (expected paper shape, substitutions).
    pub notes: String,
}

impl Figure {
    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The union of x labels across all series, in first-seen order.
    pub fn x_labels(&self) -> Vec<&str> {
        let mut labels: Vec<&str> = Vec::new();
        for s in &self.series {
            for (x, _) in &s.points {
                if !labels.contains(&x.as_str()) {
                    labels.push(x);
                }
            }
        }
        labels
    }

    /// Renders a fixed-width text table: one row per x label, one column
    /// per series.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n\n", self.id, self.caption));
        let labels = self.x_labels();
        let xw = labels.iter().map(|l| l.len()).max().unwrap_or(1).max(8);
        let cols: Vec<usize> = self.series.iter().map(|s| s.label.len().max(8)).collect();
        out.push_str(&format!("{:xw$}", "", xw = xw + 2));
        for (s, w) in self.series.iter().zip(&cols) {
            out.push_str(&format!("  {:>w$}", s.label, w = w));
        }
        out.push('\n');
        for x in &labels {
            out.push_str(&format!("{:xw$}", x, xw = xw + 2));
            for (s, w) in self.series.iter().zip(&cols) {
                match s.value(x) {
                    Some(v) => out.push_str(&format!("  {:>w$.3}", v, w = w)),
                    None => out.push_str(&format!("  {:>w$}", "-", w = w)),
                }
            }
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str(&format!("\n{}\n", self.notes));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure {
            id: "figX".into(),
            caption: "test".into(),
            series: vec![
                Series::new("A", [("x1".to_string(), 1.0), ("x2".to_string(), 2.0)]),
                Series::new("B", [("x1".to_string(), 3.0)]),
            ],
            notes: "note".into(),
        }
    }

    #[test]
    fn series_lookup_and_mean() {
        let f = sample();
        assert_eq!(f.series("A").unwrap().value("x2"), Some(2.0));
        assert_eq!(f.series("A").unwrap().mean(), 1.5);
        assert!(f.series("C").is_none());
    }

    #[test]
    fn x_labels_union_ordered() {
        let f = sample();
        assert_eq!(f.x_labels(), vec!["x1", "x2"]);
    }

    #[test]
    fn render_contains_everything() {
        let r = sample().render();
        assert!(r.contains("figX"));
        assert!(r.contains("x1") && r.contains("x2"));
        assert!(r.contains('A') && r.contains('B'));
        assert!(r.contains('-'), "missing point rendered as dash");
        assert!(r.contains("note"));
    }

    #[test]
    fn empty_series_mean_is_zero() {
        let s = Series::new("empty", []);
        assert_eq!(s.mean(), 0.0);
    }
}
