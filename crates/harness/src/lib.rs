#![warn(missing_docs)]
//! Experiment harness: reproduces every table and figure of the Ignite
//! paper's evaluation.
//!
//! Each experiment in [`figures`] maps to one paper table/figure (see
//! DESIGN.md §3 for the full index) and produces a [`figure::Figure`]: a
//! set of labelled series over the benchmark suite plus a rendered text
//! table. The `figures` binary drives them:
//!
//! ```text
//! cargo run --release -p ignite-harness --bin figures -- all
//! cargo run --release -p ignite-harness --bin figures -- fig8 fig9a --scale 0.25
//! ```
//!
//! # Example
//!
//! ```
//! use ignite_harness::Harness;
//!
//! let harness = Harness::for_tests();
//! let fig = ignite_harness::figures::fig2::run(&harness);
//! assert_eq!(fig.id, "fig2");
//! assert!(!fig.render().is_empty());
//! ```

pub mod figure;
pub mod figures;
pub mod report;
pub mod runner;

pub use figure::{Figure, Series};
pub use runner::Harness;
