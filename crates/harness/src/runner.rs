//! Suite-wide experiment execution with thread parallelism and
//! per-function panic isolation (via the shared
//! [`ignite_cluster::fanout`] implementation).

use ignite_cluster::fanout;
use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::metrics::InvocationResult;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;

/// One suite function failed (panicked) while simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionFailure {
    /// The function's Table-1 abbreviation.
    pub abbr: String,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl std::fmt::Display for FunctionFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "function {} panicked: {}", self.abbr, self.message)
    }
}

impl std::error::Error for FunctionFailure {}

/// The harness: a prepared suite plus run parameters.
#[derive(Debug)]
pub struct Harness {
    /// Simulated machine parameters.
    pub uarch: UarchConfig,
    /// Run protocol (warm-up + measured invocations).
    pub opts: RunOptions,
    functions: Vec<PreparedFunction>,
    abbrs: Vec<String>,
    threads: usize,
    chaos_panic_at: Option<usize>,
}

impl Harness {
    /// Builds a harness over the paper suite at the given scale
    /// (1.0 = paper scale; smaller is faster).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(scale: f64, opts: RunOptions) -> Self {
        let suite = Suite::paper_suite_scaled(scale);
        let functions: Vec<PreparedFunction> = suite
            .functions()
            .iter()
            .enumerate()
            .map(|(i, f)| PreparedFunction::from_suite(f, i as u64))
            .collect();
        let abbrs = suite.functions().iter().map(|f| f.profile.abbr.clone()).collect();
        Harness {
            uarch: UarchConfig::ice_lake_like(),
            opts,
            functions,
            abbrs,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            chaos_panic_at: None,
        }
    }

    /// Full paper-scale harness (the `figures` binary default).
    pub fn paper() -> Self {
        Harness::paper_scaled(1.0)
    }

    /// Paper harness at a reduced scale.
    pub fn paper_scaled(scale: f64) -> Self {
        Harness::new(scale, RunOptions::default())
    }

    /// A small, fast harness for integration tests (~6% scale, one
    /// measured invocation).
    pub fn for_tests() -> Self {
        Harness::new(0.06, RunOptions::quick())
    }

    /// Function abbreviations, in Table 1 order.
    pub fn abbrs(&self) -> &[String] {
        &self.abbrs
    }

    /// The prepared functions.
    pub fn functions(&self) -> &[PreparedFunction] {
        &self.functions
    }

    /// Caps worker threads (for deterministic profiling).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Chaos hook: make the worker for function `index` panic before it
    /// simulates anything. Exists so panic isolation in
    /// [`Harness::run_config_checked`] can be exercised through the
    /// public API; harmless in production (it defaults to off).
    pub fn inject_panic_at(&mut self, index: Option<usize>) {
        self.chaos_panic_at = index;
    }

    /// Runs one front-end configuration over every suite function, in
    /// parallel. Each function is simulated under `catch_unwind`, so one
    /// panicking function (a simulator bug, a pathological workload)
    /// yields an `Err` in its slot instead of tearing down the whole
    /// sweep. Results are in suite order.
    pub fn run_config_checked(
        &self,
        fe: &FrontEndConfig,
    ) -> Vec<Result<InvocationResult, FunctionFailure>> {
        fanout::run_indexed(self.functions.len(), self.threads, |i| {
            if self.chaos_panic_at == Some(i) {
                panic!("chaos hook: injected panic at function index {i}");
            }
            run_function(&self.uarch, fe, &self.functions[i], self.opts)
        })
        .into_iter()
        .map(|r| {
            r.map_err(|p| FunctionFailure { abbr: self.abbrs[p.index].clone(), message: p.message })
        })
        .collect()
    }

    /// Runs one front-end configuration over every suite function,
    /// in parallel, returning per-function results in suite order.
    ///
    /// # Panics
    ///
    /// Panics (with the function's name and the original message) if any
    /// function fails; callers that want partial results should use
    /// [`Harness::run_config_checked`].
    pub fn run_config(&self, fe: &FrontEndConfig) -> Vec<InvocationResult> {
        self.run_config_checked(fe)
            .into_iter()
            .map(|r| match r {
                Ok(result) => result,
                Err(failure) => panic!("{failure} (config {})", fe.name),
            })
            .collect()
    }

    /// Runs several configurations; returns results indexed
    /// `[config][function]`.
    pub fn run_matrix(&self, configs: &[FrontEndConfig]) -> Vec<Vec<InvocationResult>> {
        configs.iter().map(|c| self.run_config(c)).collect()
    }

    /// Per-function speedups of `results` over `baseline` (equal-work
    /// comparison: cycles are normalized by instructions executed).
    ///
    /// # Panics
    ///
    /// Panics if either side has a non-positive or non-finite CPI — a
    /// function that executed zero instructions produces `cpi() == 0.0`,
    /// and quietly mapping that to "speedup 1.0" would hide a broken run
    /// inside an otherwise plausible figure.
    pub fn speedups(
        &self,
        baseline: &[InvocationResult],
        results: &[InvocationResult],
    ) -> Vec<(String, f64)> {
        self.abbrs
            .iter()
            .zip(baseline.iter().zip(results))
            .map(|(abbr, (b, r))| {
                let b_cpi = b.cpi();
                let r_cpi = r.cpi();
                assert!(
                    b_cpi > 0.0 && b_cpi.is_finite(),
                    "degenerate baseline CPI {b_cpi} for {abbr}: \
                     the run produced no instructions"
                );
                assert!(
                    r_cpi > 0.0 && r_cpi.is_finite(),
                    "degenerate CPI {r_cpi} for {abbr}: the run produced no instructions"
                );
                (abbr.clone(), b_cpi / r_cpi)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_cluster::fanout::panic_message;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn tiny() -> Harness {
        let mut h = Harness::new(0.02, RunOptions::quick());
        h.set_threads(2);
        h
    }

    #[test]
    fn runs_all_functions() {
        let h = tiny();
        let r = h.run_config(&FrontEndConfig::nl());
        assert_eq!(r.len(), 20);
        assert!(r.iter().all(|x| x.instructions > 0));
    }

    #[test]
    fn parallel_equals_serial() {
        let mut h = tiny();
        let par = h.run_config(&FrontEndConfig::nl());
        h.set_threads(1);
        let ser = h.run_config(&FrontEndConfig::nl());
        assert_eq!(par, ser, "thread count must not affect results");
    }

    #[test]
    fn speedup_of_baseline_is_one() {
        let h = tiny();
        let r = h.run_config(&FrontEndConfig::nl());
        let s = h.speedups(&r, &r);
        assert!(s.iter().all(|(_, v)| (*v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn degenerate_cpi_is_loud() {
        let h = tiny();
        let good = h.run_config(&FrontEndConfig::nl());
        let broken = vec![InvocationResult::default(); good.len()];
        let r = catch_unwind(AssertUnwindSafe(|| h.speedups(&good, &broken)));
        let msg = panic_message(r.expect_err("zero-CPI results must not pass"));
        assert!(msg.contains("degenerate"), "unexpected panic message: {msg}");
    }

    #[test]
    fn injected_panic_is_isolated() {
        let mut h = tiny();
        h.inject_panic_at(Some(3));
        let r = h.run_config_checked(&FrontEndConfig::nl());
        assert_eq!(r.len(), 20);
        for (i, slot) in r.iter().enumerate() {
            if i == 3 {
                let f = slot.as_ref().expect_err("function 3 must fail");
                assert_eq!(f.abbr, h.abbrs()[3]);
                assert!(f.message.contains("chaos hook"));
            } else {
                assert!(slot.is_ok(), "function {i} must survive a sibling's panic");
            }
        }
    }

    #[test]
    fn run_config_panics_with_function_name() {
        let mut h = tiny();
        h.inject_panic_at(Some(0));
        let r = catch_unwind(AssertUnwindSafe(|| h.run_config(&FrontEndConfig::nl())));
        let msg = panic_message(r.expect_err("compat wrapper must propagate"));
        assert!(msg.contains(&h.abbrs()[0]) && msg.contains("chaos hook"), "got: {msg}");
    }
}
