//! Suite-wide experiment execution with thread parallelism.

use std::sync::Mutex;

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::metrics::InvocationResult;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;

/// The harness: a prepared suite plus run parameters.
#[derive(Debug)]
pub struct Harness {
    /// Simulated machine parameters.
    pub uarch: UarchConfig,
    /// Run protocol (warm-up + measured invocations).
    pub opts: RunOptions,
    functions: Vec<PreparedFunction>,
    abbrs: Vec<String>,
    threads: usize,
}

impl Harness {
    /// Builds a harness over the paper suite at the given scale
    /// (1.0 = paper scale; smaller is faster).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn new(scale: f64, opts: RunOptions) -> Self {
        let suite = Suite::paper_suite_scaled(scale);
        let functions: Vec<PreparedFunction> = suite
            .functions()
            .iter()
            .enumerate()
            .map(|(i, f)| PreparedFunction::from_suite(f, i as u64))
            .collect();
        let abbrs = suite.functions().iter().map(|f| f.profile.abbr.clone()).collect();
        Harness {
            uarch: UarchConfig::ice_lake_like(),
            opts,
            functions,
            abbrs,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }

    /// Full paper-scale harness (the `figures` binary default).
    pub fn paper() -> Self {
        Harness::new(1.0, RunOptions::default())
    }

    /// A small, fast harness for integration tests (~6% scale, one
    /// measured invocation).
    pub fn for_tests() -> Self {
        Harness::new(0.06, RunOptions::quick())
    }

    /// Function abbreviations, in Table 1 order.
    pub fn abbrs(&self) -> &[String] {
        &self.abbrs
    }

    /// The prepared functions.
    pub fn functions(&self) -> &[PreparedFunction] {
        &self.functions
    }

    /// Caps worker threads (for deterministic profiling).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Runs one front-end configuration over every suite function,
    /// in parallel, returning per-function results in suite order.
    pub fn run_config(&self, fe: &FrontEndConfig) -> Vec<InvocationResult> {
        let next = Mutex::new(0usize);
        let results: Mutex<Vec<Option<InvocationResult>>> =
            Mutex::new(vec![None; self.functions.len()]);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(self.functions.len()).max(1) {
                scope.spawn(|| loop {
                    let i = {
                        let mut n = next.lock().expect("worker queue poisoned");
                        let i = *n;
                        *n += 1;
                        i
                    };
                    if i >= self.functions.len() {
                        break;
                    }
                    let r = run_function(&self.uarch, fe, &self.functions[i], self.opts);
                    results.lock().expect("results poisoned")[i] = Some(r);
                });
            }
        });
        results
            .into_inner()
            .expect("results poisoned")
            .into_iter()
            .map(|r| r.expect("every function ran"))
            .collect()
    }

    /// Runs several configurations; returns results indexed
    /// `[config][function]`.
    pub fn run_matrix(&self, configs: &[FrontEndConfig]) -> Vec<Vec<InvocationResult>> {
        configs.iter().map(|c| self.run_config(c)).collect()
    }

    /// Per-function speedups of `results` over `baseline` (equal-work
    /// comparison: cycles are normalized by instructions executed).
    pub fn speedups(
        &self,
        baseline: &[InvocationResult],
        results: &[InvocationResult],
    ) -> Vec<(String, f64)> {
        self.abbrs
            .iter()
            .zip(baseline.iter().zip(results))
            .map(|(abbr, (b, r))| {
                let b_cpi = b.cpi();
                let r_cpi = r.cpi();
                let s = if r_cpi > 0.0 { b_cpi / r_cpi } else { 1.0 };
                (abbr.clone(), s)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Harness {
        let mut h = Harness::new(0.02, RunOptions::quick());
        h.set_threads(2);
        h
    }

    #[test]
    fn runs_all_functions() {
        let h = tiny();
        let r = h.run_config(&FrontEndConfig::nl());
        assert_eq!(r.len(), 20);
        assert!(r.iter().all(|x| x.instructions > 0));
    }

    #[test]
    fn parallel_equals_serial() {
        let mut h = tiny();
        let par = h.run_config(&FrontEndConfig::nl());
        h.set_threads(1);
        let ser = h.run_config(&FrontEndConfig::nl());
        assert_eq!(par, ser, "thread count must not affect results");
    }

    #[test]
    fn speedup_of_baseline_is_one() {
        let h = tiny();
        let r = h.run_config(&FrontEndConfig::nl());
        let s = h.speedups(&r, &r);
        assert!(s.iter().all(|(_, v)| (*v - 1.0).abs() < 1e-12));
    }
}
