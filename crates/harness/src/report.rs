//! EXPERIMENTS.md generation: paper-vs-measured comparison for every
//! reproduced table and figure, with automated shape verdicts.
//!
//! Each [`Claim`] is one quantitative statement from the paper's evaluation
//! with the corresponding measurement from this reproduction and a verdict
//! on whether the *shape* (ordering/crossover/direction) reproduces.

use std::fmt::Write as _;

use crate::figure::{Figure, Series};
use crate::figures;
use crate::runner::Harness;
use ignite_engine::config::FrontEndConfig as FeConfig;

/// One paper claim checked against the reproduction.
#[derive(Debug, Clone)]
pub struct Claim {
    /// What the paper states.
    pub paper: String,
    /// What this reproduction measures.
    pub measured: String,
    /// Whether the qualitative shape reproduces.
    pub holds: bool,
}

impl Claim {
    fn new(paper: impl Into<String>, measured: impl Into<String>, holds: bool) -> Self {
        Claim { paper: paper.into(), measured: measured.into(), holds }
    }
}

/// A reproduced experiment plus its claim checklist.
#[derive(Debug, Clone)]
pub struct Report {
    /// The figure data.
    pub figure: Figure,
    /// Claims checked for this figure.
    pub claims: Vec<Claim>,
}

fn v(fig: &Figure, series: &str, x: &str) -> f64 {
    fig.series(series).and_then(|s| s.value(x)).unwrap_or(f64::NAN)
}

fn fig1_report(h: &Harness) -> Report {
    let figure = figures::fig1::run(h);
    let luke = v(&figure, "Interleaved CPI", "Mean");
    let warm = v(&figure, "Back-to-back CPI", "Mean");
    let d_fe = (v(&figure, "Interleaved Fetch Bound", "Mean")
        + v(&figure, "Interleaved Bad Speculation", "Mean"))
        - (v(&figure, "Back-to-back Fetch Bound", "Mean")
            + v(&figure, "Back-to-back Bad Speculation", "Mean"));
    let share = d_fe / (luke - warm);
    Report {
        claims: vec![
            Claim::new(
                "interleaving increases CPI by 100-294% (162% mean)",
                format!("{:.0}% mean CPI increase", (luke / warm - 1.0) * 100.0),
                luke / warm > 1.5,
            ),
            Claim::new(
                "front-end stalls are ~2/3 of the degradation",
                format!("{:.0}% of the degradation is front-end", share * 100.0),
                share > 0.5,
            ),
        ],
        figure,
    }
}

fn fig2_report(h: &Harness) -> Report {
    let figure = figures::fig2::run(h);
    let instr = figure.series("Instruction WS [KiB]").expect("series");
    let branch = figure.series("Branch WS [BTB entries]").expect("series");
    let (imin, imax) = instr
        .points
        .iter()
        .filter(|(k, _)| k != "Mean")
        .fold((f64::MAX, 0f64), |(lo, hi), (_, v)| (lo.min(*v), hi.max(*v)));
    let (bmin, bmax) = branch
        .points
        .iter()
        .filter(|(k, _)| k != "Mean")
        .fold((f64::MAX, 0f64), |(lo, hi), (_, v)| (lo.min(*v), hi.max(*v)));
    Report {
        claims: vec![
            Claim::new(
                "instruction working sets 240-620 KiB",
                format!("{imin:.0}-{imax:.0} KiB"),
                imin > 100.0 && imax > 300.0,
            ),
            Claim::new(
                "branch working sets 5.4K (Auth-G) to ~14K (RecO-P) BTB entries",
                format!("{bmin:.0}-{bmax:.0} entries"),
                bmin > 3_000.0 && bmax > 8_000.0,
            ),
        ],
        figure,
    }
}

fn fig3_report(h: &Harness) -> Report {
    let figure = figures::fig3::run(h);
    let s = |name: &str| v(&figure, name, "Speedup");
    Report {
        claims: vec![
            Claim::new(
                "Boomerang +12%, Jukebox +16%, Boomerang+JB +20%, Ideal +61%",
                format!(
                    "Boomerang {:+.0}%, Jukebox {:+.0}%, B+JB {:+.0}%, Ideal {:+.0}%",
                    (s("Boomerang") - 1.0) * 100.0,
                    (s("Jukebox") - 1.0) * 100.0,
                    (s("Boomerang + JB") - 1.0) * 100.0,
                    (s("Ideal") - 1.0) * 100.0
                ),
                s("Jukebox") > s("Boomerang")
                    && s("Boomerang + JB") > s("Jukebox") * 0.97
                    && s("Ideal") > 1.4,
            ),
            Claim::new(
                "Boomerang raises CBP mispredictions vs NL (cold-CBP exposure)",
                format!(
                    "CBP MPKI {:.1} (NL) -> {:.1} (Boomerang)",
                    v(&figure, "NL", "CBP MPKI"),
                    v(&figure, "Boomerang", "CBP MPKI")
                ),
                v(&figure, "Boomerang", "CBP MPKI") > v(&figure, "NL", "CBP MPKI"),
            ),
        ],
        figure,
    }
}

fn fig4_report(h: &Harness) -> Report {
    let figure = figures::fig4::run(h);
    let s = |name: &str| v(&figure, name, "Speedup");
    let base = s("Boomerang + JB");
    let btb = s("Boomerang + JB + warm BTB");
    let bpu = s("Boomerang + JB + warm BTB + warm CBP");
    Report {
        claims: vec![Claim::new(
            "warm BTB +4.2%; warm BTB+CBP a further +10%",
            format!(
                "warm BTB {:+.1}%; + warm CBP a further {:+.1}%",
                (btb / base - 1.0) * 100.0,
                (bpu / btb - 1.0) * 100.0
            ),
            btb > base && bpu > btb,
        )],
        figure,
    }
}

fn fig5_report(h: &Harness) -> Report {
    let figure = figures::fig5::run(h);
    let c = |name: &str| v(&figure, name, "CBP MPKI");
    let cold = c("Boomerang + JB (BTB warm, CBP cold)");
    let bim = c("Boomerang + JB + BIM warm");
    let full = c("Boomerang + JB + TAGE warm");
    let fraction = (cold - bim) / (cold - full).max(1e-9);
    Report {
        claims: vec![Claim::new(
            "warm BIM alone achieves ~51% of the full warm-CBP benefit (19.3 -> 14.5 -> 10 MPKI)",
            format!("{cold:.1} -> {bim:.1} -> {full:.1} MPKI ({:.0}% from BIM)", fraction * 100.0),
            bim < cold && full <= bim && fraction > 0.3,
        )],
        figure,
    }
}

fn fig6_report(h: &Harness) -> Report {
    let figure = figures::fig6::run(h);
    let init = v(&figure, "Initial MPKI", "Mean");
    let subs = v(&figure, "Subsequent MPKI", "Mean");
    let frac = init / (init + subs);
    Report {
        claims: vec![Claim::new(
            "12-49% (33% mean) of mispredictions are initial",
            format!("{:.0}% mean initial fraction", frac * 100.0),
            (0.05..0.8).contains(&frac),
        )],
        figure,
    }
}

fn fig8_report(h: &Harness) -> Report {
    let figure = figures::fig8::run(h);
    let s = |name: &str| v(&figure, name, "Mean");
    let ignite = s("Ignite");
    let bjb = s("Boomerang + JB");
    Report {
        claims: vec![
            Claim::new(
                "Ignite +43% mean (21-62%); 2.2x Boomerang+JB's improvement",
                format!(
                    "Ignite {:+.0}%; {:.1}x Boomerang+JB's improvement",
                    (ignite - 1.0) * 100.0,
                    (ignite - 1.0) / (bjb - 1.0)
                ),
                ignite > bjb && (ignite - 1.0) / (bjb - 1.0) > 1.5,
            ),
            Claim::new(
                "Ignite+TAGE +50%; Ideal +61%",
                format!(
                    "Ignite+TAGE {:+.0}%; Ideal {:+.0}%",
                    (s("Ignite + TAGE") - 1.0) * 100.0,
                    (s("Ideal") - 1.0) * 100.0
                ),
                s("Ignite + TAGE") >= ignite && s("Ideal") > s("Ignite + TAGE"),
            ),
        ],
        figure,
    }
}

fn fig9a_report(h: &Harness) -> Report {
    let figure = figures::fig9::run_a(h);
    let g = |cfg: &str, m: &str| v(&figure, cfg, m);
    Report {
        claims: vec![
            Claim::new(
                "Ignite halves L1-I MPKI vs Boomerang+JB (26 -> ~12)",
                format!(
                    "{:.1} -> {:.1} L1-I MPKI",
                    g("Boomerang + JB", "L1I MPKI"),
                    g("Ignite", "L1I MPKI")
                ),
                g("Ignite", "L1I MPKI") < g("Boomerang + JB", "L1I MPKI") * 0.85,
            ),
            Claim::new(
                "BTB MPKI 13 -> 1.9 (over 5x)",
                format!(
                    "{:.1} -> {:.1} BTB MPKI ({:.1}x)",
                    g("Boomerang + JB", "BTB MPKI"),
                    g("Ignite", "BTB MPKI"),
                    g("Boomerang + JB", "BTB MPKI") / g("Ignite", "BTB MPKI").max(1e-9)
                ),
                g("Ignite", "BTB MPKI") < g("Boomerang + JB", "BTB MPKI") * 0.65,
            ),
            Claim::new(
                "CBP mispredictions nearly halve (19+ -> ~10); Ignite+TAGE -> 6.6",
                format!(
                    "{:.1} -> {:.1} -> {:.1} CBP MPKI",
                    g("Boomerang + JB", "CBP MPKI"),
                    g("Ignite", "CBP MPKI"),
                    g("Ignite + TAGE", "CBP MPKI")
                ),
                g("Ignite", "CBP MPKI") < g("Boomerang + JB", "CBP MPKI")
                    && g("Ignite + TAGE", "CBP MPKI") <= g("Ignite", "CBP MPKI"),
            ),
        ],
        figure,
    }
}

fn fig9b_report(h: &Harness) -> Report {
    let figure = figures::fig9::run_b(h);
    let ignite = v(&figure, "Ignite Initial MPKI", "Mean");
    let background = v(&figure, "BJB+warmBTB Initial MPKI", "Mean");
    Report {
        claims: vec![Claim::new(
            "Ignite covers 67% of initial mispredictions",
            format!(
                "{:.0}% of initial mispredictions covered ({background:.1} -> {ignite:.1} MPKI)",
                (1.0 - ignite / background.max(1e-9)) * 100.0
            ),
            ignite < background * 0.6,
        )],
        figure,
    }
}

fn fig9c_report(h: &Harness) -> Report {
    let figure = figures::fig9::run_c(h);
    let over = |row: &str| v(&figure, row, "Overpredicted");
    Report {
        claims: vec![Claim::new(
            "only 1.4% of L2 prefetches and 3.9% of BTB restores unused; 6.2% induced mispredictions",
            format!(
                "L2 {:.1}%, BTB {:.1}%, CBP {:.1}% overpredicted",
                over("L2 Misses") * 100.0,
                over("BTB Misses") * 100.0,
                over("CBP Misses") * 100.0
            ),
            over("L2 Misses") < 0.25 && over("BTB Misses") < 0.25,
        )],
        figure,
    }
}

fn fig10_report(h: &Harness) -> Report {
    let figure = figures::fig10::run(h);
    let g = |cfg: &str, m: &str| v(&figure, cfg, m);
    Report {
        claims: vec![
            Claim::new(
                "25% of NL's traffic is useless; Boomerang(+JB) fetch even more wrong-path bytes",
                format!(
                    "useless: NL {:.0} KiB, Boomerang {:.0} KiB, B+JB {:.0} KiB",
                    g("NL", "Useless Instructions [KiB]"),
                    g("Boomerang", "Useless Instructions [KiB]"),
                    g("Boomerang + JB", "Useless Instructions [KiB]")
                ),
                g("Boomerang", "Useless Instructions [KiB]")
                    > g("NL", "Useless Instructions [KiB]"),
            ),
            Claim::new(
                "Ignite uses 8.6% less total bandwidth than Boomerang, 17% less than B+JB",
                format!(
                    "Ignite total {:.0} KiB vs Boomerang {:.0} KiB vs B+JB {:.0} KiB",
                    g("Ignite", "Total [KiB]"),
                    g("Boomerang", "Total [KiB]"),
                    g("Boomerang + JB", "Total [KiB]")
                ),
                g("Ignite", "Total [KiB]") < g("Boomerang + JB", "Total [KiB]"),
            ),
        ],
        figure,
    }
}

fn fig11_report(h: &Harness) -> Report {
    let figure = figures::fig11::run(h);
    let s = |name: &str| v(&figure, name, "Speedup");
    Report {
        claims: vec![Claim::new(
            "wNT degrades by 3% vs BTB-only; wT gains 6% and rivals preserving the BIM",
            format!(
                "BTB-only {:.3}, wNT {:.3}, wT {:.3}, preserved {:.3}",
                s("BTB only"),
                s("BIM wNT"),
                s("BIM wT"),
                s("BIM preserved")
            ),
            s("BIM wT") > s("BTB only") && s("BIM wNT") <= s("BIM wT"),
        )],
        figure,
    }
}

fn fig12_report(h: &Harness) -> Report {
    let figure = figures::fig12::run(h);
    let s = |name: &str| v(&figure, name, "Speedup");
    Report {
        claims: vec![Claim::new(
            "Confluence alone gains little; +Ignite cuts L1-I ~28% and BPU ~50%; FDP+Ignite slightly ahead",
            format!(
                "Confluence {:.3}, Confluence+Ignite {:.3}, FDP+Ignite {:.3}",
                s("Confluence"),
                s("Confluence + Ignite"),
                s("Ignite (FDP)")
            ),
            s("Confluence + Ignite") > s("Confluence")
                && s("Ignite (FDP)") > s("Confluence"),
        )],
        figure,
    }
}

fn faults_report(h: &Harness) -> Report {
    use ignite_core::FaultPlan;
    let baseline = h.run_config(&FeConfig::nl());
    let mut speedups: Vec<(String, f64)> = Vec::new();
    let mut dropped: Vec<(String, f64)> = Vec::new();
    let configs = [
        FeConfig::fdp(),
        FeConfig::ignite(),
        FeConfig::ignite().with_faults("flip 1e-3", FaultPlan::bit_flips(0.001, 7)),
        FeConfig::ignite().with_faults("flip 1.0", FaultPlan::bit_flips(1.0, 7)),
        FeConfig::ignite().with_faults("stale 0.1", FaultPlan::stale(0.1, 7)),
        FeConfig::ignite().with_faults("stale 1.0", FaultPlan::stale(1.0, 7)),
    ];
    for fe in &configs {
        let results = h.run_config(fe);
        let mean = baseline.iter().zip(&results).map(|(b, r)| b.cpi() / r.cpi()).sum::<f64>()
            / results.len() as f64;
        speedups.push((fe.name.clone(), mean));
        dropped.push((
            fe.name.clone(),
            results.iter().map(|r| r.replay.entries_dropped).sum::<u64>() as f64,
        ));
    }
    let figure = Figure {
        id: "ext-faults".to_string(),
        caption: "Graceful degradation under injected metadata faults (DESIGN.md §8)".to_string(),
        series: vec![Series::new("Speedup", speedups.clone()), Series::new("Dropped", dropped)],
        notes: "Speedup over NL; Dropped = metadata entries discarded by hardened decode \
                across the suite. Bit-flip corruption is caught by the region checksum and \
                collapses to the record-only (FDP) floor; stale-retarget faults are \
                checksum-valid and degrade smoothly with the drift rate."
            .to_string(),
    };
    let s = |name: &str| speedups.iter().find(|(n, _)| n == name).map_or(0.0, |(_, v)| *v);
    let fdp = s("FDP");
    let flip_full = s("Ignite [flip 1.0]");
    Report {
        claims: vec![
            Claim::new(
                "corrupted metadata degrades Ignite to its record-only host, never below NL (§4.2-4.3)",
                format!("fully corrupted {flip_full:.3} vs FDP floor {fdp:.3} (NL = 1.0)"),
                flip_full >= 0.98 && (flip_full - fdp).abs() <= 0.02 * fdp,
            ),
            Claim::new(
                "staleness degrades gracefully into ordinary mispredictions (§4.2)",
                format!(
                    "10% stale targets {:.3} (still above the {fdp:.3} record-only floor); \
                     100% stale {:.3}",
                    s("Ignite [stale 0.1]"),
                    s("Ignite [stale 1.0]")
                ),
                s("Ignite [stale 0.1]") > fdp,
            ),
        ],
        figure,
    }
}

/// Runs every experiment and renders the full EXPERIMENTS.md content.
pub fn experiments_markdown(h: &Harness) -> String {
    let reports: Vec<(&str, Report)> = vec![
        ("Fig. 1", fig1_report(h)),
        ("Fig. 2", fig2_report(h)),
        ("Fig. 3", fig3_report(h)),
        ("Fig. 4", fig4_report(h)),
        ("Fig. 5", fig5_report(h)),
        ("Fig. 6", fig6_report(h)),
        ("Fig. 8", fig8_report(h)),
        ("Fig. 9a", fig9a_report(h)),
        ("Fig. 9b", fig9b_report(h)),
        ("Fig. 9c", fig9c_report(h)),
        ("Fig. 10", fig10_report(h)),
        ("Fig. 11", fig11_report(h)),
        ("Fig. 12", fig12_report(h)),
        ("Fault injection (beyond the paper)", faults_report(h)),
    ];
    let mut out = String::new();
    out.push_str(
        "# EXPERIMENTS — paper vs. measured\n\n\
         Generated by `figures --experiments` (see README for the command).\n\
         Each section reproduces one evaluation figure of the paper; claims\n\
         are checked automatically against the measured data. ✅ = the\n\
         qualitative shape reproduces; ⚠️ = it does not (discussed in\n\
         DESIGN.md §7).\n",
    );
    let total: usize = reports.iter().map(|(_, r)| r.claims.len()).sum();
    let held: usize = reports.iter().flat_map(|(_, r)| &r.claims).filter(|c| c.holds).count();
    let _ = writeln!(out, "\n**{held}/{total} paper claims reproduce in shape.**\n");
    for (name, report) in &reports {
        let _ = writeln!(out, "\n---\n\n# {name}\n");
        for c in &report.claims {
            let mark = if c.holds { "✅" } else { "⚠️" };
            let _ = writeln!(out, "* {mark} paper: *{}*\n  * measured: {}", c.paper, c.measured);
        }
        out.push('\n');
        out.push_str(&report.figure.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_generates_and_claims_mostly_hold() {
        let h = Harness::for_tests();
        // A cheap subset keeps the test fast; the full document is exercised
        // by the `figures --experiments` binary run.
        let r = fig8_report(&h);
        assert_eq!(r.claims.len(), 2);
        assert!(r.claims[0].holds, "headline claim: {}", r.claims[0].measured);
        let md = {
            let mut out = String::new();
            for c in &r.claims {
                out.push_str(&c.paper);
                out.push_str(&c.measured);
            }
            out
        };
        assert!(md.contains('%'));
    }
}
