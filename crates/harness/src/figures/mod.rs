//! One module per reproduced paper table/figure.
//!
//! Every module exposes `run(&Harness) -> Figure`. The mapping to the
//! paper (workloads, parameters, expected shape) is documented per module
//! and indexed in DESIGN.md §3.

pub mod ext;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig8;
pub mod fig9;
pub mod tables;

use crate::figure::Series;
use ignite_engine::metrics::InvocationResult;

/// Builds a per-function series and appends the arithmetic mean as a final
/// `"Mean"` point (the way the paper's per-function figures end with a
/// mean bar).
pub(crate) fn per_function_series(
    label: &str,
    abbrs: &[String],
    values: impl IntoIterator<Item = f64>,
) -> Series {
    let mut points: Vec<(String, f64)> = abbrs.iter().cloned().zip(values).collect();
    let mean = if points.is_empty() {
        0.0
    } else {
        points.iter().map(|(_, v)| v).sum::<f64>() / points.len() as f64
    };
    points.push(("Mean".to_string(), mean));
    Series { label: label.to_string(), points }
}

/// Mean speedup over the suite (mean of per-function CPI ratios).
pub(crate) fn mean_speedup(base: &[InvocationResult], res: &[InvocationResult]) -> f64 {
    let v: Vec<f64> = base
        .iter()
        .zip(res)
        .map(|(b, r)| if r.cpi() > 0.0 { b.cpi() / r.cpi() } else { 1.0 })
        .collect();
    v.iter().sum::<f64>() / v.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_function_series_appends_mean() {
        let abbrs = vec!["a".to_string(), "b".to_string()];
        let s = per_function_series("t", &abbrs, [1.0, 3.0]);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.value("Mean"), Some(2.0));
    }
}
