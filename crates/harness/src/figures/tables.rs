//! Tables 1 and 2: the benchmark suite and the simulated processor.

use crate::figure::{Figure, Series};
use crate::runner::Harness;

/// Table 1: the 20 serverless functions and their language runtimes.
pub fn table1(h: &Harness) -> Figure {
    let series = vec![
        Series::new(
            "Code [KiB]",
            h.functions()
                .iter()
                .zip(h.abbrs())
                .map(|(f, a)| (a.clone(), f.image.code_bytes() as f64 / 1024.0)),
        ),
        Series::new(
            "Static branches",
            h.functions()
                .iter()
                .zip(h.abbrs())
                .map(|(f, a)| (a.clone(), f.image.static_branches() as f64)),
        ),
        Series::new(
            "Invocation [Kinstr]",
            h.functions()
                .iter()
                .zip(h.abbrs())
                .map(|(f, a)| (a.clone(), f.invocation_instrs as f64 / 1000.0)),
        ),
    ];
    Figure {
        id: "table1".to_string(),
        caption: "Benchmark suite (synthetic stand-ins for the paper's vSwarm \
                  functions; suffix P = Python, N = NodeJS, G = Go)"
            .to_string(),
        series,
        notes: String::new(),
    }
}

/// Table 2: simulated processor parameters.
pub fn table2(h: &Harness) -> Figure {
    let c = &h.uarch;
    let points = vec![
        ("L1-I size [KiB]".to_string(), c.hierarchy.l1i.size_bytes as f64 / 1024.0),
        ("L1-I ways".to_string(), c.hierarchy.l1i.ways as f64),
        ("L2 size [KiB]".to_string(), c.hierarchy.l2.size_bytes as f64 / 1024.0),
        ("L2 ways".to_string(), c.hierarchy.l2.ways as f64),
        ("L2 latency [cyc]".to_string(), c.hierarchy.l2_latency as f64),
        ("LLC size [MiB]".to_string(), c.hierarchy.llc.size_bytes as f64 / (1024.0 * 1024.0)),
        ("LLC latency [cyc]".to_string(), c.hierarchy.llc_latency as f64),
        ("Memory latency [cyc]".to_string(), c.hierarchy.memory_latency as f64),
        ("BTB entries".to_string(), c.btb.entries as f64),
        ("BTB ways".to_string(), c.btb.ways as f64),
        ("Bimodal [KiB]".to_string(), c.cbp.bimodal.size_bytes as f64 / 1024.0),
        ("TAGE tables".to_string(), c.cbp.tage.tables as f64),
        ("TAGE storage [KiB]".to_string(), c.cbp.tage.storage_bytes() as f64 / 1024.0),
        ("FTQ entries".to_string(), c.frontend.ftq_entries as f64),
        ("Fetch [B/cyc]".to_string(), c.frontend.fetch_bytes_per_cycle as f64),
        ("ROB entries".to_string(), c.backend.rob_entries as f64),
    ];
    Figure {
        id: "table2".to_string(),
        caption: "Simulated processor parameters (paper Table 2)".to_string(),
        series: vec![Series::new("Value", points)],
        notes: String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_functions() {
        let h = Harness::for_tests();
        let fig = table1(&h);
        assert_eq!(fig.series("Code [KiB]").unwrap().points.len(), 20);
        assert!(fig.render().contains("RecO-P"));
    }

    #[test]
    fn table2_matches_paper_parameters() {
        let h = Harness::for_tests();
        let fig = table2(&h);
        let v = |k: &str| fig.series("Value").unwrap().value(k).unwrap();
        assert_eq!(v("BTB entries"), 12.0 * 1024.0);
        assert_eq!(v("L1-I size [KiB]"), 32.0);
        assert_eq!(v("ROB entries"), 353.0);
        assert_eq!(v("FTQ entries"), 32.0);
    }
}
