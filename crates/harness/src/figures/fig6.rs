//! Fig. 6: initial vs subsequent conditional mispredictions.
//!
//! On Boomerang+JB with a warm BTB (cold CBP), each misprediction is
//! classified by whether it occurred on the branch's first dynamic
//! execution within the invocation.
//!
//! Paper shape: 12–49% (33% on average) of mispredictions are *initial* —
//! branches that are easy to predict once the CBP has seen them, which is
//! the headroom Ignite's BIM initialization targets.

use crate::figure::Figure;
use crate::figures::per_function_series;
use crate::runner::Harness;
use ignite_engine::config::{FrontEndConfig, StatePolicy};

/// The configuration this figure evaluates.
pub fn config() -> FrontEndConfig {
    FrontEndConfig::boomerang_jukebox().with_policy("(warm BTB)", StatePolicy::lukewarm_warm_btb())
}

/// Runs the experiment.
pub fn run(h: &Harness) -> Figure {
    let results = h.run_config(&config());
    Figure {
        id: "fig6".to_string(),
        caption: "Initial vs subsequent CBP mispredictions (Boomerang+JB, warm BTB)".to_string(),
        series: vec![
            per_function_series(
                "Initial MPKI",
                h.abbrs(),
                results.iter().map(|r| r.initial_mpki()),
            ),
            per_function_series(
                "Subsequent MPKI",
                h.abbrs(),
                results.iter().map(|r| r.subsequent_mpki()),
            ),
        ],
        notes: "Paper shape: a significant fraction (paper: 33% mean) of mispredictions \
                are initial — first executions the cold (randomized) BIM cannot know."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_mispredictions_are_a_significant_fraction() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let init = fig.series("Initial MPKI").unwrap().value("Mean").unwrap();
        let subs = fig.series("Subsequent MPKI").unwrap().value("Mean").unwrap();
        let frac = init / (init + subs);
        assert!((0.05..=0.8).contains(&frac), "initial fraction {frac} out of plausible range");
        assert!(init > 0.0);
    }
}
