//! Fig. 9: Ignite's miss coverage and restore accuracy.
//!
//! * (a) suite-mean L1-I / BTB / CBP MPKI for Boomerang, Boomerang+JB,
//!   Ignite, Ignite+TAGE.
//! * (b) Ignite's initial vs subsequent mispredictions per function
//!   (paper: Ignite covers 67% of initial mispredictions).
//! * (c) restore accuracy: covered / uncovered / overpredicted fractions
//!   for L2 instruction prefetches, the BTB and the CBP (paper: only 1.4%
//!   of L2 prefetches and 3.9% of restored BTB entries unused; 6.2%
//!   induced mispredictions).

use crate::figure::{Figure, Series};
use crate::figures::per_function_series;
use crate::runner::Harness;
use ignite_engine::config::FrontEndConfig;
use ignite_engine::metrics::RestoreAccuracy;

/// The configurations of panel (a), in legend order.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ignite(),
        FrontEndConfig::ignite_tage(),
    ]
}

/// Panel (a): MPKI comparison.
pub fn run_a(h: &Harness) -> Figure {
    let configs = configs();
    let matrix = h.run_matrix(&configs);
    let mut series = Vec::new();
    for (cfg, results) in configs.iter().zip(&matrix) {
        let n = results.len() as f64;
        series.push(Series::new(
            cfg.name.clone(),
            [
                ("L1I MPKI".to_string(), results.iter().map(|r| r.l1i_mpki()).sum::<f64>() / n),
                ("BTB MPKI".to_string(), results.iter().map(|r| r.btb_mpki()).sum::<f64>() / n),
                ("CBP MPKI".to_string(), results.iter().map(|r| r.cbp_mpki()).sum::<f64>() / n),
            ],
        ));
    }
    Figure {
        id: "fig9a".to_string(),
        caption: "Miss coverage: Ignite vs Boomerang-based prefetchers".to_string(),
        series,
        notes: "Paper shape: Ignite roughly halves L1-I MPKI vs Boomerang+JB, \
                slashes BTB MPKI, and nearly halves CBP MPKI; Ignite+TAGE lowers \
                CBP MPKI further."
            .to_string(),
    }
}

/// Panel (b): Ignite's initial-miss coverage per function.
pub fn run_b(h: &Harness) -> Figure {
    let ignite = h.run_config(&FrontEndConfig::ignite());
    let background = h.run_config(&crate::figures::fig6::config());
    Figure {
        id: "fig9b".to_string(),
        caption: "Initial vs subsequent mispredictions under Ignite (background: \
                  Boomerang+JB warm BTB)"
            .to_string(),
        series: vec![
            per_function_series(
                "Ignite Initial MPKI",
                h.abbrs(),
                ignite.iter().map(|r| r.initial_mpki()),
            ),
            per_function_series(
                "Ignite Subsequent MPKI",
                h.abbrs(),
                ignite.iter().map(|r| r.subsequent_mpki()),
            ),
            per_function_series(
                "BJB+warmBTB Initial MPKI",
                h.abbrs(),
                background.iter().map(|r| r.initial_mpki()),
            ),
        ],
        notes: "Paper shape: Ignite eliminates ~67% of initial mispredictions.".to_string(),
    }
}

fn fraction_series(label: &str, accs: impl Iterator<Item = RestoreAccuracy>) -> Series {
    let mut covered = 0u64;
    let mut uncovered = 0u64;
    let mut over = 0u64;
    for a in accs {
        covered += a.covered;
        uncovered += a.uncovered;
        over += a.overpredicted;
    }
    let total = (covered + uncovered + over).max(1) as f64;
    Series::new(
        label,
        [
            ("Covered".to_string(), covered as f64 / total),
            ("Uncovered".to_string(), uncovered as f64 / total),
            ("Overpredicted".to_string(), over as f64 / total),
        ],
    )
}

/// Panel (c): restore accuracy fractions.
pub fn run_c(h: &Harness) -> Figure {
    let ignite = h.run_config(&FrontEndConfig::ignite());
    Figure {
        id: "fig9c".to_string(),
        caption: "Ignite restore accuracy (fractions of covered / uncovered / \
                  overpredicted events)"
            .to_string(),
        series: vec![
            fraction_series("L2 Misses", ignite.iter().map(|r| r.accuracy_l2)),
            fraction_series("BTB Misses", ignite.iter().map(|r| r.accuracy_btb)),
            fraction_series("CBP Misses", ignite.iter().map(|r| r.accuracy_cbp)),
        ],
        notes: "Paper shape: very low overprediction (1.4% of L2 prefetches, 3.9% of \
                BTB restores unused; 6.2% induced mispredictions) thanks to high \
                cross-invocation commonality."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignite_dominates_mpki_comparison() {
        let h = Harness::for_tests();
        let fig = run_a(&h);
        let get = |cfg: &str, metric: &str| fig.series(cfg).unwrap().value(metric).unwrap();
        assert!(get("Ignite", "L1I MPKI") < get("Boomerang + JB", "L1I MPKI"));
        assert!(get("Ignite", "BTB MPKI") < get("Boomerang + JB", "BTB MPKI") * 0.8);
        assert!(get("Ignite", "CBP MPKI") < get("Boomerang + JB", "CBP MPKI"));
        assert!(get("Ignite + TAGE", "CBP MPKI") <= get("Ignite", "CBP MPKI"));
    }

    #[test]
    fn ignite_covers_most_initial_mispredictions() {
        let h = Harness::for_tests();
        let fig = run_b(&h);
        let ignite = fig.series("Ignite Initial MPKI").unwrap().value("Mean").unwrap();
        let background = fig.series("BJB+warmBTB Initial MPKI").unwrap().value("Mean").unwrap();
        assert!(ignite < background * 0.6, "Ignite initial {ignite} vs background {background}");
    }

    #[test]
    fn restore_accuracy_is_high() {
        let h = Harness::for_tests();
        let fig = run_c(&h);
        for label in ["L2 Misses", "BTB Misses"] {
            let s = fig.series(label).unwrap();
            let covered = s.value("Covered").unwrap();
            let over = s.value("Overpredicted").unwrap();
            assert!(covered > 0.5, "{label} covered fraction {covered}");
            assert!(over < 0.35, "{label} overprediction {over}");
        }
    }
}
