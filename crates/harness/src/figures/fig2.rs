//! Fig. 2: per-invocation front-end working sets.
//!
//! (a) instruction working set in bytes (paper: 240–620 KiB);
//! (b) branch working set in BTB entries (paper: 5.4 K for Auth-G up to
//! ~14 K for RecO-P).

use crate::figure::Figure;
use crate::figures::per_function_series;
use crate::runner::Harness;
use ignite_workloads::trace::measure_working_set;

/// Runs the experiment (trace measurement; no timing simulation needed).
pub fn run(h: &Harness) -> Figure {
    let sets: Vec<_> = h
        .functions()
        .iter()
        .map(|f| measure_working_set(&f.image, 0, f.invocation_instrs))
        .collect();
    Figure {
        id: "fig2".to_string(),
        caption: "Front-end working sets per invocation".to_string(),
        series: vec![
            per_function_series(
                "Instruction WS [KiB]",
                h.abbrs(),
                sets.iter().map(|w| w.instruction_bytes as f64 / 1024.0),
            ),
            per_function_series(
                "Branch WS [BTB entries]",
                h.abbrs(),
                sets.iter().map(|w| w.btb_entries as f64),
            ),
        ],
        notes: "Paper shape: instruction working sets far exceed the 32 KiB L1-I; \
                branch working sets approach or exceed BTB capacity. Auth-G smallest, \
                RecO-P largest branch working set."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn working_sets_overwhelm_l1i_and_shape_holds() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let instr = fig.series("Instruction WS [KiB]").unwrap();
        let branch = fig.series("Branch WS [BTB entries]").unwrap();
        // At test scale (6%), the instruction WS should still be >= the
        // scaled equivalent of several L1-I sizes.
        assert!(instr.value("Mean").unwrap() > 10.0);
        // Auth-G sits at the small end, RecO-P at the large end (at tiny
        // test scales the exact ranks compress, so check top/bottom 3).
        let mut ranked: Vec<_> = branch.points.iter().filter(|(k, _)| k != "Mean").collect();
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1));
        let bottom: Vec<&str> = ranked[..3].iter().map(|(k, _)| k.as_str()).collect();
        let top: Vec<&str> = ranked[ranked.len() - 3..].iter().map(|(k, _)| k.as_str()).collect();
        assert!(bottom.contains(&"Auth-G"), "bottom 3 = {bottom:?}");
        assert!(top.contains(&"RecO-P"), "top 3 = {top:?}");
    }
}
