//! Fig. 3: prior-art front-end prefetchers on lukewarm invocations.
//!
//! Suite-mean speedup over NL, L1-I MPKI, and BPU MPKI (BTB + CBP split)
//! for NL, Jukebox, Boomerang, Boomerang+JB and the Ideal front-end.
//!
//! Paper shape: Boomerang +12%, Jukebox +16%, Boomerang+JB +20%, Ideal
//! +61%; the combination leaves high miss rates in all three front-end
//! structures (L1-I ≈ 26 MPKI, BTB ≈ 13, CBP ≈ 21).

use crate::figure::{Figure, Series};
use crate::figures::mean_speedup;
use crate::runner::Harness;
use ignite_engine::config::FrontEndConfig;

/// The configurations of this figure, in legend order.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::nl(),
        FrontEndConfig::jukebox(),
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ideal(),
    ]
}

/// Runs the experiment.
pub fn run(h: &Harness) -> Figure {
    let configs = configs();
    let matrix = h.run_matrix(&configs);
    let baseline = &matrix[0];
    let mut series = Vec::new();
    for (cfg, results) in configs.iter().zip(&matrix) {
        series.push(Series::new(
            cfg.name.clone(),
            [
                ("Speedup".to_string(), mean_speedup(baseline, results)),
                (
                    "L1I MPKI".to_string(),
                    results.iter().map(|r| r.l1i_mpki()).sum::<f64>() / results.len() as f64,
                ),
                (
                    "BTB MPKI".to_string(),
                    results.iter().map(|r| r.btb_mpki()).sum::<f64>() / results.len() as f64,
                ),
                (
                    "CBP MPKI".to_string(),
                    results.iter().map(|r| r.cbp_mpki()).sum::<f64>() / results.len() as f64,
                ),
            ],
        ));
    }
    Figure {
        id: "fig3".to_string(),
        caption: "Performance, L1-I MPKI and BPU MPKI of prior front-end prefetchers".to_string(),
        series,
        notes: "Paper shape: Boomerang < Jukebox < Boomerang+JB << Ideal; \
                Boomerang raises CBP MPKI versus NL (cold-CBP exposure)."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prior_art_ordering_matches_paper() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let s = |name: &str| fig.series(name).unwrap().value("Speedup").unwrap();
        assert!(s("Jukebox") > s("Boomerang"), "paper: Jukebox outperforms Boomerang");
        // Boomerang+JB combines both; at small test scales it races Jukebox
        // closely, so allow a small tolerance (it wins at paper scale).
        assert!(s("Boomerang + JB") > s("Boomerang"));
        assert!(s("Boomerang + JB") > s("Jukebox") * 0.97);
        assert!(s("Ideal") > s("Boomerang + JB") * 1.1, "ideal far ahead");
        // Boomerang increases conditional mispredictions vs NL (§3.1).
        let cbp = |name: &str| fig.series(name).unwrap().value("CBP MPKI").unwrap();
        assert!(cbp("Boomerang") > cbp("NL"));
        // Boomerang reduces the BTB miss rate vs NL.
        let btb = |name: &str| fig.series(name).unwrap().value("BTB MPKI").unwrap();
        assert!(btb("Boomerang") < btb("NL"));
    }
}
