//! Fig. 11: bimodal initialization policy ablation.
//!
//! Ignite restoring only L2 + BTB ("BTB only"), Ignite with the BIM state
//! *preserved* across invocations (upper bound), and Ignite initializing
//! restored conditionals to weakly not-taken (wNT) vs weakly taken (wT —
//! the shipping policy).
//!
//! Paper shape: wNT *hurts* (−3% vs BTB-only); wT helps (+6%) and matches
//! or slightly beats preserving the BIM outright.

use crate::figure::{Figure, Series};
use crate::figures::mean_speedup;
use crate::runner::Harness;
use ignite_engine::config::FrontEndConfig;
use ignite_uarch::bimodal::BimInitPolicy;

/// The configurations of this figure, in legend order.
pub fn configs() -> Vec<FrontEndConfig> {
    let mut preserved = FrontEndConfig::ignite().with_bim_policy(BimInitPolicy::None);
    preserved.name = "BIM preserved".to_string();
    preserved.policy.warm_bim = true;
    let mut btb_only = FrontEndConfig::ignite().with_bim_policy(BimInitPolicy::None);
    btb_only.name = "BTB only".to_string();
    let mut wnt = FrontEndConfig::ignite().with_bim_policy(BimInitPolicy::WeaklyNotTaken);
    wnt.name = "BIM wNT".to_string();
    let mut wt = FrontEndConfig::ignite().with_bim_policy(BimInitPolicy::WeaklyTaken);
    wt.name = "BIM wT".to_string();
    vec![btb_only, preserved, wnt, wt]
}

/// Runs the experiment.
pub fn run(h: &Harness) -> Figure {
    let baseline = h.run_config(&FrontEndConfig::nl());
    let configs = configs();
    let matrix = h.run_matrix(&configs);
    let mut series = Vec::new();
    for (cfg, results) in configs.iter().zip(&matrix) {
        let n = results.len() as f64;
        series.push(Series::new(
            cfg.name.clone(),
            [
                ("Speedup".to_string(), mean_speedup(&baseline, results)),
                ("BTB MPKI".to_string(), results.iter().map(|r| r.btb_mpki()).sum::<f64>() / n),
                ("CBP MPKI".to_string(), results.iter().map(|r| r.cbp_mpki()).sum::<f64>() / n),
            ],
        ));
    }
    Figure {
        id: "fig11".to_string(),
        caption: "BIM initialization policies for Ignite".to_string(),
        series,
        notes: "Paper shape: weakly not-taken initialization degrades performance \
                vs not touching the BIM; weakly taken helps and rivals preserving \
                the BIM state outright."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weakly_taken_is_the_right_policy() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let s = |name: &str| fig.series(name).unwrap().value("Speedup").unwrap();
        let btb_only = s("BTB only");
        let wnt = s("BIM wNT");
        let wt = s("BIM wT");
        let preserved = s("BIM preserved");
        assert!(wt > btb_only, "wT must beat BTB-only: {wt} vs {btb_only}");
        assert!(wt > wnt, "wT must beat wNT: {wt} vs {wnt}");
        assert!(wnt <= btb_only * 1.005, "wNT must not help: {wnt} vs {btb_only}");
        // wT recovers a solid fraction of the preserved-BIM gain (the paper
        // finds it matches preserving outright).
        if preserved > btb_only {
            let fraction = (wt - btb_only) / (preserved - btb_only);
            assert!(fraction > 0.3, "wT fraction of preserved gain = {fraction}");
        }
    }

    #[test]
    fn cbp_mpki_tracks_policy_quality() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let cbp = |name: &str| fig.series(name).unwrap().value("CBP MPKI").unwrap();
        assert!(cbp("BIM wT") < cbp("BIM wNT"));
        assert!(cbp("BIM wT") < cbp("BTB only"));
    }
}
