//! Extension experiments beyond the paper's figures.
//!
//! * [`adaptation`] — §4.2 "Divergence at replay time" / §4.3 double
//!   buffering: when a function's behaviour shifts between invocations,
//!   always-on recording (the default, double-buffered operation) re-learns
//!   the new working set within one invocation, while a record-once policy
//!   degrades permanently.
//! * [`metadata_footprint`] — §4/§5.3: per-function metadata size against
//!   the 120 KiB budget (the paper's scalability argument: thousands of
//!   functions, no on-chip state).

use crate::figure::{Figure, Series};
use crate::runner::Harness;
use ignite_core::os::ControlRegisters;
use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::Machine;
use ignite_engine::sim::run_invocation;

/// Invocation index at which the simulated behaviour shift happens.
const SHIFT_AT: u64 = 3;
/// Invocations simulated per mode.
const INVOCATIONS: u64 = 7;
/// Site-deviation probability after the shift (vs the 3% default).
const SHIFTED_NOISE: f64 = 0.30;

/// Runs the adaptation experiment.
///
/// Series are per-invocation CPIs for the two recording policies; the
/// behaviour shift occurs before invocation `3`.
pub fn adaptation(h: &Harness) -> Figure {
    let f = &h.functions()[1];
    let mut series = Vec::new();
    for (label, record_always) in [("Record once", false), ("Double-buffered (default)", true)] {
        let mut m = Machine::new(&h.uarch, &FrontEndConfig::ignite());
        let mut points = Vec::new();
        for inv in 0..INVOCATIONS {
            if inv > 0 {
                m.between_invocations();
            }
            if inv == 1 && !record_always {
                // Freeze the metadata recorded during invocation 0.
                m.ignite
                    .as_mut()
                    .expect("ignite configured")
                    .os_mut()
                    .set_control(ControlRegisters { record: false, replay: true });
            }
            let mut fi = f.clone();
            if inv >= SHIFT_AT {
                fi.noise = SHIFTED_NOISE;
            }
            // Keep the walker seed fixed after the shift so the *new*
            // behaviour is itself stable (a persistent phase change).
            let seed = if inv >= SHIFT_AT { SHIFT_AT + 1000 } else { inv };
            let r = run_invocation(&mut m, &fi, seed);
            points.push((format!("inv{inv}"), r.cpi()));
        }
        series.push(Series { label: label.to_string(), points });
    }
    Figure {
        id: "ext-adaptation".to_string(),
        caption: "Behaviour shift at invocation 3: record-once vs double-buffered".to_string(),
        series,
        notes: "Expected: both policies degrade at the shift; the \
                double-buffered recorder recovers within one invocation, the \
                frozen record does not (§4.2-4.3)."
            .to_string(),
    }
}

/// Validates the lukewarm flush protocol against *real* interleaving.
///
/// The paper (and its predecessor, Jukebox) models interleaving thousands
/// of co-located functions with a stressor / state flush, citing evidence
/// that the microarchitectural effect is equivalent (§2.2, §5.3). This
/// experiment checks that equivalence in the simulator: the
/// function-under-test runs back-to-back while `k` *other* suite functions
/// execute in between — no artificial flush — thrashing the caches, BTB
/// and CBP naturally. As `k` grows, the measured CPI must approach the
/// flush-protocol CPI.
pub fn interleaving(h: &Harness) -> Figure {
    let fut = &h.functions()[0];
    let warm_cfg =
        FrontEndConfig::nl().with_policy("(warm)", ignite_engine::StatePolicy::back_to_back());
    let mut points = Vec::new();
    for k in [0usize, 1, 2, 4, 8, 19] {
        let mut m = Machine::new(&h.uarch, &warm_cfg);
        // Warm the function-under-test.
        run_invocation(&mut m, fut, 0);
        let mut cpis = Vec::new();
        for round in 1..=2u64 {
            // Interleave k other functions (no flush between them either).
            for other in h.functions().iter().skip(1).take(k) {
                run_invocation(&mut m, other, round);
            }
            let r = run_invocation(&mut m, fut, round);
            cpis.push(r.cpi());
        }
        points.push((format!("{k} interleaved"), cpis.iter().sum::<f64>() / cpis.len() as f64));
    }
    // Reference: the paper's flush protocol.
    let mut m = Machine::new(&h.uarch, &FrontEndConfig::nl());
    run_invocation(&mut m, fut, 0);
    let mut cpis = Vec::new();
    for round in 1..=2u64 {
        m.between_invocations();
        cpis.push(run_invocation(&mut m, fut, round).cpi());
    }
    points.push(("flush protocol".to_string(), cpis.iter().sum::<f64>() / cpis.len() as f64));
    Figure {
        id: "ext-interleaving".to_string(),
        caption: "Real function interleaving vs the lukewarm flush protocol (NL, CPI of \
                  the function under test)"
            .to_string(),
        series: vec![Series { label: "CPI".to_string(), points }],
        notes: "Expected: CPI rises with the number of interleaved functions \
                toward the flush-protocol CPI, which models thousands of \
                co-located functions (the suite's 20 functions overflow the BTB \
                and L2 but only partially thrash the 8 MiB LLC at small scales) \
                — the equivalence the paper's methodology (§5.3) relies on."
            .to_string(),
    }
}

/// Per-function metadata footprint after one recorded invocation.
pub fn metadata_footprint(h: &Harness) -> Figure {
    let mut kib = Vec::new();
    let mut bits_per_entry = Vec::new();
    for (abbr, f) in h.abbrs().iter().zip(h.functions()) {
        let mut m = Machine::new(&h.uarch, &FrontEndConfig::ignite());
        run_invocation(&mut m, f, 0);
        let ignite = m.ignite.as_ref().expect("ignite configured");
        let bytes = ignite.os().metadata_bytes(f.container).unwrap_or(0);
        let entries = m.btb.stats().insertions.max(1);
        kib.push((abbr.clone(), bytes as f64 / 1024.0));
        bits_per_entry.push((abbr.clone(), bytes as f64 * 8.0 / entries as f64));
    }
    Figure {
        id: "ext-metadata".to_string(),
        caption: "Per-function Ignite metadata footprint (budget: 120 KiB)".to_string(),
        series: vec![
            Series { label: "Metadata [KiB]".to_string(), points: kib },
            Series { label: "Bits/record".to_string(), points: bits_per_entry },
        ],
        notes: "The paper stores all metadata in main memory, ~120 KiB max per \
                function — thousands of co-resident functions need no on-chip \
                state."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_buffering_recovers_from_behaviour_shift() {
        let h = Harness::for_tests();
        let fig = adaptation(&h);
        let last = format!("inv{}", INVOCATIONS - 1);
        let frozen = fig.series("Record once").unwrap().value(&last).unwrap();
        let fresh = fig.series("Double-buffered (default)").unwrap().value(&last).unwrap();
        assert!(
            fresh < frozen,
            "double buffering must recover after the shift: {fresh} vs {frozen}"
        );
        // Before the shift the two policies behave identically.
        let pre = "inv2";
        let a = fig.series("Record once").unwrap().value(pre).unwrap();
        let b = fig.series("Double-buffered (default)").unwrap().value(pre).unwrap();
        assert!((a - b).abs() / a < 0.08, "pre-shift equivalence: {a} vs {b}");
    }

    #[test]
    fn interleaving_converges_to_the_flush_protocol() {
        let h = Harness::for_tests();
        let fig = interleaving(&h);
        let cpi = |x: &str| fig.series("CPI").unwrap().value(x).unwrap();
        let warm = cpi("0 interleaved");
        let max_interleaved = cpi("19 interleaved");
        let flush = cpi("flush protocol");
        assert!(
            max_interleaved > warm * 1.04,
            "interleaving must degrade performance: {max_interleaved} vs warm {warm}"
        );
        assert!(
            max_interleaved >= cpi("2 interleaved") * 0.95,
            "degradation grows with co-location"
        );
        // The flush protocol models *thousands* of co-located functions, so
        // it upper-bounds what 19 can do — especially at test scale, where
        // 19 functions do not overflow the LLC. At paper scale the gap
        // closes (see the ext-interleaving figure in EXPERIMENTS.md).
        assert!(
            max_interleaved <= flush * 1.05,
            "flush protocol bounds 19-way interleaving: {max_interleaved} vs {flush}"
        );
        assert!(warm < flush, "flush is strictly worse than back-to-back");
    }

    #[test]
    fn metadata_fits_the_budget_and_compresses() {
        let h = Harness::for_tests();
        let fig = metadata_footprint(&h);
        for (abbr, kib) in &fig.series("Metadata [KiB]").unwrap().points {
            assert!(*kib <= 120.0, "{abbr} metadata {kib} KiB exceeds the budget");
            assert!(*kib > 0.0, "{abbr} recorded nothing");
        }
        for (abbr, bits) in &fig.series("Bits/record").unwrap().points {
            assert!(*bits < 60.0, "{abbr}: {bits} bits/record (naive format is 100)");
        }
    }
}
