//! Fig. 12: temporal-streaming prefetchers (§6.5).
//!
//! Confluence alone, Confluence + Ignite, and FDP + Ignite (the paper's
//! "Ignite" configuration), as suite-mean speedup over NL plus L1-I and
//! BPU MPKI.
//!
//! Paper shape: Confluence alone gains little on lukewarm invocations
//! (cold-BPU resteers keep killing its streams); pairing it with Ignite
//! cuts L1-I misses ~28% and BPU misses ~50%; FDP+Ignite is slightly
//! better still.

use crate::figure::{Figure, Series};
use crate::figures::mean_speedup;
use crate::runner::Harness;
use ignite_engine::config::FrontEndConfig;

/// The configurations of this figure, in legend order.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::confluence(),
        FrontEndConfig::confluence_ignite(),
        FrontEndConfig::ignite().with_policy("(FDP)", ignite_engine::StatePolicy::lukewarm()),
    ]
}

/// Runs the experiment.
pub fn run(h: &Harness) -> Figure {
    let baseline = h.run_config(&FrontEndConfig::nl());
    let configs = configs();
    let matrix = h.run_matrix(&configs);
    let mut series = Vec::new();
    for (cfg, results) in configs.iter().zip(&matrix) {
        let n = results.len() as f64;
        series.push(Series::new(
            cfg.name.clone(),
            [
                ("Speedup".to_string(), mean_speedup(&baseline, results)),
                ("L1I MPKI".to_string(), results.iter().map(|r| r.l1i_mpki()).sum::<f64>() / n),
                ("BTB MPKI".to_string(), results.iter().map(|r| r.btb_mpki()).sum::<f64>() / n),
                ("CBP MPKI".to_string(), results.iter().map(|r| r.cbp_mpki()).sum::<f64>() / n),
            ],
        ));
    }
    Figure {
        id: "fig12".to_string(),
        caption: "Temporal-streaming prefetchers with and without Ignite".to_string(),
        series,
        notes: "Paper shape: Confluence alone gains little; Confluence+Ignite \
                sharply reduces L1-I and BPU MPKI; FDP+Ignite is slightly ahead."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ignite_rescues_temporal_streaming() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let s = |name: &str| fig.series(name).unwrap().value("Speedup").unwrap();
        let confluence = s("Confluence");
        let with_ignite = s("Confluence + Ignite");
        let fdp_ignite = s("Ignite (FDP)");
        assert!(with_ignite > confluence, "{with_ignite} vs {confluence}");
        assert!(
            fdp_ignite >= with_ignite * 0.90,
            "FDP+Ignite comparable: {fdp_ignite} vs {with_ignite}"
        );
        assert!(fdp_ignite > confluence, "Ignite beats bare Confluence either way");
        // BPU MPKI drops substantially with Ignite.
        let bpu = |name: &str| {
            let f = fig.series(name).unwrap();
            f.value("BTB MPKI").unwrap() + f.value("CBP MPKI").unwrap()
        };
        assert!(bpu("Confluence + Ignite") < bpu("Confluence") * 0.75);
    }
}
