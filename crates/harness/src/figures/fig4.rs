//! Fig. 4: sensitivity of Boomerang+JB to warm BPU state.
//!
//! Boomerang+JB under lukewarm state, with a preserved BTB, with preserved
//! BTB + CBP, against the Ideal front-end.
//!
//! Paper shape: a warm BTB adds ~4% speedup; warm BTB + CBP adds a further
//! ~10%, with large BPU MPKI reductions at each step.

use crate::figure::{Figure, Series};
use crate::figures::mean_speedup;
use crate::runner::Harness;
use ignite_engine::config::{FrontEndConfig, StatePolicy};

/// The configurations of this figure, in legend order.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::boomerang_jukebox()
            .with_policy("+ warm BTB", StatePolicy::lukewarm_warm_btb()),
        FrontEndConfig::boomerang_jukebox()
            .with_policy("+ warm BTB + warm CBP", StatePolicy::lukewarm_warm_bpu()),
        FrontEndConfig::ideal(),
    ]
}

/// Runs the experiment.
pub fn run(h: &Harness) -> Figure {
    let baseline = h.run_config(&FrontEndConfig::nl());
    let configs = configs();
    let matrix = h.run_matrix(&configs);
    let mut series = Vec::new();
    for (cfg, results) in configs.iter().zip(&matrix) {
        let n = results.len() as f64;
        series.push(Series::new(
            cfg.name.clone(),
            [
                ("Speedup".to_string(), mean_speedup(&baseline, results)),
                ("L1I MPKI".to_string(), results.iter().map(|r| r.l1i_mpki()).sum::<f64>() / n),
                ("BTB MPKI".to_string(), results.iter().map(|r| r.btb_mpki()).sum::<f64>() / n),
                ("CBP MPKI".to_string(), results.iter().map(|r| r.cbp_mpki()).sum::<f64>() / n),
            ],
        ));
    }
    Figure {
        id: "fig4".to_string(),
        caption: "Boomerang+JB sensitivity to preserved BPU state".to_string(),
        series,
        notes: "Paper shape: warm BTB helps; warm BTB+CBP helps substantially more; \
                both reduce L1-I misses by keeping the prefetcher on-path."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_bpu_state_monotonically_helps() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let s = |name: &str| fig.series(name).unwrap().value("Speedup").unwrap();
        let base = s("Boomerang + JB");
        let warm_btb = s("Boomerang + JB + warm BTB");
        let warm_bpu = s("Boomerang + JB + warm BTB + warm CBP");
        assert!(warm_btb > base, "warm BTB must help: {warm_btb} vs {base}");
        assert!(warm_bpu > warm_btb, "warm CBP must add more: {warm_bpu} vs {warm_btb}");
        assert!(s("Ideal") >= warm_bpu * 0.99);
        // MPKI story corroborates.
        let btb = |name: &str| fig.series(name).unwrap().value("BTB MPKI").unwrap();
        assert!(btb("Boomerang + JB + warm BTB") < btb("Boomerang + JB") * 0.7);
        let cbp = |name: &str| fig.series(name).unwrap().value("CBP MPKI").unwrap();
        assert!(cbp("Boomerang + JB + warm BTB + warm CBP") < cbp("Boomerang + JB + warm BTB"));
    }
}
