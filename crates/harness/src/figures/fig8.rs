//! Fig. 8: headline per-function performance results.
//!
//! Speedup over NL for Boomerang, Boomerang+JB, Ignite, Ignite+TAGE and
//! the Ideal front-end, per function and averaged.
//!
//! Paper shape: Ignite 21–62% (43% mean) over NL — 3.6× Boomerang's and
//! 2.2× Boomerang+JB's improvement; NodeJS functions benefit most;
//! Ignite+TAGE ≈ 50%; Ideal ≈ 61%.

use crate::figure::Figure;
use crate::figures::per_function_series;
use crate::runner::Harness;
use ignite_engine::config::FrontEndConfig;

/// The configurations of this figure, in legend order.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ignite(),
        FrontEndConfig::ignite_tage(),
        FrontEndConfig::ideal(),
    ]
}

/// Runs the experiment.
pub fn run(h: &Harness) -> Figure {
    let baseline = h.run_config(&FrontEndConfig::nl());
    let configs = configs();
    let matrix = h.run_matrix(&configs);
    let mut series = Vec::new();
    for (cfg, results) in configs.iter().zip(&matrix) {
        series.push(per_function_series(
            &cfg.name,
            h.abbrs(),
            baseline.iter().zip(results).map(|(b, r)| b.cpi() / r.cpi().max(1e-12)),
        ));
    }
    Figure {
        id: "fig8".to_string(),
        caption: "Speedup over the next-line baseline, per function".to_string(),
        series,
        notes: "Paper shape: Boomerang +12%, Boomerang+JB +20%, Ignite +43%, \
                Ignite+TAGE +50%, Ideal +61% (means)."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_ordering_and_magnitudes() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let mean = |name: &str| fig.series(name).unwrap().value("Mean").unwrap();
        let boomerang = mean("Boomerang");
        let bjb = mean("Boomerang + JB");
        let ignite = mean("Ignite");
        let ignite_tage = mean("Ignite + TAGE");
        let ideal = mean("Ideal");
        assert!(boomerang > 1.0);
        assert!(bjb > boomerang);
        assert!(ignite > bjb, "Ignite {ignite} must beat Boomerang+JB {bjb}");
        assert!(ignite_tage >= ignite);
        assert!(ideal > ignite_tage);
        // Ignite's improvement is a large multiple of Boomerang+JB's.
        assert!(
            (ignite - 1.0) > 1.5 * (bjb - 1.0),
            "Ignite gain {} vs B+JB gain {}",
            ignite - 1.0,
            bjb - 1.0
        );
    }

    #[test]
    fn every_function_gains_from_ignite() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let s = fig.series("Ignite").unwrap();
        for (abbr, v) in &s.points {
            assert!(*v > 1.0, "{abbr} did not speed up: {v}");
        }
    }
}
