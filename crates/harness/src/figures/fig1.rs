//! Fig. 1: CPI stacks for interleaved (lukewarm) vs. back-to-back
//! execution, per function.
//!
//! The paper's hardware experiment on an Ice Lake Xeon; here the same
//! comparison runs in the simulator (the substitution the paper itself
//! makes for §2.3 onward). Expected shape: interleaved CPI is 2× or more
//! the back-to-back CPI, with front-end stalls (fetch + bad speculation)
//! responsible for roughly two-thirds of the degradation.

use crate::figure::Figure;
use crate::figures::per_function_series;
use crate::runner::Harness;
use ignite_engine::config::{FrontEndConfig, StatePolicy};
use ignite_engine::topdown::Category;

/// Runs the experiment.
pub fn run(h: &Harness) -> Figure {
    let interleaved = h.run_config(&FrontEndConfig::nl());
    let warm =
        h.run_config(&FrontEndConfig::nl().with_policy("(warm)", StatePolicy::back_to_back()));

    let mut series = Vec::new();
    for (prefix, results) in [("Interleaved", &interleaved), ("Back-to-back", &warm)] {
        for cat in Category::ALL {
            series.push(per_function_series(
                &format!("{prefix} {cat}"),
                h.abbrs(),
                results.iter().map(|r| r.topdown.get(cat) / r.instructions.max(1) as f64),
            ));
        }
        series.push(per_function_series(
            &format!("{prefix} CPI"),
            h.abbrs(),
            results.iter().map(|r| r.cpi()),
        ));
    }

    Figure {
        id: "fig1".to_string(),
        caption: "CPI stack: interleaved (lukewarm) vs back-to-back execution".to_string(),
        series,
        notes: "Paper shape: interleaved CPI 2x+ of back-to-back; front-end stalls \
                (fetch + bad speculation) are ~2/3 of the degradation."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_is_clearly_slower_and_frontend_dominated() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let luke = fig.series("Interleaved CPI").unwrap().value("Mean").unwrap();
        let warm = fig.series("Back-to-back CPI").unwrap().value("Mean").unwrap();
        assert!(luke > warm * 1.4, "interleaved {luke} vs warm {warm}");

        // Front-end share of the degradation dominates.
        let d_fetch = fig.series("Interleaved Fetch Bound").unwrap().value("Mean").unwrap()
            - fig.series("Back-to-back Fetch Bound").unwrap().value("Mean").unwrap();
        let d_bad = fig.series("Interleaved Bad Speculation").unwrap().value("Mean").unwrap()
            - fig.series("Back-to-back Bad Speculation").unwrap().value("Mean").unwrap();
        let d_total = luke - warm;
        assert!(
            (d_fetch + d_bad) / d_total > 0.5,
            "front-end share {}",
            (d_fetch + d_bad) / d_total
        );
    }
}
