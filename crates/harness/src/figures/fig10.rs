//! Fig. 10: memory-bandwidth breakdown per invocation.
//!
//! Four traffic categories: useful instruction bytes, useless (wrong-path)
//! instruction bytes, record metadata (streamed to memory) and replay
//! metadata (streamed from memory), for NL, Boomerang, Boomerang+JB and
//! Ignite — worst case, with record and replay running simultaneously.
//!
//! Paper shape: ~25% of NL's traffic is useless; Boomerang(+JB) fetch even
//! more wrong-path bytes; Ignite cuts wrong-path traffic enough that, even
//! with its metadata streams, total bandwidth is *below* Boomerang's
//! (−8.6%) and Boomerang+JB's (−17%).

use crate::figure::{Figure, Series};
use crate::runner::Harness;
use ignite_engine::config::FrontEndConfig;

/// The configurations of this figure, in legend order.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::nl(),
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ignite(),
    ]
}

/// Runs the experiment. Values are KiB per invocation (suite mean).
pub fn run(h: &Harness) -> Figure {
    let configs = configs();
    let matrix = h.run_matrix(&configs);
    let invocations = h.opts.measured_invocations.max(1) as f64;
    let mut series = Vec::new();
    for (cfg, results) in configs.iter().zip(&matrix) {
        let n = results.len() as f64 * invocations;
        let avg = |f: &dyn Fn(&ignite_engine::metrics::Traffic) -> u64| {
            results.iter().map(|r| f(&r.traffic) as f64).sum::<f64>() / n / 1024.0
        };
        series.push(Series::new(
            cfg.name.clone(),
            [
                ("Useful Instructions [KiB]".to_string(), avg(&|t| t.useful_instruction_bytes)),
                ("Useless Instructions [KiB]".to_string(), avg(&|t| t.useless_instruction_bytes)),
                ("Record Metadata [KiB]".to_string(), avg(&|t| t.record_metadata_bytes)),
                ("Replay Metadata [KiB]".to_string(), avg(&|t| t.replay_metadata_bytes)),
                ("Total [KiB]".to_string(), avg(&|t| t.total())),
            ],
        ));
    }
    Figure {
        id: "fig10".to_string(),
        caption: "Memory bandwidth per invocation, by category".to_string(),
        series,
        notes: "Paper shape: Boomerang(+JB) inflate wrong-path traffic over NL; \
                Ignite reduces total bandwidth below Boomerang despite paying for \
                record + replay metadata."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_shape_matches_paper() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let get = |cfg: &str, cat: &str| fig.series(cfg).unwrap().value(cat).unwrap();
        // Boomerang fetches more useless bytes than NL.
        assert!(
            get("Boomerang", "Useless Instructions [KiB]")
                >= get("NL", "Useless Instructions [KiB]")
        );
        // Ignite's wrong-path traffic is the lowest of the prefetchers.
        assert!(
            get("Ignite", "Useless Instructions [KiB]")
                < get("Boomerang + JB", "Useless Instructions [KiB]")
        );
        // Ignite pays metadata traffic both ways.
        assert!(get("Ignite", "Record Metadata [KiB]") > 0.0);
        assert!(get("Ignite", "Replay Metadata [KiB]") > 0.0);
        // And its total stays in Boomerang+JB's neighbourhood even at tiny
        // test scales, where the fixed metadata cost cannot amortize (at
        // paper scale Ignite's total drops below Boomerang+JB's — asserted
        // by the figure_shapes integration test).
        assert!(
            get("Ignite", "Total [KiB]") < get("Boomerang + JB", "Total [KiB]") * 1.2,
            "{} vs {}",
            get("Ignite", "Total [KiB]"),
            get("Boomerang + JB", "Total [KiB]")
        );
    }
}
