//! Fig. 5: which CBP component matters — BIM vs TAGE.
//!
//! Boomerang+JB with a warm BTB, then additionally preserving only the
//! bimodal (BIM), then the full CBP (BIM + TAGE).
//!
//! Paper shape: warm BIM alone recovers about half of the full-CBP
//! benefit (19.3 → 14.5 → 10 MPKI) despite being less than 1/10 the size.

use crate::figure::{Figure, Series};
use crate::figures::mean_speedup;
use crate::runner::Harness;
use ignite_engine::config::{FrontEndConfig, StatePolicy};

/// The configurations of this figure, in legend order.
pub fn configs() -> Vec<FrontEndConfig> {
    vec![
        FrontEndConfig::boomerang_jukebox()
            .with_policy("(BTB warm, CBP cold)", StatePolicy::lukewarm_warm_btb()),
        FrontEndConfig::boomerang_jukebox()
            .with_policy("+ BIM warm", StatePolicy::lukewarm_warm_btb_bim()),
        FrontEndConfig::boomerang_jukebox()
            .with_policy("+ TAGE warm", StatePolicy::lukewarm_warm_bpu()),
    ]
}

/// Runs the experiment.
pub fn run(h: &Harness) -> Figure {
    let baseline = h.run_config(&FrontEndConfig::nl());
    let configs = configs();
    let matrix = h.run_matrix(&configs);
    let mut series = Vec::new();
    for (cfg, results) in configs.iter().zip(&matrix) {
        let n = results.len() as f64;
        series.push(Series::new(
            cfg.name.clone(),
            [
                ("Speedup".to_string(), mean_speedup(&baseline, results)),
                ("CBP MPKI".to_string(), results.iter().map(|r| r.cbp_mpki()).sum::<f64>() / n),
            ],
        ));
    }
    Figure {
        id: "fig5".to_string(),
        caption: "CBP-state sensitivity on Boomerang+JB with a warm BTB".to_string(),
        series,
        notes: "Paper shape: warm BIM alone achieves ~51% of the full warm-CBP \
                benefit in both MPKI and performance."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bim_recovers_substantial_fraction_of_cbp_benefit() {
        let h = Harness::for_tests();
        let fig = run(&h);
        let cbp = |name: &str| fig.series(name).unwrap().value("CBP MPKI").unwrap();
        let cold = cbp("Boomerang + JB (BTB warm, CBP cold)");
        let bim = cbp("Boomerang + JB + BIM warm");
        let full = cbp("Boomerang + JB + TAGE warm");
        assert!(bim < cold, "warm BIM reduces mispredictions: {bim} vs {cold}");
        assert!(full <= bim, "full warm CBP at least as good: {full} vs {bim}");
        // BIM alone covers a meaningful fraction of the full benefit.
        let fraction = (cold - bim) / (cold - full).max(1e-9);
        assert!(fraction > 0.3, "BIM fraction of CBP benefit = {fraction}");
    }
}
