//! Property-based tests for the microarchitectural substrate.

use proptest::prelude::*;

use ignite_uarch::addr::{lines_spanned, Addr, LINE_BYTES, VA_MASK};
use ignite_uarch::bimodal::{Bimodal, BimodalConfig, Counter};
use ignite_uarch::btb::{BranchKind, Btb, BtbConfig, BtbEntry};
use ignite_uarch::cache::{CacheGeometry, FillKind, SetAssocCache};
use ignite_uarch::cbp::Cbp;
use ignite_uarch::config::UarchConfig;
use ignite_uarch::hierarchy::{Hierarchy, Level};
use ignite_uarch::tlb::{Itlb, TlbConfig};

proptest! {
    // ---- addresses ----

    #[test]
    fn addr_masks_to_va_space(raw in any::<u64>()) {
        prop_assert!(Addr::new(raw).as_u64() <= VA_MASK);
    }

    #[test]
    fn addr_delta_roundtrips(a in 0u64..(1 << 47), b in 0u64..(1 << 47)) {
        let (a, b) = (Addr::new(a), Addr::new(b));
        prop_assert_eq!(a.offset(a.delta_to(b)), b);
    }

    #[test]
    fn line_alignment_invariants(raw in any::<u64>()) {
        let a = Addr::new(raw);
        prop_assert_eq!(a.line().as_u64() % LINE_BYTES, 0);
        prop_assert!(a.line() <= a);
        prop_assert!(a.as_u64() - a.line().as_u64() < LINE_BYTES);
    }

    #[test]
    fn lines_spanned_covers_range(start in 0u64..(1 << 30), bytes in 1u64..4096) {
        let lines: Vec<Addr> = lines_spanned(Addr::new(start), bytes).collect();
        // First line contains the start, last line contains the final byte.
        prop_assert_eq!(lines.first().copied(), Some(Addr::new(start).line()));
        prop_assert_eq!(
            lines.last().copied(),
            Some(Addr::new(start + bytes - 1).line())
        );
        // Consecutive and non-overlapping.
        for pair in lines.windows(2) {
            prop_assert_eq!(pair[0].next_line(), pair[1]);
        }
    }

    // ---- caches ----

    #[test]
    fn cache_lookup_after_fill_always_hits(addrs in prop::collection::vec(0u64..(1 << 22), 1..200)) {
        let mut cache = SetAssocCache::new(CacheGeometry {
            size_bytes: 4 * 1024,
            ways: 4,
            line_bytes: 64,
        });
        for &raw in &addrs {
            let a = Addr::new(raw);
            cache.fill(a, FillKind::Demand);
            // A line just filled must be resident (fills never self-evict).
            prop_assert!(cache.lookup(a), "lost line just filled: {a}");
        }
    }

    #[test]
    fn cache_occupancy_never_exceeds_capacity(addrs in prop::collection::vec(0u64..(1 << 24), 1..300)) {
        let geometry = CacheGeometry { size_bytes: 2 * 1024, ways: 2, line_bytes: 64 };
        let mut cache = SetAssocCache::new(geometry);
        for &raw in &addrs {
            cache.fill(Addr::new(raw), FillKind::Prefetch);
            prop_assert!(cache.occupancy() <= geometry.lines());
        }
    }

    #[test]
    fn cache_stats_balance(ops in prop::collection::vec((0u64..(1 << 16), any::<bool>()), 1..300)) {
        let mut cache = SetAssocCache::new(CacheGeometry {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
        });
        for &(raw, fill) in &ops {
            let a = Addr::new(raw);
            if fill {
                cache.fill(a, FillKind::Demand);
            } else {
                cache.lookup(a);
            }
        }
        let s = cache.stats();
        prop_assert_eq!(s.demand.hits + s.demand.misses, s.demand.lookups);
    }

    // ---- hierarchy ----

    #[test]
    fn hierarchy_ready_times_never_precede_request(
        addrs in prop::collection::vec(0u64..(1 << 20), 1..100)
    ) {
        let mut h = Hierarchy::new(&UarchConfig::tiny_for_tests().hierarchy);
        let mut now = 0;
        for &raw in &addrs {
            let r = h.fetch(Addr::new(raw), now);
            prop_assert!(r.ready_at > now, "zero-latency fetch");
            now = r.ready_at;
        }
    }

    #[test]
    fn hierarchy_second_fetch_is_faster(raw in 0u64..(1 << 20)) {
        let mut h = Hierarchy::new(&UarchConfig::tiny_for_tests().hierarchy);
        let a = Addr::new(raw);
        let first = h.fetch(a, 0);
        let second = h.fetch(a, first.ready_at);
        prop_assert_eq!(second.served_by, Level::L1I);
        prop_assert!(second.ready_at - first.ready_at <= first.ready_at);
    }

    #[test]
    fn memory_traffic_is_line_granular(addrs in prop::collection::vec(0u64..(1 << 22), 1..100)) {
        let mut h = Hierarchy::new(&UarchConfig::tiny_for_tests().hierarchy);
        for &raw in &addrs {
            h.fetch(Addr::new(raw), 0);
        }
        prop_assert_eq!(h.memory_read_bytes() % LINE_BYTES, 0);
        prop_assert!(h.untouched_fill_bytes() <= h.memory_read_bytes());
    }

    // ---- BTB ----

    #[test]
    fn btb_lookup_after_insert_hits(pcs in prop::collection::vec(0u64..(1 << 16), 1..100)) {
        let mut btb = Btb::new(&BtbConfig { entries: 256, ways: 4 });
        for &raw in &pcs {
            let pc = Addr::new(raw);
            btb.insert(BtbEntry::new(pc, pc + 16, BranchKind::Conditional), false);
            prop_assert!(btb.lookup(pc).is_some());
        }
    }

    #[test]
    fn btb_occupancy_bounded(pcs in prop::collection::vec(0u64..(1 << 20), 1..400)) {
        let mut btb = Btb::new(&BtbConfig { entries: 64, ways: 4 });
        for &raw in &pcs {
            let pc = Addr::new(raw);
            btb.insert(BtbEntry::new(pc, pc + 16, BranchKind::Call), false);
        }
        prop_assert!(btb.occupancy() <= 64);
    }

    #[test]
    fn btb_restored_counter_never_negative_or_leaking(
        ops in prop::collection::vec((0u64..256, 0u8..3), 1..300)
    ) {
        let mut btb = Btb::new(&BtbConfig { entries: 32, ways: 2 });
        for &(raw, op) in &ops {
            let pc = Addr::new(raw << 2);
            match op {
                0 => {
                    btb.insert(BtbEntry::new(pc, pc + 8, BranchKind::Conditional), true);
                }
                1 => {
                    btb.insert(BtbEntry::new(pc, pc + 8, BranchKind::Conditional), false);
                }
                _ => {
                    btb.lookup(pc);
                }
            }
            // The untouched-restored counter can never exceed the number of
            // valid entries.
            prop_assert!(btb.restored_untouched() <= btb.occupancy() as u64);
        }
        btb.flush();
        prop_assert_eq!(btb.restored_untouched(), 0);
    }

    // ---- bimodal ----

    #[test]
    fn bimodal_counter_transitions_are_saturating(v in 0u8..4, outcomes in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut c = Counter::from_value(v);
        for &taken in &outcomes {
            c = c.update(taken);
            prop_assert!(c.value() <= 3);
        }
    }

    #[test]
    fn bimodal_converges_to_constant_direction(pc in 0u64..(1 << 20), dir in any::<bool>()) {
        let mut bim = Bimodal::new(&BimodalConfig { size_bytes: 512 });
        let a = Addr::new(pc);
        for _ in 0..4 {
            bim.update(a, dir);
        }
        prop_assert_eq!(bim.predict(a), dir);
    }

    // ---- CBP ----

    #[test]
    fn cbp_initial_plus_subsequent_equals_total(
        branches in prop::collection::vec((0u64..64, any::<bool>()), 1..200)
    ) {
        let mut cbp = Cbp::new(&UarchConfig::tiny_for_tests().cbp);
        cbp.begin_invocation();
        for &(raw, taken) in &branches {
            let pc = Addr::new(0x1000 + raw * 4);
            let p = cbp.predict(pc);
            cbp.resolve(pc, taken, Addr::new(0x9000), &p);
        }
        let s = cbp.stats();
        prop_assert_eq!(
            s.initial_mispredictions + s.subsequent_mispredictions,
            s.mispredictions
        );
        prop_assert!(s.mispredictions <= s.predictions);
    }

    // ---- ITLB ----

    #[test]
    fn itlb_same_page_never_walks_twice_in_a_row(addr in 0u64..(1 << 30)) {
        let mut tlb = Itlb::new(&TlbConfig { entries: 16, ways: 4, walk_latency: 50 });
        let a = Addr::new(addr);
        tlb.translate(a);
        prop_assert_eq!(tlb.translate(a), 0);
    }
}
