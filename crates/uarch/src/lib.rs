#![warn(missing_docs)]
//! Microarchitectural substrate for the Ignite front-end simulator.
//!
//! This crate provides the building blocks that the Ignite paper's evaluation
//! platform (gem5 configured as an Intel Ice Lake-like core) offers, rebuilt
//! from scratch in safe Rust:
//!
//! * [`addr`] — virtual addresses, cache lines, pages, regions.
//! * [`cache`] — generic set-associative caches with LRU replacement and
//!   per-line prefetch/restore/touch bookkeeping.
//! * [`hierarchy`] — the L1-I → L2 → LLC → DRAM instruction path with
//!   in-flight miss tracking and memory-traffic accounting.
//! * [`tlb`] — an instruction TLB with page-walk latency.
//! * [`btb`] — a set-associative branch target buffer with insertion
//!   observation (the hook Ignite's recorder uses).
//! * [`bimodal`] / [`tage`] / [`cbp`] — the conditional branch predictor:
//!   a 2-bit bimodal base plus a TAGE component, composed as an
//!   L-TAGE-style predictor.
//! * [`ftq`] — the fetch target queue of a decoupled front-end.
//! * [`config`] — the simulated processor parameters (paper Table 2).
//!
//! # Example
//!
//! ```
//! use ignite_uarch::addr::Addr;
//! use ignite_uarch::btb::{Btb, BtbEntry, BranchKind};
//! use ignite_uarch::config::UarchConfig;
//!
//! let cfg = UarchConfig::ice_lake_like();
//! let mut btb = Btb::new(&cfg.btb);
//! btb.insert(BtbEntry::new(Addr::new(0x1000), Addr::new(0x2000), BranchKind::Call), false);
//! assert!(btb.lookup(Addr::new(0x1000)).is_some());
//! ```

pub mod addr;
pub mod bimodal;
pub mod btb;
pub mod cache;
pub mod cbp;
pub mod config;
pub mod ftq;
pub mod fxmap;
pub mod hierarchy;
pub mod ittage;
pub mod loop_pred;
pub mod ras;
pub mod rng;
pub mod stats;
pub mod tage;
pub mod tlb;

pub use addr::Addr;
pub use btb::BranchKind;
pub use config::UarchConfig;

/// Simulation time in core clock cycles.
pub type Cycle = u64;
