//! Counters and derived metrics (MPKI, coverage, speedup).

use std::fmt;

/// Misses (or other events) per kilo-instruction.
///
/// The paper reports L1-I, BTB and CBP miss rates in MPKI throughout.
///
/// # Example
///
/// ```
/// use ignite_uarch::stats::mpki;
///
/// assert_eq!(mpki(37, 1000), 37.0);
/// assert_eq!(mpki(0, 0), 0.0);
/// ```
pub fn mpki(events: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        events as f64 * 1000.0 / instructions as f64
    }
}

/// Fraction `part / whole`, 0 when `whole` is 0.
pub fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

/// Speedup of `cycles` relative to `baseline_cycles` (both for equal work).
///
/// Returns 1.0 when either input is zero to keep aggregate reporting sane.
pub fn speedup(baseline_cycles: u64, cycles: u64) -> f64 {
    if cycles == 0 || baseline_cycles == 0 {
        1.0
    } else {
        baseline_cycles as f64 / cycles as f64
    }
}

/// Geometric mean of a slice of positive values; 1.0 for an empty slice.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Hit/miss counters shared by the cache-like structures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Demand lookups.
    pub lookups: u64,
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
}

impl AccessStats {
    /// Records a lookup with the given outcome and returns the outcome.
    #[inline]
    pub fn record(&mut self, hit: bool) -> bool {
        self.lookups += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.lookups)
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &AccessStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups, {} hits, {} misses ({:.1}% hit rate)",
            self.lookups,
            self.hits,
            self.misses,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mpki_basic() {
        assert!((mpki(26, 2000) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
    }

    #[test]
    fn speedup_basic() {
        assert!((speedup(200, 100) - 2.0).abs() < 1e-12);
        assert_eq!(speedup(0, 10), 1.0);
        assert_eq!(speedup(10, 0), 1.0);
    }

    #[test]
    fn geomean_basic() {
        let g = geomean(&[1.0, 4.0]);
        assert!((g - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn access_stats_record_and_merge() {
        let mut s = AccessStats::default();
        assert!(s.record(true));
        assert!(!s.record(false));
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);

        let mut t = AccessStats::default();
        t.record(true);
        t.merge(&s);
        assert_eq!(t.lookups, 3);
        assert_eq!(t.hits, 2);
    }

    #[test]
    fn display_not_empty() {
        let s = AccessStats::default();
        assert!(!format!("{s}").is_empty());
    }
}
