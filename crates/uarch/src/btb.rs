//! Branch target buffer.
//!
//! A set-associative BTB holding taken branches, matching the paper's
//! simulated configuration (Table 2: 12 K entries, 6-way). Two properties
//! matter to Ignite:
//!
//! * **Insertion-on-taken-commit** — modern CPUs allocate BTB entries only
//!   when a taken branch commits (§4, citing IBM z15/z14). The engine calls
//!   [`Btb::insert`] at commit of taken branches; every insertion is logged
//!   so Ignite's recorder can observe it ([`Btb::drain_insertions`]).
//! * **Restored-entry tracking** — entries installed by Ignite's replay carry
//!   a `restored` bit, cleared on first access or eviction; a live counter of
//!   restored-but-untouched entries drives replay throttling (§4.2).
//!
//! Full branch PCs are stored (rather than the 12-bit partial tags of the
//! real hardware) so that recorded metadata is exact; the paper's gem5 model
//! does the same. Partial-tag aliasing is not modelled.

use crate::addr::Addr;
use crate::stats::AccessStats;

/// Classification of control-flow-changing instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchKind {
    /// Conditional direct branch.
    Conditional,
    /// Unconditional direct jump.
    Unconditional,
    /// Direct call.
    Call,
    /// Return.
    Return,
    /// Indirect jump or call.
    Indirect,
}

impl BranchKind {
    /// Whether the branch consults the conditional predictor.
    pub const fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Conditional)
    }

    /// Compact 3-bit encoding used by Ignite's metadata codec.
    pub const fn code(self) -> u8 {
        match self {
            BranchKind::Conditional => 0,
            BranchKind::Unconditional => 1,
            BranchKind::Call => 2,
            BranchKind::Return => 3,
            BranchKind::Indirect => 4,
        }
    }

    /// Decodes a [`BranchKind::code`] value.
    pub const fn from_code(code: u8) -> Option<BranchKind> {
        match code {
            0 => Some(BranchKind::Conditional),
            1 => Some(BranchKind::Unconditional),
            2 => Some(BranchKind::Call),
            3 => Some(BranchKind::Return),
            4 => Some(BranchKind::Indirect),
            _ => None,
        }
    }

    /// All branch kinds, in `code` order.
    pub const ALL: [BranchKind; 5] = [
        BranchKind::Conditional,
        BranchKind::Unconditional,
        BranchKind::Call,
        BranchKind::Return,
        BranchKind::Indirect,
    ];
}

/// One BTB entry: a taken branch and its most recent target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtbEntry {
    /// Address of the branch instruction.
    pub branch_pc: Addr,
    /// Address the branch jumped to.
    pub target: Addr,
    /// Branch classification.
    pub kind: BranchKind,
}

impl BtbEntry {
    /// Creates an entry.
    pub const fn new(branch_pc: Addr, target: Addr, kind: BranchKind) -> Self {
        BtbEntry { branch_pc, target, kind }
    }
}

/// BTB geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbConfig {
    /// Total number of entries (Table 2: 12 K).
    pub entries: usize,
    /// Associativity (Table 2: 6).
    pub ways: usize,
}

impl BtbConfig {
    fn sets(&self) -> usize {
        assert!(
            self.ways > 0 && self.entries.is_multiple_of(self.ways),
            "entries must divide into ways"
        );
        self.entries / self.ways
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    valid: bool,
    entry: BtbEntry,
    lru_stamp: u64,
    restored: bool,
    touched: bool,
    /// Owning VM when tagging is enabled (Arm FEAT_CSV2-style, §4.4).
    vm: u16,
}

impl Default for Way {
    fn default() -> Self {
        Way {
            valid: false,
            entry: BtbEntry::new(Addr::NULL, Addr::NULL, BranchKind::Unconditional),
            lru_stamp: 0,
            restored: false,
            touched: false,
            vm: 0,
        }
    }
}

/// BTB statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BtbStats {
    /// Demand lookups (front-end branch identification).
    pub demand: AccessStats,
    /// Entries inserted at commit (new allocations, not target updates).
    pub insertions: u64,
    /// Entries inserted by Ignite's replay.
    pub replay_insertions: u64,
    /// Valid entries evicted.
    pub evictions: u64,
    /// Restored entries evicted without ever being accessed (overprediction).
    pub restored_evicted_untouched: u64,
    /// Restored entries that served at least one demand lookup (covered).
    pub restored_used: u64,
}

/// A set-associative branch target buffer with LRU replacement.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::btb::{BranchKind, Btb, BtbConfig, BtbEntry};
///
/// let mut btb = Btb::new(&BtbConfig { entries: 1024, ways: 4 });
/// let entry = BtbEntry::new(Addr::new(0x100), Addr::new(0x900), BranchKind::Call);
/// btb.insert(entry, false);
/// assert_eq!(btb.lookup(Addr::new(0x100)), Some(entry));
/// assert_eq!(btb.drain_insertions(), vec![entry]);
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    sets: usize,
    ways: usize,
    /// `sets - 1` when the set count is a power of two (the common case),
    /// letting [`Btb::set_of`] mask instead of divide; `u64::MAX` otherwise.
    set_mask: u64,
    storage: Vec<Way>,
    clock: u64,
    insert_log: Vec<BtbEntry>,
    restored_untouched: u64,
    /// VM tagging (Arm FEAT_CSV2 analog, §4.4): when enabled, entries are
    /// only visible to the VM that installed them — including entries
    /// injected by Ignite's replay, which closes the cross-VM speculative
    /// side channel the paper discusses.
    vm_tagging: bool,
    current_vm: u16,
    stats: BtbStats,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways`.
    pub fn new(cfg: &BtbConfig) -> Self {
        let sets = cfg.sets();
        Btb {
            sets,
            ways: cfg.ways,
            set_mask: if sets.is_power_of_two() { sets as u64 - 1 } else { u64::MAX },
            storage: vec![Way::default(); sets * cfg.ways],
            clock: 0,
            insert_log: Vec::new(),
            restored_untouched: 0,
            vm_tagging: false,
            current_vm: 0,
            stats: BtbStats::default(),
        }
    }

    /// Enables VM tagging (§4.4): lookups match only entries installed by
    /// the currently running VM, so replayed entries from one VM are not
    /// executable by another.
    pub fn enable_vm_tagging(&mut self) {
        self.vm_tagging = true;
    }

    /// Sets the currently running VM's tag.
    pub fn set_vm(&mut self, vm: u16) {
        self.current_vm = vm;
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &BtbStats {
        &self.stats
    }

    /// Clears statistics without touching contents.
    pub fn reset_stats(&mut self) {
        self.stats = BtbStats::default();
    }

    /// Live count of replay-restored entries that have not yet been accessed.
    ///
    /// This is the counter Ignite's prefetch throttling reads (§4.2).
    pub fn restored_untouched(&self) -> u64 {
        self.restored_untouched
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.storage.iter().filter(|w| w.valid).count()
    }

    #[inline]
    fn set_of(&self, pc: Addr) -> usize {
        // Drop the low two bits (instruction alignment) and fold in higher
        // bits so densely packed branch regions spread across sets.
        let v = pc.as_u64() >> 2;
        let h = v ^ (v >> 11) ^ (v >> 23);
        if self.set_mask != u64::MAX {
            (h & self.set_mask) as usize
        } else {
            (h % self.sets as u64) as usize
        }
    }

    /// The contiguous slice of ways backing `pc`'s set, plus the index of
    /// its first way. Scanning this slice directly keeps the associative
    /// search bounds-check-free.
    #[inline]
    fn set_slice(&self, pc: Addr) -> (usize, &[Way]) {
        let base = self.set_of(pc) * self.ways;
        (base, &self.storage[base..base + self.ways])
    }

    fn find(&self, pc: Addr) -> Option<usize> {
        let (base, set) = self.set_slice(pc);
        set.iter()
            .position(|w| {
                w.valid && w.entry.branch_pc == pc && (!self.vm_tagging || w.vm == self.current_vm)
            })
            .map(|i| base + i)
    }

    fn note_touch(&mut self, i: usize) {
        let way = &mut self.storage[i];
        if way.restored && !way.touched {
            self.restored_untouched = self.restored_untouched.saturating_sub(1);
            self.stats.restored_used += 1;
        }
        way.restored = false;
        way.touched = true;
    }

    /// Demand lookup by branch PC.
    ///
    /// Updates LRU, clears the restored bit and records statistics.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        self.lookup_traced(pc).map(|(entry, _)| entry)
    }

    /// Demand lookup that also reports whether the hit entry was installed
    /// by Ignite's replay and had not been demand-accessed before.
    ///
    /// The restored bit is cleared by the lookup (like [`Btb::lookup`]), so
    /// this is the only way for the engine to learn, at prediction time,
    /// that it is acting on replayed — possibly stale — state.
    pub fn lookup_traced(&mut self, pc: Addr) -> Option<(BtbEntry, bool)> {
        self.clock += 1;
        match self.find(pc) {
            Some(i) => {
                let was_restored = self.storage[i].restored;
                self.storage[i].lru_stamp = self.clock;
                self.note_touch(i);
                self.stats.demand.record(true);
                Some((self.storage[i].entry, was_restored))
            }
            None => {
                self.stats.demand.record(false);
                None
            }
        }
    }

    /// Residency check without side effects.
    pub fn probe(&self, pc: Addr) -> Option<BtbEntry> {
        self.find(pc).map(|i| self.storage[i].entry)
    }

    /// Inserts (or updates) an entry, evicting the set's LRU way if needed.
    ///
    /// `from_replay` marks entries installed by Ignite's replay engine; only
    /// ordinary insertions are appended to the insertion log that Ignite's
    /// recorder drains. Returns the evicted entry, if any.
    pub fn insert(&mut self, entry: BtbEntry, from_replay: bool) -> Option<BtbEntry> {
        self.clock += 1;
        if let Some(i) = self.find(entry.branch_pc) {
            // Target (or kind) update of an existing entry: no allocation,
            // nothing recorded — the paper records creation events only.
            let way = &mut self.storage[i];
            way.entry = entry;
            way.lru_stamp = self.clock;
            return None;
        }
        if from_replay {
            self.stats.replay_insertions += 1;
            self.restored_untouched += 1;
        } else {
            self.stats.insertions += 1;
            self.insert_log.push(entry);
        }
        // First invalid way, else the way with the oldest LRU stamp (first
        // of equals — the same victim `min_by_key` over `(valid, stamp)`
        // tuples would pick, without tuple-compare overhead per way).
        let (base, set) = self.set_slice(entry.branch_pc);
        let mut victim_in_set = 0;
        let mut oldest = u64::MAX;
        for (i, w) in set.iter().enumerate() {
            if !w.valid {
                victim_in_set = i;
                break;
            }
            if w.lru_stamp < oldest {
                oldest = w.lru_stamp;
                victim_in_set = i;
            }
        }
        let victim = base + victim_in_set;
        let evicted = if self.storage[victim].valid {
            self.stats.evictions += 1;
            let old = self.storage[victim];
            if old.restored && !old.touched {
                self.restored_untouched = self.restored_untouched.saturating_sub(1);
                self.stats.restored_evicted_untouched += 1;
            }
            Some(old.entry)
        } else {
            None
        };
        self.storage[victim] = Way {
            valid: true,
            entry,
            lru_stamp: self.clock,
            restored: from_replay,
            touched: false,
            vm: self.current_vm,
        };
        evicted
    }

    /// Takes the log of committed-branch insertions since the last drain.
    ///
    /// Ignite's record logic calls this each cycle to observe BTB allocation
    /// events (§4.1).
    pub fn drain_insertions(&mut self) -> Vec<BtbEntry> {
        std::mem::take(&mut self.insert_log)
    }

    /// Invalidates every entry (lukewarm flush).
    pub fn flush(&mut self) {
        for way in &mut self.storage {
            *way = Way::default();
        }
        self.restored_untouched = 0;
        self.insert_log.clear();
    }

    /// Iterates over all valid entries (inspection/tests).
    pub fn iter(&self) -> impl Iterator<Item = &BtbEntry> {
        self.storage.iter().filter(|w| w.valid).map(|w| &w.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb() -> Btb {
        Btb::new(&BtbConfig { entries: 8, ways: 2 }) // 4 sets x 2 ways
    }

    fn entry(pc: u64, target: u64) -> BtbEntry {
        BtbEntry::new(Addr::new(pc), Addr::new(target), BranchKind::Conditional)
    }

    #[test]
    fn branch_kind_codes_roundtrip() {
        for kind in BranchKind::ALL {
            assert_eq!(BranchKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(BranchKind::from_code(7), None);
    }

    #[test]
    fn insert_then_lookup() {
        let mut b = btb();
        let e = entry(0x10, 0x99);
        b.insert(e, false);
        assert_eq!(b.lookup(Addr::new(0x10)), Some(e));
        assert_eq!(b.stats().demand.hits, 1);
    }

    #[test]
    fn miss_recorded() {
        let mut b = btb();
        assert_eq!(b.lookup(Addr::new(0x44)), None);
        assert_eq!(b.stats().demand.misses, 1);
    }

    #[test]
    fn insertion_log_excludes_replay() {
        let mut b = btb();
        b.insert(entry(0x10, 0x99), false);
        b.insert(entry(0x14, 0x88), true);
        let log = b.drain_insertions();
        assert_eq!(log, vec![entry(0x10, 0x99)]);
        assert!(b.drain_insertions().is_empty(), "drain consumes");
    }

    #[test]
    fn target_update_not_logged_again() {
        let mut b = btb();
        b.insert(entry(0x10, 0x99), false);
        b.drain_insertions();
        b.insert(entry(0x10, 0xaa), false);
        assert!(b.drain_insertions().is_empty());
        assert_eq!(b.probe(Addr::new(0x10)).unwrap().target, Addr::new(0xaa));
        assert_eq!(b.stats().insertions, 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut b = btb();
        // Set index is (pc >> 2) % 4: 0x0, 0x10, 0x20 all land in set 0.
        b.insert(entry(0x0, 1), false);
        b.insert(entry(0x10, 2), false);
        b.lookup(Addr::new(0x0));
        let evicted = b.insert(entry(0x20, 3), false);
        assert_eq!(evicted.map(|e| e.branch_pc), Some(Addr::new(0x10)));
    }

    #[test]
    fn restored_untouched_counter_tracks_touch() {
        let mut b = btb();
        b.insert(entry(0x10, 1), true);
        b.insert(entry(0x14, 2), true);
        assert_eq!(b.restored_untouched(), 2);
        b.lookup(Addr::new(0x10));
        assert_eq!(b.restored_untouched(), 1);
        assert_eq!(b.stats().restored_used, 1);
        // A second access does not decrement again.
        b.lookup(Addr::new(0x10));
        assert_eq!(b.restored_untouched(), 1);
    }

    #[test]
    fn restored_untouched_counter_tracks_eviction() {
        let mut b = btb();
        b.insert(entry(0x0, 1), true);
        b.insert(entry(0x10, 2), true);
        assert_eq!(b.restored_untouched(), 2);
        b.insert(entry(0x20, 3), false); // evicts a restored, untouched entry
        assert_eq!(b.restored_untouched(), 1);
        assert_eq!(b.stats().restored_evicted_untouched, 1);
    }

    #[test]
    fn lookup_traced_reports_restored_once() {
        let mut b = btb();
        b.insert(entry(0x10, 1), true);
        b.insert(entry(0x14, 2), false);
        assert_eq!(b.lookup_traced(Addr::new(0x10)), Some((entry(0x10, 1), true)));
        // The first lookup consumed the restored bit.
        assert_eq!(b.lookup_traced(Addr::new(0x10)), Some((entry(0x10, 1), false)));
        assert_eq!(b.lookup_traced(Addr::new(0x14)), Some((entry(0x14, 2), false)));
        assert_eq!(b.lookup_traced(Addr::new(0x44)), None);
    }

    #[test]
    fn flush_clears_state_and_counter() {
        let mut b = btb();
        b.insert(entry(0x10, 1), true);
        b.flush();
        assert_eq!(b.restored_untouched(), 0);
        assert_eq!(b.occupancy(), 0);
        assert_eq!(b.lookup(Addr::new(0x10)), None);
    }

    #[test]
    fn iter_yields_valid_entries() {
        let mut b = btb();
        b.insert(entry(0x10, 1), false);
        b.insert(entry(0x21, 2), false);
        let pcs: Vec<_> = b.iter().map(|e| e.branch_pc.as_u64()).collect();
        assert_eq!(pcs.len(), 2);
        assert!(pcs.contains(&0x10) && pcs.contains(&0x21));
    }

    #[test]
    #[should_panic(expected = "entries must divide")]
    fn bad_geometry_panics() {
        Btb::new(&BtbConfig { entries: 7, ways: 2 });
    }

    #[test]
    fn vm_tagging_isolates_entries() {
        let mut b = btb();
        b.enable_vm_tagging();
        b.set_vm(1);
        b.insert(entry(0x10, 0x99), true); // replayed by VM 1
        assert!(b.lookup(Addr::new(0x10)).is_some(), "owner VM sees its entry");
        b.set_vm(2);
        assert!(
            b.lookup(Addr::new(0x10)).is_none(),
            "another VM must not consume VM 1's replayed entries (§4.4)"
        );
        b.set_vm(1);
        assert!(b.lookup(Addr::new(0x10)).is_some());
    }

    #[test]
    fn vm_tagging_disabled_is_transparent() {
        let mut b = btb();
        b.set_vm(1);
        b.insert(entry(0x10, 0x99), false);
        b.set_vm(2);
        assert!(b.lookup(Addr::new(0x10)).is_some(), "no tagging: shared BTB");
    }

    #[test]
    fn vm_tagged_duplicate_pcs_coexist() {
        let mut b = btb();
        b.enable_vm_tagging();
        b.set_vm(1);
        b.insert(entry(0x10, 0x99), false);
        b.set_vm(2);
        b.insert(entry(0x10, 0xaa), false);
        assert_eq!(b.lookup(Addr::new(0x10)).unwrap().target, Addr::new(0xaa));
        b.set_vm(1);
        assert_eq!(b.lookup(Addr::new(0x10)).unwrap().target, Addr::new(0x99));
    }
}
