//! Composed conditional branch predictor (CBP): bimodal base + TAGE.
//!
//! The final direction comes from TAGE when a tagged table hits (with the
//! standard weak-provider fallback to the alternate prediction) and from the
//! bimodal base otherwise. The CBP also classifies each misprediction as
//! *initial* (first dynamic execution of that branch within the current
//! invocation) or *subsequent*, the split behind the paper's Figs. 6 and 9b,
//! and attributes mispredictions induced by Ignite's weakly-taken BIM
//! initialization (Fig. 9c "overpredicted").

use std::collections::HashSet;

use crate::addr::Addr;
use crate::bimodal::{Bimodal, BimodalConfig, Counter};
use crate::loop_pred::{LoopPredictor, LoopPredictorConfig};
use crate::tage::{Tage, TageConfig, TagePrediction};

/// CBP configuration: base + tagged component (+ optional loop predictor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CbpConfig {
    /// Bimodal base predictor.
    pub bimodal: BimodalConfig,
    /// TAGE component.
    pub tage: TageConfig,
    /// Optional loop predictor, completing Seznec's L-TAGE. Off by default
    /// in the reproduction's calibrated configuration.
    pub loop_predictor: Option<LoopPredictorConfig>,
}

/// Prediction metadata threaded from [`Cbp::predict`] to [`Cbp::resolve`].
#[derive(Debug, Clone, Copy)]
pub struct CbpPrediction {
    /// Final predicted direction.
    pub taken: bool,
    /// Whether TAGE (vs. the bimodal base) provided the direction.
    pub from_tage: bool,
    /// The bimodal base prediction (threaded to TAGE training).
    base: bool,
    tage: TagePrediction,
}

/// Misprediction and provenance counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct CbpStats {
    /// Conditional branches predicted.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredictions: u64,
    /// Mispredictions on a branch's first execution in the invocation.
    pub initial_mispredictions: u64,
    /// Mispredictions on later executions.
    pub subsequent_mispredictions: u64,
    /// Initial mispredictions where Ignite's weakly-taken initialization of
    /// the BIM entry supplied the wrong direction.
    pub ignite_induced_mispredictions: u64,
    /// Initial executions whose (correct) prediction came from an
    /// Ignite-initialized BIM entry — covered initial predictions.
    pub ignite_covered_initials: u64,
    /// Predictions provided by TAGE.
    pub tage_provided: u64,
    /// Mispredictions where TAGE provided the direction.
    pub tage_mispredictions: u64,
    /// Mispredictions where the bimodal base provided the direction.
    pub bim_mispredictions: u64,
}

/// The composed conditional predictor.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::cbp::Cbp;
/// use ignite_uarch::config::UarchConfig;
///
/// let mut cbp = Cbp::new(&UarchConfig::ice_lake_like().cbp);
/// let pc = Addr::new(0x100);
/// let p = cbp.predict(pc);
/// cbp.resolve(pc, true, Addr::new(0x200), &p);
/// assert_eq!(cbp.stats().predictions, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cbp {
    bim: Bimodal,
    tage: Tage,
    loop_pred: Option<LoopPredictor>,
    seen: HashSet<u64>,
    ignite_initialized: HashSet<u64>,
    stats: CbpStats,
}

impl Cbp {
    /// Creates a cold predictor.
    pub fn new(cfg: &CbpConfig) -> Self {
        Cbp {
            bim: Bimodal::new(&cfg.bimodal),
            tage: Tage::new(&cfg.tage),
            loop_pred: cfg.loop_predictor.as_ref().map(LoopPredictor::new),
            seen: HashSet::new(),
            ignite_initialized: HashSet::new(),
            stats: CbpStats::default(),
        }
    }

    /// Statistics accumulated since the last reset.
    pub fn stats(&self) -> &CbpStats {
        &self.stats
    }

    /// Clears statistics only.
    pub fn reset_stats(&mut self) {
        self.stats = CbpStats::default();
        self.tage.reset_stats();
    }

    /// The bimodal base (for state manipulation by the lukewarm protocol
    /// and Ignite's replay).
    pub fn bimodal_mut(&mut self) -> &mut Bimodal {
        &mut self.bim
    }

    /// The bimodal base, immutably.
    pub fn bimodal(&self) -> &Bimodal {
        &self.bim
    }

    /// The TAGE component (for warm/cold state control).
    pub fn tage_mut(&mut self) -> &mut Tage {
        &mut self.tage
    }

    /// The TAGE component, immutably.
    pub fn tage(&self) -> &Tage {
        &self.tage
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: Addr) -> CbpPrediction {
        let tage_pred = self.tage.predict(pc);
        let bim_dir = self.bim.predict(pc);
        // A confident loop-predictor entry overrides everything (L-TAGE).
        if let Some(lp) = &mut self.loop_pred {
            if let Some(p) = lp.predict(pc) {
                if p.confident {
                    return CbpPrediction {
                        taken: p.taken,
                        from_tage: false,
                        base: bim_dir,
                        tage: tage_pred,
                    };
                }
            }
        }
        let (taken, from_tage) = match tage_pred.direction() {
            Some(dir) => {
                if tage_pred.weak_provider() {
                    // Newly allocated provider: prefer the alternate
                    // prediction (TAGE's use_alt heuristic), else the base.
                    (tage_pred.alt_direction().unwrap_or(bim_dir), false)
                } else {
                    (dir, true)
                }
            }
            None => (bim_dir, false),
        };
        CbpPrediction { taken, from_tage, base: bim_dir, tage: tage_pred }
    }

    /// Resolves a conditional branch: trains both components, advances the
    /// taken-only history, and classifies any misprediction.
    pub fn resolve(&mut self, pc: Addr, taken: bool, target: Addr, pred: &CbpPrediction) {
        self.stats.predictions += 1;
        if pred.from_tage {
            self.stats.tage_provided += 1;
        }
        let mispredicted = pred.taken != taken;
        let first_execution = self.seen.insert(pc.as_u64());
        let ignite_init = self.ignite_initialized.remove(&pc.as_u64());
        if mispredicted {
            self.stats.mispredictions += 1;
            if pred.from_tage {
                self.stats.tage_mispredictions += 1;
            } else {
                self.stats.bim_mispredictions += 1;
            }
            if first_execution {
                self.stats.initial_mispredictions += 1;
                if ignite_init && !pred.from_tage {
                    self.stats.ignite_induced_mispredictions += 1;
                }
            } else {
                self.stats.subsequent_mispredictions += 1;
            }
        } else if first_execution && ignite_init && !pred.from_tage {
            self.stats.ignite_covered_initials += 1;
        }
        self.bim.update(pc, taken);
        let alt_pred = pred.tage.alt_direction().unwrap_or(pred.base);
        self.tage.update(pc, taken, &pred.tage, mispredicted, alt_pred);
        if let Some(lp) = &mut self.loop_pred {
            lp.update(pc, taken);
        }
        if taken {
            self.tage.push_history(pc, target);
        }
    }

    /// Trains the predictor for a conditional branch that was *not*
    /// predicted (it was unidentified — absent from the BTB at fetch time),
    /// without counting prediction statistics.
    ///
    /// The branch still registers as executed for initial/subsequent
    /// classification, and both components train at commit as in hardware.
    pub fn resolve_uncounted(&mut self, pc: Addr, taken: bool, target: Addr) {
        self.seen.insert(pc.as_u64());
        self.ignite_initialized.remove(&pc.as_u64());
        let tage_pred = self.tage.predict(pc);
        let bim_dir = self.bim.predict(pc);
        let alt_pred = tage_pred.alt_direction().unwrap_or(bim_dir);
        let final_pred = tage_pred.direction().unwrap_or(bim_dir);
        self.bim.update(pc, taken);
        self.tage.update(pc, taken, &tage_pred, final_pred != taken, alt_pred);
        if taken {
            self.tage.push_history(pc, target);
        }
    }

    /// Advances the taken-only history for a non-conditional taken branch
    /// (unconditional jump, call, return, indirect).
    pub fn note_taken_branch(&mut self, pc: Addr, target: Addr) {
        self.tage.push_history(pc, target);
    }

    /// Flushes the history-based components (TAGE and the loop predictor)
    /// — the lukewarm protocol's CBP flush.
    pub fn flush_tagged(&mut self) {
        self.tage.flush();
        if let Some(lp) = &mut self.loop_pred {
            lp.flush();
        }
    }

    /// The loop predictor, if configured.
    pub fn loop_predictor(&self) -> Option<&LoopPredictor> {
        self.loop_pred.as_ref()
    }

    /// Marks the start of a new invocation: resets first-execution tracking.
    ///
    /// Call *before* any Ignite replay so replay-marked entries are
    /// attributed to this invocation.
    pub fn begin_invocation(&mut self) {
        self.seen.clear();
        self.ignite_initialized.clear();
    }

    /// Ignite replay hook: initializes the BIM entry for `pc` and remembers
    /// the provenance for accuracy accounting.
    pub fn ignite_initialize(&mut self, pc: Addr, counter: Counter) {
        self.bim.set(pc, counter);
        self.ignite_initialized.insert(pc.as_u64());
    }

    /// Number of distinct conditional branches executed this invocation.
    pub fn distinct_branches_seen(&self) -> usize {
        self.seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UarchConfig;
    use crate::rng::SplitMix64;

    fn cbp() -> Cbp {
        Cbp::new(&CbpConfig {
            bimodal: BimodalConfig { size_bytes: 1024 },
            tage: TageConfig {
                tables: 4,
                entries_per_table: 256,
                tag_bits: 9,
                min_history: 4,
                max_history: 64,
                u_reset_period: 1 << 16,
            },
            loop_predictor: None,
        })
    }

    #[test]
    fn loop_predictor_overrides_on_constant_trip_loops() {
        let mut cfg = UarchConfig::tiny_for_tests().cbp;
        cfg.loop_predictor = Some(crate::loop_pred::LoopPredictorConfig::default());
        let mut with_lp = Cbp::new(&cfg);
        cfg.loop_predictor = None;
        let mut without = Cbp::new(&cfg);
        let pc = Addr::new(0x1234);
        let run = |c: &mut Cbp| -> u64 {
            c.begin_invocation();
            for _ in 0..40 {
                for _ in 0..6 {
                    let p = c.predict(pc);
                    c.resolve(pc, true, Addr::new(0x2000), &p);
                }
                let p = c.predict(pc);
                c.resolve(pc, false, Addr::new(0x2000), &p);
            }
            c.stats().mispredictions
        };
        let lp_misses = run(&mut with_lp);
        let plain_misses = run(&mut without);
        assert!(
            lp_misses * 2 < plain_misses,
            "loop predictor must nail constant trips: {lp_misses} vs {plain_misses}"
        );
    }

    #[test]
    fn flush_tagged_clears_loop_predictor() {
        let mut cfg = UarchConfig::tiny_for_tests().cbp;
        cfg.loop_predictor = Some(crate::loop_pred::LoopPredictorConfig::default());
        let mut c = Cbp::new(&cfg);
        let pc = Addr::new(0x88);
        for _ in 0..20 {
            for _ in 0..3 {
                let p = c.predict(pc);
                c.resolve(pc, true, Addr::new(0x100), &p);
            }
            let p = c.predict(pc);
            c.resolve(pc, false, Addr::new(0x100), &p);
        }
        c.flush_tagged();
        assert_eq!(c.loop_predictor().unwrap().hits(), c.loop_predictor().unwrap().hits());
        // After the flush the loop predictor has no tracked entries: the
        // next prediction must come from bimodal/TAGE, not a stale loop.
        let p = c.predict(pc);
        let _ = p;
        assert!(c.tage().occupancy() < 1e-9);
    }

    #[test]
    fn biased_branch_learned_quickly() {
        let mut c = cbp();
        let pc = Addr::new(0x100);
        let mut wrong = 0;
        for _ in 0..100 {
            let p = c.predict(pc);
            if !p.taken {
                wrong += 1;
            }
            c.resolve(pc, true, Addr::new(0x200), &p);
        }
        assert!(wrong <= 3, "always-taken branch should train fast, wrong = {wrong}");
    }

    #[test]
    fn initial_vs_subsequent_classification() {
        let mut c = cbp();
        c.begin_invocation();
        let pc = Addr::new(0x300);
        // First execution: bimodal default is weakly not-taken, branch is
        // taken -> initial misprediction.
        let p = c.predict(pc);
        assert!(!p.taken);
        c.resolve(pc, true, Addr::new(0x400), &p);
        assert_eq!(c.stats().initial_mispredictions, 1);
        assert_eq!(c.stats().subsequent_mispredictions, 0);
        // Now weakly taken; force a not-taken outcome -> subsequent miss.
        let p = c.predict(pc);
        assert!(p.taken);
        c.resolve(pc, false, Addr::new(0x400), &p);
        assert_eq!(c.stats().subsequent_mispredictions, 1);
    }

    #[test]
    fn begin_invocation_resets_first_execution() {
        let mut c = cbp();
        c.begin_invocation();
        let pc = Addr::new(0x300);
        let p = c.predict(pc);
        c.resolve(pc, true, Addr::new(0x400), &p);
        c.begin_invocation();
        let p = c.predict(pc);
        c.resolve(pc, false, Addr::new(0x400), &p);
        // Second invocation's first execution is initial again.
        assert_eq!(c.stats().initial_mispredictions, 2);
    }

    #[test]
    fn ignite_initialization_covers_taken_branch() {
        let mut c = cbp();
        c.begin_invocation();
        let pc = Addr::new(0x500);
        c.ignite_initialize(pc, Counter::WeakTaken);
        let p = c.predict(pc);
        assert!(p.taken, "ignite set weakly taken");
        c.resolve(pc, true, Addr::new(0x600), &p);
        assert_eq!(c.stats().mispredictions, 0);
        assert_eq!(c.stats().ignite_covered_initials, 1);
    }

    #[test]
    fn ignite_induced_misprediction_attributed() {
        let mut c = cbp();
        c.begin_invocation();
        let pc = Addr::new(0x500);
        c.ignite_initialize(pc, Counter::WeakTaken);
        let p = c.predict(pc);
        c.resolve(pc, false, Addr::new(0x600), &p);
        assert_eq!(c.stats().ignite_induced_mispredictions, 1);
    }

    #[test]
    fn ignite_attribution_only_on_first_execution() {
        let mut c = cbp();
        c.begin_invocation();
        let pc = Addr::new(0x500);
        c.ignite_initialize(pc, Counter::WeakTaken);
        let p = c.predict(pc);
        c.resolve(pc, true, Addr::new(0x600), &p);
        // Later misprediction is the predictor's own fault.
        let p = c.predict(pc);
        c.resolve(pc, false, Addr::new(0x600), &p);
        assert_eq!(c.stats().ignite_induced_mispredictions, 0);
    }

    #[test]
    fn randomized_bim_mispredicts_biased_code() {
        // The lukewarm protocol's randomized BIM should mispredict roughly
        // half of first executions of taken-biased branches.
        let mut c = cbp();
        c.bimodal_mut().randomize(&mut SplitMix64::new(77));
        c.begin_invocation();
        let mut initial_misses = 0;
        for i in 0..1000u64 {
            let pc = Addr::new(0x10_000 + i * 12);
            let p = c.predict(pc);
            if !p.taken {
                initial_misses += 1;
            }
            c.resolve(pc, true, Addr::new(0x20_000 + i * 4), &p);
        }
        assert!(
            (350..650).contains(&initial_misses),
            "randomized BIM should miss ~half: {initial_misses}"
        );
    }

    #[test]
    fn distinct_branch_tracking() {
        let mut c = cbp();
        c.begin_invocation();
        for i in 0..5u64 {
            let pc = Addr::new(0x100 + i * 4);
            let p = c.predict(pc);
            c.resolve(pc, true, Addr::new(0x200), &p);
        }
        let pc = Addr::new(0x100);
        let p = c.predict(pc);
        c.resolve(pc, true, Addr::new(0x200), &p);
        assert_eq!(c.distinct_branches_seen(), 5);
    }
}
