//! ITTAGE-style indirect branch target predictor.
//!
//! The BTB stores one target per branch, so polymorphic indirect branches
//! (interpreter dispatch, virtual calls) mispredict whenever the target
//! changes. ITTAGE (Seznec's indirect cousin of TAGE) predicts *targets*
//! from tagged tables indexed by geometrically longer global-history
//! slices.
//!
//! The paper's simulated core does not call out an indirect predictor, so
//! this component is **optional** (off in the calibrated default
//! configuration; enable via
//! [`crate::config::UarchConfig::indirect_predictor`]) — an ablation for
//! how much of the remaining "wrong target" resteers a real front-end
//! would recover.

use crate::addr::Addr;

/// ITTAGE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IttageConfig {
    /// Number of tagged tables.
    pub tables: usize,
    /// Entries per table (power of two).
    pub entries_per_table: usize,
    /// Tag bits.
    pub tag_bits: u32,
    /// Shortest history length (in taken branches).
    pub min_history: u32,
    /// Longest history length.
    pub max_history: u32,
}

impl Default for IttageConfig {
    fn default() -> Self {
        IttageConfig {
            tables: 4,
            entries_per_table: 512,
            tag_bits: 11,
            min_history: 2,
            max_history: 64,
        }
    }
}

impl IttageConfig {
    fn history_length(&self, i: usize) -> u32 {
        if self.tables == 1 {
            return self.min_history;
        }
        let ratio = (self.max_history as f64 / self.min_history as f64)
            .powf(1.0 / (self.tables as f64 - 1.0));
        (self.min_history as f64 * ratio.powi(i as i32)).round() as u32
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct IttageEntry {
    valid: bool,
    tag: u16,
    target: Addr,
    /// 2-bit confidence.
    confidence: u8,
}

/// An ITTAGE-style indirect target predictor.
///
/// The caller feeds the global (taken-only) history as a rolling hash via
/// [`Ittage::push_history`], mirroring the TAGE history discipline.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::ittage::{Ittage, IttageConfig};
///
/// let mut it = Ittage::new(&IttageConfig::default());
/// let pc = Addr::new(0x100);
/// for _ in 0..4 {
///     it.update(pc, Addr::new(0x900));
/// }
/// assert_eq!(it.predict(pc), Some(Addr::new(0x900)));
/// ```
#[derive(Debug, Clone)]
pub struct Ittage {
    cfg: IttageConfig,
    tables: Vec<Vec<IttageEntry>>,
    /// Geometric history length per table, fixed at construction.
    hist_len: Vec<u32>,
    /// Ring of recent path-history tokens (one per taken branch).
    ring: Vec<u64>,
    pos: usize,
    predictions: u64,
    tagged_hits: u64,
}

impl Ittage {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate.
    pub fn new(cfg: &IttageConfig) -> Self {
        assert!(cfg.tables > 0 && cfg.tables <= 8, "1..=8 tables");
        assert!(cfg.entries_per_table.is_power_of_two(), "table size must be a power of two");
        Ittage {
            cfg: *cfg,
            tables: vec![vec![IttageEntry::default(); cfg.entries_per_table]; cfg.tables],
            hist_len: (0..cfg.tables).map(|i| cfg.history_length(i)).collect(),
            ring: vec![0; cfg.max_history.max(1) as usize],
            pos: 0,
            predictions: 0,
            tagged_hits: 0,
        }
    }

    /// Advances the path history with a taken branch.
    pub fn push_history(&mut self, pc: Addr, target: Addr) {
        let token = (pc.as_u64() >> 2) ^ (target.as_u64() >> 4).rotate_left(21);
        self.ring[self.pos] = token;
        self.pos = (self.pos + 1) % self.ring.len();
    }

    /// Hash of the most recent `window` history tokens.
    fn window_hash(&self, window: u32) -> u64 {
        let n = self.ring.len();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for i in 0..(window as usize).min(n) {
            let token = self.ring[(self.pos + n - 1 - i) % n];
            h = (h ^ token).wrapping_mul(0x100_0000_01b3).rotate_left(7);
        }
        h
    }

    fn index(&self, table: usize, pc: Addr) -> usize {
        let mask = self.cfg.entries_per_table as u64 - 1;
        let h = self.window_hash(self.hist_len[table]);
        (((pc.as_u64() >> 2) ^ h ^ (h >> 13)) & mask) as usize
    }

    fn tag(&self, table: usize, pc: Addr) -> u16 {
        let mask = (1u64 << self.cfg.tag_bits) - 1;
        let h = self.window_hash(self.hist_len[table]);
        (((pc.as_u64() >> 5) ^ h.rotate_left(17)) & mask) as u16
    }

    /// Predicts the target of the indirect branch at `pc`, if any table has
    /// a confident entry.
    pub fn predict(&mut self, pc: Addr) -> Option<Addr> {
        self.predictions += 1;
        for t in (0..self.cfg.tables).rev() {
            let e = &self.tables[t][self.index(t, pc)];
            if e.valid && e.tag == self.tag(t, pc) && e.confidence >= 1 {
                self.tagged_hits += 1;
                return Some(e.target);
            }
        }
        None
    }

    /// Trains with the resolved target.
    pub fn update(&mut self, pc: Addr, target: Addr) {
        let mut corrected = false;
        for t in (0..self.cfg.tables).rev() {
            let idx = self.index(t, pc);
            let tag = self.tag(t, pc);
            let e = &mut self.tables[t][idx];
            if e.valid && e.tag == tag {
                if e.target == target {
                    e.confidence = (e.confidence + 1).min(3);
                } else if e.confidence > 0 {
                    e.confidence -= 1;
                } else {
                    e.target = target;
                }
                corrected = true;
                break;
            }
        }
        if !corrected {
            // Allocate in the shortest-history table with a weak slot.
            for t in 0..self.cfg.tables {
                let idx = self.index(t, pc);
                let tag = self.tag(t, pc);
                let e = &mut self.tables[t][idx];
                if !e.valid || e.confidence == 0 {
                    *e = IttageEntry { valid: true, tag, target, confidence: 1 };
                    return;
                }
                e.confidence -= 1;
            }
        }
    }

    /// Predictions attempted.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Predictions served by a tagged entry.
    pub fn tagged_hits(&self) -> u64 {
        self.tagged_hits
    }

    /// Clears tables and history (lukewarm flush).
    pub fn flush(&mut self) {
        for t in &mut self.tables {
            t.fill(IttageEntry::default());
        }
        self.ring.fill(0);
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomorphic_target_learned() {
        let mut it = Ittage::new(&IttageConfig::default());
        let pc = Addr::new(0x100);
        for _ in 0..4 {
            it.update(pc, Addr::new(0x900));
        }
        assert_eq!(it.predict(pc), Some(Addr::new(0x900)));
    }

    #[test]
    fn unknown_branch_predicts_none() {
        let mut it = Ittage::new(&IttageConfig::default());
        assert_eq!(it.predict(Addr::new(0x42)), None);
    }

    #[test]
    fn history_separates_polymorphic_targets() {
        // A dispatch site whose target depends on the preceding path.
        let mut it = Ittage::new(&IttageConfig::default());
        let pc = Addr::new(0x200);
        let (path_a, path_b) = (Addr::new(0x1000), Addr::new(0x2000));
        let (ta, tb) = (Addr::new(0x9000), Addr::new(0xa000));
        for _ in 0..64 {
            it.push_history(path_a, Addr::new(0x1100));
            it.update(pc, ta);
            it.push_history(path_b, Addr::new(0x2100));
            it.update(pc, tb);
        }
        // Now probe each context.
        it.push_history(path_a, Addr::new(0x1100));
        let pred_a = it.predict(pc);
        it.update(pc, ta);
        it.push_history(path_b, Addr::new(0x2100));
        let pred_b = it.predict(pc);
        it.update(pc, tb);
        assert_eq!(pred_a, Some(ta), "path-A context predicts target A");
        assert_eq!(pred_b, Some(tb), "path-B context predicts target B");
    }

    #[test]
    fn target_change_retrains() {
        let mut it = Ittage::new(&IttageConfig::default());
        let pc = Addr::new(0x300);
        for _ in 0..4 {
            it.update(pc, Addr::new(0x111));
        }
        for _ in 0..8 {
            it.update(pc, Addr::new(0x222));
        }
        assert_eq!(it.predict(pc), Some(Addr::new(0x222)));
    }

    #[test]
    fn flush_forgets() {
        let mut it = Ittage::new(&IttageConfig::default());
        let pc = Addr::new(0x400);
        for _ in 0..4 {
            it.update(pc, Addr::new(0x900));
        }
        it.flush();
        assert_eq!(it.predict(pc), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_table_size() {
        let cfg = IttageConfig { entries_per_table: 500, ..Default::default() };
        Ittage::new(&cfg);
    }
}
