//! The instruction-side memory hierarchy: L1-I → L2 → LLC → DRAM.
//!
//! Latencies and geometries default to the paper's Table 2. State changes
//! (fills) happen eagerly; timing is conveyed through the `ready_at` cycle of
//! each [`AccessResult`], with an in-flight table merging concurrent requests
//! to the same line (MSHR semantics). Prefetches are bounded by the MSHR
//! count; demand fetches always proceed.

use crate::addr::Addr;
use crate::cache::{CacheGeometry, FillKind, FlushReport, SetAssocCache};
use crate::fxmap::FxHashMap;
use crate::Cycle;

/// Which level of the hierarchy served a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// First-level instruction cache.
    L1I,
    /// Private unified second-level cache.
    L2,
    /// Shared last-level cache.
    Llc,
    /// Off-chip DRAM.
    Memory,
}

/// Latency and MSHR parameters of the instruction path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1-I geometry.
    pub l1i: CacheGeometry,
    /// L2 geometry.
    pub l2: CacheGeometry,
    /// LLC geometry.
    pub llc: CacheGeometry,
    /// L1-I hit latency in cycles (1, standing in for the µop cache; §5.3).
    pub l1i_latency: Cycle,
    /// L2 hit latency in cycles.
    pub l2_latency: Cycle,
    /// LLC hit latency in cycles.
    pub llc_latency: Cycle,
    /// DRAM access latency in cycles.
    pub memory_latency: Cycle,
    /// Maximum outstanding prefetch fills (L1-I MSHRs).
    pub l1i_mshrs: usize,
    /// Maximum outstanding L2 prefetch fills.
    pub l2_mshrs: usize,
}

/// Outcome of a fetch or prefetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the requested line is usable.
    pub ready_at: Cycle,
    /// Deepest level that had to be consulted.
    pub served_by: Level,
    /// Bytes transferred from DRAM for this request (0 unless `served_by`
    /// is [`Level::Memory`] and this request initiated the fill).
    pub bytes_from_memory: u64,
    /// For demand fetches: the access hit a line a prefetcher installed,
    /// and this was the line's first use (tagged next-line trigger).
    pub hit_prefetched: bool,
}

/// Flush reports for each level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyFlush {
    /// L1-I flush report.
    pub l1i: FlushReport,
    /// L2 flush report.
    pub l2: FlushReport,
    /// LLC flush report.
    pub llc: FlushReport,
}

/// In-flight fill table (MSHR model): line number → completion cycle.
///
/// Sized by the MSHR count plus merged demand fills within one memory
/// latency window — a few dozen entries at most — so a flat vector with
/// linear scans beats a hash map. Expiry is O(1) in the common case: a
/// cached minimum completion cycle skips the sweep entirely until some
/// entry is actually due.
///
/// Expiry points match the old per-access `HashMap::retain` exactly, so
/// membership, lookups and live counts are bit-identical to the previous
/// representation.
#[derive(Debug, Clone, Default)]
struct InflightTable {
    entries: Vec<(u64, Cycle)>,
    /// Minimum completion cycle across `entries`; `Cycle::MAX` when empty.
    min_ready: Cycle,
}

impl InflightTable {
    fn new() -> Self {
        InflightTable { entries: Vec::new(), min_ready: Cycle::MAX }
    }

    /// Drops every entry whose fill has completed by `now`.
    #[inline]
    fn expire(&mut self, now: Cycle) {
        if self.min_ready > now {
            return;
        }
        self.entries.retain(|&(_, ready)| ready > now);
        self.min_ready = self.entries.iter().map(|&(_, ready)| ready).min().unwrap_or(Cycle::MAX);
    }

    #[inline]
    fn get(&self, line: u64) -> Option<Cycle> {
        self.entries.iter().find(|&&(l, _)| l == line).map(|&(_, ready)| ready)
    }

    #[inline]
    fn contains(&self, line: u64) -> bool {
        self.entries.iter().any(|&(l, _)| l == line)
    }

    #[inline]
    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Inserts or overwrites the entry for `line`.
    fn insert(&mut self, line: u64, ready: Cycle) {
        match self.entries.iter_mut().find(|(l, _)| *l == line) {
            Some(entry) => entry.1 = ready,
            None => self.entries.push((line, ready)),
        }
        self.min_ready = self.min_ready.min(ready);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.min_ready = Cycle::MAX;
    }
}

/// The simulated instruction-fetch hierarchy.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::config::UarchConfig;
/// use ignite_uarch::hierarchy::{Hierarchy, Level};
///
/// let mut h = Hierarchy::new(&UarchConfig::ice_lake_like().hierarchy);
/// let first = h.fetch(Addr::new(0x4000), 0);
/// assert_eq!(first.served_by, Level::Memory);
/// let second = h.fetch(Addr::new(0x4000), first.ready_at);
/// assert_eq!(second.served_by, Level::L1I);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    cfg: HierarchyConfig,
    l1i: SetAssocCache,
    l2: SetAssocCache,
    llc: SetAssocCache,
    /// Fills in flight toward the L1-I.
    inflight_l1i: InflightTable,
    /// Fills in flight toward the L2.
    inflight_l2: InflightTable,
    /// Lines filled from DRAM this measurement window → whether a demand
    /// fetch has touched them since (Fig. 10 useful/useless attribution).
    mem_fills: FxHashMap<u64, bool>,
    total_memory_read_bytes: u64,
    dropped_prefetches: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        Hierarchy {
            cfg: *cfg,
            l1i: SetAssocCache::new(cfg.l1i),
            l2: SetAssocCache::new(cfg.l2),
            llc: SetAssocCache::new(cfg.llc),
            inflight_l1i: InflightTable::new(),
            inflight_l2: InflightTable::new(),
            mem_fills: FxHashMap::default(),
            total_memory_read_bytes: 0,
            dropped_prefetches: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &SetAssocCache {
        &self.l1i
    }

    /// The L2 cache.
    pub fn l2(&self) -> &SetAssocCache {
        &self.l2
    }

    /// The last-level cache.
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// Total bytes read from DRAM on the instruction path.
    pub fn memory_read_bytes(&self) -> u64 {
        self.total_memory_read_bytes
    }

    /// Bytes of DRAM-filled lines that no demand fetch has touched since the
    /// last [`Hierarchy::reset_stats`] — wrong-path and overpredicted
    /// prefetch traffic (Fig. 10 "useless instructions").
    pub fn untouched_fill_bytes(&self) -> u64 {
        self.mem_fills.values().filter(|&&touched| !touched).count() as u64
            * crate::addr::LINE_BYTES
    }

    /// Prefetches dropped because all MSHRs were busy.
    pub fn dropped_prefetches(&self) -> u64 {
        self.dropped_prefetches
    }

    fn expire_inflight(&mut self, now: Cycle) {
        self.inflight_l1i.expire(now);
        self.inflight_l2.expire(now);
    }

    /// Looks up the levels below L1-I, filling on the way, and returns
    /// (additional latency, serving level, bytes from memory).
    fn access_below_l1i(&mut self, line: Addr, now: Cycle, kind: FillKind) -> (Cycle, Level, u64) {
        if self.l2.lookup(line) {
            // The line may still be in flight toward the L2 (prefetch fills
            // update state eagerly); wait out the remaining fill latency.
            let extra = self
                .inflight_l2
                .get(line.line_number())
                .map_or(0, |ready| ready.saturating_sub(now));
            (self.cfg.l2_latency + extra, Level::L2, 0)
        } else if self.llc.lookup(line) {
            self.l2.fill(line, kind);
            (self.cfg.llc_latency, Level::Llc, 0)
        } else {
            self.llc.fill(line, kind);
            self.l2.fill(line, kind);
            self.total_memory_read_bytes += crate::addr::LINE_BYTES;
            self.mem_fills.entry(line.line_number()).or_insert(false);
            (self.cfg.memory_latency, Level::Memory, crate::addr::LINE_BYTES)
        }
    }

    /// Demand instruction fetch of the line containing `addr`.
    ///
    /// Always proceeds; merges with an in-flight fill of the same line if one
    /// exists.
    pub fn fetch(&mut self, addr: Addr, now: Cycle) -> AccessResult {
        self.expire_inflight(now);
        let line = addr.line();
        if let Some(touched) = self.mem_fills.get_mut(&line.line_number()) {
            *touched = true;
        }
        if let Some(hit) = self.l1i.lookup_hit(line) {
            // A resident line may still be in flight (fills update cache
            // state eagerly); the fetch must wait for the fill to land.
            let fill_done = self.inflight_l1i.get(line.line_number()).unwrap_or(now);
            return AccessResult {
                ready_at: fill_done.max(now) + self.cfg.l1i_latency,
                served_by: Level::L1I,
                bytes_from_memory: 0,
                hit_prefetched: hit.was_prefetched,
            };
        }
        let (extra, served_by, bytes) = self.access_below_l1i(line, now, FillKind::Demand);
        let ready = now + extra;
        self.l1i.fill(line, FillKind::Demand);
        self.inflight_l1i.insert(line.line_number(), ready);
        AccessResult {
            ready_at: ready + self.cfg.l1i_latency,
            served_by,
            bytes_from_memory: bytes,
            hit_prefetched: false,
        }
    }

    /// Prefetches the line containing `addr` into the L1-I.
    ///
    /// Returns `None` if the line is already resident or in flight, or if all
    /// L1-I MSHRs are busy (the prefetch is dropped, as in hardware).
    pub fn prefetch_l1i(&mut self, addr: Addr, now: Cycle, kind: FillKind) -> Option<AccessResult> {
        self.expire_inflight(now);
        let line = addr.line();
        if self.l1i.probe(line) || self.inflight_l1i.contains(line.line_number()) {
            return None;
        }
        if self.inflight_l1i.len() >= self.cfg.l1i_mshrs {
            self.dropped_prefetches += 1;
            return None;
        }
        let (extra, served_by, bytes) = self.access_below_l1i(line, now, kind);
        let ready = now + extra;
        self.l1i.fill(line, kind);
        self.inflight_l1i.insert(line.line_number(), ready);
        Some(AccessResult {
            ready_at: ready,
            served_by,
            bytes_from_memory: bytes,
            hit_prefetched: false,
        })
    }

    /// Prefetches the line containing `addr` into the L2 (Jukebox / Ignite
    /// replay target).
    ///
    /// Returns `None` if the line is already L2-resident or in flight, or if
    /// all L2 MSHRs are busy.
    pub fn prefetch_l2(&mut self, addr: Addr, now: Cycle, kind: FillKind) -> Option<AccessResult> {
        self.expire_inflight(now);
        let line = addr.line();
        if self.l2.probe(line) || self.inflight_l2.contains(line.line_number()) {
            return None;
        }
        if self.inflight_l2.len() >= self.cfg.l2_mshrs {
            self.dropped_prefetches += 1;
            return None;
        }
        let (lat, served_by, bytes) = if self.llc.lookup(line) {
            (self.cfg.llc_latency, Level::Llc, 0)
        } else {
            self.llc.fill(line, kind);
            self.total_memory_read_bytes += crate::addr::LINE_BYTES;
            self.mem_fills.entry(line.line_number()).or_insert(false);
            (self.cfg.memory_latency, Level::Memory, crate::addr::LINE_BYTES)
        };
        self.l2.fill(line, kind);
        let ready = now + lat;
        self.inflight_l2.insert(line.line_number(), ready);
        Some(AccessResult {
            ready_at: ready,
            served_by,
            bytes_from_memory: bytes,
            hit_prefetched: false,
        })
    }

    /// Free L2 prefetch MSHR slots at `now` (replay engines use this as
    /// memory-bandwidth backpressure: bulk restoration cannot outrun DRAM).
    pub fn l2_prefetch_capacity(&mut self, now: Cycle) -> usize {
        self.expire_inflight(now);
        self.cfg.l2_mshrs.saturating_sub(self.inflight_l2.len())
    }

    /// Whether the line containing `addr` is L1-I resident (no side effects).
    pub fn probe_l1i(&self, addr: Addr) -> bool {
        self.l1i.probe(addr.line())
    }

    /// Whether the line containing `addr` is L2 resident (no side effects).
    pub fn probe_l2(&self, addr: Addr) -> bool {
        self.l2.probe(addr.line())
    }

    /// Flushes every level (the lukewarm interleaving protocol, §5.3).
    pub fn flush_all(&mut self) -> HierarchyFlush {
        self.inflight_l1i.clear();
        self.inflight_l2.clear();
        HierarchyFlush {
            l1i: self.l1i.invalidate_all(),
            l2: self.l2.invalidate_all(),
            llc: self.llc.invalidate_all(),
        }
    }

    /// Resets statistics at all levels (start of a measured invocation).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.mem_fills.clear();
        self.total_memory_read_bytes = 0;
        self.dropped_prefetches = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UarchConfig;

    fn hierarchy() -> Hierarchy {
        Hierarchy::new(&UarchConfig::ice_lake_like().hierarchy)
    }

    #[test]
    fn cold_fetch_goes_to_memory() {
        let mut h = hierarchy();
        let r = h.fetch(Addr::new(0x1000), 0);
        assert_eq!(r.served_by, Level::Memory);
        assert_eq!(r.bytes_from_memory, 64);
        assert!(r.ready_at >= h.config().memory_latency);
    }

    #[test]
    fn second_fetch_hits_l1i() {
        let mut h = hierarchy();
        let first = h.fetch(Addr::new(0x1000), 0);
        let r = h.fetch(Addr::new(0x1000), first.ready_at);
        assert_eq!(r.served_by, Level::L1I);
        assert_eq!(r.ready_at, first.ready_at + h.config().l1i_latency);
    }

    #[test]
    fn l2_resident_line_served_by_l2() {
        let mut h = hierarchy();
        h.prefetch_l2(Addr::new(0x2000), 0, FillKind::Prefetch);
        let r = h.fetch(Addr::new(0x2000), 1000);
        assert_eq!(r.served_by, Level::L2);
        assert_eq!(r.bytes_from_memory, 0);
    }

    #[test]
    fn inflight_merge_carries_no_extra_traffic() {
        let mut h = hierarchy();
        let a = h.fetch(Addr::new(0x3000), 0);
        // Same line, before the fill completes: merged — no new memory
        // traffic, and readiness waits for the original fill.
        let b = h.fetch(Addr::new(0x3010), 1);
        assert_eq!(a.bytes_from_memory, 64);
        assert_eq!(b.bytes_from_memory, 0);
        assert!(b.ready_at >= a.ready_at, "merged fetch cannot complete before the fill");
        assert_eq!(h.memory_read_bytes(), 64);
    }

    #[test]
    fn prefetched_line_not_ready_until_fill_lands() {
        let mut h = hierarchy();
        let p = h.prefetch_l1i(Addr::new(0x6000), 0, FillKind::Prefetch).expect("issued");
        let f = h.fetch(Addr::new(0x6000), 5);
        assert!(f.ready_at >= p.ready_at, "demand fetch waits for in-flight prefetch");
        // Long after the fill: single-cycle hit.
        let f2 = h.fetch(Addr::new(0x6000), p.ready_at + 10);
        assert_eq!(f2.ready_at, p.ready_at + 10 + h.config().l1i_latency);
    }

    #[test]
    fn prefetch_l1i_dedupes_resident_lines() {
        let mut h = hierarchy();
        let done = h.fetch(Addr::new(0x1000), 0).ready_at;
        assert!(h.prefetch_l1i(Addr::new(0x1000), done, FillKind::Prefetch).is_none());
    }

    #[test]
    fn prefetch_mshr_limit_drops() {
        let mut h = hierarchy();
        let mshrs = h.config().l1i_mshrs;
        for i in 0..mshrs {
            let a = Addr::new(0x10_000 + (i as u64) * 64);
            assert!(h.prefetch_l1i(a, 0, FillKind::Prefetch).is_some());
        }
        let overflow = Addr::new(0x90_000);
        assert!(h.prefetch_l1i(overflow, 0, FillKind::Prefetch).is_none());
        assert_eq!(h.dropped_prefetches(), 1);
        // After the fills complete, prefetching works again.
        assert!(h.prefetch_l1i(overflow, 100_000, FillKind::Prefetch).is_some());
    }

    #[test]
    fn prefetch_l2_from_memory_counts_traffic() {
        let mut h = hierarchy();
        let r = h.prefetch_l2(Addr::new(0x5000), 0, FillKind::Restore).expect("issued");
        assert_eq!(r.served_by, Level::Memory);
        assert_eq!(h.memory_read_bytes(), 64);
        // Already resident: dropped.
        assert!(h.prefetch_l2(Addr::new(0x5000), 100_000, FillKind::Restore).is_none());
    }

    #[test]
    fn flush_empties_all_levels() {
        let mut h = hierarchy();
        h.fetch(Addr::new(0x1000), 0);
        let report = h.flush_all();
        assert!(report.l1i.valid_lines > 0);
        assert!(report.l2.valid_lines > 0);
        assert!(report.llc.valid_lines > 0);
        let r = h.fetch(Addr::new(0x1000), 10_000);
        assert_eq!(r.served_by, Level::Memory);
    }

    #[test]
    fn llc_hit_after_l1_l2_flush_path() {
        let mut h = hierarchy();
        h.fetch(Addr::new(0x1000), 0);
        // Invalidate only upper levels by constructing a fresh path: simulate
        // via a new fetch after manual L1/L2 flush.
        // (The public API flushes all levels; probe the LLC fill instead.)
        assert!(h.llc().probe(Addr::new(0x1000)));
    }

    #[test]
    fn reset_stats_clears_counters() {
        let mut h = hierarchy();
        h.fetch(Addr::new(0x1000), 0);
        h.reset_stats();
        assert_eq!(h.l1i().stats().demand.lookups, 0);
        assert_eq!(h.memory_read_bytes(), 0);
    }
}
