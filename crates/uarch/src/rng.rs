//! Deterministic pseudo-random number generation for simulation.
//!
//! Simulation results must be exactly reproducible across runs and platforms,
//! so the hot paths use a small, explicit SplitMix64 generator rather than a
//! thread-local or OS-seeded source. SplitMix64 passes BigCrush and is the
//! recommended seeder for xoshiro-family generators.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use ignite_uarch::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded rejection-free mapping (Lemire).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent generator for a labelled sub-stream.
    ///
    /// Used to give each simulated structure (e.g. each function's trace
    /// walker) its own stream so that adding consumers does not perturb
    /// existing ones.
    pub fn fork(&mut self, label: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_in_bounds() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SplitMix64::new(99);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..1000 {
            match r.range_inclusive(3, 4) {
                3 => lo_seen = true,
                4 => hi_seen = true,
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_statistics() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fork_independence() {
        let mut base = SplitMix64::new(55);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
