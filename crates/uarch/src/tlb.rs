//! Instruction TLB.
//!
//! Ignite's replay translates each restored branch PC through the MMU, which
//! the paper notes "effectively serving as an I-TLB prefetcher" (§4.2). The
//! model is a set-associative TLB of 4 KiB page entries with a fixed
//! page-walk latency charged on misses.

use crate::addr::{Addr, PAGE_BYTES};
use crate::cache::{CacheGeometry, FillKind, SetAssocCache};
use crate::Cycle;

/// ITLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
    /// Page-walk latency charged on a miss, in cycles.
    pub walk_latency: Cycle,
}

/// An instruction TLB.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::tlb::{Itlb, TlbConfig};
///
/// let mut tlb = Itlb::new(&TlbConfig { entries: 128, ways: 8, walk_latency: 50 });
/// assert_eq!(tlb.translate(Addr::new(0x1234)), 50); // cold: page walk
/// assert_eq!(tlb.translate(Addr::new(0x1ff0)), 0);  // same page: hit
/// ```
#[derive(Debug, Clone)]
pub struct Itlb {
    entries: SetAssocCache,
    walk_latency: Cycle,
    misses_walked: u64,
}

impl Itlb {
    /// Creates an empty ITLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `ways`.
    pub fn new(cfg: &TlbConfig) -> Self {
        let geometry = CacheGeometry {
            size_bytes: cfg.entries as u64 * PAGE_BYTES,
            ways: cfg.ways,
            line_bytes: PAGE_BYTES,
        };
        Itlb {
            entries: SetAssocCache::new(geometry),
            walk_latency: cfg.walk_latency,
            misses_walked: 0,
        }
    }

    /// Translates `addr`, returning the added latency (0 on a hit, the walk
    /// latency on a miss). The mapping is installed on a miss.
    pub fn translate(&mut self, addr: Addr) -> Cycle {
        if self.entries.lookup(addr.page()) {
            0
        } else {
            self.misses_walked += 1;
            self.entries.fill(addr.page(), FillKind::Demand);
            self.walk_latency
        }
    }

    /// Installs a translation without charging latency (replay warm-up).
    pub fn warm(&mut self, addr: Addr) {
        if !self.entries.probe(addr.page()) {
            self.entries.fill(addr.page(), FillKind::Restore);
        }
    }

    /// Whether a translation for `addr` is resident (no side effects).
    pub fn probe(&self, addr: Addr) -> bool {
        self.entries.probe(addr.page())
    }

    /// Demand lookups that required a page walk.
    pub fn walks(&self) -> u64 {
        self.misses_walked
    }

    /// Demand lookup count.
    pub fn lookups(&self) -> u64 {
        self.entries.stats().demand.lookups
    }

    /// Invalidates all translations (lukewarm flush).
    pub fn flush(&mut self) {
        self.entries.invalidate_all();
    }

    /// Clears statistics, keeping translations.
    pub fn reset_stats(&mut self) {
        self.entries.reset_stats();
        self.misses_walked = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Itlb {
        Itlb::new(&TlbConfig { entries: 16, ways: 4, walk_latency: 50 })
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tlb();
        assert_eq!(t.translate(Addr::new(0x5000)), 50);
        assert_eq!(t.translate(Addr::new(0x5fff)), 0);
        assert_eq!(t.walks(), 1);
    }

    #[test]
    fn distinct_pages_walk_separately() {
        let mut t = tlb();
        assert_eq!(t.translate(Addr::new(0x1000)), 50);
        assert_eq!(t.translate(Addr::new(0x2000)), 50);
        assert_eq!(t.walks(), 2);
    }

    #[test]
    fn warm_avoids_walk() {
        let mut t = tlb();
        t.warm(Addr::new(0x9000));
        assert_eq!(t.translate(Addr::new(0x9abc)), 0);
        assert_eq!(t.walks(), 0);
    }

    #[test]
    fn flush_forgets() {
        let mut t = tlb();
        t.translate(Addr::new(0x1000));
        t.flush();
        assert_eq!(t.translate(Addr::new(0x1000)), 50);
    }

    #[test]
    fn capacity_eviction() {
        let mut t = tlb();
        // 16 entries; touch 17 pages mapping across sets — the first page of
        // the same set must eventually be evicted.
        for i in 0..64u64 {
            t.translate(Addr::new(i * PAGE_BYTES));
        }
        assert_eq!(t.translate(Addr::new(0)), 50, "oldest page evicted");
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut t = tlb();
        assert!(!t.probe(Addr::new(0x4000)));
        assert_eq!(t.lookups(), 0);
        t.warm(Addr::new(0x4000));
        assert!(t.probe(Addr::new(0x4000)));
    }
}
