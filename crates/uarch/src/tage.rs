//! TAGE conditional branch predictor component.
//!
//! A standard TAGE (TAgged GEometric history length) predictor: a set of
//! tagged tables indexed by hashes of the branch PC and geometrically
//! increasing slices of global history, with usefulness counters steering
//! allocation. Together with the bimodal base ([`crate::bimodal`]) this
//! forms the paper's L-TAGE-style CBP (Table 2: 64 KiB TAGE + 5 KiB BIM).
//! The loop predictor of full L-TAGE is omitted (see DESIGN.md §5).
//!
//! Following the paper's §5.3 (citing the IBM z15 and AMD Zen 4), the
//! global history is *taken-only*: only taken branches shift bits in.

use crate::addr::Addr;
use crate::rng::SplitMix64;

/// TAGE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TageConfig {
    /// Number of tagged tables.
    pub tables: usize,
    /// Entries per tagged table (power of two).
    pub entries_per_table: usize,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// Shortest history length.
    pub min_history: u32,
    /// Longest history length.
    pub max_history: u32,
    /// Updates between usefulness-counter decays.
    pub u_reset_period: u64,
}

impl TageConfig {
    /// Geometric history length for table `i` (0 = shortest).
    pub fn history_length(&self, i: usize) -> u32 {
        if self.tables == 1 {
            return self.min_history;
        }
        let ratio = (self.max_history as f64 / self.min_history as f64)
            .powf(1.0 / (self.tables as f64 - 1.0));
        (self.min_history as f64 * ratio.powi(i as i32)).round() as u32
    }

    /// Approximate storage cost in bytes (tag + 3-bit counter + 2-bit u).
    pub fn storage_bytes(&self) -> usize {
        let bits_per_entry = self.tag_bits as usize + 3 + 2;
        self.tables * self.entries_per_table * bits_per_entry / 8
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    /// Signed 3-bit counter in `[-4, 3]`; `>= 0` predicts taken.
    ctr: i8,
    /// 2-bit usefulness counter.
    useful: u8,
    valid: bool,
}

/// Cyclically folded history register (Seznec's CSR construction).
#[derive(Debug, Clone, Copy)]
struct Folded {
    comp: u64,
    comp_len: u32,
    orig_len: u32,
}

impl Folded {
    fn new(orig_len: u32, comp_len: u32) -> Self {
        Folded { comp: 0, comp_len: comp_len.max(1), orig_len }
    }

    /// Shifts in `new_bit` and removes `old_bit` (the bit leaving the
    /// `orig_len`-bit window).
    fn update(&mut self, new_bit: u64, old_bit: u64) {
        self.comp = (self.comp << 1) | new_bit;
        self.comp ^= old_bit << (self.orig_len % self.comp_len);
        self.comp ^= self.comp >> self.comp_len;
        self.comp &= (1u64 << self.comp_len) - 1;
    }

    fn value(&self) -> u64 {
        self.comp
    }
}

/// Taken-only global history ring buffer.
#[derive(Debug, Clone)]
struct History {
    bits: Vec<u8>,
    pos: usize,
}

impl History {
    fn new(capacity: usize) -> Self {
        History { bits: vec![0; capacity.max(1)], pos: 0 }
    }

    /// The i-th most recent bit (0 = newest).
    fn bit(&self, i: usize) -> u64 {
        let n = self.bits.len();
        self.bits[(self.pos + n - 1 - (i % n)) % n] as u64
    }

    fn push(&mut self, bit: u64) {
        self.bits[self.pos] = bit as u8;
        self.pos = (self.pos + 1) % self.bits.len();
    }

    fn clear(&mut self) {
        self.bits.fill(0);
        self.pos = 0;
    }
}

/// Prediction metadata threaded from [`Tage::predict`] to [`Tage::update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TagePrediction {
    /// Table index of the hit with the longest history, if any.
    provider: Option<usize>,
    /// Direction from the provider (meaningless if `provider` is `None`).
    provider_pred: bool,
    /// Alternate prediction: next-longest hit, if any.
    alt: Option<bool>,
    /// Per-table indices computed at prediction time.
    indices: [usize; Tage::MAX_TABLES],
    /// Per-table tags computed at prediction time.
    tags: [u16; Tage::MAX_TABLES],
    /// The provider entry was weak (newly allocated).
    weak_provider: bool,
}

impl TagePrediction {
    /// The tagged prediction, if any table hit.
    ///
    /// `None` means the composed predictor must fall back to its base
    /// (bimodal) prediction.
    pub fn direction(&self) -> Option<bool> {
        self.provider.map(|_| self.provider_pred)
    }

    /// The alternate (next-longest-hit) prediction, if any.
    pub fn alt_direction(&self) -> Option<bool> {
        self.alt
    }

    /// Whether the provider entry looked newly allocated.
    pub fn weak_provider(&self) -> bool {
        self.weak_provider
    }
}

/// A TAGE predictor.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::tage::{Tage, TageConfig};
///
/// let mut tage = Tage::new(&TageConfig {
///     tables: 4, entries_per_table: 256, tag_bits: 9,
///     min_history: 4, max_history: 64, u_reset_period: 1 << 18,
/// });
/// let pc = Addr::new(0x1000);
/// let p = tage.predict(pc);
/// assert!(p.direction().is_none(), "cold TAGE has no tagged hit");
/// tage.update(pc, true, &p, false, false);
/// ```
#[derive(Debug, Clone)]
pub struct Tage {
    cfg: TageConfig,
    tables: Vec<Vec<TageEntry>>,
    history: History,
    folded_index: Vec<Folded>,
    folded_tag: [Vec<Folded>; 2],
    update_count: u64,
    rng: SplitMix64,
    allocations: u64,
    tagged_hits: u64,
    predictions: u64,
}

impl Tage {
    /// Upper bound on `tables` supported by the fixed-size metadata arrays.
    pub const MAX_TABLES: usize = 16;

    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate: zero tables, more than
    /// [`Tage::MAX_TABLES`] tables, a non-power-of-two table size, or
    /// `min_history > max_history`.
    pub fn new(cfg: &TageConfig) -> Self {
        assert!(cfg.tables > 0 && cfg.tables <= Self::MAX_TABLES, "1..=16 tables supported");
        assert!(cfg.entries_per_table.is_power_of_two(), "table size must be a power of two");
        assert!(cfg.min_history <= cfg.max_history, "min history exceeds max");
        let index_bits = cfg.entries_per_table.trailing_zeros();
        let folded_index =
            (0..cfg.tables).map(|i| Folded::new(cfg.history_length(i), index_bits)).collect();
        let folded_tag = [
            (0..cfg.tables).map(|i| Folded::new(cfg.history_length(i), cfg.tag_bits)).collect(),
            (0..cfg.tables)
                .map(|i| Folded::new(cfg.history_length(i), cfg.tag_bits.saturating_sub(1).max(1)))
                .collect(),
        ];
        Tage {
            cfg: *cfg,
            tables: vec![vec![TageEntry::default(); cfg.entries_per_table]; cfg.tables],
            history: History::new(cfg.max_history as usize),
            folded_index,
            folded_tag,
            update_count: 0,
            rng: SplitMix64::new(0x7A6E_5EED),
            allocations: 0,
            tagged_hits: 0,
            predictions: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &TageConfig {
        &self.cfg
    }

    /// Entries allocated so far.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Predictions served by a tagged table.
    pub fn tagged_hits(&self) -> u64 {
        self.tagged_hits
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    fn index(&self, table: usize, pc: Addr) -> usize {
        let pcv = pc.as_u64();
        let mask = self.cfg.entries_per_table as u64 - 1;
        let h = pcv
            ^ (pcv >> (self.cfg.entries_per_table.trailing_zeros() as u64 + table as u64 + 1))
            ^ self.folded_index[table].value();
        (h & mask) as usize
    }

    fn tag(&self, table: usize, pc: Addr) -> u16 {
        let pcv = pc.as_u64();
        let mask = (1u64 << self.cfg.tag_bits) - 1;
        ((pcv ^ self.folded_tag[0][table].value() ^ (self.folded_tag[1][table].value() << 1))
            & mask) as u16
    }

    /// Computes the prediction for `pc`.
    pub fn predict(&mut self, pc: Addr) -> TagePrediction {
        self.predictions += 1;
        let mut indices = [0usize; Self::MAX_TABLES];
        let mut tags = [0u16; Self::MAX_TABLES];
        let mut provider = None;
        let mut provider_pred = false;
        let mut weak_provider = false;
        let mut alt = None;
        // Scan from longest history (highest table) down.
        for t in (0..self.cfg.tables).rev() {
            indices[t] = self.index(t, pc);
            tags[t] = self.tag(t, pc);
        }
        for t in (0..self.cfg.tables).rev() {
            let e = &self.tables[t][indices[t]];
            if e.valid && e.tag == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                    provider_pred = e.ctr >= 0;
                    weak_provider = e.useful == 0 && (e.ctr == 0 || e.ctr == -1);
                } else {
                    alt = Some(e.ctr >= 0);
                    break;
                }
            }
        }
        if provider.is_some() {
            self.tagged_hits += 1;
        }
        TagePrediction { provider, provider_pred, alt, indices, tags, weak_provider }
    }

    /// Trains the predictor with the resolved outcome.
    ///
    /// `mispredicted` is the *final* (composed) predictor outcome, which
    /// gates new-entry allocation as in standard TAGE. `alt_pred` is the
    /// direction the alternate predictor (next-longest hit, or the bimodal
    /// base) produced — it drives usefulness-counter training.
    pub fn update(
        &mut self,
        _pc: Addr,
        taken: bool,
        pred: &TagePrediction,
        mispredicted: bool,
        alt_pred: bool,
    ) {
        self.update_count += 1;
        // Periodic graceful decay of usefulness counters.
        if self.cfg.u_reset_period > 0 && self.update_count.is_multiple_of(self.cfg.u_reset_period)
        {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }
        if let Some(p) = pred.provider {
            let correct = pred.provider_pred == taken;
            let e = &mut self.tables[p][pred.indices[p]];
            e.ctr = if taken { (e.ctr + 1).min(3) } else { (e.ctr - 1).max(-4) };
            // Usefulness trains only when provider and alternate disagree.
            if pred.provider_pred != alt_pred {
                if correct {
                    e.useful = (e.useful + 1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }
        // Allocate on misprediction in a table with longer history.
        if mispredicted {
            let start = pred.provider.map_or(0, |p| p + 1);
            if start < self.cfg.tables {
                // Choose randomly among allocatable (u == 0) candidates,
                // biased toward shorter histories as in Seznec's TAGE.
                let mut allocated = false;
                let mut t = start;
                // Random skip: with probability 1/2 start one table higher.
                if t + 1 < self.cfg.tables && self.rng.chance(0.5) {
                    t += 1;
                }
                while t < self.cfg.tables {
                    let idx = pred.indices[t];
                    if self.tables[t][idx].useful == 0 {
                        self.tables[t][idx] = TageEntry {
                            tag: pred.tags[t],
                            ctr: if taken { 0 } else { -1 },
                            useful: 0,
                            valid: true,
                        };
                        self.allocations += 1;
                        allocated = true;
                        break;
                    }
                    t += 1;
                }
                if !allocated {
                    // Decay usefulness so future allocations can succeed.
                    for t in start..self.cfg.tables {
                        let idx = pred.indices[t];
                        let e = &mut self.tables[t][idx];
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
        }
    }

    /// Advances the taken-only global history after a *taken* branch.
    ///
    /// Call for every committed taken branch (any kind); not-taken branches
    /// leave the history untouched.
    pub fn push_history(&mut self, pc: Addr, target: Addr) {
        let bit = (pc.as_u64() >> 2 ^ target.as_u64() >> 3) & 1;
        // The bit falling out of each folded window is the one at index
        // orig_len - 1 *before* the push. Each folded register carries its
        // window length, so the geometric series needs no recomputation.
        for t in 0..self.cfg.tables {
            let olen = self.folded_index[t].orig_len as usize;
            let old = self.history.bit(olen - 1);
            self.folded_index[t].update(bit, old);
            self.folded_tag[0][t].update(bit, old);
            self.folded_tag[1][t].update(bit, old);
        }
        self.history.push(bit);
    }

    /// Clears all tables and history (lukewarm flush).
    pub fn flush(&mut self) {
        for table in &mut self.tables {
            table.fill(TageEntry::default());
        }
        self.history.clear();
        for f in &mut self.folded_index {
            f.comp = 0;
        }
        for side in &mut self.folded_tag {
            for f in side.iter_mut() {
                f.comp = 0;
            }
        }
        self.update_count = 0;
    }

    /// Clears statistics, keeping predictor state.
    pub fn reset_stats(&mut self) {
        self.allocations = 0;
        self.tagged_hits = 0;
        self.predictions = 0;
    }

    /// Fraction of valid entries across all tables (inspection).
    pub fn occupancy(&self) -> f64 {
        let total = self.cfg.tables * self.cfg.entries_per_table;
        let valid: usize = self.tables.iter().map(|t| t.iter().filter(|e| e.valid).count()).sum();
        valid as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> TageConfig {
        TageConfig {
            tables: 6,
            entries_per_table: 1024,
            tag_bits: 11,
            min_history: 4,
            max_history: 256,
            u_reset_period: 1 << 18,
        }
    }

    fn tage() -> Tage {
        Tage::new(&config())
    }

    #[test]
    fn history_lengths_are_geometric() {
        let cfg = config();
        assert_eq!(cfg.history_length(0), cfg.min_history);
        assert_eq!(cfg.history_length(cfg.tables - 1), cfg.max_history);
        for i in 1..cfg.tables {
            assert!(cfg.history_length(i) > cfg.history_length(i - 1));
        }
    }

    #[test]
    fn storage_estimate_reasonable() {
        // Paper-scale config: 8 tables x 2048 entries x (12+5) bits ~ 34 KiB.
        let cfg = TageConfig {
            tables: 8,
            entries_per_table: 2048,
            tag_bits: 12,
            min_history: 4,
            max_history: 512,
            u_reset_period: 1 << 18,
        };
        let kib = cfg.storage_bytes() / 1024;
        assert!((30..=40).contains(&kib), "storage = {kib} KiB");
    }

    #[test]
    fn cold_predictor_has_no_tagged_hit() {
        let mut t = tage();
        let p = t.predict(Addr::new(0x1234));
        assert!(p.direction().is_none());
    }

    #[test]
    fn allocation_on_mispredict_enables_tagged_hits() {
        let mut t = tage();
        let pc = Addr::new(0x4000);
        // Mispredict repeatedly; allocations should start providing.
        for _ in 0..20 {
            let p = t.predict(pc);
            t.update(pc, true, &p, p.direction() != Some(true), false);
            t.push_history(pc, Addr::new(0x5000));
        }
        assert!(t.allocations() > 0);
    }

    #[test]
    fn learns_history_correlated_branch() {
        // A branch whose direction equals the direction of the previous
        // branch is unlearnable by bimodal alone but learnable by TAGE.
        let mut t = tage();
        let pc = Addr::new(0x8000);
        let other = Addr::new(0x9000);
        let mut correct_late = 0;
        let mut total_late = 0;
        let mut pattern = SplitMix64::new(3);
        for i in 0..4000 {
            let dir = pattern.chance(0.5);
            // "other" branch feeds the history a bit equal to `dir`
            // (push_history hashes pc >> 2, so +4 flips the bit).
            if dir {
                t.push_history(other + 4, Addr::NULL);
            } else {
                t.push_history(other, Addr::NULL);
            }
            let p = t.predict(pc);
            let predicted = p.direction().unwrap_or(false);
            if i > 3000 {
                total_late += 1;
                if predicted == dir {
                    correct_late += 1;
                }
            }
            t.update(pc, dir, &p, predicted != dir, false);
            if dir {
                t.push_history(pc, Addr::new(0xc000));
            }
        }
        let acc = correct_late as f64 / total_late as f64;
        assert!(acc > 0.80, "late accuracy {acc}");
    }

    #[test]
    fn flush_forgets_everything() {
        let mut t = tage();
        let pc = Addr::new(0x4000);
        for _ in 0..50 {
            let p = t.predict(pc);
            t.update(pc, true, &p, p.direction() != Some(true), false);
            t.push_history(pc, Addr::new(0x5000));
        }
        t.flush();
        let p = t.predict(pc);
        assert!(p.direction().is_none());
        assert!(t.occupancy() < 1e-9);
    }

    #[test]
    fn clone_snapshot_restores_state() {
        let mut t = tage();
        let pc = Addr::new(0x4000);
        for _ in 0..50 {
            let p = t.predict(pc);
            t.update(pc, true, &p, p.direction() != Some(true), false);
            t.push_history(pc, Addr::new(0x5000));
        }
        let snapshot = t.clone();
        t.flush();
        let restored = snapshot.clone();
        let mut r = restored;
        let p = r.predict(pc);
        assert!(p.direction().is_some(), "snapshot preserves tagged entries");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_tables() {
        let mut cfg = config();
        cfg.entries_per_table = 1000;
        Tage::new(&cfg);
    }

    #[test]
    fn folded_history_changes_index() {
        let mut t = tage();
        let pc = Addr::new(0x7777);
        let before = t.index(t.cfg.tables - 1, pc);
        for i in 0..64 {
            // pc >> 2 alternates its low bit, producing a 0101... history.
            t.push_history(Addr::new(i * 4), Addr::NULL);
        }
        let after = t.index(t.cfg.tables - 1, pc);
        assert_ne!(before, after, "long-history index must depend on history");
    }
}
