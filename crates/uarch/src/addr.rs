//! Virtual addresses and alignment helpers.
//!
//! The simulator models 48-bit virtual addresses (as the paper assumes when
//! sizing uncompressed metadata records: two 48-bit addresses = 96 bits).
//! Cache lines are 64 bytes and pages 4 KiB throughout, matching the paper's
//! simulated Ice Lake configuration.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Bytes per cache line (paper Table 2: 64 B lines at every level).
pub const LINE_BYTES: u64 = 64;
/// Bytes per virtual memory page.
pub const PAGE_BYTES: u64 = 4096;
/// Number of meaningful virtual-address bits.
pub const VA_BITS: u32 = 48;
/// Mask of the meaningful virtual-address bits.
pub const VA_MASK: u64 = (1 << VA_BITS) - 1;

/// A 48-bit virtual address.
///
/// `Addr` is a transparent newtype over `u64`; the upper 16 bits are always
/// zero. Arithmetic saturates into the 48-bit space by masking.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::{Addr, LINE_BYTES};
///
/// let a = Addr::new(0x1043);
/// assert_eq!(a.line().as_u64(), 0x1040);
/// assert_eq!(a.line_offset(), 3);
/// assert_eq!((a + LINE_BYTES).line(), a.line().next_line());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address, masking to 48 bits.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw & VA_MASK)
    }

    /// The zero address.
    pub const NULL: Addr = Addr(0);

    /// Raw numeric value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Address of the first byte of the containing cache line.
    #[inline]
    pub const fn line(self) -> Addr {
        Addr(self.0 & !(LINE_BYTES - 1))
    }

    /// Byte offset within the containing cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }

    /// Cache-line index (address divided by the line size).
    #[inline]
    pub const fn line_number(self) -> u64 {
        self.0 / LINE_BYTES
    }

    /// Address of the first byte of the containing page.
    #[inline]
    pub const fn page(self) -> Addr {
        Addr(self.0 & !(PAGE_BYTES - 1))
    }

    /// Address of the first byte of the containing power-of-two region.
    ///
    /// # Panics
    ///
    /// Panics if `region_bytes` is not a power of two.
    #[inline]
    pub fn region(self, region_bytes: u64) -> Addr {
        assert!(region_bytes.is_power_of_two(), "region size must be a power of two");
        Addr(self.0 & !(region_bytes - 1))
    }

    /// First byte of the next cache line.
    #[inline]
    pub const fn next_line(self) -> Addr {
        Addr((self.0 & !(LINE_BYTES - 1)).wrapping_add(LINE_BYTES) & VA_MASK)
    }

    /// Signed distance `other - self` in bytes.
    ///
    /// Used by Ignite's metadata codec to compute branch-PC and target deltas.
    #[inline]
    pub const fn delta_to(self, other: Addr) -> i64 {
        other.0 as i64 - self.0 as i64
    }

    /// Offsets the address by a signed byte delta, masking into 48 bits.
    #[inline]
    pub const fn offset(self, delta: i64) -> Addr {
        Addr((self.0 as i64).wrapping_add(delta) as u64 & VA_MASK)
    }

    /// Whether `self` and `other` fall in the same cache line.
    #[inline]
    pub const fn same_line(self, other: Addr) -> bool {
        self.line().0 == other.line().0
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr::new(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    fn add(self, rhs: u64) -> Addr {
        Addr::new(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<Addr> for Addr {
    type Output = i64;
    fn sub(self, rhs: Addr) -> i64 {
        rhs.delta_to(self)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

/// Iterator over the cache lines overlapped by a byte range.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::{lines_spanned, Addr};
///
/// let lines: Vec<_> = lines_spanned(Addr::new(0x10), 0x90).collect();
/// assert_eq!(lines, vec![Addr::new(0x0), Addr::new(0x40), Addr::new(0x80)]);
/// ```
pub fn lines_spanned(start: Addr, bytes: u64) -> impl Iterator<Item = Addr> {
    let first = start.line_number();
    let last = if bytes == 0 { first } else { (start + (bytes - 1)).line_number() };
    (first..=last).map(|n| Addr::new(n * LINE_BYTES))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_to_48_bits() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.as_u64(), VA_MASK);
    }

    #[test]
    fn line_alignment() {
        let a = Addr::new(0x1234_5678);
        assert_eq!(a.line().as_u64() % LINE_BYTES, 0);
        assert!(a.as_u64() - a.line().as_u64() < LINE_BYTES);
        assert_eq!(a.line_offset(), a.as_u64() % LINE_BYTES);
    }

    #[test]
    fn page_alignment() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(a.page().as_u64() % PAGE_BYTES, 0);
        assert_eq!(a.page().as_u64(), 0xdead_b000);
    }

    #[test]
    fn region_alignment() {
        let a = Addr::new(0x1457);
        assert_eq!(a.region(1024).as_u64(), 0x1400);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn region_rejects_non_power_of_two() {
        Addr::new(0).region(1000);
    }

    #[test]
    fn delta_roundtrip() {
        let a = Addr::new(0x1000);
        let b = Addr::new(0x10c0);
        let d = a.delta_to(b);
        assert_eq!(d, 0xc0);
        assert_eq!(a.offset(d), b);
        assert_eq!(b.offset(-d), a);
    }

    #[test]
    fn negative_delta() {
        let a = Addr::new(0x2000);
        let b = Addr::new(0x1f00);
        assert_eq!(a.delta_to(b), -0x100);
        assert_eq!(a.offset(-0x100), b);
    }

    #[test]
    fn same_line_detection() {
        assert!(Addr::new(0x100).same_line(Addr::new(0x13f)));
        assert!(!Addr::new(0x100).same_line(Addr::new(0x140)));
    }

    #[test]
    fn lines_spanned_exact_line() {
        let v: Vec<_> = lines_spanned(Addr::new(0x40), 64).collect();
        assert_eq!(v, vec![Addr::new(0x40)]);
    }

    #[test]
    fn lines_spanned_zero_bytes() {
        let v: Vec<_> = lines_spanned(Addr::new(0x40), 0).collect();
        assert_eq!(v, vec![Addr::new(0x40)]);
    }

    #[test]
    fn lines_spanned_straddle() {
        let v: Vec<_> = lines_spanned(Addr::new(0x7e), 4).collect();
        assert_eq!(v, vec![Addr::new(0x40), Addr::new(0x80)]);
    }

    #[test]
    fn add_and_sub() {
        let a = Addr::new(0x1000);
        assert_eq!((a + 0x40).as_u64(), 0x1040);
        assert_eq!((a + 0x40) - a, 0x40);
        let mut b = a;
        b += 0x10;
        assert_eq!(b.as_u64(), 0x1010);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", Addr::new(0xabc)), "0xabc");
        assert_eq!(format!("{:x}", Addr::new(0xabc)), "abc");
        assert_eq!(format!("{:X}", Addr::new(0xabc)), "ABC");
    }
}
