//! Deterministic fast hashing for simulator-internal maps.
//!
//! `std`'s default `RandomState` draws a per-process seed, which is both
//! slow (SipHash) and a reproducibility hazard: any accidental iteration
//! over such a map would vary between runs. Simulator state instead uses
//! this fixed-seed multiply-xor hasher (the FxHash construction from
//! rustc): a few cycles per integer key, and the same table shape in
//! every process.
//!
//! This is *not* a DoS-resistant hasher; keys here are simulated line
//! numbers and PCs, never attacker-controlled input.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fixed-seed multiply-xor hasher (FxHash).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// A `HashMap` with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        let h = |n: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(n);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn map_works_like_a_map() {
        let mut m: FxHashMap<u64, bool> = FxHashMap::default();
        m.insert(7, false);
        m.insert(7, true);
        m.insert(9, false);
        assert_eq!(m.len(), 2);
        assert_eq!(m.get(&7), Some(&true));
        assert_eq!(m.values().filter(|&&v| !v).count(), 1);
    }
}
