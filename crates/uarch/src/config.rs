//! Simulated processor parameters (paper Table 2).
//!
//! The defaults model the paper's Ice Lake-like core: 16 B/cycle fetch,
//! 12 K-entry 6-way BTB, 64 KiB TAGE + 5 KiB bimodal CBP, 32 KiB L1-I,
//! 1280 KiB L2, 8 MiB LLC, and a 353-entry ROB.

use crate::bimodal::BimodalConfig;
use crate::btb::BtbConfig;
use crate::cache::CacheGeometry;
use crate::cbp::CbpConfig;
use crate::hierarchy::HierarchyConfig;
use crate::ittage::IttageConfig;
use crate::ras::RasConfig;
use crate::tage::TageConfig;
use crate::tlb::TlbConfig;
use crate::Cycle;

/// Decoupled front-end parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontEndConfig {
    /// Fetch bandwidth in bytes per cycle (Table 2: 16).
    pub fetch_bytes_per_cycle: u64,
    /// FTQ capacity in fetch blocks (§5.3: 32).
    pub ftq_entries: usize,
    /// Fetch blocks the BPU can predict per cycle (§5.3: double fetch width).
    pub bpu_blocks_per_cycle: usize,
    /// Resteer penalty for discontinuities caught at decode (direct jumps
    /// discovered missing from the BTB), in cycles.
    pub decode_resteer_penalty: Cycle,
    /// Full pipeline flush penalty for mispredictions and BTB misses
    /// resolved at execute, in cycles.
    pub exec_resteer_penalty: Cycle,
    /// Maximum bytes in one predicted fetch block (sequential run length
    /// before the BPU re-predicts even without a taken branch).
    pub max_fetch_block_bytes: u64,
}

/// Abstract back-end parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackEndConfig {
    /// Maximum instructions retired per cycle.
    pub retire_width: u64,
    /// Reorder-buffer capacity in instructions (Table 2: 353).
    pub rob_entries: usize,
    /// Average extra cycles charged per data-cache-missing load (a stand-in
    /// for L1-D/L2 data misses after MLP overlap).
    pub data_miss_penalty: Cycle,
    /// Fraction of instructions that are loads.
    pub load_fraction: f64,
    /// Cycles charged per *cold* data miss (off-chip, amortized over the
    /// memory-level parallelism of bulk misses).
    pub cold_miss_penalty: Cycle,
    /// Fraction of loads that touch a not-yet-seen data line while the data
    /// working set is still cold.
    pub cold_touch_rate: f64,
    /// Steady-state data miss rate among loads once the working set is warm.
    pub warm_miss_rate: f64,
    /// Dependency-limited baseline CPI (real code does not sustain the
    /// retire width; ILP limits the useful-work rate).
    pub ilp_cpi: f64,
}

/// Top-level simulated-machine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UarchConfig {
    /// Instruction memory hierarchy.
    pub hierarchy: HierarchyConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Branch target buffer.
    pub btb: BtbConfig,
    /// Return address stack.
    pub ras: RasConfig,
    /// Optional ITTAGE-style indirect target predictor (off in the
    /// calibrated default; ablation via the `sweep` binary).
    pub indirect_predictor: Option<IttageConfig>,
    /// Conditional branch predictor.
    pub cbp: CbpConfig,
    /// Decoupled front-end.
    pub frontend: FrontEndConfig,
    /// Abstract back-end.
    pub backend: BackEndConfig,
}

impl UarchConfig {
    /// The paper's simulated processor (Table 2).
    pub fn ice_lake_like() -> Self {
        UarchConfig {
            hierarchy: HierarchyConfig {
                l1i: CacheGeometry { size_bytes: 32 * 1024, ways: 8, line_bytes: 64 },
                l2: CacheGeometry { size_bytes: 1280 * 1024, ways: 20, line_bytes: 64 },
                llc: CacheGeometry { size_bytes: 8 * 1024 * 1024, ways: 16, line_bytes: 64 },
                // Table 2: L1-I 1 cycle (µop-cache stand-in), L2 13, LLC 50.
                l1i_latency: 1,
                l2_latency: 13,
                llc_latency: 50,
                // Loaded DDR4-2400 latency (row misses + controller
                // queueing on a busy server) ≈ ~108 ns ≈ 280 cycles at
                // 2.6 GHz.
                memory_latency: 280,
                l1i_mshrs: 10,
                l2_mshrs: 32,
            },
            itlb: TlbConfig { entries: 128, ways: 8, walk_latency: 60 },
            btb: BtbConfig { entries: 12 * 1024, ways: 6 },
            ras: RasConfig { entries: 32 },
            indirect_predictor: None,
            cbp: CbpConfig {
                bimodal: BimodalConfig { size_bytes: 5 * 1024 },
                tage: TageConfig {
                    tables: 8,
                    entries_per_table: 4096,
                    tag_bits: 12,
                    min_history: 4,
                    max_history: 512,
                    u_reset_period: 1 << 18,
                },
                loop_predictor: None,
            },
            frontend: FrontEndConfig {
                fetch_bytes_per_cycle: 16,
                ftq_entries: 32,
                bpu_blocks_per_cycle: 2,
                decode_resteer_penalty: 8,
                exec_resteer_penalty: 16,
                max_fetch_block_bytes: 64,
            },
            backend: BackEndConfig {
                retire_width: 6,
                rob_entries: 353,
                data_miss_penalty: 14,
                load_fraction: 0.25,
                cold_miss_penalty: 22,
                cold_touch_rate: 0.30,
                warm_miss_rate: 0.02,
                ilp_cpi: 0.85,
            },
        }
    }

    /// A scaled-down machine for fast unit tests: same structure, smaller
    /// capacities (so eviction and thrashing paths are exercised cheaply).
    pub fn tiny_for_tests() -> Self {
        UarchConfig {
            hierarchy: HierarchyConfig {
                l1i: CacheGeometry { size_bytes: 4 * 1024, ways: 4, line_bytes: 64 },
                l2: CacheGeometry { size_bytes: 32 * 1024, ways: 8, line_bytes: 64 },
                llc: CacheGeometry { size_bytes: 128 * 1024, ways: 8, line_bytes: 64 },
                l1i_latency: 1,
                l2_latency: 13,
                llc_latency: 50,
                memory_latency: 280,
                l1i_mshrs: 10,
                l2_mshrs: 32,
            },
            itlb: TlbConfig { entries: 32, ways: 4, walk_latency: 60 },
            btb: BtbConfig { entries: 512, ways: 4 },
            ras: RasConfig { entries: 16 },
            indirect_predictor: None,
            cbp: CbpConfig {
                bimodal: BimodalConfig { size_bytes: 1024 },
                tage: TageConfig {
                    tables: 4,
                    entries_per_table: 256,
                    tag_bits: 9,
                    min_history: 4,
                    max_history: 64,
                    u_reset_period: 1 << 16,
                },
                loop_predictor: None,
            },
            frontend: FrontEndConfig {
                fetch_bytes_per_cycle: 16,
                ftq_entries: 16,
                bpu_blocks_per_cycle: 2,
                decode_resteer_penalty: 8,
                exec_resteer_penalty: 16,
                max_fetch_block_bytes: 64,
            },
            backend: BackEndConfig {
                retire_width: 6,
                rob_entries: 64,
                data_miss_penalty: 14,
                load_fraction: 0.25,
                cold_miss_penalty: 22,
                cold_touch_rate: 0.30,
                warm_miss_rate: 0.02,
                ilp_cpi: 0.85,
            },
        }
    }
}

impl Default for UarchConfig {
    fn default() -> Self {
        UarchConfig::ice_lake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_parameters() {
        let c = UarchConfig::ice_lake_like();
        assert_eq!(c.hierarchy.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.hierarchy.l1i.ways, 8);
        assert_eq!(c.hierarchy.l2.size_bytes, 1280 * 1024);
        assert_eq!(c.hierarchy.l2.ways, 20);
        assert_eq!(c.hierarchy.llc.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.btb.entries, 12 * 1024);
        assert_eq!(c.btb.ways, 6);
        assert_eq!(c.cbp.bimodal.size_bytes, 5 * 1024);
        assert_eq!(c.frontend.fetch_bytes_per_cycle, 16);
        assert_eq!(c.frontend.ftq_entries, 32);
        assert_eq!(c.backend.rob_entries, 353);
    }

    #[test]
    fn tage_budget_near_64kib() {
        let c = UarchConfig::ice_lake_like();
        let kib = c.cbp.tage.storage_bytes() / 1024;
        // 8 x 4096 x 17 bits ≈ 68 KiB of table state — matching the paper's
        // 64 KiB L-TAGE budget (which additionally includes histories and
        // the loop predictor we omit).
        assert!((55..=72).contains(&kib), "TAGE storage {kib} KiB");
    }

    #[test]
    fn default_is_ice_lake() {
        assert_eq!(UarchConfig::default(), UarchConfig::ice_lake_like());
    }

    #[test]
    fn tiny_config_constructs_components() {
        use crate::btb::Btb;
        use crate::cbp::Cbp;
        use crate::hierarchy::Hierarchy;
        use crate::tlb::Itlb;
        let c = UarchConfig::tiny_for_tests();
        let _ = Hierarchy::new(&c.hierarchy);
        let _ = Btb::new(&c.btb);
        let _ = Cbp::new(&c.cbp);
        let _ = Itlb::new(&c.itlb);
    }
}
