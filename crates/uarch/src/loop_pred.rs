//! Loop predictor (the "L" in L-TAGE).
//!
//! Seznec's L-TAGE pairs TAGE with a small loop predictor that learns
//! constant trip counts: a branch that exits a loop after exactly N
//! iterations is predicted with perfect accuracy once N has been confirmed
//! a few times. The paper's CBP budget is "64 KiB L-TAGE"; this component
//! completes the structure (the reproduction's default configuration keeps
//! it disabled to match the calibrated baseline — enable via
//! [`crate::cbp::CbpConfig::loop_predictor`]).
//!
//! Convention: a *loop branch* here is the loop's back-edge — taken to
//! iterate, not-taken to exit. The predictor learns the taken-run length.

use crate::addr::Addr;

/// Loop predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPredictorConfig {
    /// Number of entries (direct-mapped, tagged).
    pub entries: usize,
    /// Tag bits.
    pub tag_bits: u32,
    /// Confirmations required before predictions are used.
    pub confidence_threshold: u8,
}

impl Default for LoopPredictorConfig {
    fn default() -> Self {
        LoopPredictorConfig { entries: 256, tag_bits: 14, confidence_threshold: 3 }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u16,
    valid: bool,
    /// Learned trip count (taken iterations before the not-taken exit).
    trip_count: u16,
    /// Iterations seen in the current execution of the loop.
    current: u16,
    /// Confirmations of `trip_count` (saturating).
    confidence: u8,
}

/// Prediction from the loop predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopPrediction {
    /// Predicted direction.
    pub taken: bool,
    /// Whether the entry is confident enough to override TAGE/bimodal.
    pub confident: bool,
}

/// A tagged, direct-mapped loop predictor.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::loop_pred::{LoopPredictor, LoopPredictorConfig};
///
/// let mut lp = LoopPredictor::new(&LoopPredictorConfig::default());
/// let pc = Addr::new(0x100);
/// // Train a loop with a constant trip count of 3.
/// for _ in 0..8 {
///     for _ in 0..3 {
///         lp.update(pc, true);
///     }
///     lp.update(pc, false);
/// }
/// // Predicts taken, taken, taken, then the exit.
/// assert!(lp.predict(pc).unwrap().confident);
/// ```
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    cfg: LoopPredictorConfig,
    entries: Vec<LoopEntry>,
    hits: u64,
    confident_predictions: u64,
}

impl LoopPredictor {
    /// Creates an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(cfg: &LoopPredictorConfig) -> Self {
        assert!(cfg.entries > 0, "loop predictor needs entries");
        LoopPredictor {
            cfg: *cfg,
            entries: vec![LoopEntry::default(); cfg.entries],
            hits: 0,
            confident_predictions: 0,
        }
    }

    fn index(&self, pc: Addr) -> usize {
        ((pc.as_u64() >> 2) % self.entries.len() as u64) as usize
    }

    fn tag(&self, pc: Addr) -> u16 {
        (((pc.as_u64() >> 2) / self.entries.len() as u64) & ((1 << self.cfg.tag_bits.min(16)) - 1))
            as u16
    }

    /// Predicts the branch at `pc`, if it is being tracked.
    pub fn predict(&mut self, pc: Addr) -> Option<LoopPrediction> {
        let tag = self.tag(pc);
        let e = &self.entries[self.index(pc)];
        if !e.valid || e.tag != tag {
            return None;
        }
        self.hits += 1;
        let confident = e.confidence >= self.cfg.confidence_threshold;
        if confident {
            self.confident_predictions += 1;
        }
        // Taken while below the learned trip count; not-taken at the exit.
        Some(LoopPrediction { taken: e.current < e.trip_count, confident })
    }

    /// Trains with a resolved outcome.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let tag = self.tag(pc);
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            // Allocate on a loop exit (a not-taken after some takens would
            // be ideal, but allocation on any branch keeps logic simple;
            // useless entries lose confidence and get replaced).
            if !taken {
                *e = LoopEntry { tag, valid: true, trip_count: 0, current: 0, confidence: 0 };
            }
            return;
        }
        if taken {
            e.current = e.current.saturating_add(1);
            if e.confidence >= self.cfg.confidence_threshold && e.current > e.trip_count {
                // Ran past the learned trip count: the loop changed.
                e.confidence = 0;
            }
            return;
        }
        // Loop exit: confirm or re-learn the trip count.
        if e.current == e.trip_count {
            e.confidence = e.confidence.saturating_add(1).min(15);
        } else {
            e.trip_count = e.current;
            e.confidence = 0;
        }
        e.current = 0;
    }

    /// Tracked-branch hits.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Predictions made with full confidence.
    pub fn confident_predictions(&self) -> u64 {
        self.confident_predictions
    }

    /// Clears all entries (lukewarm flush).
    pub fn flush(&mut self) {
        self.entries.fill(LoopEntry::default());
    }

    /// Clears statistics.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.confident_predictions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_loop(lp: &mut LoopPredictor, pc: Addr, trips: usize, rounds: usize) {
        for _ in 0..rounds {
            for _ in 0..trips {
                lp.update(pc, true);
            }
            lp.update(pc, false);
        }
    }

    #[test]
    fn learns_constant_trip_count() {
        let mut lp = LoopPredictor::new(&LoopPredictorConfig::default());
        let pc = Addr::new(0x400);
        train_loop(&mut lp, pc, 5, 6);
        // Now simulate a fresh loop execution, predicting each iteration.
        let mut correct = 0;
        for i in 0..6 {
            let p = lp.predict(pc).expect("tracked");
            let actual = i < 5;
            if p.confident && p.taken == actual {
                correct += 1;
            }
            lp.update(pc, actual);
        }
        assert_eq!(correct, 6, "a confirmed constant-trip loop predicts perfectly");
    }

    #[test]
    fn untracked_branch_returns_none() {
        let mut lp = LoopPredictor::new(&LoopPredictorConfig::default());
        assert!(lp.predict(Addr::new(0x999)).is_none());
    }

    #[test]
    fn changing_trip_count_drops_confidence() {
        let mut lp = LoopPredictor::new(&LoopPredictorConfig::default());
        let pc = Addr::new(0x200);
        train_loop(&mut lp, pc, 4, 5);
        assert!(lp.predict(pc).unwrap().confident);
        // Different trip count: confidence resets, then rebuilds.
        train_loop(&mut lp, pc, 7, 1);
        // predict() advanced no state; re-check after the irregular round.
        let p = lp.predict(pc).unwrap();
        assert!(!p.confident, "trip-count change must clear confidence");
        train_loop(&mut lp, pc, 7, 5);
        assert!(lp.predict(pc).unwrap().confident);
    }

    #[test]
    fn tag_mismatch_is_a_miss() {
        let cfg = LoopPredictorConfig { entries: 4, tag_bits: 14, confidence_threshold: 3 };
        let mut lp = LoopPredictor::new(&cfg);
        let a = Addr::new(0x10);
        let b = Addr::new(0x10 + 4 * 4); // same index, different tag
        train_loop(&mut lp, a, 3, 5);
        assert!(lp.predict(b).is_none());
    }

    #[test]
    fn flush_forgets() {
        let mut lp = LoopPredictor::new(&LoopPredictorConfig::default());
        let pc = Addr::new(0x300);
        train_loop(&mut lp, pc, 3, 5);
        lp.flush();
        assert!(lp.predict(pc).is_none());
    }
}
