//! Fetch target queue (FTQ) of a decoupled front-end.
//!
//! The branch-prediction unit pushes predicted fetch regions into the FTQ;
//! the fetch engine (and the FDP prefetcher) consume from it. The queue is
//! bounded (Table 2 / §5.3: 32 entries) and squashed wholesale on resteers.
//! The entry payload is generic: the engine stores its own bookkeeping.

use std::collections::VecDeque;

/// A bounded FIFO of predicted fetch work with squash accounting.
///
/// # Example
///
/// ```
/// use ignite_uarch::ftq::Ftq;
///
/// let mut ftq: Ftq<u32> = Ftq::new(2);
/// assert!(ftq.push(1).is_ok());
/// assert!(ftq.push(2).is_ok());
/// assert!(ftq.push(3).is_err(), "full");
/// assert_eq!(ftq.pop(), Some(1));
/// ftq.squash();
/// assert!(ftq.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Ftq<T> {
    entries: VecDeque<T>,
    capacity: usize,
    squashes: u64,
    squashed_entries: u64,
    pushed: u64,
}

/// Error returned when pushing to a full FTQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FtqFull;

impl std::fmt::Display for FtqFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fetch target queue is full")
    }
}

impl std::error::Error for FtqFull {}

impl<T> Ftq<T> {
    /// Creates an empty FTQ with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FTQ capacity must be positive");
        Ftq {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            squashes: 0,
            squashed_entries: 0,
            pushed: 0,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is full.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Appends an entry.
    ///
    /// # Errors
    ///
    /// Returns [`FtqFull`] (with the rejected value untouched in the error
    /// path) when the queue is at capacity.
    pub fn push(&mut self, entry: T) -> Result<(), FtqFull> {
        if self.is_full() {
            return Err(FtqFull);
        }
        self.entries.push_back(entry);
        self.pushed += 1;
        Ok(())
    }

    /// Removes and returns the oldest entry.
    pub fn pop(&mut self) -> Option<T> {
        self.entries.pop_front()
    }

    /// The oldest entry, if any.
    pub fn front(&self) -> Option<&T> {
        self.entries.front()
    }

    /// Iterates oldest-to-youngest (the FDP prefetcher scans ahead this way).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }

    /// Mutable iteration, oldest-to-youngest.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.entries.iter_mut()
    }

    /// Discards all entries (front-end resteer).
    pub fn squash(&mut self) {
        self.squashes += 1;
        self.squashed_entries += self.entries.len() as u64;
        self.entries.clear();
    }

    /// Number of squashes performed.
    pub fn squashes(&self) -> u64 {
        self.squashes
    }

    /// Total entries discarded by squashes.
    pub fn squashed_entries(&self) -> u64 {
        self.squashed_entries
    }

    /// Total entries ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Clears entries and statistics.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.squashes = 0;
        self.squashed_entries = 0;
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = Ftq::new(4);
        q.push('a').unwrap();
        q.push('b').unwrap();
        assert_eq!(q.pop(), Some('a'));
        assert_eq!(q.pop(), Some('b'));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_enforced() {
        let mut q = Ftq::new(1);
        q.push(1).unwrap();
        assert_eq!(q.push(2), Err(FtqFull));
        assert!(q.is_full());
    }

    #[test]
    fn squash_accounting() {
        let mut q = Ftq::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        q.pop();
        q.squash();
        assert_eq!(q.squashes(), 1);
        assert_eq!(q.squashed_entries(), 4);
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 5);
    }

    #[test]
    fn iter_is_oldest_first() {
        let mut q = Ftq::new(4);
        q.push(10).unwrap();
        q.push(20).unwrap();
        let v: Vec<_> = q.iter().copied().collect();
        assert_eq!(v, vec![10, 20]);
    }

    #[test]
    fn reset_clears_all() {
        let mut q = Ftq::new(4);
        q.push(1).unwrap();
        q.squash();
        q.reset();
        assert_eq!(q.squashes(), 0);
        assert_eq!(q.pushed(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Ftq::<u8>::new(0);
    }

    #[test]
    fn error_is_displayable() {
        assert!(!format!("{FtqFull}").is_empty());
    }
}
