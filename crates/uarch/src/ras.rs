//! Return address stack (RAS).
//!
//! Returns are predicted from a small hardware stack pushed by calls. The
//! paper's front-end identifies returns through the BTB and supplies their
//! targets from the RAS; Ignite restores return *identification* (the BTB
//! entry) while the RAS itself refills naturally from the call stream.
//!
//! The model is a circular buffer: pushing beyond capacity overwrites the
//! oldest entry, so call chains deeper than the RAS mispredict on the way
//! back out, as in hardware.

use crate::addr::Addr;

/// RAS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RasConfig {
    /// Number of entries (typical hardware: 16–64).
    pub entries: usize,
}

impl Default for RasConfig {
    fn default() -> Self {
        RasConfig { entries: 32 }
    }
}

/// A circular return address stack.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::ras::{Ras, RasConfig};
///
/// let mut ras = Ras::new(&RasConfig { entries: 4 });
/// ras.push(Addr::new(0x100));
/// assert_eq!(ras.pop(), Some(Addr::new(0x100)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct Ras {
    ring: Vec<Addr>,
    /// Next slot to write.
    top: usize,
    /// Number of live entries (≤ capacity).
    len: usize,
    pushes: u64,
    pops: u64,
    overflows: u64,
    underflows: u64,
}

impl Ras {
    /// Creates an empty stack.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(cfg: &RasConfig) -> Self {
        assert!(cfg.entries > 0, "RAS needs at least one entry");
        Ras {
            ring: vec![Addr::NULL; cfg.entries],
            top: 0,
            len: 0,
            pushes: 0,
            pops: 0,
            overflows: 0,
            underflows: 0,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.ring.len()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pushes a return address (on a call). Overwrites the oldest entry
    /// when full.
    pub fn push(&mut self, return_to: Addr) {
        self.pushes += 1;
        self.ring[self.top] = return_to;
        self.top = (self.top + 1) % self.ring.len();
        if self.len < self.ring.len() {
            self.len += 1;
        } else {
            self.overflows += 1;
        }
    }

    /// Pops the predicted return target (on a return). `None` when empty
    /// (the front-end then has no prediction — a guaranteed resteer).
    pub fn pop(&mut self) -> Option<Addr> {
        self.pops += 1;
        if self.len == 0 {
            self.underflows += 1;
            return None;
        }
        self.top = (self.top + self.ring.len() - 1) % self.ring.len();
        self.len -= 1;
        Some(self.ring[self.top])
    }

    /// Pushes counted.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Pops counted.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Pushes that overwrote a live entry (deep call chains).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Pops from an empty stack.
    pub fn underflows(&self) -> u64 {
        self.underflows
    }

    /// Clears the stack (context switch / lukewarm flush).
    pub fn flush(&mut self) {
        self.top = 0;
        self.len = 0;
    }

    /// Clears statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.pushes = 0;
        self.pops = 0;
        self.overflows = 0;
        self.underflows = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ras(n: usize) -> Ras {
        Ras::new(&RasConfig { entries: n })
    }

    #[test]
    fn lifo_order() {
        let mut r = ras(8);
        r.push(Addr::new(1));
        r.push(Addr::new(2));
        r.push(Addr::new(3));
        assert_eq!(r.pop(), Some(Addr::new(3)));
        assert_eq!(r.pop(), Some(Addr::new(2)));
        assert_eq!(r.pop(), Some(Addr::new(1)));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ras(2);
        r.push(Addr::new(1));
        r.push(Addr::new(2));
        r.push(Addr::new(3)); // overwrites 1
        assert_eq!(r.overflows(), 1);
        assert_eq!(r.pop(), Some(Addr::new(3)));
        assert_eq!(r.pop(), Some(Addr::new(2)));
        assert_eq!(r.pop(), None, "the overwritten entry is gone");
    }

    #[test]
    fn underflow_counted() {
        let mut r = ras(2);
        assert_eq!(r.pop(), None);
        assert_eq!(r.underflows(), 1);
    }

    #[test]
    fn wraparound_is_consistent() {
        let mut r = ras(3);
        for round in 0..5u64 {
            r.push(Addr::new(round * 2 + 1));
            assert_eq!(r.pop(), Some(Addr::new(round * 2 + 1)));
        }
        assert!(r.is_empty());
        assert_eq!(r.overflows(), 0);
    }

    #[test]
    fn flush_empties() {
        let mut r = ras(4);
        r.push(Addr::new(1));
        r.flush();
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        ras(0);
    }
}
