//! Bimodal (BIM) conditional branch predictor.
//!
//! A table of 2-bit saturating counters indexed by a hash of the branch PC.
//! The paper's CBP pairs a 5 KiB bimodal base with a 64 KiB TAGE component
//! (Table 2); Ignite restores *only* the bimodal, initializing each restored
//! conditional branch to *weakly taken* (§4, §6.4).

use crate::addr::Addr;
use crate::rng::SplitMix64;

/// State of a 2-bit saturating counter.
///
/// Values 2 and 3 predict taken, 0 and 1 predict not-taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Counter {
    /// Strongly not-taken (0).
    StrongNotTaken,
    /// Weakly not-taken (1).
    WeakNotTaken,
    /// Weakly taken (2).
    WeakTaken,
    /// Strongly taken (3).
    StrongTaken,
}

impl Counter {
    /// Numeric value in `[0, 3]`.
    pub const fn value(self) -> u8 {
        match self {
            Counter::StrongNotTaken => 0,
            Counter::WeakNotTaken => 1,
            Counter::WeakTaken => 2,
            Counter::StrongTaken => 3,
        }
    }

    /// Counter for a numeric value.
    ///
    /// # Panics
    ///
    /// Panics if `v > 3`.
    pub const fn from_value(v: u8) -> Counter {
        match v {
            0 => Counter::StrongNotTaken,
            1 => Counter::WeakNotTaken,
            2 => Counter::WeakTaken,
            3 => Counter::StrongTaken,
            _ => panic!("counter value out of range"),
        }
    }

    /// Predicted direction.
    pub const fn taken(self) -> bool {
        self.value() >= 2
    }

    /// Counter after observing an outcome.
    pub const fn update(self, taken: bool) -> Counter {
        let v = self.value();
        if taken {
            Counter::from_value(if v < 3 { v + 1 } else { 3 })
        } else {
            Counter::from_value(if v > 0 { v - 1 } else { 0 })
        }
    }
}

/// Initialization policy for bimodal entries (paper Fig. 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BimInitPolicy {
    /// Leave the entry untouched (the "BTB only" baseline).
    None,
    /// Set to weakly not-taken (shown to *hurt* in §6.4).
    WeaklyNotTaken,
    /// Set to weakly taken (Ignite's policy).
    WeaklyTaken,
}

/// Bimodal predictor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BimodalConfig {
    /// Storage budget in bytes; each counter takes 2 bits (Table 2: 5 KiB).
    pub size_bytes: usize,
}

impl BimodalConfig {
    /// Number of 2-bit counters in the table.
    pub const fn counters(&self) -> usize {
        self.size_bytes * 4
    }
}

/// A bimodal predictor.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::bimodal::{Bimodal, BimodalConfig};
///
/// let mut bim = Bimodal::new(&BimodalConfig { size_bytes: 1024 });
/// let pc = Addr::new(0x400);
/// bim.update(pc, true);
/// bim.update(pc, true);
/// assert!(bim.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter>,
}

impl Bimodal {
    /// Creates a predictor with every counter weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if the configured size yields zero counters.
    pub fn new(cfg: &BimodalConfig) -> Self {
        let n = cfg.counters();
        assert!(n > 0, "bimodal table must have at least one counter");
        Bimodal { table: vec![Counter::WeakNotTaken; n] }
    }

    /// Number of counters.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the table is empty (never true for a constructed predictor).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        // Multiplicative hash spreads nearby PCs across the table.
        let h = pc.as_u64().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        (h % self.table.len() as u64) as usize
    }

    /// Current counter for a PC.
    pub fn counter(&self, pc: Addr) -> Counter {
        self.table[self.index(pc)]
    }

    /// Predicted direction for a PC.
    pub fn predict(&self, pc: Addr) -> bool {
        self.counter(pc).taken()
    }

    /// Trains the counter with an observed outcome.
    pub fn update(&mut self, pc: Addr, taken: bool) {
        let i = self.index(pc);
        self.table[i] = self.table[i].update(taken);
    }

    /// Sets the counter for a PC directly (Ignite replay initialization).
    pub fn set(&mut self, pc: Addr, counter: Counter) {
        let i = self.index(pc);
        self.table[i] = counter;
    }

    /// Applies an initialization policy to the entry for `pc`.
    pub fn apply_policy(&mut self, pc: Addr, policy: BimInitPolicy) {
        match policy {
            BimInitPolicy::None => {}
            BimInitPolicy::WeaklyNotTaken => self.set(pc, Counter::WeakNotTaken),
            BimInitPolicy::WeaklyTaken => self.set(pc, Counter::WeakTaken),
        }
    }

    /// Overwrites the whole table with random state — the lukewarm protocol
    /// "overwrites the bimodal predictor with a random state" (§5.3).
    pub fn randomize(&mut self, rng: &mut SplitMix64) {
        for c in &mut self.table {
            *c = Counter::from_value((rng.next_u64() & 3) as u8);
        }
    }

    /// Resets every counter to weakly not-taken.
    pub fn clear(&mut self) {
        for c in &mut self.table {
            *c = Counter::WeakNotTaken;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bim() -> Bimodal {
        Bimodal::new(&BimodalConfig { size_bytes: 256 })
    }

    #[test]
    fn counter_saturation() {
        assert_eq!(Counter::StrongTaken.update(true), Counter::StrongTaken);
        assert_eq!(Counter::StrongNotTaken.update(false), Counter::StrongNotTaken);
    }

    #[test]
    fn counter_transitions() {
        let c = Counter::WeakNotTaken;
        assert!(!c.taken());
        let c = c.update(true);
        assert_eq!(c, Counter::WeakTaken);
        assert!(c.taken());
        assert_eq!(c.update(false), Counter::WeakNotTaken);
    }

    #[test]
    fn value_roundtrip() {
        for v in 0..4 {
            assert_eq!(Counter::from_value(v).value(), v);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_value_rejects_large() {
        Counter::from_value(4);
    }

    #[test]
    fn config_counters() {
        assert_eq!(BimodalConfig { size_bytes: 5 * 1024 }.counters(), 20480);
    }

    #[test]
    fn training_flips_prediction() {
        let mut b = bim();
        let pc = Addr::new(0x123);
        assert!(!b.predict(pc)); // default weakly not-taken
        b.update(pc, true);
        assert!(b.predict(pc));
    }

    #[test]
    fn set_weakly_taken() {
        let mut b = bim();
        let pc = Addr::new(0x555);
        b.set(pc, Counter::WeakTaken);
        assert!(b.predict(pc));
        assert_eq!(b.counter(pc), Counter::WeakTaken);
    }

    #[test]
    fn apply_policy_none_is_noop() {
        let mut b = bim();
        let pc = Addr::new(0x77);
        let before = b.counter(pc);
        b.apply_policy(pc, BimInitPolicy::None);
        assert_eq!(b.counter(pc), before);
    }

    #[test]
    fn apply_policy_sets_direction() {
        let mut b = bim();
        let pc = Addr::new(0x77);
        b.apply_policy(pc, BimInitPolicy::WeaklyTaken);
        assert!(b.predict(pc));
        b.apply_policy(pc, BimInitPolicy::WeaklyNotTaken);
        assert!(!b.predict(pc));
    }

    #[test]
    fn randomize_produces_mixed_state() {
        let mut b = Bimodal::new(&BimodalConfig { size_bytes: 4096 });
        let mut rng = SplitMix64::new(1);
        b.randomize(&mut rng);
        let taken = (0..b.len()).filter(|&i| b.table[i].taken()).count();
        let frac = taken as f64 / b.len() as f64;
        assert!((0.4..0.6).contains(&frac), "taken fraction {frac}");
    }

    #[test]
    fn randomize_deterministic() {
        let mut a = bim();
        let mut b = bim();
        a.randomize(&mut SplitMix64::new(9));
        b.randomize(&mut SplitMix64::new(9));
        assert_eq!(a.table, b.table);
    }

    #[test]
    fn clear_resets() {
        let mut b = bim();
        b.update(Addr::new(0x1), true);
        b.update(Addr::new(0x1), true);
        b.clear();
        assert!(!b.predict(Addr::new(0x1)));
    }
}
