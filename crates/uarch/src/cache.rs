//! Generic set-associative cache with true-LRU replacement.
//!
//! Used for the L1-I, L2 and LLC instruction paths and (with page-sized
//! "lines") the ITLB. Each line carries bookkeeping bits needed by the
//! paper's accounting:
//!
//! * `prefetched` — the line was filled by a prefetcher and has not yet
//!   served a demand access (used for Fig. 9c overprediction accounting).
//! * `restored` — the line was filled by Ignite's replay engine.
//! * `touched` — the line has served at least one demand access.

use crate::addr::Addr;
use crate::stats::AccessStats;

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (must be a power of two).
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero ways, non-power-of-two
    /// line size, or a capacity not divisible into whole sets).
    pub fn sets(&self) -> usize {
        assert!(self.ways > 0, "cache must have at least one way");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways as u64) && lines > 0,
            "capacity {} is not a whole number of {}-way sets",
            self.size_bytes,
            self.ways
        );
        (lines / self.ways as u64) as usize
    }

    /// Total number of lines.
    pub fn lines(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize
    }
}

/// How a line came to be filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillKind {
    /// Filled on a demand miss.
    Demand,
    /// Filled by a hardware prefetcher.
    Prefetch,
    /// Filled by Ignite's replay (bulk restoration).
    Restore,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    /// Line number (address / line size); doubles as the tag.
    line_number: u64,
    valid: bool,
    lru_stamp: u64,
    prefetched: bool,
    restored: bool,
    touched: bool,
}

/// Details of a demand hit (see [`SetAssocCache::lookup_hit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitInfo {
    /// The line was installed by a prefetcher and this is its first use.
    pub was_prefetched: bool,
}

/// A line evicted by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Base address of the evicted line.
    pub addr: Addr,
    /// The line was prefetched (or restored) and never served a demand access.
    pub was_unused_prefetch: bool,
    /// The line was installed by Ignite's replay.
    pub was_restored: bool,
}

/// Counters for one cache instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Demand access counters.
    pub demand: AccessStats,
    /// Lines filled on demand misses.
    pub demand_fills: u64,
    /// Lines filled by prefetch (includes restore fills).
    pub prefetch_fills: u64,
    /// Demand accesses that hit a line still marked prefetched (first use of
    /// a prefetched line — "covered" misses).
    pub prefetch_hits: u64,
    /// Evictions of valid lines.
    pub evictions: u64,
    /// Evictions of prefetched lines that were never demanded (overprediction).
    pub unused_prefetch_evictions: u64,
    /// Of those, evictions of lines installed by Ignite's replay.
    pub unused_restore_evictions: u64,
}

/// Result of flushing a cache (end-of-invocation sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlushReport {
    /// Valid lines discarded.
    pub valid_lines: u64,
    /// Prefetched lines never demanded before the flush (overprediction).
    pub unused_prefetched: u64,
    /// Restored (Ignite) lines never demanded before the flush.
    pub unused_restored: u64,
}

/// A set-associative cache with true-LRU replacement.
///
/// # Example
///
/// ```
/// use ignite_uarch::addr::Addr;
/// use ignite_uarch::cache::{CacheGeometry, FillKind, SetAssocCache};
///
/// let mut c = SetAssocCache::new(CacheGeometry { size_bytes: 1024, ways: 2, line_bytes: 64 });
/// let a = Addr::new(0x1000);
/// assert!(!c.lookup(a));
/// c.fill(a, FillKind::Demand);
/// assert!(c.lookup(a));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: usize,
    /// `sets - 1` when the set count is a power of two (the common case),
    /// letting [`SetAssocCache::set_of`] mask instead of divide;
    /// `u64::MAX` otherwise.
    set_mask: u64,
    lines: Vec<Line>,
    clock: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (see [`CacheGeometry::sets`]).
    pub fn new(geometry: CacheGeometry) -> Self {
        let sets = geometry.sets();
        SetAssocCache {
            geometry,
            sets,
            set_mask: if sets.is_power_of_two() { sets as u64 - 1 } else { u64::MAX },
            lines: vec![Line::default(); sets * geometry.ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn line_number(&self, addr: Addr) -> u64 {
        addr.as_u64() / self.geometry.line_bytes
    }

    #[inline]
    fn set_of(&self, line_number: u64) -> usize {
        if self.set_mask != u64::MAX {
            (line_number & self.set_mask) as usize
        } else {
            (line_number % self.sets as u64) as usize
        }
    }

    /// The contiguous slice of ways backing `line_number`'s set, plus the
    /// index of its first way. Scanning this slice directly (instead of
    /// indexing `self.lines[i]` per way) keeps the associative search
    /// bounds-check-free.
    #[inline]
    fn set_slice(&self, line_number: u64) -> (usize, &[Line]) {
        let base = self.set_of(line_number) * self.geometry.ways;
        (base, &self.lines[base..base + self.geometry.ways])
    }

    fn find(&self, line_number: u64) -> Option<usize> {
        let (base, set) = self.set_slice(line_number);
        set.iter().position(|l| l.valid && l.line_number == line_number).map(|i| base + i)
    }

    /// Demand access. Updates LRU, statistics and the per-line touch bit.
    ///
    /// Returns `true` on a hit.
    pub fn lookup(&mut self, addr: Addr) -> bool {
        self.lookup_hit(addr).is_some()
    }

    /// Demand access returning hit details (`None` on a miss).
    ///
    /// `was_prefetched` is true on the *first* demand access to a line a
    /// prefetcher installed — the trigger condition of a tagged next-line
    /// prefetcher.
    pub fn lookup_hit(&mut self, addr: Addr) -> Option<HitInfo> {
        let ln = self.line_number(addr);
        self.clock += 1;
        match self.find(ln) {
            Some(i) => {
                let line = &mut self.lines[i];
                line.lru_stamp = self.clock;
                let was_prefetched = line.prefetched;
                if line.prefetched {
                    self.stats.prefetch_hits += 1;
                    line.prefetched = false;
                }
                line.touched = true;
                self.stats.demand.record(true);
                Some(HitInfo { was_prefetched })
            }
            None => {
                self.stats.demand.record(false);
                None
            }
        }
    }

    /// Checks residency without updating LRU state or statistics.
    pub fn probe(&self, addr: Addr) -> bool {
        self.find(self.line_number(addr)).is_some()
    }

    /// Installs the line containing `addr`, evicting the LRU way if needed.
    ///
    /// Filling a line that is already resident refreshes its LRU position;
    /// a demand fill of a prefetched resident line clears its prefetch mark.
    pub fn fill(&mut self, addr: Addr, kind: FillKind) -> Option<Evicted> {
        let ln = self.line_number(addr);
        self.clock += 1;
        match kind {
            FillKind::Demand => self.stats.demand_fills += 1,
            FillKind::Prefetch | FillKind::Restore => self.stats.prefetch_fills += 1,
        }
        if let Some(i) = self.find(ln) {
            let line = &mut self.lines[i];
            line.lru_stamp = self.clock;
            if kind == FillKind::Demand {
                line.prefetched = false;
                line.touched = true;
            }
            return None;
        }
        // First invalid way, else the way with the oldest LRU stamp (first
        // of equals — the same victim `min_by_key` over `(valid, stamp)`
        // tuples would pick, without tuple-compare overhead per way).
        let (base, set) = self.set_slice(ln);
        let mut victim_in_set = 0;
        let mut oldest = u64::MAX;
        for (i, l) in set.iter().enumerate() {
            if !l.valid {
                victim_in_set = i;
                break;
            }
            if l.lru_stamp < oldest {
                oldest = l.lru_stamp;
                victim_in_set = i;
            }
        }
        let victim = base + victim_in_set;
        let evicted = if self.lines[victim].valid {
            self.stats.evictions += 1;
            let old = self.lines[victim];
            let unused = (old.prefetched || old.restored) && !old.touched;
            if unused {
                self.stats.unused_prefetch_evictions += 1;
                if old.restored {
                    self.stats.unused_restore_evictions += 1;
                }
            }
            Some(Evicted {
                addr: Addr::new(old.line_number * self.geometry.line_bytes),
                was_unused_prefetch: unused,
                was_restored: old.restored,
            })
        } else {
            None
        };
        self.lines[victim] = Line {
            line_number: ln,
            valid: true,
            lru_stamp: self.clock,
            prefetched: matches!(kind, FillKind::Prefetch | FillKind::Restore),
            restored: kind == FillKind::Restore,
            touched: kind == FillKind::Demand,
        };
        evicted
    }

    /// Invalidates every line, reporting unused prefetched/restored lines.
    pub fn invalidate_all(&mut self) -> FlushReport {
        let mut report = FlushReport::default();
        for line in &mut self.lines {
            if line.valid {
                report.valid_lines += 1;
                if (line.prefetched || line.restored) && !line.touched {
                    report.unused_prefetched += 1;
                    if line.restored {
                        report.unused_restored += 1;
                    }
                }
            }
            *line = Line::default();
        }
        report
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Resident lines installed by Ignite's replay and never demanded yet
    /// (end-of-invocation overprediction accounting).
    pub fn unused_restored_resident(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid && l.restored && !l.touched).count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 2 sets x 2 ways x 64 B = 256 B.
        SetAssocCache::new(CacheGeometry { size_bytes: 256, ways: 2, line_bytes: 64 })
    }

    /// Addresses that map to set 0 of the small cache.
    fn set0_addr(i: u64) -> Addr {
        Addr::new(i * 2 * 64)
    }

    #[test]
    fn geometry_sets() {
        let g = CacheGeometry { size_bytes: 32 * 1024, ways: 8, line_bytes: 64 };
        assert_eq!(g.sets(), 64);
        assert_eq!(g.lines(), 512);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn geometry_rejects_ragged_sets() {
        CacheGeometry { size_bytes: 100, ways: 3, line_bytes: 64 }.sets();
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let a = Addr::new(0x1000);
        assert!(!c.lookup(a));
        c.fill(a, FillKind::Demand);
        assert!(c.lookup(a));
        assert_eq!(c.stats().demand.hits, 1);
        assert_eq!(c.stats().demand.misses, 1);
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut c = small();
        c.fill(Addr::new(0x1000), FillKind::Demand);
        assert!(c.lookup(Addr::new(0x103f)));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        let (a, b, d) = (set0_addr(1), set0_addr(2), set0_addr(3));
        c.fill(a, FillKind::Demand);
        c.fill(b, FillKind::Demand);
        c.lookup(a); // refresh a; b is now LRU
        let evicted = c.fill(d, FillKind::Demand).expect("must evict");
        assert_eq!(evicted.addr, b.line());
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn invalid_ways_fill_before_eviction() {
        let mut c = small();
        assert!(c.fill(set0_addr(1), FillKind::Demand).is_none());
        assert!(c.fill(set0_addr(2), FillKind::Demand).is_none());
        assert!(c.fill(set0_addr(3), FillKind::Demand).is_some());
    }

    #[test]
    fn prefetch_hit_accounting() {
        let mut c = small();
        c.fill(Addr::new(0x40), FillKind::Prefetch);
        assert!(c.lookup(Addr::new(0x40)));
        assert_eq!(c.stats().prefetch_hits, 1);
        // Second demand hit no longer counts as a prefetch hit.
        assert!(c.lookup(Addr::new(0x40)));
        assert_eq!(c.stats().prefetch_hits, 1);
    }

    #[test]
    fn unused_prefetch_eviction_accounting() {
        let mut c = small();
        c.fill(set0_addr(1), FillKind::Prefetch);
        c.fill(set0_addr(2), FillKind::Demand);
        let e = c.fill(set0_addr(3), FillKind::Demand).expect("evicts the unused prefetch");
        assert!(e.was_unused_prefetch);
        assert_eq!(c.stats().unused_prefetch_evictions, 1);
    }

    #[test]
    fn demanded_prefetch_is_not_unused() {
        let mut c = small();
        c.fill(set0_addr(1), FillKind::Prefetch);
        c.lookup(set0_addr(1));
        c.fill(set0_addr(2), FillKind::Demand);
        let e = c.fill(set0_addr(3), FillKind::Demand).expect("evicts");
        assert!(!e.was_unused_prefetch);
    }

    #[test]
    fn restore_fill_tracked() {
        let mut c = small();
        c.fill(set0_addr(1), FillKind::Restore);
        let report = c.invalidate_all();
        assert_eq!(report.valid_lines, 1);
        assert_eq!(report.unused_prefetched, 1);
        assert_eq!(report.unused_restored, 1);
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = small();
        c.fill(Addr::new(0x40), FillKind::Demand);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.probe(Addr::new(0x40)));
    }

    #[test]
    fn refill_refreshes_lru() {
        let mut c = small();
        let (a, b, d) = (set0_addr(1), set0_addr(2), set0_addr(3));
        c.fill(a, FillKind::Demand);
        c.fill(b, FillKind::Demand);
        c.fill(a, FillKind::Demand); // refresh, not duplicate
        assert_eq!(c.occupancy(), 2);
        c.fill(d, FillKind::Demand);
        assert!(c.probe(a), "refreshed line must survive");
        assert!(!c.probe(b));
    }

    #[test]
    fn demand_fill_clears_prefetch_mark() {
        let mut c = small();
        c.fill(set0_addr(1), FillKind::Prefetch);
        c.fill(set0_addr(1), FillKind::Demand);
        let report = c.invalidate_all();
        assert_eq!(report.unused_prefetched, 0);
    }
}
