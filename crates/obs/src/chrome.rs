//! Chrome trace-event JSON export of a [`TraceBuffer`].
//!
//! The output follows the Trace Event Format (JSON object form) that
//! Perfetto and `chrome://tracing` load directly: a `traceEvents` array
//! of metadata (`ph: "M"`), instant (`ph: "i"`) and complete
//! (`ph: "X"`) events, one thread per [`Track`]. Timestamps are
//! simulator cycles; `displayTimeUnit` is set to `ns` so viewers show
//! raw cycle counts.
//!
//! The writer is hand-rolled (this crate is dependency-free) and fully
//! deterministic: events appear in recording order, tracks in tid
//! order, and `args` keys in a fixed order per event kind.

use crate::event::{EventKind, TraceBuffer, Track};

/// Schema tag embedded in `otherData.schema`; the validator in
/// `ignite-cluster` requires it.
pub const CHROME_SCHEMA: &str = "ignite-trace-chrome-v1";

/// Export options.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChromeOptions<'a> {
    /// Process name shown in the viewer (e.g. `"ignite-cluster"`).
    pub process_name: &'a str,
    /// Function display names; invocation spans for function `i` are
    /// labelled `function_names[i]` when present, `fn<i>` otherwise.
    pub function_names: &'a [String],
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_args(out: &mut String, kind: &EventKind) {
    let mut first = true;
    let mut field = |out: &mut String, key: &str, value: u64| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        out.push_str(key);
        out.push_str("\":");
        out.push_str(&value.to_string());
    };
    match *kind {
        EventKind::Arrival { function } => field(out, "function", u64::from(function)),
        EventKind::Routed { function, node } => {
            field(out, "function", u64::from(function));
            field(out, "node", u64::from(node));
        }
        EventKind::Dispatch { function, queue_cycles } => {
            field(out, "function", u64::from(function));
            field(out, "queue_cycles", queue_cycles);
        }
        EventKind::Invocation { function, invocation } => {
            field(out, "function", u64::from(function));
            field(out, "invocation", invocation);
        }
        EventKind::Complete { function, service_cycles } => {
            field(out, "function", u64::from(function));
            field(out, "service_cycles", service_cycles);
        }
        EventKind::ContextSwitch => {}
        EventKind::TopDown { cycles, .. } => field(out, "cycles", cycles),
        EventKind::RecordBegin { container } => field(out, "container", container),
        EventKind::RecordEnd { container, entries, bytes } => {
            field(out, "container", container);
            field(out, "entries", entries);
            field(out, "bytes", bytes);
        }
        EventKind::ReplayBegin { container, entries } => {
            field(out, "container", container);
            field(out, "entries", entries);
        }
        EventKind::ReplayEnd { container, restored } => {
            field(out, "container", container);
            field(out, "restored", restored);
        }
        EventKind::ReplayDegraded { decode_errors, entries_dropped, watchdog_abandons } => {
            field(out, "decode_errors", decode_errors);
            field(out, "entries_dropped", entries_dropped);
            field(out, "watchdog_abandons", watchdog_abandons);
        }
        EventKind::StoreHit { container, bytes } => {
            field(out, "container", container);
            field(out, "bytes", bytes);
        }
        EventKind::StoreMiss { container } => field(out, "container", container),
        EventKind::StoreEvict { container, bytes } => {
            field(out, "container", container);
            field(out, "bytes", bytes);
        }
        EventKind::StoreReject { container, bytes } => {
            field(out, "container", container);
            field(out, "bytes", bytes);
        }
        EventKind::Attribution {
            function,
            queue_cycles,
            retry_cycles,
            dram_cycles,
            cold_frontend_cycles,
            store_miss_cycles,
            degraded_cycles,
            execution_cycles,
            latency_cycles,
        } => {
            field(out, "function", u64::from(function));
            field(out, "queue_cycles", queue_cycles);
            field(out, "retry_cycles", retry_cycles);
            field(out, "dram_cycles", dram_cycles);
            field(out, "cold_frontend_cycles", cold_frontend_cycles);
            field(out, "store_miss_cycles", store_miss_cycles);
            field(out, "degraded_cycles", degraded_cycles);
            field(out, "execution_cycles", execution_cycles);
            field(out, "latency_cycles", latency_cycles);
        }
        EventKind::AlertFire { function, burn_milli }
        | EventKind::AlertResolve { function, burn_milli } => {
            field(out, "function", u64::from(function));
            field(out, "burn_milli", burn_milli);
        }
        EventKind::CoreCrash { core } => field(out, "core", u64::from(core)),
        EventKind::CoreRestore { core, down_cycles } => {
            field(out, "core", u64::from(core));
            field(out, "down_cycles", down_cycles);
        }
        EventKind::ChaosRetry { function, attempt, backoff_cycles } => {
            field(out, "function", u64::from(function));
            field(out, "attempt", u64::from(attempt));
            field(out, "backoff_cycles", backoff_cycles);
        }
        EventKind::ChaosDrop { function, .. } | EventKind::Degraded { function, .. } => {
            field(out, "function", u64::from(function));
        }
        EventKind::BreakerOpen { function, faults } => {
            field(out, "function", u64::from(function));
            field(out, "faults", u64::from(faults));
        }
        EventKind::BreakerClose { function } => field(out, "function", u64::from(function)),
        EventKind::Decision { epoch, function, value, observed, threshold, .. } => {
            field(out, "epoch", epoch);
            field(out, "function", u64::from(function));
            field(out, "value", value);
            field(out, "observed", observed);
            field(out, "threshold", threshold);
        }
    }
}

/// Renders the buffer as a Chrome trace-event JSON document.
pub fn to_chrome_json(buf: &TraceBuffer, opts: &ChromeOptions) -> String {
    let mut out = String::with_capacity(64 + buf.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"otherData\":{\"schema\":\"");
    out.push_str(CHROME_SCHEMA);
    out.push_str("\",\"dropped_events\":\"");
    out.push_str(&buf.dropped().to_string());
    out.push_str("\"},\"traceEvents\":[");

    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };

    // Process + thread name metadata, tracks in tid order.
    sep(&mut out);
    out.push_str(&format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(opts.process_name)
    ));
    let tracks: std::collections::BTreeSet<Track> = buf.iter().map(|e| e.track).collect();
    for track in tracks {
        sep(&mut out);
        out.push_str(&format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
             \"args\":{{\"name\":\"{}\"}}}}",
            track.tid(),
            escape(&track.label())
        ));
    }

    for ev in buf.iter() {
        sep(&mut out);
        let name = match ev.kind {
            EventKind::Invocation { function, .. } => opts
                .function_names
                .get(function as usize)
                .map_or_else(|| format!("fn{function}"), |n| escape(n)),
            kind => kind.name().to_string(),
        };
        out.push_str("{\"name\":\"");
        out.push_str(&name);
        out.push_str("\",\"cat\":\"");
        out.push_str(ev.kind.category());
        out.push_str("\",\"ph\":\"");
        if ev.kind.is_span() {
            out.push('X');
            out.push_str(&format!("\",\"ts\":{},\"dur\":{}", ev.ts, ev.dur));
        } else {
            out.push('i');
            out.push_str(&format!("\",\"s\":\"t\",\"ts\":{}", ev.ts));
        }
        out.push_str(&format!(",\"pid\":0,\"tid\":{},\"args\":{{", ev.track.tid()));
        push_args(&mut out, &ev.kind);
        out.push_str("}}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventSink, Phase};

    fn sample() -> TraceBuffer {
        let mut buf = TraceBuffer::new(16);
        buf.record(Event {
            ts: 5,
            dur: 0,
            track: Track::Cluster,
            kind: EventKind::Arrival { function: 2 },
        });
        buf.record(Event {
            ts: 9,
            dur: 40,
            track: Track::Core(0),
            kind: EventKind::Invocation { function: 2, invocation: 1 },
        });
        buf.record(Event {
            ts: 9,
            dur: 12,
            track: Track::Core(0),
            kind: EventKind::TopDown { phase: Phase::FetchBound, cycles: 12 },
        });
        buf.record(Event {
            ts: 49,
            dur: 0,
            track: Track::Store,
            kind: EventKind::StoreEvict { container: 7, bytes: 321 },
        });
        buf
    }

    #[test]
    fn export_is_deterministic_and_tagged() {
        let buf = sample();
        let opts = ChromeOptions { process_name: "ignite", function_names: &[] };
        let a = to_chrome_json(&buf, &opts);
        let b = to_chrome_json(&buf, &opts);
        assert_eq!(a, b);
        assert!(a.contains(CHROME_SCHEMA));
        assert!(a.contains("\"traceEvents\":["));
        assert!(a.contains("\"name\":\"arrival\""));
        assert!(a.contains("\"name\":\"fetch-bound\""));
        assert!(a.contains("\"dur\":40"));
    }

    #[test]
    fn function_names_label_invocation_spans() {
        let buf = sample();
        let names = vec!["aes".to_string(), "gzip".to_string(), "json\"esc".to_string()];
        let out =
            to_chrome_json(&buf, &ChromeOptions { process_name: "x", function_names: &names });
        assert!(out.contains("\"name\":\"json\\\"esc\""));
        let bare = to_chrome_json(&buf, &ChromeOptions { process_name: "x", function_names: &[] });
        assert!(bare.contains("\"name\":\"fn2\""));
    }

    #[test]
    fn every_present_track_gets_a_thread_name() {
        let out =
            to_chrome_json(&sample(), &ChromeOptions { process_name: "x", function_names: &[] });
        assert!(out.contains("\"args\":{\"name\":\"queue\"}"));
        assert!(out.contains("\"args\":{\"name\":\"store\"}"));
        assert!(out.contains("\"args\":{\"name\":\"core0\"}"));
    }
}
