//! Observability for the Ignite simulator: event tracing + metrics.
//!
//! The simulator's reports (`ignite-cluster-v1`, `ignite-bench-v1`) say
//! *what* happened — mean latency, hit rates, replay fault counters. This
//! crate answers *why*: a per-core timeline of every discrete event the
//! simulation takes (arrivals, dispatches, store evictions, replay
//! watchdog abandons, Top-Down phase attribution) plus an exported
//! counter/gauge/histogram registry.
//!
//! Two sinks, both dependency-free and deterministic:
//!
//! * [`TraceBuffer`] — a bounded ring buffer of [`Event`]s (drop-oldest
//!   under pressure, with a drop counter), exported as Chrome
//!   trace-event JSON by [`chrome::to_chrome_json`]. Load the file in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: one
//!   track per simulated core, one for the metadata store, one for the
//!   cluster queue.
//! * [`MetricsRegistry`] — counters, gauges and fixed-bucket histograms
//!   with Prometheus-style text exposition. Iteration order is
//!   `BTreeMap`-sorted everywhere, so the exposition is byte-identical
//!   for identical inputs across processes.
//!
//! # The zero-cost contract
//!
//! Instrumented code takes a generic `S: EventSink` and guards every
//! emission site with `sink.enabled()`. [`NullSink::enabled`] is an
//! `#[inline(always)] false` constant, so monomorphized call paths with
//! `NullSink` compile to exactly the un-instrumented code — the golden
//! snapshot tests and the benchmark baselines do not move when
//! observability is off. See `DESIGN.md` §11.

pub mod chrome;
pub mod event;
pub mod metrics;
pub mod sketch;

pub use chrome::{to_chrome_json, ChromeOptions, CHROME_SCHEMA};
pub use event::{
    BufferingSink, CaptureSink, CtrlRule, DegradeReason, DropReason, Event, EventKind, EventSink,
    NullSink, Phase, TraceBuffer, Track,
};
pub use metrics::MetricsRegistry;
pub use sketch::QuantileSketch;
