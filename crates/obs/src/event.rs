//! The event model: what instrumented code emits, and where it goes.
//!
//! Events are small `Copy` records stamped with a cluster-clock
//! timestamp and a [`Track`] (timeline row). Instrumented code is
//! generic over [`EventSink`] and checks [`EventSink::enabled`] before
//! doing any work to assemble an event, so the disabled path costs
//! nothing (see the crate docs for the zero-cost contract).

use std::collections::VecDeque;

/// Timeline row an event belongs to. Tracks map to Chrome trace `tid`s:
/// the cluster queue is 0, the metadata store is 1, core `i` is `2 + i`,
/// and the SLO alert track sits above every possible core tid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Track {
    /// Cluster-level DES transitions (arrivals joining the queue).
    Cluster,
    /// Node metadata store traffic (hits, misses, evictions).
    Store,
    /// Per-core execution: dispatches, invocation spans, phases.
    Core(u32),
    /// SLO burn-rate alert lifecycle (fire/resolve instants).
    Alerts,
    /// Chaos lifecycle: crashes, restores, retries, degrades, breaker
    /// transitions (`ignite-chaos`).
    Chaos,
    /// Node `i`'s metadata store traffic in a multi-node run (a 1-node
    /// run keeps using [`Track::Store`], preserving committed traces).
    NodeStore(u32),
    /// Control-plane decision lifecycle: every policy actuation the
    /// online controller takes, with its cause snapshot
    /// (`ignite-control`).
    Controller,
}

impl Track {
    /// Chrome trace thread id for this track.
    pub fn tid(self) -> u64 {
        match self {
            Track::Cluster => 0,
            Track::Store => 1,
            Track::Core(i) => 2 + u64::from(i),
            Track::Alerts => 3 + u64::from(u32::MAX),
            Track::Chaos => 4 + u64::from(u32::MAX),
            Track::NodeStore(n) => 5 + u64::from(u32::MAX) + u64::from(n),
            // Above every possible NodeStore tid (5 + 2 * (2^32 - 1)).
            Track::Controller => 6 + 2 * u64::from(u32::MAX),
        }
    }

    /// Human-readable track label for trace viewers.
    pub fn label(self) -> String {
        match self {
            Track::Cluster => "queue".to_string(),
            Track::Store => "store".to_string(),
            Track::Core(i) => format!("core{i}"),
            Track::Alerts => "alerts".to_string(),
            Track::Chaos => "chaos".to_string(),
            Track::NodeStore(n) => format!("node{n}-store"),
            Track::Controller => "controller".to_string(),
        }
    }
}

/// Why an invocation completed degraded (cold, without replay) instead
/// of warm. Each reason gets its own stable event name so traces and
/// counters distinguish infrastructure faults from data faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradeReason {
    /// The metadata store was inside an unavailability window.
    StoreUnavailable,
    /// Fetched metadata failed validation (undecodable corruption).
    Corrupt,
    /// The fetched region was lost wholesale.
    Loss,
    /// The function's circuit breaker was open: record/replay bypassed.
    BreakerOpen,
}

impl DegradeReason {
    /// Stable event name for this reason.
    pub fn name(self) -> &'static str {
        match self {
            DegradeReason::StoreUnavailable => "degraded-unavailable",
            DegradeReason::Corrupt => "degraded-corrupt",
            DegradeReason::Loss => "degraded-loss",
            DegradeReason::BreakerOpen => "degraded-breaker",
        }
    }
}

/// Which control-plane rule fired. Each rule gets its own stable event
/// name so traces and counters distinguish the four actuation axes
/// (replay admission, store admission, core scaling, keep-alive
/// retuning) without parsing args.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CtrlRule {
    /// Record/replay disabled for a function: attributed
    /// `store_miss + dram` cycles exceeded the replayed savings.
    ReplayOff,
    /// A periodic probe re-enabled record/replay to re-measure.
    ReplayOn,
    /// Store admission tightened under footprint/eviction pressure.
    StoreTighten,
    /// Footprint pressure eased; admission re-opened.
    StoreLoosen,
    /// Active cores scaled up against the latency SLO.
    CoresUp,
    /// Active cores scaled down (latency slack + idle capacity).
    CoresDown,
    /// A function's keep-alive window retuned from its observed
    /// idle-gap histogram.
    KeepAliveRetune,
}

impl CtrlRule {
    /// Every rule, in stable serialization order.
    pub const ALL: [CtrlRule; 7] = [
        CtrlRule::ReplayOff,
        CtrlRule::ReplayOn,
        CtrlRule::StoreTighten,
        CtrlRule::StoreLoosen,
        CtrlRule::CoresUp,
        CtrlRule::CoresDown,
        CtrlRule::KeepAliveRetune,
    ];

    /// Stable event name for this rule.
    pub fn name(self) -> &'static str {
        match self {
            CtrlRule::ReplayOff => "ctrl-replay-off",
            CtrlRule::ReplayOn => "ctrl-replay-on",
            CtrlRule::StoreTighten => "ctrl-store-tighten",
            CtrlRule::StoreLoosen => "ctrl-store-loosen",
            CtrlRule::CoresUp => "ctrl-cores-up",
            CtrlRule::CoresDown => "ctrl-cores-down",
            CtrlRule::KeepAliveRetune => "ctrl-keepalive-retune",
        }
    }

    /// Stable snake_case key for report sections and metric labels.
    pub fn key(self) -> &'static str {
        match self {
            CtrlRule::ReplayOff => "replay_off",
            CtrlRule::ReplayOn => "replay_on",
            CtrlRule::StoreTighten => "store_tighten",
            CtrlRule::StoreLoosen => "store_loosen",
            CtrlRule::CoresUp => "cores_up",
            CtrlRule::CoresDown => "cores_down",
            CtrlRule::KeepAliveRetune => "keepalive_retune",
        }
    }
}

/// Why an invocation was dropped (the only two exits besides
/// completion — the `ignite-cluster-v2` conservation law).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropReason {
    /// Its end-to-end deadline expired before it could be served.
    Deadline,
    /// It exhausted the retry budget.
    RetriesExhausted,
}

impl DropReason {
    /// Stable event name for this reason.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Deadline => "drop-deadline",
            DropReason::RetriesExhausted => "drop-retries",
        }
    }
}

/// Top-Down cycle-attribution phase (mirrors
/// `ignite_engine::topdown::Category` without depending on the engine —
/// the dependency points the other way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Useful retirement.
    Retiring,
    /// Front-end (fetch) stalls — the cycles Ignite attacks.
    FetchBound,
    /// Wrong-path work squashed on resteer.
    BadSpeculation,
    /// Back-end (data) stalls.
    BackendBound,
}

impl Phase {
    /// Stable event name for this phase.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Retiring => "retiring",
            Phase::FetchBound => "fetch-bound",
            Phase::BadSpeculation => "bad-speculation",
            Phase::BackendBound => "backend-bound",
        }
    }
}

/// What happened. Payload fields become `args` in the Chrome export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A request joined the dispatch queue.
    Arrival { function: u32 },
    /// The cluster scheduler placed an arrival on a node (multi-node
    /// runs only; a 1-node run has no placement decision to record).
    Routed { function: u32, node: u32 },
    /// A queued request was assigned a free core.
    Dispatch { function: u32, queue_cycles: u64 },
    /// A dispatched invocation ran to completion (span; `dur` is the
    /// service time).
    Invocation { function: u32, invocation: u64 },
    /// An invocation finished and freed its core.
    Complete { function: u32, service_cycles: u64 },
    /// The core flushed transient front-end state between tenants.
    ContextSwitch,
    /// Top-Down cycle attribution for one invocation (span).
    TopDown { phase: Phase, cycles: u64 },
    /// Ignite armed its recorder for this container.
    RecordBegin { container: u64 },
    /// Recording finished; metadata was handed to the store.
    RecordEnd { container: u64, entries: u64, bytes: u64 },
    /// Ignite began replaying restored metadata.
    ReplayBegin { container: u64, entries: u64 },
    /// Replay drained (all entries restored or dropped).
    ReplayEnd { container: u64, restored: u64 },
    /// Replay degraded: decode errors, dropped entries, or a watchdog
    /// abandon. Emitted at most once per invocation.
    ReplayDegraded { decode_errors: u64, entries_dropped: u64, watchdog_abandons: u64 },
    /// Store lookup hit; `bytes` were read back.
    StoreHit { container: u64, bytes: u64 },
    /// Store lookup missed (cold or previously evicted).
    StoreMiss { container: u64 },
    /// A resident region was evicted to make room.
    StoreEvict { container: u64, bytes: u64 },
    /// An insert was rejected (region larger than the store).
    StoreReject { container: u64, bytes: u64 },
    /// Causal latency attribution for one completed invocation. The
    /// seven components sum *exactly* to `latency_cycles` (the tested
    /// scope invariant): time queued, cycles lost to failed attempts
    /// and backoff waits, metadata DRAM transfer, cold front-end
    /// stalls after a store hit (or with Ignite off), front-end stalls
    /// re-paid because the store missed and Ignite had to re-record,
    /// front-end stalls paid because chaos degraded replay away, and
    /// steady-state execution. `retry_cycles` and `degraded_cycles`
    /// are zero whenever chaos is off, preserving the five-component
    /// v1 decomposition bit-for-bit.
    Attribution {
        function: u32,
        queue_cycles: u64,
        retry_cycles: u64,
        dram_cycles: u64,
        cold_frontend_cycles: u64,
        store_miss_cycles: u64,
        degraded_cycles: u64,
        execution_cycles: u64,
        latency_cycles: u64,
    },
    /// A multi-window SLO burn-rate alert started firing for a
    /// function (`burn_milli` is the fast-window burn rate ×1000).
    AlertFire { function: u32, burn_milli: u64 },
    /// The alert's burn rate dropped back under the threshold.
    AlertResolve { function: u32, burn_milli: u64 },
    /// A chaos-injected crash killed `core` (and any attempt on it).
    CoreCrash { core: u32 },
    /// A crashed core finished repair and rejoined the pool.
    CoreRestore { core: u32, down_cycles: u64 },
    /// A failed attempt was rescheduled after `backoff_cycles`.
    ChaosRetry { function: u32, attempt: u32, backoff_cycles: u64 },
    /// An invocation was dropped — the terminal failure exit.
    ChaosDrop { function: u32, reason: DropReason },
    /// An invocation completed cold instead of warm (see the reason).
    Degraded { function: u32, reason: DegradeReason },
    /// A function's circuit breaker opened after `faults` consecutive
    /// replay-metadata faults.
    BreakerOpen { function: u32, faults: u32 },
    /// A half-open probe succeeded; the breaker re-closed.
    BreakerClose { function: u32 },
    /// The online controller actuated a policy change at an epoch
    /// boundary. The cause is carried inline: `observed` is the input
    /// snapshot that triggered `rule`, `threshold` the bound it was
    /// compared against, and `value` the new setting (window cycles,
    /// core count, admission byte cap, or 0/1 for replay toggles).
    /// `function` is `u32::MAX` for cluster-wide decisions.
    Decision {
        rule: CtrlRule,
        epoch: u64,
        function: u32,
        value: u64,
        observed: u64,
        threshold: u64,
    },
}

impl EventKind {
    /// Stable event name used in the Chrome export and the validator.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Arrival { .. } => "arrival",
            EventKind::Routed { .. } => "routed",
            EventKind::Dispatch { .. } => "dispatch",
            EventKind::Invocation { .. } => "invocation",
            EventKind::Complete { .. } => "complete",
            EventKind::ContextSwitch => "context-switch",
            EventKind::TopDown { phase, .. } => phase.name(),
            EventKind::RecordBegin { .. } => "record-begin",
            EventKind::RecordEnd { .. } => "record-end",
            EventKind::ReplayBegin { .. } => "replay-begin",
            EventKind::ReplayEnd { .. } => "replay-end",
            EventKind::ReplayDegraded { .. } => "replay-degraded",
            EventKind::StoreHit { .. } => "store-hit",
            EventKind::StoreMiss { .. } => "store-miss",
            EventKind::StoreEvict { .. } => "store-evict",
            EventKind::StoreReject { .. } => "store-reject",
            EventKind::Attribution { .. } => "attribution",
            EventKind::AlertFire { .. } => "alert-fire",
            EventKind::AlertResolve { .. } => "alert-resolve",
            EventKind::CoreCrash { .. } => "core-crash",
            EventKind::CoreRestore { .. } => "core-restore",
            EventKind::ChaosRetry { .. } => "chaos-retry",
            EventKind::ChaosDrop { reason, .. } => reason.name(),
            EventKind::Degraded { reason, .. } => reason.name(),
            EventKind::BreakerOpen { .. } => "breaker-open",
            EventKind::BreakerClose { .. } => "breaker-close",
            EventKind::Decision { rule, .. } => rule.name(),
        }
    }

    /// Chrome trace category for this kind.
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::Arrival { .. }
            | EventKind::Routed { .. }
            | EventKind::Dispatch { .. }
            | EventKind::Complete { .. }
            | EventKind::ContextSwitch => "cluster",
            EventKind::Invocation { .. } => "invocation",
            EventKind::TopDown { .. } => "topdown",
            EventKind::RecordBegin { .. }
            | EventKind::RecordEnd { .. }
            | EventKind::ReplayBegin { .. }
            | EventKind::ReplayEnd { .. }
            | EventKind::ReplayDegraded { .. } => "ignite",
            EventKind::StoreHit { .. }
            | EventKind::StoreMiss { .. }
            | EventKind::StoreEvict { .. }
            | EventKind::StoreReject { .. } => "store",
            EventKind::Attribution { .. } => "scope",
            EventKind::AlertFire { .. } | EventKind::AlertResolve { .. } => "slo",
            EventKind::CoreCrash { .. }
            | EventKind::CoreRestore { .. }
            | EventKind::ChaosRetry { .. }
            | EventKind::ChaosDrop { .. }
            | EventKind::Degraded { .. }
            | EventKind::BreakerOpen { .. }
            | EventKind::BreakerClose { .. } => "chaos",
            EventKind::Decision { .. } => "controller",
        }
    }

    /// Whether this kind renders as a duration span (`ph: "X"`) rather
    /// than an instant.
    pub fn is_span(&self) -> bool {
        matches!(self, EventKind::Invocation { .. } | EventKind::TopDown { .. })
    }
}

/// One timeline event. `ts`/`dur` are in cluster cycles; `dur` is 0 for
/// instants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub ts: u64,
    pub dur: u64,
    pub track: Track,
    pub kind: EventKind,
}

/// Where instrumented code sends events.
///
/// Implementations must keep [`EventSink::enabled`] trivially inlinable:
/// emission sites are guarded by it, and the disabled path must
/// dead-code-eliminate completely.
pub trait EventSink {
    /// Whether emission sites should assemble and record events.
    fn enabled(&self) -> bool;
    /// Records one event. Only called when [`EventSink::enabled`].
    fn record(&mut self, event: Event);
}

/// The zero-cost disabled sink: `enabled()` is a constant `false`, so
/// monomorphized instrumentation vanishes entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: Event) {}
}

impl<S: EventSink + ?Sized> EventSink for &mut S {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, event: Event) {
        (**self).record(event);
    }
}

/// A tee that always collects: `enabled()` is `true` so instrumented
/// code emits every event, each one is kept in [`CaptureSink::events`],
/// and events are forwarded to the wrapped sink only when *it* is
/// enabled. Because instrumented results are bit-identical whether or
/// not a sink is enabled (the zero-cost contract works both ways —
/// emission is observation, never behavior), wrapping a disabled sink in
/// a capture changes what is recorded, not what is computed. The memo
/// layer uses this to capture an invocation's event stream on a cache
/// miss without disturbing the caller's sink.
#[derive(Debug)]
pub struct CaptureSink<'a, S: EventSink> {
    inner: &'a mut S,
    /// Everything recorded since construction, in emission order.
    pub events: Vec<Event>,
}

impl<'a, S: EventSink> CaptureSink<'a, S> {
    /// Wraps `inner`, starting with an empty capture buffer.
    pub fn new(inner: &'a mut S) -> Self {
        CaptureSink { inner, events: Vec::new() }
    }
}

impl<S: EventSink> EventSink for CaptureSink<'_, S> {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        self.events.push(event);
        if self.inner.enabled() {
            self.inner.record(event);
        }
    }
}

/// A transactional sink: buffers every event and delivers the batch to
/// the wrapped sink only on [`BufferingSink::commit`]. Dropping the
/// buffer without committing discards the events — the memo layer uses
/// this so an aborted speculative run leaves no trace in the caller's
/// sink. `enabled()` mirrors the inner sink, so wrapping a [`NullSink`]
/// stays zero-cost (nothing is buffered that would never be seen).
#[derive(Debug)]
pub struct BufferingSink<'a, S: EventSink> {
    inner: &'a mut S,
    buffered: Vec<Event>,
}

impl<'a, S: EventSink> BufferingSink<'a, S> {
    /// Wraps `inner` with an empty buffer.
    pub fn new(inner: &'a mut S) -> Self {
        BufferingSink { inner, buffered: Vec::new() }
    }

    /// Delivers every buffered event to the inner sink, in order.
    pub fn commit(self) {
        for e in self.buffered {
            self.inner.record(e);
        }
    }

    /// Discards the buffer without delivering anything.
    pub fn abort(self) {}
}

impl<S: EventSink> EventSink for BufferingSink<'_, S> {
    #[inline]
    fn enabled(&self) -> bool {
        self.inner.enabled()
    }

    fn record(&mut self, event: Event) {
        self.buffered.push(event);
    }
}

/// Bounded ring-buffer event sink: keeps the most recent `capacity`
/// events, dropping the oldest under pressure and counting the drops so
/// exports can say the timeline is truncated.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    capacity: usize,
    events: VecDeque<Event>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace buffer needs room for at least one event");
        TraceBuffer { capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Buffered events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }
}

impl EventSink for TraceBuffer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event { ts, dur: 0, track: Track::Cluster, kind: EventKind::ContextSwitch }
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut buf = TraceBuffer::new(3);
        for t in 0..5 {
            buf.record(ev(t));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        let ts: Vec<u64> = buf.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = NullSink;
        assert!(!sink.enabled());
    }

    #[test]
    fn capture_collects_always_and_tees_only_when_inner_enabled() {
        let mut null = NullSink;
        let mut cap = CaptureSink::new(&mut null);
        assert!(cap.enabled(), "capture must force emission on");
        cap.record(ev(1));
        assert_eq!(cap.events.len(), 1, "captured even over a disabled inner sink");

        let mut buf = TraceBuffer::new(4);
        let mut cap = CaptureSink::new(&mut buf);
        cap.record(ev(2));
        assert_eq!(cap.events.len(), 1);
        assert_eq!(buf.len(), 1, "enabled inner sink sees the event too");
    }

    #[test]
    fn buffering_sink_delivers_on_commit_and_discards_on_abort() {
        let mut buf = TraceBuffer::new(8);
        {
            let mut tx = BufferingSink::new(&mut buf);
            assert!(tx.enabled());
            tx.record(ev(1));
            tx.record(ev(2));
            // Dropped without commit.
        }
        assert_eq!(buf.len(), 0, "nothing delivered without a commit");
        {
            let mut tx = BufferingSink::new(&mut buf);
            tx.record(ev(3));
            tx.record(ev(4));
            tx.commit();
        }
        let ts: Vec<u64> = buf.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![3, 4], "commit delivers in order");
        {
            let mut tx = BufferingSink::new(&mut buf);
            tx.record(ev(5));
            tx.abort();
        }
        assert_eq!(buf.len(), 2, "abort discards the batch");
    }

    #[test]
    fn buffering_over_null_sink_stays_disabled() {
        let mut null = NullSink;
        let tx = BufferingSink::new(&mut null);
        assert!(!tx.enabled(), "buffering must mirror the inner sink's enabled flag");
    }

    #[test]
    fn mut_ref_forwarding_preserves_enabled() {
        fn emit<S: EventSink>(mut sink: S) {
            assert!(sink.enabled());
            sink.record(ev(7));
        }
        let mut buf = TraceBuffer::new(4);
        emit(&mut buf);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn track_tids_are_disjoint() {
        let tracks = [
            Track::Cluster,
            Track::Store,
            Track::Core(0),
            Track::Core(3),
            Track::Core(u32::MAX),
            Track::Alerts,
            Track::Chaos,
            Track::NodeStore(0),
            Track::NodeStore(7),
            Track::NodeStore(u32::MAX),
            Track::Controller,
        ];
        let tids: std::collections::BTreeSet<u64> = tracks.iter().map(|t| t.tid()).collect();
        assert_eq!(tids.len(), tracks.len());
        assert_eq!(Track::Core(0).tid(), 2);
        assert!(Track::Alerts.tid() > Track::Core(u32::MAX).tid());
        assert!(Track::Chaos.tid() > Track::Alerts.tid());
        assert!(Track::NodeStore(0).tid() > Track::Chaos.tid());
        assert!(Track::Controller.tid() > Track::NodeStore(u32::MAX).tid());
        assert_eq!(Track::NodeStore(3).label(), "node3-store");
        assert_eq!(Track::Controller.label(), "controller");
    }

    #[test]
    fn chaos_event_names_encode_reasons() {
        assert_eq!(EventKind::CoreCrash { core: 1 }.name(), "core-crash");
        assert_eq!(
            EventKind::Degraded { function: 0, reason: DegradeReason::Corrupt }.name(),
            "degraded-corrupt"
        );
        assert_eq!(
            EventKind::ChaosDrop { function: 0, reason: DropReason::Deadline }.name(),
            "drop-deadline"
        );
        assert_eq!(EventKind::BreakerOpen { function: 0, faults: 5 }.category(), "chaos");
        assert!(!EventKind::ChaosRetry { function: 0, attempt: 1, backoff_cycles: 1 }.is_span());
    }

    #[test]
    fn controller_event_names_encode_rules() {
        let d = EventKind::Decision {
            rule: CtrlRule::ReplayOff,
            epoch: 3,
            function: 2,
            value: 0,
            observed: 900,
            threshold: 400,
        };
        assert_eq!(d.name(), "ctrl-replay-off");
        assert_eq!(d.category(), "controller");
        assert!(!d.is_span());
        // Names and keys are pairwise distinct across all rules.
        let names: std::collections::BTreeSet<&str> =
            CtrlRule::ALL.iter().map(|r| r.name()).collect();
        let keys: std::collections::BTreeSet<&str> =
            CtrlRule::ALL.iter().map(|r| r.key()).collect();
        assert_eq!(names.len(), CtrlRule::ALL.len());
        assert_eq!(keys.len(), CtrlRule::ALL.len());
    }

    #[test]
    fn event_names_are_stable() {
        assert_eq!(EventKind::Arrival { function: 0 }.name(), "arrival");
        assert_eq!(EventKind::ContextSwitch.name(), "context-switch");
        assert_eq!(
            EventKind::TopDown { phase: Phase::FetchBound, cycles: 1 }.name(),
            "fetch-bound"
        );
        assert!(EventKind::Invocation { function: 0, invocation: 0 }.is_span());
        assert!(!EventKind::StoreMiss { container: 0 }.is_span());
    }
}
