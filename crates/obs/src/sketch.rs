//! A deterministic streaming quantile sketch for latency SLO tracking.
//!
//! HDR-histogram-style bucketing over `u64` values: everything below 128
//! is counted exactly, and each power-of-two octave above that is split
//! into 64 sub-buckets, so the reported quantile never overstates the
//! true nearest-rank percentile by more than `value / 64` (~1.6%
//! relative error). Buckets live in a `BTreeMap`, so iteration — and
//! therefore every quantile query and the byte serialization — is fully
//! deterministic across runs and processes.
//!
//! Sketches are mergeable ([`QuantileSketch::merge`]): merging the
//! per-function sketches of a cluster run yields exactly the sketch the
//! run would have built globally, which is how the scope report computes
//! cluster-wide percentiles without retaining raw latencies.

use std::collections::BTreeMap;

/// Sub-bucket resolution: 2^6 = 64 sub-buckets per octave.
const SUB_BITS: u32 = 6;
/// Values below this are their own (exact) bucket.
const LINEAR_LIMIT: u64 = 1 << (SUB_BITS + 1);
/// Serialization magic ("igsk" + format version 1).
const MAGIC: [u8; 5] = [b'i', b'g', b's', b'k', 1];

/// Bucket index for a value (exact below [`LINEAR_LIMIT`], logarithmic
/// with 64 sub-buckets per octave above it).
fn bucket_index(v: u64) -> u32 {
    if v < LINEAR_LIMIT {
        return v as u32;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = ((v >> shift) as u32) & ((1 << SUB_BITS) - 1);
    LINEAR_LIMIT as u32 + (msb - SUB_BITS - 1) * (1 << SUB_BITS) + sub
}

/// Inclusive upper bound of a bucket (the value a quantile query
/// reports for ranks landing in it).
fn bucket_upper(idx: u32) -> u64 {
    if u64::from(idx) < LINEAR_LIMIT {
        return u64::from(idx);
    }
    let rel = idx - LINEAR_LIMIT as u32;
    let group = rel >> SUB_BITS;
    let sub = rel & ((1 << SUB_BITS) - 1);
    let shift = group + 1;
    // The top bucket's upper bound is 2^64 - 1; compute in u128 so the
    // shift cannot overflow.
    let upper = ((u128::from(LINEAR_LIMIT / 2) + u128::from(sub) + 1) << shift) - 1;
    upper.min(u128::from(u64::MAX)) as u64
}

/// A mergeable, byte-stable streaming quantile sketch over `u64` values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    counts: BTreeMap<u32, u64>,
    total: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl QuantileSketch {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    pub fn observe(&mut self, value: u64) {
        if self.total == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        *self.counts.entry(bucket_index(value)).or_insert(0) += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.max
        }
    }

    /// Folds another sketch into this one. The result is identical to
    /// having observed both value streams into a single sketch, in any
    /// order — the scope report relies on this to build cluster-wide
    /// quantiles from per-function sketches.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.total == 0 {
            return;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (&idx, &c) in &other.counts {
            *self.counts.entry(idx).or_insert(0) += c;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Nearest-rank quantile (`p` in percent, 0..=100): the upper bound
    /// of the bucket holding the rank-`max(1, ceil(n·p/100))` smallest
    /// value, clamped to the observed `[min, max]`. Returns 0 when
    /// empty. Never below the exact nearest-rank percentile, and never
    /// above it by more than `exact / 64` (exact below 128).
    pub fn quantile(&self, p: u32) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (u128::from(self.total) * u128::from(p))
            .div_ceil(100)
            .clamp(1, u128::from(self.total)) as u64;
        let mut cum = 0u64;
        for (&idx, &c) in &self.counts {
            cum += c;
            if cum >= rank {
                return bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Serializes the sketch to a deterministic byte string: identical
    /// sketches — built in any process, in any observation order —
    /// produce identical bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + 4 * 8 + 4 + self.counts.len() * 12);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&self.total.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        out.extend_from_slice(&self.min().to_le_bytes());
        out.extend_from_slice(&self.max().to_le_bytes());
        out.extend_from_slice(&(self.counts.len() as u32).to_le_bytes());
        for (&idx, &c) in &self.counts {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Reconstructs a sketch from [`QuantileSketch::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], String> {
            let end = pos.checked_add(n).filter(|&e| e <= bytes.len());
            let end = end.ok_or_else(|| format!("sketch truncated at byte {pos}"))?;
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        };
        let mut pos = 0usize;
        if take(&mut pos, 5)? != MAGIC {
            return Err("bad sketch magic/version".to_string());
        }
        let u64_at = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8 bytes"));
        let total = u64_at(take(&mut pos, 8)?);
        let sum = u64_at(take(&mut pos, 8)?);
        let min = u64_at(take(&mut pos, 8)?);
        let max = u64_at(take(&mut pos, 8)?);
        let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
        let mut counts = BTreeMap::new();
        let mut counted = 0u64;
        let mut last: Option<u32> = None;
        for _ in 0..n {
            let idx = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
            let c = u64_at(take(&mut pos, 8)?);
            if last.is_some_and(|l| idx <= l) || c == 0 {
                return Err("sketch buckets not strictly increasing / empty".to_string());
            }
            last = Some(idx);
            counted += c;
            counts.insert(idx, c);
        }
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        if counted != total {
            return Err(format!("bucket counts sum to {counted}, header says {total}"));
        }
        Ok(QuantileSketch { counts, total, sum, min, max })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank percentile over a sorted slice (mirrors the
    /// cluster's `percentile()` reference).
    fn exact_percentile(sorted: &[u64], p: u32) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let rank = (sorted.len() as u64 * u64::from(p)).div_ceil(100).max(1) as usize;
        sorted[rank.min(sorted.len()) - 1]
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        let data: Vec<u64> = (0..128).collect();
        for &v in &data {
            s.observe(v);
        }
        for p in [0, 25, 50, 75, 99, 100] {
            assert_eq!(s.quantile(p), exact_percentile(&data, p), "p{p}");
        }
        assert_eq!(s.count(), 128);
        assert_eq!(s.sum(), data.iter().sum::<u64>());
    }

    #[test]
    fn bucket_bounds_cover_values() {
        for v in [0, 1, 127, 128, 129, 255, 256, 1 << 20, u64::MAX - 1, u64::MAX] {
            let idx = bucket_index(v);
            assert!(bucket_upper(idx) >= v, "upper({idx}) < {v}");
            if idx > 0 {
                assert!(bucket_upper(idx - 1) < v, "value {v} below its bucket");
            }
        }
    }

    #[test]
    fn empty_sketch_is_zero() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(50), 0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn merge_equals_bulk_observation() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        let mut bulk = QuantileSketch::new();
        for i in 0..500u64 {
            let v = i * 977 % 100_000;
            if i % 2 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
            bulk.observe(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, bulk);
        assert_eq!(merged.to_bytes(), bulk.to_bytes());
    }

    #[test]
    fn bytes_round_trip() {
        let mut s = QuantileSketch::new();
        for v in [3u64, 70_000, 70_001, 1 << 40, u64::MAX] {
            s.observe(v);
        }
        let bytes = s.to_bytes();
        let back = QuantileSketch::from_bytes(&bytes).expect("round trip");
        assert_eq!(back, s);
        assert_eq!(back.to_bytes(), bytes);
        assert!(QuantileSketch::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(QuantileSketch::from_bytes(b"nope").is_err());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn quantiles_bound_the_exact_percentile(
            mut data in proptest::collection::vec(0u64..100_000_000, 1..300),
        ) {
            let mut s = QuantileSketch::new();
            for &v in &data {
                s.observe(v);
            }
            data.sort_unstable();
            for p in 0..=100u32 {
                let exact = exact_percentile(&data, p);
                let approx = s.quantile(p);
                proptest::prop_assert!(approx >= exact, "p{}: {} < exact {}", p, approx, exact);
                proptest::prop_assert!(
                    approx <= exact + exact / 64,
                    "p{}: {} overshoots exact {} by more than 1/64",
                    p, approx, exact
                );
            }
        }

        #[test]
        fn quantile_curve_is_monotone_and_clamped(
            data in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        ) {
            let mut s = QuantileSketch::new();
            for &v in &data {
                s.observe(v);
            }
            let curve: Vec<u64> = (0..=100).map(|p| s.quantile(p)).collect();
            for w in curve.windows(2) {
                proptest::prop_assert!(w[0] <= w[1]);
            }
            proptest::prop_assert_eq!(curve[100], s.max());
            proptest::prop_assert!(curve[0] >= s.min());
        }

        #[test]
        fn serialization_is_order_independent(
            data in proptest::collection::vec(0u64..10_000_000, 1..100),
        ) {
            let mut fwd = QuantileSketch::new();
            for &v in &data {
                fwd.observe(v);
            }
            let mut rev = QuantileSketch::new();
            for &v in data.iter().rev() {
                rev.observe(v);
            }
            proptest::prop_assert_eq!(fwd.to_bytes(), rev.to_bytes());
        }
    }
}
