//! Metrics registry with deterministic Prometheus-style exposition.
//!
//! Three instrument families — monotone `u64` counters, `f64` gauges,
//! and fixed-bucket `u64` histograms — each addressable by name plus an
//! optional label set. Everything is stored in `BTreeMap`s and labels
//! are sorted by key, so [`MetricsRegistry::expose`] is byte-identical
//! for identical inputs, across runs and across processes. Non-finite
//! gauge values are pinned to `0` at write time: the exposition never
//! contains `NaN` or `inf`.

use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum MetricData {
    Counter(BTreeMap<String, u64>),
    Gauge(BTreeMap<String, f64>),
    Histogram { bounds: Vec<u64>, series: BTreeMap<String, HistSeries> },
}

#[derive(Debug, Clone, Default)]
struct HistSeries {
    /// Per-bound counts (non-cumulative), plus one overflow bucket.
    counts: Vec<u64>,
    sum: u64,
    total: u64,
}

#[derive(Debug, Clone)]
struct Metric {
    help: String,
    data: MetricData,
}

/// Formats an `f64` for exposition: shortest round-trip form, with
/// non-finite values pinned to `0`.
fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Renders a label set as `{k="v",...}` with keys sorted, or `""` when
/// empty.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Injects an extra label into an already-rendered label key (used for
/// histogram `le`).
fn with_le(key: &str, le: &str) -> String {
    if key.is_empty() {
        format!("{{le=\"{le}\"}}")
    } else {
        format!("{},le=\"{le}\"}}", &key[..key.len() - 1])
    }
}

/// A named collection of counters, gauges and histograms.
///
/// Instruments are created on first touch; re-using a name with a
/// different instrument family (or different histogram bounds) panics —
/// that is a bug in the instrumentation, not a runtime condition.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metric names.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Adds `by` to a counter sample.
    pub fn inc_counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], by: u64) {
        let metric = self.metrics.entry(name.to_string()).or_insert_with(|| Metric {
            help: help.to_string(),
            data: MetricData::Counter(BTreeMap::new()),
        });
        let MetricData::Counter(series) = &mut metric.data else {
            panic!("metric {name} already registered with a different type");
        };
        *series.entry(label_key(labels)).or_insert(0) += by;
    }

    /// Sets a gauge sample. Non-finite values are pinned to `0`.
    pub fn set_gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let metric = self.metrics.entry(name.to_string()).or_insert_with(|| Metric {
            help: help.to_string(),
            data: MetricData::Gauge(BTreeMap::new()),
        });
        let MetricData::Gauge(series) = &mut metric.data else {
            panic!("metric {name} already registered with a different type");
        };
        let pinned = if value.is_finite() { value } else { 0.0 };
        series.insert(label_key(labels), pinned);
    }

    /// Records one observation into a fixed-bucket histogram. `bounds`
    /// are inclusive upper bucket bounds in increasing order; values
    /// above the last bound land in the implicit `+Inf` bucket.
    pub fn observe(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
        value: u64,
    ) {
        let series = self.histogram_series(name, help, bounds, labels);
        let idx = bounds.iter().position(|&b| value <= b).unwrap_or(bounds.len());
        series.counts[idx] += 1;
        series.sum += value;
        series.total += 1;
    }

    /// Merges precomputed bucket counts (one per bound, plus one
    /// overflow count at the end) into a histogram sample. Lets callers
    /// that already aggregated deterministically (e.g. the cluster
    /// outcome) expose without replaying every observation.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != bounds.len() + 1`.
    pub fn merge_histogram(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
        counts: &[u64],
        sum: u64,
    ) {
        assert_eq!(counts.len(), bounds.len() + 1, "need one count per bound plus overflow");
        let series = self.histogram_series(name, help, bounds, labels);
        for (slot, c) in series.counts.iter_mut().zip(counts) {
            *slot += c;
        }
        series.sum += sum;
        series.total += counts.iter().sum::<u64>();
    }

    fn histogram_series(
        &mut self,
        name: &str,
        help: &str,
        bounds: &[u64],
        labels: &[(&str, &str)],
    ) -> &mut HistSeries {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must increase");
        let metric = self.metrics.entry(name.to_string()).or_insert_with(|| Metric {
            help: help.to_string(),
            data: MetricData::Histogram { bounds: bounds.to_vec(), series: BTreeMap::new() },
        });
        let MetricData::Histogram { bounds: have, series } = &mut metric.data else {
            panic!("metric {name} already registered with a different type");
        };
        assert_eq!(have.as_slice(), bounds, "metric {name} re-registered with different bounds");
        series.entry(label_key(labels)).or_insert_with(|| HistSeries {
            counts: vec![0; bounds.len() + 1],
            ..HistSeries::default()
        })
    }

    /// Prometheus-style text exposition: `# HELP` / `# TYPE` preamble
    /// per metric, samples sorted by label key, histograms expanded to
    /// cumulative `_bucket{le=...}` plus `_sum` and `_count`.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            if !metric.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", metric.help));
            }
            match &metric.data {
                MetricData::Counter(series) => {
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    for (labels, v) in series {
                        out.push_str(&format!("{name}{labels} {v}\n"));
                    }
                }
                MetricData::Gauge(series) => {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    for (labels, v) in series {
                        out.push_str(&format!("{name}{labels} {}\n", fmt_f64(*v)));
                    }
                }
                MetricData::Histogram { bounds, series } => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    for (labels, h) in series {
                        let mut cumulative = 0u64;
                        for (bound, count) in bounds.iter().zip(&h.counts) {
                            cumulative += count;
                            let le = with_le(labels, &bound.to_string());
                            out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
                        }
                        cumulative += h.counts[bounds.len()];
                        let le = with_le(labels, "+Inf");
                        out.push_str(&format!("{name}_bucket{le} {cumulative}\n"));
                        out.push_str(&format!("{name}_sum{labels} {}\n", h.sum));
                        out.push_str(&format!("{name}_count{labels} {}\n", h.total));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_is_deterministic_and_sorted() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            reg.inc_counter("zeta_total", "last metric", &[], 3);
            reg.inc_counter("alpha_total", "first metric", &[("b", "2"), ("a", "1")], 1);
            reg.inc_counter("alpha_total", "first metric", &[("a", "1"), ("b", "2")], 1);
            reg.set_gauge("mid_gauge", "middle", &[], 1.5);
            reg
        };
        let a = build().expose();
        assert_eq!(a, build().expose());
        // Metric names sorted, duplicate label sets merged regardless of order.
        let alpha = a.find("alpha_total").unwrap();
        let zeta = a.find("zeta_total").unwrap();
        assert!(alpha < zeta);
        assert!(a.contains("alpha_total{a=\"1\",b=\"2\"} 2\n"));
        assert!(a.contains("mid_gauge 1.5\n"));
    }

    #[test]
    fn non_finite_gauges_are_pinned_to_zero() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("g", "", &[("k", "nan")], f64::NAN);
        reg.set_gauge("g", "", &[("k", "inf")], f64::INFINITY);
        let text = reg.expose();
        assert!(text.contains("g{k=\"inf\"} 0\n"));
        assert!(text.contains("g{k=\"nan\"} 0\n"));
        assert!(!text.contains("NaN") && !text.contains("inf\"} i"));
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let mut reg = MetricsRegistry::new();
        let bounds = [10, 100, 1000];
        for v in [5, 7, 50, 5000] {
            reg.observe("lat", "latency", &bounds, &[], v);
        }
        let text = reg.expose();
        assert!(text.contains("lat_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("lat_bucket{le=\"100\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"1000\"} 3\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("lat_sum 5062\n"));
        assert!(text.contains("lat_count 4\n"));
    }

    #[test]
    fn merge_histogram_matches_observations() {
        let bounds = [10, 100];
        let mut by_obs = MetricsRegistry::new();
        for v in [3, 30, 300] {
            by_obs.observe("h", "", &bounds, &[("f", "x")], v);
        }
        let mut by_merge = MetricsRegistry::new();
        by_merge.merge_histogram("h", "", &bounds, &[("f", "x")], &[1, 1, 1], 333);
        assert_eq!(by_obs.expose(), by_merge.expose());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.inc_counter("m", "", &[], 1);
        reg.set_gauge("m", "", &[], 1.0);
    }

    #[test]
    fn integer_valued_gauges_print_without_fraction() {
        let mut reg = MetricsRegistry::new();
        reg.set_gauge("g", "", &[], 42.0);
        assert!(reg.expose().contains("g 42\n"));
    }
}
