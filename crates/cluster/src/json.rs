//! Minimal JSON support: enough to write and re-read cluster and bench
//! reports with no external dependencies (the workspace builds offline;
//! serde is not available). `ignite-bench` re-exports this module, so
//! there is exactly one JSON implementation in the workspace.
//!
//! The emitter side lives in [`escape`]/[`number`]; [`parse`] is a small
//! recursive-descent reader for the subset of JSON the reports use
//! (objects, arrays, strings with simple escapes, numbers, booleans,
//! null). It is intentionally strict: malformed input returns an error,
//! never panics.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as f64.
    Number(f64),
    /// A string literal.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value's key/value pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Looks up `key` in an object's pairs (first match).
pub fn get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Renders a string as a quoted JSON literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders an f64 as a JSON number.
///
/// Rust's `Display` for f64 prints the shortest string that round-trips,
/// so re-parsing yields the bit-identical value. Non-finite values (not
/// representable in JSON) render as `null`.
pub fn number(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // Ensure the token stays a valid JSON number (e.g. "1" not "1e0").
        debug_assert!(s.parse::<f64>().is_ok());
        s
    } else {
        "null".to_string()
    }
}

/// Parses a JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos.saturating_sub(1)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.num(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(pairs)),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex =
                            self.bytes.get(self.pos..self.pos + 4).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        self.pos += 4;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err("invalid UTF-8 in string".to_string()),
                    };
                    let chunk = self.bytes.get(start..start + len).ok_or("truncated UTF-8")?;
                    let s = std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }

    fn num(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        token
            .parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number '{token}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e3").unwrap(), Value::Number(-2500.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": false}"#).unwrap();
        let obj = v.as_object().unwrap();
        let arr = get(obj, "a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(get(arr[1].as_object().unwrap(), "b").unwrap().as_str(), Some("x"));
        assert_eq!(get(obj, "c"), Some(&Value::Bool(false)));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn escape_roundtrip() {
        let s = "quote\" slash\\ tab\t newline\n unicode\u{1F600}";
        assert_eq!(parse(&escape(s)).unwrap(), Value::String(s.into()));
    }

    #[test]
    fn number_roundtrips_bit_exact() {
        for x in [0.0, 1.0, -1.5, 0.1, 1e-12, 123456.789, f64::MAX] {
            let s = number(x);
            assert_eq!(s.parse::<f64>().unwrap().to_bits(), x.to_bits());
        }
        assert_eq!(number(f64::NAN), "null");
    }
}
