//! The discrete-event cluster simulation proper.
//!
//! Two event sources drive the loop: trace arrivals and core completions.
//! Invocations queue FIFO; a free core with the lowest index takes the
//! head of the queue. At equal timestamps, completions are processed
//! before arrivals (a core freed at cycle `t` can serve a request arriving
//! at `t`), and cores free in index order — every tie-break is total, so a
//! fixed (seed, config) reproduces the run bit-exactly in any process.
//!
//! Each core owns a persistent [`Machine`] that is **never flushed**:
//! whatever function ran last left its code in the caches and its branches
//! in the BTB, and the next function finds exactly as much of its own
//! state as the interleaving allowed to survive. Only the abstract
//! back-end data model needs help — the per-(core, function) interleaving
//! distance sets [`InvocationCtx::data_cold_fraction`].

use std::collections::{BTreeMap, VecDeque};

use ignite_core::{MetadataStore, StoreConfig, StoreStats};
use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::{Machine, PreparedFunction};
use ignite_engine::metrics::InvocationResult;
use ignite_engine::sim::{run_invocation_obs, InvocationCtx};
use ignite_obs::{Event, EventKind, EventSink, NullSink, Track};
use ignite_uarch::UarchConfig;
use ignite_workloads::arrival::{Arrival, ArrivalConfig, Trace};
use ignite_workloads::suite::Suite;

use crate::fanout::{self, PanicFailure};

/// Inclusive upper bounds of the cluster latency histogram, in cycles
/// (doubling grid; latencies above the last bound land in the implicit
/// overflow bucket). [`ClusterOutcome::latency_histogram`] and the
/// metrics exposition in [`crate::prom`] share this grid.
pub const LATENCY_BUCKETS: [u64; 10] = [
    50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000, 6_400_000, 12_800_000,
    25_600_000,
];

/// Everything that defines one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated cores.
    pub cores: usize,
    /// Front-end configuration of every core.
    pub fe: FrontEndConfig,
    /// Workload suite scale (1.0 = paper scale).
    pub scale: f64,
    /// Arrival process parameters (ignored when replaying a trace).
    pub arrival: ArrivalConfig,
    /// Node-wide metadata store sizing and policy.
    pub store: StoreConfig,
    /// Interleaving distance (invocations by *other* functions on the same
    /// core) at which a function's data working set counts as fully cold.
    pub distance_saturation: f64,
    /// Metadata transfer bandwidth between the node store and a core's
    /// replay engine; fetch/writeback cycles are charged to service time.
    pub dram_bytes_per_cycle: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cores: 4,
            fe: FrontEndConfig::ignite(),
            scale: 0.02,
            arrival: ArrivalConfig::default(),
            store: StoreConfig::default(),
            distance_saturation: 8.0,
            dram_bytes_per_cycle: 8.0,
        }
    }
}

/// How one core was used over the run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreUsage {
    /// Invocations this core served.
    pub invocations: u64,
    /// Cycles spent serving (busy) out of the makespan.
    pub busy_cycles: u64,
    /// `busy_cycles / makespan`, 0.0 for an empty run.
    pub utilization: f64,
}

/// Aggregated measurements for one suite function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSummary {
    /// Table-1 abbreviation.
    pub abbr: String,
    /// Invocations completed.
    pub invocations: u64,
    /// Latency percentiles (arrival → completion), in cycles.
    pub p50_latency: u64,
    /// 95th percentile latency.
    pub p95_latency: u64,
    /// 99th percentile latency.
    pub p99_latency: u64,
    /// Mean service time (dispatch → completion), in cycles.
    pub mean_service: f64,
    /// Mean queueing delay (arrival → dispatch), in cycles.
    pub mean_queue: f64,
    /// Mean data-cold fraction at dispatch (0 = always back-to-back warm).
    pub mean_cold_fraction: f64,
    /// Metadata store hits for this function's container.
    pub metadata_hits: u64,
    /// Metadata store misses.
    pub metadata_misses: u64,
    /// Per-invocation engine measurements, summed over all invocations.
    pub result: InvocationResult,
}

impl FunctionSummary {
    /// Store hit rate for this function, 0.0 when it never dispatched.
    pub fn metadata_hit_rate(&self) -> f64 {
        let total = self.metadata_hits + self.metadata_misses;
        if total == 0 {
            0.0
        } else {
            self.metadata_hits as f64 / total as f64
        }
    }
}

/// The outcome of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Invocations completed (equals the trace length).
    pub invocations: u64,
    /// Cycle of the last completion (0 for an empty trace).
    pub makespan: u64,
    /// Per-core usage.
    pub cores: Vec<CoreUsage>,
    /// Per-function summaries, in suite order.
    pub functions: Vec<FunctionSummary>,
    /// Node-wide metadata store counters.
    pub store: StoreStats,
    /// Store bytes resident at the end of the run.
    pub footprint_bytes: usize,
    /// Store bytes resident at the high-water mark.
    pub peak_footprint_bytes: usize,
    /// Cluster-wide latency percentiles over all invocations, in cycles.
    pub p50_latency: u64,
    /// 95th percentile.
    pub p95_latency: u64,
    /// 99th percentile.
    pub p99_latency: u64,
    /// Mean latency over all invocations, in cycles.
    pub mean_latency: f64,
    /// Latency counts per [`LATENCY_BUCKETS`] bound (non-cumulative),
    /// plus one trailing overflow bucket.
    pub latency_histogram: Vec<u64>,
    /// Sum of all invocation latencies, in cycles.
    pub latency_sum: u64,
}

impl ClusterOutcome {
    /// Engine measurements summed over every function (the aggregate
    /// `ReplayStats` live in `.replay` / `.replay_unfinished`).
    pub fn total_result(&self) -> InvocationResult {
        let mut total = InvocationResult::default();
        for f in &self.functions {
            total.merge(&f.result);
        }
        total
    }

    /// Mean core utilization.
    pub fn mean_utilization(&self) -> f64 {
        if self.cores.is_empty() {
            0.0
        } else {
            self.cores.iter().map(|c| c.utilization).sum::<f64>() / self.cores.len() as f64
        }
    }
}

struct Core {
    machine: Machine,
    busy_until: u64,
    busy: bool,
    /// Dispatches on this core so far (the per-core sequence number).
    seq: u64,
    /// Function index → `seq` at its last dispatch here.
    last_seq: BTreeMap<usize, u64>,
    busy_cycles: u64,
    invocations: u64,
}

struct FunctionState {
    abbr: String,
    latencies: Vec<u64>,
    service_cycles: u64,
    queue_cycles: u64,
    cold_sum: f64,
    hits: u64,
    misses: u64,
    /// Global invocation counter (seeds the trace walker, so control flow
    /// drifts across invocations like the per-function protocol's does).
    count: u64,
    result: InvocationResult,
}

/// The simulator: a prepared fleet ready to serve traces.
pub struct ClusterSim {
    cfg: ClusterConfig,
    uarch: UarchConfig,
    functions: Vec<PreparedFunction>,
    abbrs: Vec<String>,
}

impl ClusterSim {
    /// Prepares the paper suite at the configured scale.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero cores or a non-positive scale.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        let suite = Suite::paper_suite_scaled(cfg.scale);
        let functions: Vec<PreparedFunction> = suite
            .functions()
            .iter()
            .enumerate()
            .map(|(i, f)| PreparedFunction::from_suite(f, i as u64))
            .collect();
        let abbrs = suite.functions().iter().map(|f| f.profile.abbr.clone()).collect();
        ClusterSim { cfg, uarch: UarchConfig::ice_lake_like(), functions, abbrs }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Generates the configured arrival process and serves it.
    pub fn run(&self) -> ClusterOutcome {
        self.run_obs(&mut NullSink)
    }

    /// [`ClusterSim::run`] with event observation.
    pub fn run_obs<S: EventSink>(&self, sink: &mut S) -> ClusterOutcome {
        let mut arrival = self.cfg.arrival;
        arrival.functions = self.functions.len();
        self.run_trace_obs(&arrival.generate(), sink)
    }

    /// Serves an explicit (possibly replayed) trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace references more functions than the suite has.
    pub fn run_trace(&self, trace: &Trace) -> ClusterOutcome {
        self.run_trace_obs(trace, &mut NullSink)
    }

    /// [`ClusterSim::run_trace`] with event observation: every DES
    /// transition (arrival, dispatch, context switch, invocation span,
    /// completion), every store access outcome and every record/replay
    /// episode is reported to `sink`. With a sink whose
    /// [`EventSink::enabled`] is `false` (the [`NullSink`]) this is
    /// bit-identical to [`ClusterSim::run_trace`] — every emission site
    /// is guarded, so the disabled path adds no work and no state.
    pub fn run_trace_obs<S: EventSink>(&self, trace: &Trace, sink: &mut S) -> ClusterOutcome {
        assert!(
            trace.functions <= self.functions.len(),
            "trace declares {} functions, suite has {}",
            trace.functions,
            self.functions.len()
        );
        let ignite_on = self.cfg.fe.select.ignite.is_some();
        let mut store = MetadataStore::new(self.cfg.store);
        let mut cores: Vec<Core> = (0..self.cfg.cores)
            .map(|_| Core {
                machine: Machine::new(&self.uarch, &self.cfg.fe),
                busy_until: 0,
                busy: false,
                seq: 0,
                last_seq: BTreeMap::new(),
                busy_cycles: 0,
                invocations: 0,
            })
            .collect();
        let mut fns: Vec<FunctionState> = self
            .abbrs
            .iter()
            .map(|abbr| FunctionState {
                abbr: abbr.clone(),
                latencies: Vec::new(),
                service_cycles: 0,
                queue_cycles: 0,
                cold_sum: 0.0,
                hits: 0,
                misses: 0,
                count: 0,
                result: InvocationResult::default(),
            })
            .collect();

        let mut queue: VecDeque<Arrival> = VecDeque::new();
        let mut next_arrival = 0usize;
        let mut now = 0u64;
        let mut makespan = 0u64;
        let mut all_latencies: Vec<u64> = Vec::new();
        let mut latency_sum = 0u64;

        loop {
            // Dispatch the FIFO queue onto free cores, lowest index first.
            while !queue.is_empty() {
                let Some(ci) = cores.iter().position(|c| !c.busy) else { break };
                let a = queue.pop_front().expect("non-empty queue");
                let completion = self.dispatch(
                    &a,
                    now,
                    &mut cores[ci],
                    ci,
                    &mut fns[a.function as usize],
                    &mut store,
                    ignite_on,
                    sink,
                );
                makespan = makespan.max(completion);
                let latency = completion - a.cycle;
                all_latencies.push(latency);
                latency_sum += latency;
                fns[a.function as usize].latencies.push(latency);
            }

            // Next event: the earliest completion or arrival.
            let next_completion = cores.iter().filter(|c| c.busy).map(|c| c.busy_until).min();
            let next_arrival_cycle = trace.arrivals.get(next_arrival).map(|a| a.cycle);
            now = match (next_completion, next_arrival_cycle) {
                (None, None) => break,
                (Some(c), None) => c,
                (None, Some(a)) => a,
                (Some(c), Some(a)) => c.min(a),
            };
            // Completions first (a core freed at `now` can serve an arrival
            // at `now`), in core-index order.
            for c in &mut cores {
                if c.busy && c.busy_until <= now {
                    c.busy = false;
                }
            }
            // Then arrivals at `now`, in trace order.
            while trace.arrivals.get(next_arrival).is_some_and(|a| a.cycle <= now) {
                let a = trace.arrivals[next_arrival];
                if sink.enabled() {
                    sink.record(Event {
                        ts: a.cycle,
                        dur: 0,
                        track: Track::Cluster,
                        kind: EventKind::Arrival { function: a.function },
                    });
                }
                queue.push_back(a);
                next_arrival += 1;
            }
        }

        // Summaries.
        all_latencies.sort_unstable();
        let functions = fns
            .into_iter()
            .map(|mut f| {
                f.latencies.sort_unstable();
                let n = f.latencies.len() as f64;
                FunctionSummary {
                    abbr: f.abbr,
                    invocations: f.latencies.len() as u64,
                    p50_latency: percentile(&f.latencies, 50),
                    p95_latency: percentile(&f.latencies, 95),
                    p99_latency: percentile(&f.latencies, 99),
                    mean_service: if n == 0.0 { 0.0 } else { f.service_cycles as f64 / n },
                    mean_queue: if n == 0.0 { 0.0 } else { f.queue_cycles as f64 / n },
                    mean_cold_fraction: if n == 0.0 { 0.0 } else { f.cold_sum / n },
                    metadata_hits: f.hits,
                    metadata_misses: f.misses,
                    result: f.result,
                }
            })
            .collect();
        let cores = cores
            .into_iter()
            .map(|c| CoreUsage {
                invocations: c.invocations,
                busy_cycles: c.busy_cycles,
                utilization: if makespan == 0 {
                    0.0
                } else {
                    c.busy_cycles as f64 / makespan as f64
                },
            })
            .collect();
        let n = all_latencies.len();
        let mut latency_histogram = vec![0u64; LATENCY_BUCKETS.len() + 1];
        for &l in &all_latencies {
            let i = LATENCY_BUCKETS.iter().position(|&b| l <= b).unwrap_or(LATENCY_BUCKETS.len());
            latency_histogram[i] += 1;
        }
        ClusterOutcome {
            invocations: n as u64,
            makespan,
            cores,
            functions,
            store: *store.stats(),
            footprint_bytes: store.footprint_bytes(),
            peak_footprint_bytes: store.peak_footprint_bytes(),
            p50_latency: percentile(&all_latencies, 50),
            p95_latency: percentile(&all_latencies, 95),
            p99_latency: percentile(&all_latencies, 99),
            mean_latency: if n == 0 { 0.0 } else { latency_sum as f64 / n as f64 },
            latency_histogram,
            latency_sum,
        }
    }

    /// Runs one invocation on a core; returns its completion cycle.
    #[allow(clippy::too_many_arguments)] // internal hot path; a context struct would be rebuilt per call
    fn dispatch<S: EventSink>(
        &self,
        a: &Arrival,
        now: u64,
        core: &mut Core,
        ci: usize,
        fstate: &mut FunctionState,
        store: &mut MetadataStore,
        ignite_on: bool,
        sink: &mut S,
    ) -> u64 {
        let f = &self.functions[a.function as usize];
        // Interleaving distance → data coldness. Distance d counts the
        // invocations of *other* functions on this core since this function
        // last ran here; d = 0 (back-to-back) is fully warm, and coldness
        // saturates at `distance_saturation`.
        let cold = match core.last_seq.get(&(a.function as usize)) {
            None => 1.0,
            Some(&s) => {
                let d = (core.seq - s - 1) as f64;
                (d / self.cfg.distance_saturation.max(1.0)).min(1.0)
            }
        };
        core.last_seq.insert(a.function as usize, core.seq);
        core.seq += 1;

        let track = Track::Core(ci as u32);
        if sink.enabled() {
            sink.record(Event {
                ts: now,
                dur: 0,
                track,
                kind: EventKind::Dispatch { function: a.function, queue_cycles: now - a.cycle },
            });
        }

        // Stage the function's metadata region from the node store into
        // the core's replay engine, charging the transfer.
        let mut md_cycles = 0u64;
        let mut store_hit = false;
        if ignite_on {
            let fetched = store.fetch(f.container).cloned();
            match fetched {
                Some(md) => {
                    store_hit = true;
                    fstate.hits += 1;
                    md_cycles += self.transfer_cycles(md.byte_len());
                    if sink.enabled() {
                        sink.record(Event {
                            ts: now,
                            dur: 0,
                            track: Track::Store,
                            kind: EventKind::StoreHit {
                                container: f.container,
                                bytes: md.byte_len() as u64,
                            },
                        });
                    }
                    core.machine
                        .ignite
                        .as_mut()
                        .expect("ignite selected")
                        .install_metadata(f.container, md);
                }
                None => {
                    fstate.misses += 1;
                    if sink.enabled() {
                        sink.record(Event {
                            ts: now,
                            dur: 0,
                            track: Track::Store,
                            kind: EventKind::StoreMiss { container: f.container },
                        });
                    }
                }
            }
        }

        core.machine.context_switch();
        if sink.enabled() {
            sink.record(Event { ts: now, dur: 0, track, kind: EventKind::ContextSwitch });
        }
        let ctx = InvocationCtx { data_cold_fraction: cold };
        // Map machine-local cycles onto the cluster clock: the engine
        // portion starts after the metadata fetch transfer, and the
        // machine clock (busy cycles only) never exceeds cluster time.
        debug_assert!(core.machine.now <= now, "machine clock ahead of cluster clock");
        let ts_offset = (now + md_cycles).saturating_sub(core.machine.now);
        let res =
            run_invocation_obs(&mut core.machine, f, fstate.count, ctx, sink, track, ts_offset);
        fstate.count += 1;

        // Write the (merged) region back to the node store.
        let mut store_events: Vec<EventKind> = Vec::new();
        if ignite_on {
            if let Some(md) =
                core.machine.ignite.as_mut().expect("ignite selected").take_metadata(f.container)
            {
                let bytes = md.byte_len() as u64;
                md_cycles += self.transfer_cycles(md.byte_len());
                let outcome = store.insert(f.container, md);
                if sink.enabled() {
                    for (victim, victim_bytes) in outcome.evicted {
                        store_events.push(EventKind::StoreEvict {
                            container: victim,
                            bytes: victim_bytes as u64,
                        });
                    }
                    if outcome.rejected {
                        store_events.push(EventKind::StoreReject { container: f.container, bytes });
                    }
                }
            }
        }

        let service = res.cycles + md_cycles;
        if sink.enabled() {
            // The writeback (and any evictions it forced) lands at
            // completion time; the span covers fetch + engine + writeback.
            for kind in store_events {
                sink.record(Event { ts: now + service, dur: 0, track: Track::Store, kind });
            }
            sink.record(Event {
                ts: now,
                dur: service,
                track,
                kind: EventKind::Invocation { function: a.function, invocation: fstate.count - 1 },
            });
            sink.record(Event {
                ts: now + service,
                dur: 0,
                track,
                kind: EventKind::Complete { function: a.function, service_cycles: service },
            });
            // Causal latency attribution. Latency decomposes exactly:
            // `latency = queue + md_cycles + res.cycles`, and the engine's
            // integer stall counters tile `res.cycles` into front-end
            // penalty vs steady-state execution. Front-end stalls paid
            // after a store miss are the re-record cost Ignite could not
            // avoid; after a hit (or with Ignite off) they are the
            // residual cold-front-end penalty.
            let frontend = res.front_end_stall_cycles();
            let execution = res.cycles - frontend;
            let (cold_frontend, store_miss) =
                if ignite_on && !store_hit { (0, frontend) } else { (frontend, 0) };
            sink.record(Event {
                ts: now + service,
                dur: 0,
                track,
                kind: EventKind::Attribution {
                    function: a.function,
                    queue_cycles: now - a.cycle,
                    dram_cycles: md_cycles,
                    cold_frontend_cycles: cold_frontend,
                    store_miss_cycles: store_miss,
                    execution_cycles: execution,
                    latency_cycles: (now + service) - a.cycle,
                },
            });
        }
        core.busy = true;
        core.busy_until = now + service;
        core.busy_cycles += service;
        core.invocations += 1;
        fstate.service_cycles += service;
        fstate.queue_cycles += now - a.cycle;
        fstate.cold_sum += cold;
        fstate.result.merge(&res);
        now + service
    }

    /// Cycles to move `bytes` of metadata at the configured bandwidth.
    fn transfer_cycles(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.cfg.dram_bytes_per_cycle.max(1.0)).ceil() as u64
    }
}

/// Nearest-rank percentile of an already-sorted slice (0 for empty data).
///
/// `rank = max(1, ceil(n·p/100))`, clamped to `n` so an out-of-range `p`
/// (> 100) saturates at the maximum instead of indexing past the slice.
fn percentile(sorted: &[u64], p: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * u64::from(p)).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs the same cluster at several store capacities, sharded across
/// `threads` worker threads with per-point panic isolation (one diverging
/// point reports an error; the rest of the sweep completes).
pub fn sweep_capacities(
    cfg: &ClusterConfig,
    capacities: &[usize],
    threads: usize,
) -> Vec<Result<ClusterOutcome, PanicFailure>> {
    fanout::run_indexed(capacities.len(), threads, |i| {
        let mut point = cfg.clone();
        point.store.capacity_bytes = capacities[i];
        ClusterSim::new(point).run()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 1_500_000, ..ArrivalConfig::default() },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn serves_every_arrival() {
        let sim = ClusterSim::new(quick_cfg());
        let trace = {
            let mut a = sim.config().arrival;
            a.functions = 20;
            a.generate()
        };
        let out = sim.run_trace(&trace);
        assert_eq!(out.invocations as usize, trace.arrivals.len());
        assert!(out.makespan > 0);
        let per_core: u64 = out.cores.iter().map(|c| c.invocations).sum();
        assert_eq!(per_core, out.invocations);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = ClusterSim::new(quick_cfg());
        assert_eq!(sim.run(), sim.run());
    }

    #[test]
    fn store_hits_accumulate_under_repeat_traffic() {
        let out = ClusterSim::new(quick_cfg()).run();
        assert!(out.store.hits > 0, "hot functions must find their metadata");
        assert!(out.store.hit_rate() > 0.3, "hit rate {}", out.store.hit_rate());
        assert!(out.peak_footprint_bytes > 0);
        assert!(out.peak_footprint_bytes <= quick_cfg().store.capacity_bytes);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let out = ClusterSim::new(quick_cfg()).run();
        assert!(out.p50_latency <= out.p95_latency);
        assert!(out.p95_latency <= out.p99_latency);
        for f in out.functions.iter().filter(|f| f.invocations > 0) {
            assert!(f.p50_latency <= f.p99_latency, "{}", f.abbr);
            assert!(f.mean_service > 0.0, "{}", f.abbr);
        }
    }

    #[test]
    fn popular_functions_run_data_warmer() {
        let out = ClusterSim::new(quick_cfg()).run();
        let head = &out.functions[0];
        let tail =
            out.functions.iter().rev().find(|f| f.invocations > 1).expect("some tail traffic");
        assert!(head.invocations > tail.invocations, "Zipf head gets more traffic");
        assert!(
            head.mean_cold_fraction < tail.mean_cold_fraction,
            "head cold {} must be below tail cold {}",
            head.mean_cold_fraction,
            tail.mean_cold_fraction
        );
    }

    #[test]
    fn no_store_traffic_without_ignite() {
        let mut cfg = quick_cfg();
        cfg.fe = FrontEndConfig::nl();
        let out = ClusterSim::new(cfg).run();
        assert_eq!(out.store.hits + out.store.misses, 0);
        assert_eq!(out.footprint_bytes, 0);
    }

    #[test]
    fn capacity_sweep_is_monotone_in_hit_rate() {
        let cfg = quick_cfg();
        let caps = [2 * 1024, 8 * 1024, 256 * 1024];
        let outs: Vec<ClusterOutcome> =
            sweep_capacities(&cfg, &caps, 3).into_iter().map(|r| r.expect("no panics")).collect();
        for w in outs.windows(2) {
            assert!(
                w[0].store.hit_rate() <= w[1].store.hit_rate(),
                "hit rate must not drop with capacity: {} vs {}",
                w[0].store.hit_rate(),
                w[1].store.hit_rate()
            );
        }
        assert!(
            outs[0].store.hit_rate() < outs[2].store.hit_rate(),
            "a 2 KiB store must hit less than a 256 KiB one"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let data: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&data, 50), 50);
        assert_eq!(percentile(&data, 95), 95);
        assert_eq!(percentile(&data, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn percentile_out_of_range_saturates_at_max() {
        // Regression: p > 100 used to compute rank > n and index past the
        // slice; it must saturate at the maximum instead.
        assert_eq!(percentile(&[1, 2, 3], 101), 3);
        assert_eq!(percentile(&[5], 400), 5);
    }

    /// Brute-force nearest-rank reference: the smallest value `v` in the
    /// data such that at least `p`% of the data is ≤ `v`.
    fn percentile_reference(sorted: &[u64], p: u32) -> u64 {
        for &v in sorted {
            let at_or_below = sorted.iter().filter(|&&y| y <= v).count() as u64;
            if at_or_below * 100 >= u64::from(p) * sorted.len() as u64 {
                return v;
            }
        }
        *sorted.last().expect("non-empty")
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn percentile_matches_brute_force(
            mut data in proptest::collection::vec(0u64..1_000_000, 1..200),
            p in 0u32..101,
        ) {
            data.sort_unstable();
            proptest::prop_assert_eq!(percentile(&data, p), percentile_reference(&data, p));
        }

        #[test]
        fn percentiles_are_monotone_and_max_bounded(
            mut data in proptest::collection::vec(0u64..1_000_000, 1..200),
        ) {
            data.sort_unstable();
            let max = *data.last().expect("non-empty");
            let curve: Vec<u64> = (0..=100).map(|p| percentile(&data, p)).collect();
            for w in curve.windows(2) {
                proptest::prop_assert!(w[0] <= w[1], "percentile curve must be monotone");
            }
            proptest::prop_assert_eq!(curve[100], max);
            if data.len() < 100 {
                // With fewer than 100 samples the 99th percentile is the max.
                proptest::prop_assert_eq!(percentile(&data, 99), max);
            }
        }
    }

    #[test]
    fn watchdog_abandons_are_not_double_counted() {
        let mut cfg = quick_cfg();
        let ig = cfg.fe.select.ignite.as_mut().expect("default cluster fe selects ignite");
        // Replay that can never catch up: no throttle headroom and a hair
        // trigger watchdog, so stalled replays abandon instead of pending.
        ig.replay.throttle_threshold = 0;
        ig.replay.watchdog_stall_steps = 4;
        ig.replay.prefetch_instructions = false;
        let out = ClusterSim::new(cfg).run();
        let total = out.total_result();
        assert!(total.replay.watchdog_abandons > 0, "config must force abandons");
        assert!(total.replay.entries_dropped > 0, "abandoned entries count as dropped");
        // Regression: entries the watchdog dropped used to also be
        // reported as unfinished, counting the same invocation twice.
        assert_eq!(total.replay_unfinished, 0);
    }

    #[test]
    fn observed_run_matches_plain_run_and_covers_transitions() {
        let sim = ClusterSim::new(quick_cfg());
        let plain = sim.run();
        let mut buf = ignite_obs::TraceBuffer::new(1 << 20);
        let observed = sim.run_obs(&mut buf);
        assert_eq!(plain, observed, "observation must not perturb the simulation");
        assert_eq!(buf.dropped(), 0, "buffer sized for the whole run");
        let names: std::collections::BTreeSet<&str> = buf.iter().map(|e| e.kind.name()).collect();
        for required in
            ["arrival", "dispatch", "context-switch", "invocation", "complete", "store-hit"]
        {
            assert!(names.contains(required), "missing {required} events; have {names:?}");
        }
    }

    #[test]
    fn latency_histogram_accounts_every_invocation() {
        let out = ClusterSim::new(quick_cfg()).run();
        assert_eq!(out.latency_histogram.len(), LATENCY_BUCKETS.len() + 1);
        assert_eq!(out.latency_histogram.iter().sum::<u64>(), out.invocations);
        assert!(out.latency_sum >= out.invocations * out.p50_latency / 2);
    }
}
