//! The discrete-event cluster simulation proper.
//!
//! Two event sources drive the loop: trace arrivals and core completions.
//! Invocations queue FIFO; a free core with the lowest index takes the
//! head of the queue. At equal timestamps, completions are processed
//! before arrivals (a core freed at cycle `t` can serve a request arriving
//! at `t`), and cores free in index order — every tie-break is total, so a
//! fixed (seed, config) reproduces the run bit-exactly in any process.
//!
//! Each core owns a persistent [`Machine`] that is **never flushed**:
//! whatever function ran last left its code in the caches and its branches
//! in the BTB, and the next function finds exactly as much of its own
//! state as the interleaving allowed to survive. Only the abstract
//! back-end data model needs help — the per-(core, function) interleaving
//! distance sets [`InvocationCtx::data_cold_fraction`].

use std::collections::{BTreeMap, VecDeque};

use ignite_chaos::{ChaosPlan, ChaosState, ChaosStats, CircuitBreaker, RetryPolicy};
use ignite_core::codec::Metadata;
use ignite_core::{MetadataStore, StoreConfig, StoreStats};
use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::{Machine, PreparedFunction};
use ignite_engine::metrics::InvocationResult;
use ignite_engine::sim::{run_invocation_obs, InvocationCtx};
use ignite_obs::{
    BufferingSink, CaptureSink, DegradeReason, DropReason, Event, EventKind, EventSink, NullSink,
    Track,
};
use ignite_traffic::{FingerprintAccum, WorkloadFingerprint};
use ignite_uarch::UarchConfig;
use ignite_workloads::arrival::{Arrival, ArrivalConfig, ArrivalSource, Trace, TraceSource};
use ignite_workloads::suite::Suite;

use crate::fanout::{self, PanicFailure};
use crate::keepalive::{KeepAliveKind, KeepAliveRt};
use crate::memo::{self, MemoCache, MemoEntry, MemoRun, MemoStats, RecordingSource};
use crate::policy::{ClusterGauges, ControllerStats, PolicyHook, PolicySample, StaticPolicy};
use crate::sched::{NodeLoad, Scheduler, SchedulerKind};

/// Inclusive upper bounds of the cluster latency histogram, in cycles
/// (doubling grid; latencies above the last bound land in the implicit
/// overflow bucket). [`ClusterOutcome::latency_histogram`] and the
/// metrics exposition in [`crate::prom`] share this grid.
pub const LATENCY_BUCKETS: [u64; 10] = [
    50_000, 100_000, 200_000, 400_000, 800_000, 1_600_000, 3_200_000, 6_400_000, 12_800_000,
    25_600_000,
];

/// Cluster topology: how many nodes there are and which placement and
/// keep-alive policies govern them. The default — one node, FIFO
/// first-fit, no keep-alive — is the pre-multinode simulator exactly,
/// and every committed golden was produced under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    /// Number of nodes. Each node owns [`ClusterConfig::cores`] cores,
    /// its own metadata store, and its own chaos failure domain.
    pub nodes: usize,
    /// Placement policy routing arrivals onto nodes.
    pub scheduler: SchedulerKind,
    /// Post-completion pinning policy for Ignite regions.
    pub keepalive: KeepAliveKind,
}

impl Default for Topology {
    fn default() -> Self {
        Topology { nodes: 1, scheduler: SchedulerKind::Fifo, keepalive: KeepAliveKind::None }
    }
}

impl Topology {
    /// Whether this is the single-node legacy topology. Reports,
    /// metrics, and traces gate every multi-node section on this, so
    /// `--nodes 1 --scheduler fifo` output stays byte-identical to the
    /// committed goldens.
    pub fn is_default(&self) -> bool {
        *self == Topology::default()
    }
}

/// A configuration the simulator refuses to run, with enough structure
/// for callers to match on. [`std::fmt::Display`] names the offending
/// field; the CLI prints it and exits nonzero instead of panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `topology.nodes == 0`.
    ZeroNodes,
    /// `cores == 0` (cores are per node).
    ZeroCores,
    /// A float field that must be finite and positive was not.
    NonPositive {
        /// Field name as spelled in the config.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `arrival.zipf_s` was negative or non-finite.
    BadZipf {
        /// The rejected value.
        value: f64,
    },
    /// `retry.max_attempts == 0` (the first attempt counts).
    ZeroRetryAttempts,
    /// `retry.jitter_ppm` above the PPM scale.
    JitterOverScale {
        /// The rejected value.
        got: u32,
    },
    /// A straggle window that would *speed cores up*.
    StraggleFactorTooSmall {
        /// The rejected milli-factor.
        got: u32,
    },
    /// A chaos stream with an MTBF but no duration.
    ZeroChaosDuration {
        /// Which stream: `crash`, `straggle`, or `store_unavail`.
        stream: &'static str,
    },
    /// A scheduler spec that parses to nothing (typo guard).
    UnknownScheduler {
        /// The rejected spec string.
        spec: String,
    },
    /// A keep-alive spec that parses to nothing (typo guard).
    UnknownKeepAlive {
        /// The rejected spec string.
        spec: String,
    },
    /// `random:N` scheduler with zero choices.
    ZeroSchedulerChoices,
    /// A fixed/hybrid keep-alive with a zero window.
    ZeroKeepAliveWindow,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroNodes => write!(f, "topology.nodes must be at least 1"),
            ConfigError::ZeroCores => write!(f, "cores must be at least 1"),
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be finite and positive, got {value}")
            }
            ConfigError::BadZipf { value } => {
                write!(f, "zipf_s must be finite and non-negative, got {value}")
            }
            ConfigError::ZeroRetryAttempts => write!(f, "retry.max_attempts must be at least 1"),
            ConfigError::JitterOverScale { got } => {
                write!(
                    f,
                    "retry.jitter_ppm must be at most {}, got {got}",
                    ignite_core::fault::PPM_SCALE
                )
            }
            ConfigError::StraggleFactorTooSmall { got } => {
                write!(f, "chaos.straggle_factor_milli must be at least 1000, got {got}")
            }
            ConfigError::ZeroChaosDuration { stream } => {
                write!(f, "chaos.{stream}_mtbf_cycles is set but its duration is 0")
            }
            ConfigError::UnknownScheduler { spec } => {
                write!(
                    f,
                    "unknown scheduler spec {spec:?} (want fifo, least-loaded, random[:N], \
                     or affinity)"
                )
            }
            ConfigError::UnknownKeepAlive { spec } => {
                write!(
                    f,
                    "unknown keepalive spec {spec:?} (want none, fixed:CYCLES, or hybrid[:CYCLES])"
                )
            }
            ConfigError::ZeroSchedulerChoices => {
                write!(f, "scheduler random choices must be at least 1")
            }
            ConfigError::ZeroKeepAliveWindow => {
                write!(f, "keepalive window_cycles must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything that defines one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated cores **per node**.
    pub cores: usize,
    /// Node count and the placement/keep-alive policies over them.
    pub topology: Topology,
    /// Front-end configuration of every core.
    pub fe: FrontEndConfig,
    /// Workload suite scale (1.0 = paper scale).
    pub scale: f64,
    /// Arrival process parameters (ignored when replaying a trace).
    pub arrival: ArrivalConfig,
    /// Node-wide metadata store sizing and policy.
    pub store: StoreConfig,
    /// Interleaving distance (invocations by *other* functions on the same
    /// core) at which a function's data working set counts as fully cold.
    pub distance_saturation: f64,
    /// Metadata transfer bandwidth between the node store and a core's
    /// replay engine; fetch/writeback cycles are charged to service time.
    pub dram_bytes_per_cycle: f64,
    /// Failure injection schedule. `None` (the default) disables the
    /// chaos layer entirely: the simulation takes the exact pre-chaos
    /// code paths and produces byte-identical reports (the
    /// zero-cost-when-off contract, same bar as observability).
    pub chaos: Option<ChaosPlan>,
    /// Recovery policy (deadlines, retry/backoff, circuit breaker).
    /// Only consulted when `chaos` is set.
    pub retry: RetryPolicy,
    /// The raw `--traffic` spec string when a non-default workload drove
    /// the run (`None` for the built-in Poisson/Zipf process). Purely
    /// descriptive: the simulator never parses it, but the report echoes
    /// it and gates the workload-fingerprint section on it, so reports
    /// from shaped workloads are self-describing and `scope diff` can
    /// refuse cross-workload comparisons.
    pub traffic: Option<String>,
    /// The raw `--controller` spec string when an online policy
    /// controller drove the run (`None` for static policy). Purely
    /// descriptive, like [`ClusterConfig::traffic`]: the simulator
    /// never parses it, but the report echoes it and gates the
    /// `controller` section on it.
    pub controller: Option<String>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            cores: 4,
            topology: Topology::default(),
            fe: FrontEndConfig::ignite(),
            scale: 0.02,
            arrival: ArrivalConfig::default(),
            store: StoreConfig::default(),
            distance_saturation: 8.0,
            dram_bytes_per_cycle: 8.0,
            chaos: None,
            retry: RetryPolicy::default(),
            traffic: None,
            controller: None,
        }
    }
}

impl ClusterConfig {
    /// Rejects configurations the simulator cannot run meaningfully,
    /// with a typed [`ConfigError`] naming the offending field. The CLI
    /// calls this before constructing a simulator and exits nonzero on
    /// `Err`; library callers that build configs programmatically get
    /// the same typed check instead of a mid-run panic or a silent
    /// nonsense run.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.topology.nodes == 0 {
            return Err(ConfigError::ZeroNodes);
        }
        if self.cores == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if let SchedulerKind::Random { choices: 0 } = self.topology.scheduler {
            return Err(ConfigError::ZeroSchedulerChoices);
        }
        match self.topology.keepalive {
            KeepAliveKind::Fixed { window_cycles: 0 }
            | KeepAliveKind::Hybrid { default_window_cycles: 0 } => {
                return Err(ConfigError::ZeroKeepAliveWindow);
            }
            _ => {}
        }
        for (field, value) in [
            ("scale", self.scale),
            ("rate_per_mcycle", self.arrival.rate_per_mcycle),
            ("distance_saturation", self.distance_saturation),
            ("dram_bytes_per_cycle", self.dram_bytes_per_cycle),
        ] {
            if !value.is_finite() || value <= 0.0 {
                return Err(ConfigError::NonPositive { field, value });
            }
        }
        if !self.arrival.zipf_s.is_finite() || self.arrival.zipf_s < 0.0 {
            return Err(ConfigError::BadZipf { value: self.arrival.zipf_s });
        }
        if self.retry.max_attempts == 0 {
            return Err(ConfigError::ZeroRetryAttempts);
        }
        if self.retry.jitter_ppm > ignite_core::fault::PPM_SCALE {
            return Err(ConfigError::JitterOverScale { got: self.retry.jitter_ppm });
        }
        if let Some(plan) = &self.chaos {
            if plan.straggle_mtbf_cycles > 0 && plan.straggle_factor_milli < 1000 {
                return Err(ConfigError::StraggleFactorTooSmall {
                    got: plan.straggle_factor_milli,
                });
            }
            for (stream, mtbf, duration) in [
                ("crash", plan.crash_mtbf_cycles, plan.crash_repair_cycles),
                ("straggle", plan.straggle_mtbf_cycles, plan.straggle_duration_cycles),
                ("store_unavail", plan.store_unavail_mtbf_cycles, {
                    plan.store_unavail_duration_cycles
                }),
            ] {
                if mtbf > 0 && duration == 0 {
                    return Err(ConfigError::ZeroChaosDuration { stream });
                }
            }
        }
        Ok(())
    }
}

/// How one core was used over the run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreUsage {
    /// Invocations this core served.
    pub invocations: u64,
    /// Cycles spent serving (busy) out of the makespan.
    pub busy_cycles: u64,
    /// `busy_cycles / makespan`, 0.0 for an empty run.
    pub utilization: f64,
}

/// Aggregated measurements for one suite function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSummary {
    /// Table-1 abbreviation.
    pub abbr: String,
    /// Invocations completed.
    pub invocations: u64,
    /// Latency percentiles (arrival → completion), in cycles.
    pub p50_latency: u64,
    /// 95th percentile latency.
    pub p95_latency: u64,
    /// 99th percentile latency.
    pub p99_latency: u64,
    /// Mean service time (dispatch → completion), in cycles.
    pub mean_service: f64,
    /// Mean queueing delay (arrival → dispatch), in cycles.
    pub mean_queue: f64,
    /// Mean data-cold fraction at dispatch (0 = always back-to-back warm).
    pub mean_cold_fraction: f64,
    /// Metadata store hits for this function's container.
    pub metadata_hits: u64,
    /// Metadata store misses.
    pub metadata_misses: u64,
    /// Retries scheduled for this function (0 without chaos).
    pub retries: u64,
    /// Completions that ran degraded — cold instead of replayed
    /// (0 without chaos).
    pub degraded: u64,
    /// Invocations dropped with reason (0 without chaos).
    pub dropped: u64,
    /// Completions that found no metadata (store miss, degraded, or
    /// Ignite off) — the dslab-faas "cold start" bucket.
    pub cold_starts: u64,
    /// Completions that hit the store but dispatched onto a core whose
    /// data working set had partially cooled (`cold_fraction > 0`).
    pub lukewarm_starts: u64,
    /// Completions that hit the store back-to-back warm
    /// (`cold_fraction == 0`).
    pub warm_starts: u64,
    /// Fastest observed service time — the always-warm proxy the
    /// slowdown metric divides by (0 when never invoked).
    pub min_service: u64,
    /// Keep-alive cycles spent pinning this function's region without a
    /// reuse (0 under [`KeepAliveKind::None`]).
    pub wasted_keepalive_cycles: u64,
    /// Per-invocation engine measurements, summed over all invocations.
    pub result: InvocationResult,
}

impl FunctionSummary {
    /// Store hit rate for this function, 0.0 when it never dispatched.
    pub fn metadata_hit_rate(&self) -> f64 {
        let total = self.metadata_hits + self.metadata_misses;
        if total == 0 {
            0.0
        } else {
            self.metadata_hits as f64 / total as f64
        }
    }

    /// Mean service time over the always-warm proxy (`min_service`):
    /// 1.0 means every run was as fast as the best observed, higher
    /// means cold starts are costing real time. 0.0 when never invoked.
    pub fn slowdown(&self) -> f64 {
        if self.min_service == 0 {
            0.0
        } else {
            self.mean_service / self.min_service as f64
        }
    }
}

/// How one node was used over the run (multi-node reports serialize
/// one section per entry; a single-node run still carries its one
/// entry internally).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct NodeUsage {
    /// Jobs the scheduler routed to this node.
    pub submitted: u64,
    /// Jobs that completed here.
    pub completed: u64,
    /// Jobs that terminally dropped here (0 without chaos). The
    /// per-node conservation law `submitted == completed + dropped`
    /// holds because retries re-enter their original node's queue.
    pub dropped: u64,
    /// Deepest dispatch queue observed on this node.
    pub queue_peak: u64,
    /// Busy cycles summed over the node's cores.
    pub busy_cycles: u64,
    /// Mean utilization of the node's cores over the makespan.
    pub utilization: f64,
    /// This node's metadata store counters.
    pub store: StoreStats,
    /// Store bytes resident on this node at the end of the run.
    pub footprint_bytes: usize,
    /// High-water mark of this node's store footprint.
    pub peak_footprint_bytes: usize,
    /// Keep-alive cycles this node spent pinning regions nobody reused.
    pub wasted_keepalive_cycles: u64,
}

/// The outcome of one cluster run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutcome {
    /// Invocations completed (equals the trace length).
    pub invocations: u64,
    /// Cycle of the last completion (0 for an empty trace).
    pub makespan: u64,
    /// Per-core usage, in global core order (node-major: node 0's
    /// cores, then node 1's, ...).
    pub cores: Vec<CoreUsage>,
    /// Per-node usage, in node order (one entry for a 1-node run).
    pub nodes: Vec<NodeUsage>,
    /// Per-function summaries, in suite order.
    pub functions: Vec<FunctionSummary>,
    /// Metadata store counters, summed over every node's store.
    pub store: StoreStats,
    /// Store bytes resident at the end of the run (sum over nodes).
    pub footprint_bytes: usize,
    /// Store high-water mark (sum of per-node peaks; nodes peak at
    /// different times, so this bounds — and for one node equals — the
    /// true cluster-wide peak).
    pub peak_footprint_bytes: usize,
    /// Cluster-wide latency percentiles over all invocations, in cycles.
    pub p50_latency: u64,
    /// 95th percentile.
    pub p95_latency: u64,
    /// 99th percentile.
    pub p99_latency: u64,
    /// Mean latency over all invocations, in cycles.
    pub mean_latency: f64,
    /// Latency counts per [`LATENCY_BUCKETS`] bound (non-cumulative),
    /// plus one trailing overflow bucket.
    pub latency_histogram: Vec<u64>,
    /// Sum of all invocation latencies, in cycles.
    pub latency_sum: u64,
    /// Chaos ledger (`Some` iff the config enabled chaos). Its
    /// conservation law — `submitted == completed + dropped` — is
    /// enforced by the `ignite-cluster-v2` report validator.
    pub chaos: Option<ChaosStats>,
    /// Statistical fingerprint of the arrival stream the run consumed.
    /// Always computed (it is O(1) per arrival); serialized into the
    /// report only when [`ClusterConfig::traffic`] is set.
    pub workload: WorkloadFingerprint,
    /// Memoization counters (`Some` iff the run went through
    /// [`ClusterSim::run_source_memo_obs`]). Absent for plain runs, so
    /// every non-memoized report stays byte-identical to the committed
    /// goldens.
    pub memo: Option<MemoStats>,
    /// Controller decision audit trail (`Some` iff the run went through
    /// [`ClusterSim::run_source_policy_obs`] with an enabled policy).
    /// Absent for static-policy runs, so every controller-off report
    /// stays byte-identical to the committed goldens.
    pub controller: Option<ControllerStats>,
}

impl ClusterOutcome {
    /// Engine measurements summed over every function (the aggregate
    /// `ReplayStats` live in `.replay` / `.replay_unfinished`).
    pub fn total_result(&self) -> InvocationResult {
        let mut total = InvocationResult::default();
        for f in &self.functions {
            total.merge(&f.result);
        }
        total
    }

    /// Mean core utilization.
    pub fn mean_utilization(&self) -> f64 {
        if self.cores.is_empty() {
            0.0
        } else {
            self.cores.iter().map(|c| c.utilization).sum::<f64>() / self.cores.len() as f64
        }
    }

    /// Total keep-alive cycles spent pinning regions nobody reused
    /// (0 under [`KeepAliveKind::None`]).
    pub fn wasted_keepalive_cycles(&self) -> u64 {
        self.nodes.iter().map(|n| n.wasted_keepalive_cycles).sum()
    }
}

struct Core {
    machine: Machine,
    busy_until: u64,
    busy: bool,
    /// Dispatches on this core so far (the per-core sequence number).
    seq: u64,
    /// Function index → `seq` at its last dispatch here.
    last_seq: BTreeMap<usize, u64>,
    busy_cycles: u64,
    invocations: u64,
    /// Incremental digest of every machine mutation since the machine
    /// was fresh (see [`memo::dispatch_digest`]); reseeded on crash.
    /// Only advanced under memoization.
    history: u64,
    /// Whether a memo hit skipped the engine on this machine, leaving
    /// its concrete state behind its digest. A subsequent cache miss
    /// here cannot run the engine — it aborts the speculative pass.
    /// Cleared by a crash (the fresh machine matches a fresh digest).
    stale: bool,
}

struct FunctionState {
    abbr: String,
    latencies: Vec<u64>,
    service_cycles: u64,
    queue_cycles: u64,
    cold_sum: f64,
    hits: u64,
    misses: u64,
    retries: u64,
    degraded: u64,
    dropped: u64,
    cold_starts: u64,
    lukewarm_starts: u64,
    warm_starts: u64,
    min_service: u64,
    /// Global invocation counter (seeds the trace walker, so control flow
    /// drifts across invocations like the per-function protocol's does).
    count: u64,
    result: InvocationResult,
}

/// One invocation's scheduler state, carried across attempts. Without
/// chaos every job completes on its first attempt and the accumulators
/// reduce to the pre-chaos arithmetic exactly (`queue_accum ==
/// dispatch - arrival`, `lost_cycles == 0`).
struct Job {
    arrival: Arrival,
    /// Node the scheduler placed this job on. Retries stay here, so
    /// each node's ledger closes under its own conservation law.
    node: usize,
    /// Global submission index (keys the retry queue and the pure-hash
    /// chaos draws).
    id: u64,
    /// Attempt about to run, 1-based.
    attempt: u32,
    /// When this job last joined the dispatch queue (arrival cycle, or
    /// retry-ready cycle).
    enqueued_at: u64,
    /// Cycles spent queued, summed over attempts.
    queue_accum: u64,
    /// Cycles lost to failed attempts and backoff waits (the
    /// `retry_cycles` attribution component).
    lost_cycles: u64,
}

/// Chaos runtime: the realized schedule, recovery policy state, the
/// backoff-pending retry queue, and the ledger.
struct ChaosRt {
    state: ChaosState,
    retry: RetryPolicy,
    /// Per-function circuit breakers, suite order.
    breakers: Vec<CircuitBreaker>,
    /// Jobs waiting out a backoff: `(ready_cycle, id) -> job`. The id
    /// tie-break keeps draining order total.
    ready: BTreeMap<(u64, u64), Job>,
    stats: ChaosStats,
}

impl ChaosRt {
    /// Routes a failed attempt: bounded retry with deterministic
    /// backoff, or a reasoned drop (retries exhausted, or the backoff
    /// would land past the deadline). `elapsed` is how long the failed
    /// attempt held resources (0 for a dispatch drop).
    fn fail_attempt<S: EventSink>(
        &mut self,
        mut job: Job,
        fail_at: u64,
        elapsed: u64,
        fstate: &mut FunctionState,
        node_dropped: &mut [u64],
        sink: &mut S,
    ) {
        self.stats.attempts_failed += 1;
        if job.attempt >= self.retry.max_attempts {
            self.drop_job(&job, fail_at, DropReason::RetriesExhausted, fstate, node_dropped, sink);
            return;
        }
        let seed = self.state.plan().seed;
        let backoff = self.retry.backoff_for(seed, job.id, job.attempt);
        let ready = fail_at.saturating_add(backoff);
        let deadline = self.retry.deadline_cycles;
        if deadline > 0 && ready.saturating_sub(job.arrival.cycle) > deadline {
            self.drop_job(&job, fail_at, DropReason::Deadline, fstate, node_dropped, sink);
            return;
        }
        self.stats.backoff_cycles += backoff;
        fstate.retries += 1;
        if sink.enabled() {
            sink.record(Event {
                ts: fail_at,
                dur: 0,
                track: Track::Chaos,
                kind: EventKind::ChaosRetry {
                    function: job.arrival.function,
                    attempt: job.attempt,
                    backoff_cycles: backoff,
                },
            });
        }
        job.lost_cycles += elapsed + backoff;
        job.attempt += 1;
        job.enqueued_at = ready;
        self.ready.insert((ready, job.id), job);
    }

    /// Terminal failure exit: the job leaves the system with a reason
    /// (the only alternative to completion under the conservation law).
    fn drop_job<S: EventSink>(
        &mut self,
        job: &Job,
        at: u64,
        reason: DropReason,
        fstate: &mut FunctionState,
        node_dropped: &mut [u64],
        sink: &mut S,
    ) {
        match reason {
            DropReason::Deadline => self.stats.dropped_deadline += 1,
            DropReason::RetriesExhausted => self.stats.dropped_retries_exhausted += 1,
        }
        fstate.dropped += 1;
        node_dropped[job.node] += 1;
        if sink.enabled() {
            sink.record(Event {
                ts: at,
                dur: 0,
                track: Track::Chaos,
                kind: EventKind::ChaosDrop { function: job.arrival.function, reason },
            });
        }
    }
}

/// What became of one dispatch attempt.
enum Served {
    /// Ran to completion at the given cycle.
    Done { completion: u64 },
    /// A core crash killed the attempt at the given cycle; the core is
    /// occupied until its restart.
    Killed { at: u64 },
}

/// The simulator: a prepared fleet ready to serve traces.
pub struct ClusterSim {
    cfg: ClusterConfig,
    uarch: UarchConfig,
    functions: Vec<PreparedFunction>,
    abbrs: Vec<String>,
}

impl ClusterSim {
    /// Prepares the paper suite at the configured scale.
    ///
    /// # Panics
    ///
    /// Panics if the config has zero cores or a non-positive scale.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.cores > 0, "need at least one core");
        let suite = Suite::paper_suite_scaled(cfg.scale);
        let functions: Vec<PreparedFunction> = suite
            .functions()
            .iter()
            .enumerate()
            .map(|(i, f)| PreparedFunction::from_suite(f, i as u64))
            .collect();
        let abbrs = suite.functions().iter().map(|f| f.profile.abbr.clone()).collect();
        ClusterSim { cfg, uarch: UarchConfig::ice_lake_like(), functions, abbrs }
    }

    /// The configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Generates the configured arrival process and serves it.
    pub fn run(&self) -> ClusterOutcome {
        self.run_obs(&mut NullSink)
    }

    /// [`ClusterSim::run`] with event observation.
    pub fn run_obs<S: EventSink>(&self, sink: &mut S) -> ClusterOutcome {
        let mut arrival = self.cfg.arrival;
        arrival.functions = self.functions.len();
        self.run_trace_obs(&arrival.generate(), sink)
    }

    /// Serves an explicit (possibly replayed) trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace references more functions than the suite has.
    pub fn run_trace(&self, trace: &Trace) -> ClusterOutcome {
        self.run_trace_obs(trace, &mut NullSink)
    }

    /// [`ClusterSim::run_trace`] with event observation: every DES
    /// transition (arrival, dispatch, context switch, invocation span,
    /// completion), every store access outcome and every record/replay
    /// episode is reported to `sink`. With a sink whose
    /// [`EventSink::enabled`] is `false` (the [`NullSink`]) this is
    /// bit-identical to [`ClusterSim::run_trace`] — every emission site
    /// is guarded, so the disabled path adds no work and no state.
    pub fn run_trace_obs<S: EventSink>(&self, trace: &Trace, sink: &mut S) -> ClusterOutcome {
        assert!(
            trace.functions <= self.functions.len(),
            "trace declares {} functions, suite has {}",
            trace.functions,
            self.functions.len()
        );
        self.run_source_obs(&mut TraceSource::new(trace), sink)
    }

    /// Serves a streaming [`ArrivalSource`] — the lazy counterpart of
    /// [`ClusterSim::run_trace`]: arrivals are pulled one at a time (one
    /// look-ahead arrival is held for event scheduling), so a
    /// million-invocation workload runs in O(1) arrival state instead of
    /// materializing the whole [`Trace`]. Replaying a materialized copy
    /// of the same stream produces the identical outcome.
    ///
    /// # Panics
    ///
    /// Panics if the source declares more functions than the suite has.
    pub fn run_source<A: ArrivalSource + ?Sized>(&self, source: &mut A) -> ClusterOutcome {
        self.run_source_obs(source, &mut NullSink)
    }

    /// [`ClusterSim::run_source`] with event observation.
    ///
    /// # Panics
    ///
    /// Panics if the source declares more functions than the suite has.
    pub fn run_source_obs<A: ArrivalSource + ?Sized, S: EventSink>(
        &self,
        source: &mut A,
        sink: &mut S,
    ) -> ClusterOutcome {
        self.run_source_impl(source, sink, &mut StaticPolicy, None)
    }

    /// [`ClusterSim::run_source_obs`] with an active policy: the
    /// simulator's four actuation points (replay admission, store
    /// writeback admission, schedulable-core mask, keep-alive window)
    /// consult `policy`, the policy observes every completed
    /// invocation's attribution sample, and epoch decisions land on the
    /// `Track::Controller` trace track. With [`StaticPolicy`] (or any
    /// policy whose [`PolicyHook::enabled`] is `false`) this is
    /// bit-identical to [`ClusterSim::run_source_obs`] — every
    /// actuation site is guarded, the same zero-cost contract the event
    /// sinks keep.
    ///
    /// # Panics
    ///
    /// Panics if the source declares more functions than the suite has.
    pub fn run_source_policy_obs<A: ArrivalSource + ?Sized, S: EventSink, P: PolicyHook>(
        &self,
        source: &mut A,
        sink: &mut S,
        policy: &mut P,
    ) -> ClusterOutcome {
        self.run_source_impl(source, sink, policy, None)
    }

    /// [`ClusterSim::run`] with invocation-result memoization against
    /// `cache`. See [`ClusterSim::run_source_memo_obs`].
    pub fn run_memo(&self, cache: &MemoCache) -> ClusterOutcome {
        self.run_memo_obs(&mut NullSink, cache)
    }

    /// [`ClusterSim::run_obs`] with invocation-result memoization.
    pub fn run_memo_obs<S: EventSink>(&self, sink: &mut S, cache: &MemoCache) -> ClusterOutcome {
        let mut arrival = self.cfg.arrival;
        arrival.functions = self.functions.len();
        let trace = arrival.generate();
        self.run_source_memo_obs(&mut TraceSource::new(&trace), sink, cache)
    }

    /// [`ClusterSim::run_source_obs`] with invocation-result memoization:
    /// engine invocations whose exact inputs were already simulated (in
    /// this run or any earlier run sharing `cache`) replay their cached
    /// [`InvocationResult`] instead of re-running the cycle-accurate
    /// model. The outcome is **bit-identical** to the non-memoized run —
    /// the memo key pins every engine input (see [`crate::memo`]) — with
    /// [`ClusterOutcome::memo`] set to the run's counters.
    ///
    /// If a warmed cache replays part of a schedule and then diverges (a
    /// miss on a core whose machine was skipped over), the speculative
    /// pass aborts and the run repeats plainly with lookups disabled;
    /// arrivals are recorded/replayed and events buffered so the abort
    /// is invisible to `source` and `sink`.
    ///
    /// # Panics
    ///
    /// Panics if the source declares more functions than the suite has.
    pub fn run_source_memo_obs<A: ArrivalSource + ?Sized, S: EventSink>(
        &self,
        source: &mut A,
        sink: &mut S,
        cache: &MemoCache,
    ) -> ClusterOutcome {
        let config_fp = memo::config_fingerprint(
            &self.uarch,
            &self.cfg.fe,
            self.cfg.scale,
            self.cfg.distance_saturation,
        );
        let mut recording = RecordingSource::new(source);
        let mut run = MemoRun {
            cache,
            stats: MemoStats::default(),
            lookups: true,
            aborted: false,
            config_fp,
        };
        let mut buffered = BufferingSink::new(sink);
        let mut out =
            self.run_source_impl(&mut recording, &mut buffered, &mut StaticPolicy, Some(&mut run));
        if !run.aborted {
            buffered.commit();
            out.memo = Some(run.stats);
            return out;
        }
        buffered.abort();
        // Stale-machine divergence: replay the identical arrival stream
        // with lookups off (stores still warm the cache for next time).
        let mut replay = recording.into_replay();
        let mut rerun = MemoRun {
            cache,
            stats: MemoStats { stale_reruns: 1, ..MemoStats::default() },
            lookups: false,
            aborted: false,
            config_fp,
        };
        let mut out = self.run_source_impl(&mut replay, sink, &mut StaticPolicy, Some(&mut rerun));
        out.memo = Some(rerun.stats);
        out
    }

    fn run_source_impl<A: ArrivalSource + ?Sized, S: EventSink, P: PolicyHook>(
        &self,
        source: &mut A,
        sink: &mut S,
        policy: &mut P,
        mut memo: Option<&mut MemoRun<'_>>,
    ) -> ClusterOutcome {
        assert!(
            source.functions() <= self.functions.len(),
            "source declares {} functions, suite has {}",
            source.functions(),
            self.functions.len()
        );
        let ignite_on = self.cfg.fe.select.ignite.is_some();
        let nnodes = self.cfg.topology.nodes;
        let cores_per_node = self.cfg.cores;
        // Each node owns a store and a dispatch queue; cores live in one
        // flat vector in global order (node-major), so completion and
        // freeing sweeps keep the exact single-node iteration order.
        let mut stores: Vec<MetadataStore> =
            (0..nnodes).map(|_| MetadataStore::new(self.cfg.store)).collect();
        let mut queues: Vec<VecDeque<Job>> = (0..nnodes).map(|_| VecDeque::new()).collect();
        let mut node_submitted = vec![0u64; nnodes];
        let mut node_completed = vec![0u64; nnodes];
        let mut node_dropped = vec![0u64; nnodes];
        let mut node_queue_peak = vec![0u64; nnodes];
        let mut sched = Scheduler::new(self.cfg.topology.scheduler, self.cfg.arrival.seed);
        let mut keepalive = KeepAliveRt::new(self.cfg.topology.keepalive, nnodes, self.abbrs.len());
        let mut cores: Vec<Core> = (0..nnodes * cores_per_node)
            .map(|_| Core {
                machine: Machine::new(&self.uarch, &self.cfg.fe),
                busy_until: 0,
                busy: false,
                seq: 0,
                last_seq: BTreeMap::new(),
                busy_cycles: 0,
                invocations: 0,
                history: memo::HISTORY_SEED,
                stale: false,
            })
            .collect();
        let mut fns: Vec<FunctionState> = self
            .abbrs
            .iter()
            .map(|abbr| FunctionState {
                abbr: abbr.clone(),
                latencies: Vec::new(),
                service_cycles: 0,
                queue_cycles: 0,
                cold_sum: 0.0,
                hits: 0,
                misses: 0,
                retries: 0,
                degraded: 0,
                dropped: 0,
                cold_starts: 0,
                lukewarm_starts: 0,
                warm_starts: 0,
                min_service: u64::MAX,
                count: 0,
                result: InvocationResult::default(),
            })
            .collect();
        let mut chaos: Option<ChaosRt> = self.cfg.chaos.map(|plan| ChaosRt {
            state: ChaosState::for_cluster(plan, nnodes, cores_per_node),
            retry: self.cfg.retry,
            breakers: (0..self.abbrs.len())
                .map(|_| {
                    CircuitBreaker::new(
                        self.cfg.retry.breaker_threshold,
                        self.cfg.retry.breaker_cooldown_cycles,
                    )
                })
                .collect(),
            ready: BTreeMap::new(),
            stats: ChaosStats::default(),
        });

        // One-arrival look-ahead: the head of the stream, needed to pick
        // the next event time. Refilled from the source on consumption —
        // the only arrival state held, whatever the stream length.
        let mut pending: Option<Arrival> = source.next_arrival();
        let mut fingerprint = FingerprintAccum::new(source.functions());
        let mut submitted = 0u64;
        let mut now = 0u64;
        let mut makespan = 0u64;
        let mut all_latencies: Vec<u64> = Vec::new();
        let mut latency_sum = 0u64;

        'run: loop {
            // Epoch evaluation: when the clock has crossed the policy's
            // next epoch boundary, snapshot the cluster gauges, let the
            // policy actuate, and mirror each decision onto the
            // controller trace track. Gated twice (enabled, then
            // epoch_due) so the static path never assembles gauges.
            if policy.enabled() && policy.epoch_due(now) {
                let gauges = ClusterGauges {
                    busy_cores: cores.iter().filter(|c| c.busy).count(),
                    total_cores: cores.len(),
                    cores_per_node,
                    queued: queues.iter().map(|q| q.len()).sum(),
                    footprint_bytes: stores.iter().map(|s| s.footprint_bytes() as u64).sum(),
                    capacity_bytes: self.cfg.store.capacity_bytes as u64 * nnodes as u64,
                    insertions: stores.iter().map(|s| s.stats().insertions).sum(),
                    evictions: stores.iter().map(|s| s.stats().evictions).sum(),
                    keepalive_enabled: keepalive.enabled(),
                };
                for d in policy.on_epoch(now, &gauges) {
                    if sink.enabled() {
                        sink.record(Event {
                            ts: d.at,
                            dur: 0,
                            track: Track::Controller,
                            kind: EventKind::Decision {
                                rule: d.rule,
                                epoch: d.epoch,
                                function: d.function,
                                value: d.value,
                                observed: d.observed,
                                threshold: d.threshold,
                            },
                        });
                    }
                }
            }
            // Dispatch each node's FIFO queue onto its free cores, nodes
            // in index order, lowest core index first (under chaos, a
            // core inside a crash window cannot accept work even when
            // idle). With one node this is the single-queue loop
            // verbatim. An enabled policy may cap the schedulable cores
            // per node; high-index cores past the cap finish in-flight
            // work but accept no new dispatches.
            for ni in 0..nnodes {
                let base = ni * cores_per_node;
                let active = if policy.enabled() {
                    policy.active_cores(cores_per_node).clamp(1, cores_per_node)
                } else {
                    cores_per_node
                };
                while !queues[ni].is_empty() {
                    let free = (0..active).map(|i| base + i).find(|&g| {
                        !cores[g].busy
                            && chaos.as_mut().is_none_or(|rt| !rt.state.core_down(g, now))
                    });
                    let Some(gci) = free else { break };
                    let mut job = queues[ni].pop_front().expect("non-empty queue");
                    job.queue_accum += now - job.enqueued_at;
                    let fi = job.arrival.function as usize;
                    if let Some(rt) = chaos.as_mut() {
                        let deadline = rt.retry.deadline_cycles;
                        if deadline > 0 && now.saturating_sub(job.arrival.cycle) > deadline {
                            rt.drop_job(
                                &job,
                                now,
                                DropReason::Deadline,
                                &mut fns[fi],
                                &mut node_dropped,
                                sink,
                            );
                            continue;
                        }
                        if rt.state.dispatch_dropped(job.id, job.attempt) {
                            rt.stats.dispatch_drops += 1;
                            rt.fail_attempt(job, now, 0, &mut fns[fi], &mut node_dropped, sink);
                            continue;
                        }
                    }
                    let served = self.dispatch(
                        &job,
                        now,
                        &mut cores[gci],
                        gci,
                        ni,
                        nnodes,
                        &mut fns[fi],
                        &mut stores[ni],
                        ignite_on,
                        &mut chaos,
                        &mut keepalive,
                        &mut *policy,
                        memo.as_deref_mut(),
                        sink,
                    );
                    // A memo miss on a stale core: the speculative pass
                    // is unsalvageable; unwind to the plain re-run.
                    if memo.as_deref().is_some_and(|m| m.aborted) {
                        break 'run;
                    }
                    match served {
                        Served::Done { completion } => {
                            makespan = makespan.max(completion);
                            let latency = completion - job.arrival.cycle;
                            all_latencies.push(latency);
                            latency_sum += latency;
                            fns[fi].latencies.push(latency);
                            node_completed[ni] += 1;
                            if let Some(rt) = chaos.as_mut() {
                                rt.stats.completed += 1;
                                if job.attempt > 1 {
                                    rt.stats.retried_to_success += 1;
                                }
                            }
                        }
                        Served::Killed { at } => {
                            let rt = chaos.as_mut().expect("attempts are only killed under chaos");
                            rt.stats.crash_kills += 1;
                            let elapsed = at - now;
                            rt.fail_attempt(
                                job,
                                at,
                                elapsed,
                                &mut fns[fi],
                                &mut node_dropped,
                                sink,
                            );
                        }
                    }
                }
            }

            // Next event: the earliest completion (or crashed-core
            // restart), backoff expiry, arrival — or, when a node has
            // queued work waiting only on repairs, the earliest restart
            // among that node's cores.
            let next_completion = cores.iter().filter(|c| c.busy).map(|c| c.busy_until).min();
            let next_retry = chaos.as_ref().and_then(|rt| rt.ready.keys().next().map(|&(t, _)| t));
            let next_arrival_cycle = pending.map(|a| a.cycle);
            let next_restart = chaos.as_mut().and_then(|rt| {
                (0..nnodes)
                    .filter(|&ni| !queues[ni].is_empty())
                    .filter_map(|ni| {
                        let span = ni * cores_per_node..(ni + 1) * cores_per_node;
                        rt.state.earliest_restart_among(span, now)
                    })
                    .min()
            });
            now = match [next_completion, next_retry, next_arrival_cycle, next_restart]
                .into_iter()
                .flatten()
                .min()
            {
                None => break,
                Some(t) => t,
            };
            // Completions first (a core freed at `now` can serve an arrival
            // at `now`), in global core order.
            for c in &mut cores {
                if c.busy && c.busy_until <= now {
                    c.busy = false;
                }
            }
            // Then retries whose backoff expired, in (ready, id) order —
            // ahead of arrivals at the same cycle, since they have been
            // waiting longer end-to-end. A retry re-enters the queue of
            // the node that first accepted it.
            if let Some(rt) = chaos.as_mut() {
                while rt.ready.first_key_value().is_some_and(|(&(t, _), _)| t <= now) {
                    let (_, job) = rt.ready.pop_first().expect("non-empty retry queue");
                    let ni = job.node;
                    queues[ni].push_back(job);
                    node_queue_peak[ni] = node_queue_peak[ni].max(queues[ni].len() as u64);
                }
            }
            // Then arrivals at `now`, in stream order, each routed by the
            // scheduler (a 1-node cluster routes to node 0 untouched).
            while pending.is_some_and(|a| a.cycle <= now) {
                let a = pending.expect("checked above");
                pending = source.next_arrival();
                fingerprint.observe(a);
                if sink.enabled() {
                    sink.record(Event {
                        ts: a.cycle,
                        dur: 0,
                        track: Track::Cluster,
                        kind: EventKind::Arrival { function: a.function },
                    });
                }
                if let Some(rt) = chaos.as_mut() {
                    rt.stats.submitted += 1;
                }
                let ni = if nnodes == 1 {
                    0
                } else {
                    let container = self.functions[a.function as usize].container;
                    let loads: Vec<NodeLoad> = (0..nnodes)
                        .map(|n| {
                            let span = &cores[n * cores_per_node..(n + 1) * cores_per_node];
                            let busy = span.iter().filter(|c| c.busy).count();
                            NodeLoad {
                                busy_cores: busy,
                                queued: queues[n].len(),
                                free_cores: cores_per_node - busy,
                                holds_metadata: ignite_on && stores[n].contains(container),
                            }
                        })
                        .collect();
                    let picked = sched.pick(&loads);
                    if sink.enabled() {
                        sink.record(Event {
                            ts: a.cycle,
                            dur: 0,
                            track: Track::Cluster,
                            kind: EventKind::Routed { function: a.function, node: picked as u32 },
                        });
                    }
                    picked
                };
                node_submitted[ni] += 1;
                queues[ni].push_back(Job {
                    arrival: a,
                    node: ni,
                    id: submitted,
                    attempt: 1,
                    enqueued_at: a.cycle,
                    queue_accum: 0,
                    lost_cycles: 0,
                });
                node_queue_peak[ni] = node_queue_peak[ni].max(queues[ni].len() as u64);
                submitted += 1;
            }
        }
        keepalive.finish(makespan);
        let controller = if policy.enabled() { policy.finish(makespan) } else { None };

        // Summaries.
        all_latencies.sort_unstable();
        let functions = fns
            .into_iter()
            .enumerate()
            .map(|(fi, mut f)| {
                f.latencies.sort_unstable();
                let n = f.latencies.len() as f64;
                FunctionSummary {
                    abbr: f.abbr,
                    invocations: f.latencies.len() as u64,
                    p50_latency: percentile(&f.latencies, 50),
                    p95_latency: percentile(&f.latencies, 95),
                    p99_latency: percentile(&f.latencies, 99),
                    mean_service: if n == 0.0 { 0.0 } else { f.service_cycles as f64 / n },
                    mean_queue: if n == 0.0 { 0.0 } else { f.queue_cycles as f64 / n },
                    mean_cold_fraction: if n == 0.0 { 0.0 } else { f.cold_sum / n },
                    metadata_hits: f.hits,
                    metadata_misses: f.misses,
                    retries: f.retries,
                    degraded: f.degraded,
                    dropped: f.dropped,
                    cold_starts: f.cold_starts,
                    lukewarm_starts: f.lukewarm_starts,
                    warm_starts: f.warm_starts,
                    min_service: if f.min_service == u64::MAX { 0 } else { f.min_service },
                    wasted_keepalive_cycles: keepalive.wasted_for_function(fi),
                    result: f.result,
                }
            })
            .collect();
        let cores: Vec<CoreUsage> = cores
            .into_iter()
            .map(|c| CoreUsage {
                invocations: c.invocations,
                busy_cycles: c.busy_cycles,
                utilization: if makespan == 0 {
                    0.0
                } else {
                    c.busy_cycles as f64 / makespan as f64
                },
            })
            .collect();
        let n = all_latencies.len();
        let mut latency_histogram = vec![0u64; LATENCY_BUCKETS.len() + 1];
        for &l in &all_latencies {
            let i = LATENCY_BUCKETS.iter().position(|&b| l <= b).unwrap_or(LATENCY_BUCKETS.len());
            latency_histogram[i] += 1;
        }
        let aborted = memo.as_deref().is_some_and(|m| m.aborted);
        let chaos = chaos.map(|mut rt| {
            for b in &rt.breakers {
                rt.stats.breaker_opens += b.opens();
                rt.stats.breaker_closes += b.closes();
            }
            debug_assert!(
                aborted || rt.stats.conserved(),
                "conservation violated: submitted {} != completed {} + dropped {}",
                rt.stats.submitted,
                rt.stats.completed,
                rt.stats.dropped_total()
            );
            rt.stats
        });
        // Per-node usage (cores are node-major, so each node's span is
        // contiguous) and the cluster-wide store aggregate.
        let nodes: Vec<NodeUsage> = (0..nnodes)
            .map(|ni| {
                let span = &cores[ni * cores_per_node..(ni + 1) * cores_per_node];
                let busy: u64 = span.iter().map(|c| c.busy_cycles).sum();
                NodeUsage {
                    submitted: node_submitted[ni],
                    completed: node_completed[ni],
                    dropped: node_dropped[ni],
                    queue_peak: node_queue_peak[ni],
                    busy_cycles: busy,
                    utilization: if makespan == 0 {
                        0.0
                    } else {
                        busy as f64 / (makespan as f64 * cores_per_node as f64)
                    },
                    store: *stores[ni].stats(),
                    footprint_bytes: stores[ni].footprint_bytes(),
                    peak_footprint_bytes: stores[ni].peak_footprint_bytes(),
                    wasted_keepalive_cycles: keepalive.wasted_on_node(ni),
                }
            })
            .collect();
        let mut store_total = StoreStats::default();
        for s in &stores {
            let st = s.stats();
            store_total.hits += st.hits;
            store_total.misses += st.misses;
            store_total.insertions += st.insertions;
            store_total.evictions += st.evictions;
            store_total.rejected += st.rejected;
            store_total.bytes_read += st.bytes_read;
            store_total.bytes_written += st.bytes_written;
            store_total.bytes_evicted += st.bytes_evicted;
        }
        ClusterOutcome {
            invocations: n as u64,
            makespan,
            cores,
            nodes,
            functions,
            store: store_total,
            footprint_bytes: stores.iter().map(|s| s.footprint_bytes()).sum(),
            peak_footprint_bytes: stores.iter().map(|s| s.peak_footprint_bytes()).sum(),
            p50_latency: percentile(&all_latencies, 50),
            p95_latency: percentile(&all_latencies, 95),
            p99_latency: percentile(&all_latencies, 99),
            mean_latency: if n == 0 { 0.0 } else { latency_sum as f64 / n as f64 },
            latency_histogram,
            latency_sum,
            chaos,
            workload: fingerprint.finish(),
            memo: None,
            controller,
        }
    }

    /// Runs one dispatch attempt on a core; returns how it ended.
    ///
    /// Without chaos this is the pre-chaos dispatch verbatim: every
    /// chaos branch is behind `if let Some`, the job accumulators equal
    /// the original expressions, and the attempt always completes.
    #[allow(clippy::too_many_arguments)] // internal hot path; a context struct would be rebuilt per call
    fn dispatch<S: EventSink, P: PolicyHook>(
        &self,
        job: &Job,
        now: u64,
        core: &mut Core,
        ci: usize,
        node: usize,
        nnodes: usize,
        fstate: &mut FunctionState,
        store: &mut MetadataStore,
        ignite_on: bool,
        chaos: &mut Option<ChaosRt>,
        keepalive: &mut KeepAliveRt,
        policy: &mut P,
        mut memo: Option<&mut MemoRun<'_>>,
        sink: &mut S,
    ) -> Served {
        let a = &job.arrival;
        let f = &self.functions[a.function as usize];
        // Store events land on the shared store track for single-node
        // runs (byte-identical traces) and on a per-node track otherwise.
        let store_track = if nnodes > 1 { Track::NodeStore(node as u32) } else { Track::Store };
        // Interleaving distance → data coldness. Distance d counts the
        // invocations of *other* functions on this core since this function
        // last ran here; d = 0 (back-to-back) is fully warm, and coldness
        // saturates at `distance_saturation`.
        let cold = match core.last_seq.get(&(a.function as usize)) {
            None => 1.0,
            Some(&s) => {
                let d = (core.seq - s - 1) as f64;
                (d / self.cfg.distance_saturation.max(1.0)).min(1.0)
            }
        };
        core.last_seq.insert(a.function as usize, core.seq);
        core.seq += 1;

        let track = Track::Core(ci as u32);
        if sink.enabled() {
            sink.record(Event {
                ts: now,
                dur: 0,
                track,
                // Queue time accumulated across attempts; without chaos
                // this is exactly `now - a.cycle`.
                kind: EventKind::Dispatch { function: a.function, queue_cycles: job.queue_accum },
            });
        }

        // Stage the function's metadata region from the node store into
        // the core's replay engine, charging the transfer. Under chaos,
        // three gates can degrade this attempt to a cold run: an open
        // circuit breaker (full record/replay bypass), a store
        // unavailability window (no fetch at all), or a corrupt/lost
        // region detected after the fetch (region evicted, breaker fed).
        let mut md_cycles = 0u64;
        let mut store_hit = false;
        let mut degrade: Option<DegradeReason> = None;
        let mut bypass = false;
        // Policy replay admission: a denied function skips the store
        // fetch entirely (no miss counted, nothing to re-record) and
        // runs cold; its front-end stalls attribute to `cold_frontend`.
        // With a disabled policy this is constant-false and the fetch
        // gate below is the pre-seam `if ignite_on` exactly.
        let policy_bypass = policy.enabled() && ignite_on && !policy.replay_admitted(a.function);
        // The region to stage into the replay engine, decided by the
        // fetch/chaos gates below but installed only after the memo
        // probe (which needs to digest it without consuming it).
        let mut to_install: Option<Metadata> = None;
        if ignite_on && !policy_bypass {
            if let Some(rt) = chaos.as_mut() {
                if !rt.breakers[a.function as usize].replay_allowed(now) {
                    degrade = Some(DegradeReason::BreakerOpen);
                    bypass = true;
                } else if rt.state.store_unavailable_on(node, now) {
                    degrade = Some(DegradeReason::StoreUnavailable);
                }
            }
            if degrade.is_none() {
                if keepalive.enabled() {
                    keepalive.on_fetch(node, f.container, now);
                }
                let fetched = store.fetch(f.container).cloned();
                match fetched {
                    Some(md) => {
                        store_hit = true;
                        fstate.hits += 1;
                        md_cycles += self.transfer_cycles(md.byte_len());
                        if sink.enabled() {
                            sink.record(Event {
                                ts: now,
                                dur: 0,
                                track: store_track,
                                kind: EventKind::StoreHit {
                                    container: f.container,
                                    bytes: md.byte_len() as u64,
                                },
                            });
                        }
                        // Chaos corruption draws on the fetched copy
                        // (seeded per (container, invocation), like the
                        // PR 1 codec fault model it reuses). Stale-but-
                        // valid regions still install — replay handles
                        // them; only undecodable or lost regions degrade.
                        let installed: Option<Metadata> = match chaos.as_mut() {
                            Some(rt) if rt.state.plan().store_fault.is_active() => {
                                match rt.state.plan().store_fault.apply(
                                    &md,
                                    f.container,
                                    fstate.count,
                                ) {
                                    Ok(Some(faulted)) if faulted.validate().is_ok() => {
                                        Some(faulted)
                                    }
                                    Ok(Some(_)) | Err(_) => {
                                        degrade = Some(DegradeReason::Corrupt);
                                        None
                                    }
                                    Ok(None) => {
                                        degrade = Some(DegradeReason::Loss);
                                        None
                                    }
                                }
                            }
                            _ => Some(md),
                        };
                        match installed {
                            Some(md) => {
                                to_install = Some(md);
                                if let Some(rt) = chaos.as_mut() {
                                    let b = &mut rt.breakers[a.function as usize];
                                    let closes = b.closes();
                                    b.record_success();
                                    if sink.enabled() && b.closes() > closes {
                                        sink.record(Event {
                                            ts: now,
                                            dur: 0,
                                            track: Track::Chaos,
                                            kind: EventKind::BreakerClose { function: a.function },
                                        });
                                    }
                                }
                            }
                            None => {
                                let rt = chaos.as_mut().expect("faults only fire under chaos");
                                // A region known bad must never be served
                                // again.
                                if store.remove(f.container).is_some() {
                                    rt.stats.store_regions_dropped += 1;
                                }
                                let b = &mut rt.breakers[a.function as usize];
                                let opens = b.opens();
                                b.record_fault(now);
                                if sink.enabled() && b.opens() > opens {
                                    sink.record(Event {
                                        ts: now,
                                        dur: 0,
                                        track: Track::Chaos,
                                        kind: EventKind::BreakerOpen {
                                            function: a.function,
                                            faults: rt.retry.breaker_threshold,
                                        },
                                    });
                                }
                            }
                        }
                    }
                    None => {
                        fstate.misses += 1;
                        if sink.enabled() {
                            sink.record(Event {
                                ts: now,
                                dur: 0,
                                track: store_track,
                                kind: EventKind::StoreMiss { container: f.container },
                            });
                        }
                    }
                }
            }
        }

        // Memoization probe: advance the core's history digest across
        // this dispatch and look for a cached engine result. With memo
        // off (`None`) this block is skipped and the dispatch below is
        // the pre-memo path, operation for operation.
        let mut hit: Option<MemoEntry> = None;
        let mut memo_key: Option<memo::MemoKey> = None;
        if let Some(m) = memo.as_deref_mut() {
            let digest = memo::dispatch_digest(
                core.history,
                a.function,
                fstate.count,
                bypass || policy_bypass,
                to_install.as_ref(),
            );
            core.history = digest;
            let key =
                memo::MemoKey::new(a.function, cold, bypass || policy_bypass, m.config_fp, digest)
                    .expect("interleaving cold fraction is never NaN");
            if m.lookups {
                m.stats.lookups += 1;
                hit = m.cache.lookup(&key);
                if hit.is_some() {
                    m.stats.hits += 1;
                } else {
                    m.stats.misses += 1;
                    if core.stale {
                        // The schedule diverged from the cached run on a
                        // core whose machine was skipped over; the
                        // engine cannot run here. Unwind the pass.
                        m.aborted = true;
                        return Served::Done { completion: now };
                    }
                }
            }
            memo_key = Some(key);
        }

        // The engine portion of the dispatch starts after the metadata
        // fetch transfer on the cluster clock.
        let engine_base = now + md_cycles;
        let res: InvocationResult;
        // The (merged) region the engine hands back for writeback.
        let taken: Option<Metadata>;
        match hit {
            Some(entry) => {
                // Cache hit: skip install, context switch, the engine
                // run, and take-back — replay the cached result and
                // event stream instead. The machine is now behind its
                // digest; mark it stale. Everything cluster-side
                // (store, chaos, accounting) still executes below.
                if sink.enabled() {
                    sink.record(Event { ts: now, dur: 0, track, kind: EventKind::ContextSwitch });
                    for e in &entry.events {
                        sink.record(Event {
                            ts: engine_base + e.ts,
                            dur: e.dur,
                            track,
                            kind: e.kind,
                        });
                    }
                }
                fstate.count += 1;
                core.stale = true;
                if let Some(m) = memo.as_deref_mut() {
                    m.stats.cycles_saved += entry.res.cycles;
                }
                taken = entry.taken;
                res = entry.res;
            }
            None => {
                if let Some(md) = to_install {
                    core.machine
                        .ignite
                        .as_mut()
                        .expect("ignite selected")
                        .install_metadata(f.container, md);
                }
                core.machine.context_switch();
                if sink.enabled() {
                    sink.record(Event { ts: now, dur: 0, track, kind: EventKind::ContextSwitch });
                }
                let ctx = InvocationCtx {
                    data_cold_fraction: cold,
                    bypass_ignite: bypass || policy_bypass,
                };
                // Map machine-local cycles onto the cluster clock: the
                // machine clock (busy cycles only) never exceeds
                // cluster time.
                debug_assert!(core.machine.now <= now, "machine clock ahead of cluster clock");
                let ts_offset = engine_base.saturating_sub(core.machine.now);
                let captured: Option<Vec<Event>> = if memo.is_some() {
                    let mut capture = CaptureSink::new(&mut *sink);
                    res = run_invocation_obs(
                        &mut core.machine,
                        f,
                        fstate.count,
                        ctx,
                        &mut capture,
                        track,
                        ts_offset,
                    );
                    Some(capture.events)
                } else {
                    res = run_invocation_obs(
                        &mut core.machine,
                        f,
                        fstate.count,
                        ctx,
                        sink,
                        track,
                        ts_offset,
                    );
                    None
                };
                fstate.count += 1;
                taken = if ignite_on {
                    core.machine
                        .ignite
                        .as_mut()
                        .expect("ignite selected")
                        .take_metadata(f.container)
                } else {
                    None
                };
                if let Some(m) = memo {
                    // Store the engine events with timestamps relative
                    // to the invocation's engine start, so a hit in a
                    // run with a different clock or core rebases them.
                    let events = captured
                        .expect("captured under memoization")
                        .into_iter()
                        .map(|e| Event {
                            ts: e.ts.saturating_sub(engine_base),
                            dur: e.dur,
                            track: e.track,
                            kind: e.kind,
                        })
                        .collect();
                    let entry = MemoEntry { res: res.clone(), taken: taken.clone(), events };
                    m.stats.inserts += 1;
                    m.stats.evictions +=
                        m.cache.insert(memo_key.expect("key built under memoization"), entry);
                }
            }
        }

        // Straggler windows stretch the attempt's compute cycles; the
        // extra cycles are charged to the execution component so the
        // attribution tiling stays exact.
        let mut exec_cycles = res.cycles;
        let mut straggled = false;
        if let Some(rt) = chaos.as_mut() {
            let factor = rt.state.straggle_factor_milli(ci, now);
            if factor > 1000 {
                straggled = true;
                exec_cycles = ((u128::from(res.cycles) * u128::from(factor)) / 1000) as u64;
            }
        }

        // Take the (merged) region destined for the node store, sizing
        // the writeback — but do not commit it yet: a crash that kills
        // this attempt must also kill its writeback.
        let mut wb: Option<Metadata> = None;
        let mut wb_cycles = 0u64;
        let mut wb_skipped = false;
        if ignite_on {
            if let Some(md) = taken {
                let wb_at = now + md_cycles + exec_cycles;
                if policy.enabled() && !policy.store_admitted(a.function, md.byte_len() as u64) {
                    // Policy tightened store admission: the recording is
                    // discarded, saving footprint and writeback
                    // bandwidth (the next fetch misses and re-records).
                } else if chaos
                    .as_mut()
                    .is_some_and(|rt| rt.state.store_unavailable_on(node, wb_at))
                {
                    // Unreachable store: the region is simply lost (the
                    // next fetch misses and re-records).
                    wb_skipped = true;
                } else {
                    wb_cycles = self.transfer_cycles(md.byte_len());
                    wb = Some(md);
                }
            }
        }

        let service = exec_cycles + md_cycles + wb_cycles;
        let completion = now + service;

        // Crash check: a crash window opening while this attempt holds
        // the core kills it — no completion, no writeback, a fresh
        // (fully cold) machine, and the core held busy until repair.
        if let Some(rt) = chaos.as_mut() {
            let crash_t = if completion > now + 1 {
                rt.state.crash_in(ci, now + 1, completion - 1)
            } else {
                None
            };
            if let Some(crash_t) = crash_t {
                let restart = rt
                    .state
                    .core_restart_after(ci, crash_t)
                    .expect("crash window contains its own start");
                if sink.enabled() {
                    sink.record(Event {
                        ts: crash_t,
                        dur: 0,
                        track: Track::Chaos,
                        kind: EventKind::CoreCrash { core: ci as u32 },
                    });
                    sink.record(Event {
                        ts: restart,
                        dur: 0,
                        track: Track::Chaos,
                        kind: EventKind::CoreRestore {
                            core: ci as u32,
                            down_cycles: restart - crash_t,
                        },
                    });
                }
                core.machine = Machine::new(&self.uarch, &self.cfg.fe);
                core.last_seq.clear();
                // A fresh machine matches a fresh digest, so a crash
                // also heals any memo staleness.
                core.history = memo::HISTORY_SEED;
                core.stale = false;
                core.busy = true;
                core.busy_until = restart;
                // The core worked (was busy) until the crash; the repair
                // window is downtime, not utilization.
                core.busy_cycles += crash_t - now;
                return Served::Killed { at: crash_t };
            }
        }

        // The attempt survived: commit the writeback.
        let mut store_events: Vec<EventKind> = Vec::new();
        if wb_skipped {
            if let Some(rt) = chaos.as_mut() {
                rt.stats.writeback_skipped += 1;
            }
        }
        if let Some(md) = wb {
            let bytes = md.byte_len() as u64;
            md_cycles += wb_cycles;
            // Keep-alive protected regions are evicted only as a last
            // resort; with keep-alive off the closure is never true and
            // the insert is the plain insert, branch for branch.
            let outcome = store.insert_protected(f.container, md, &|c| {
                keepalive.is_protected(node, c, completion)
            });
            if keepalive.enabled() && !outcome.rejected {
                let window =
                    if policy.enabled() { policy.keepalive_window(a.function) } else { None };
                keepalive.on_complete_with(
                    node,
                    a.function as usize,
                    f.container,
                    completion,
                    window,
                );
            }
            if sink.enabled() {
                for (victim, victim_bytes) in outcome.evicted {
                    store_events.push(EventKind::StoreEvict {
                        container: victim,
                        bytes: victim_bytes as u64,
                    });
                }
                if outcome.rejected {
                    store_events.push(EventKind::StoreReject { container: f.container, bytes });
                }
            }
        }

        if let Some(rt) = chaos.as_mut() {
            if straggled {
                rt.stats.straggled += 1;
            }
            if let Some(reason) = degrade {
                fstate.degraded += 1;
                match reason {
                    DegradeReason::StoreUnavailable => rt.stats.degraded_unavailable += 1,
                    DegradeReason::Corrupt => rt.stats.degraded_corrupt += 1,
                    DegradeReason::Loss => rt.stats.degraded_loss += 1,
                    DegradeReason::BreakerOpen => rt.stats.degraded_breaker += 1,
                }
                if sink.enabled() {
                    sink.record(Event {
                        ts: now,
                        dur: 0,
                        track: Track::Chaos,
                        kind: EventKind::Degraded { function: a.function, reason },
                    });
                }
            }
        }

        if sink.enabled() || policy.enabled() {
            // Causal latency attribution. Latency decomposes exactly:
            // `latency = queue + retry + md_cycles + exec_cycles`, and
            // the engine's integer stall counters tile the compute
            // cycles into front-end penalty vs steady-state execution
            // (straggle inflation is charged to execution). Front-end
            // stalls paid after a store miss are the re-record cost
            // Ignite could not avoid; after a hit (with Ignite off, or
            // with replay suppressed by policy) they are the residual
            // cold-front-end penalty; when chaos degraded replay away
            // they are the price of availability. The policy folds the
            // same components it would see on the trace, so the
            // controller can run over a [`NullSink`].
            let frontend = res.front_end_stall_cycles();
            let execution = exec_cycles - frontend;
            let (cold_frontend, store_miss, degraded_cycles) = if degrade.is_some() {
                (0, 0, frontend)
            } else if ignite_on && !store_hit && !policy_bypass {
                (0, frontend, 0)
            } else {
                (frontend, 0, 0)
            };
            if sink.enabled() {
                // The writeback (and any evictions it forced) lands at
                // completion time; the span covers fetch + engine +
                // writeback.
                for kind in store_events {
                    sink.record(Event { ts: completion, dur: 0, track: store_track, kind });
                }
                sink.record(Event {
                    ts: now,
                    dur: service,
                    track,
                    kind: EventKind::Invocation {
                        function: a.function,
                        invocation: fstate.count - 1,
                    },
                });
                sink.record(Event {
                    ts: completion,
                    dur: 0,
                    track,
                    kind: EventKind::Complete { function: a.function, service_cycles: service },
                });
                sink.record(Event {
                    ts: completion,
                    dur: 0,
                    track,
                    kind: EventKind::Attribution {
                        function: a.function,
                        queue_cycles: job.queue_accum,
                        retry_cycles: job.lost_cycles,
                        dram_cycles: md_cycles,
                        cold_frontend_cycles: cold_frontend,
                        store_miss_cycles: store_miss,
                        degraded_cycles,
                        execution_cycles: execution,
                        latency_cycles: completion - a.cycle,
                    },
                });
            }
            if policy.enabled() {
                policy.observe(&PolicySample {
                    function: a.function,
                    completion,
                    latency_cycles: completion - a.cycle,
                    queue_cycles: job.queue_accum,
                    retry_cycles: job.lost_cycles,
                    dram_cycles: md_cycles,
                    cold_frontend_cycles: cold_frontend,
                    store_miss_cycles: store_miss,
                    degraded_cycles,
                    execution_cycles: execution,
                    store_hit,
                    replay_suppressed: policy_bypass,
                });
            }
        }
        if let Some(rt) = chaos.as_mut() {
            rt.stats.retry_cycles += job.lost_cycles;
        }
        core.busy = true;
        core.busy_until = completion;
        core.busy_cycles += service;
        core.invocations += 1;
        fstate.service_cycles += service;
        fstate.queue_cycles += job.queue_accum;
        fstate.cold_sum += cold;
        // Temperature of this start, dslab-faas style: no usable replay
        // state at all is cold; replayed with zero interleaving distance
        // is warm; replayed but partially displaced is lukewarm.
        if !ignite_on || degrade.is_some() || !store_hit {
            fstate.cold_starts += 1;
        } else if cold == 0.0 {
            fstate.warm_starts += 1;
        } else {
            fstate.lukewarm_starts += 1;
        }
        fstate.min_service = fstate.min_service.min(service);
        fstate.result.merge(&res);
        Served::Done { completion }
    }

    /// Cycles to move `bytes` of metadata at the configured bandwidth.
    fn transfer_cycles(&self, bytes: usize) -> u64 {
        (bytes as f64 / self.cfg.dram_bytes_per_cycle.max(1.0)).ceil() as u64
    }
}

/// Nearest-rank percentile of an already-sorted slice (0 for empty data).
///
/// `rank = max(1, ceil(n·p/100))`, clamped to `n` so an out-of-range `p`
/// (> 100) saturates at the maximum instead of indexing past the slice.
fn percentile(sorted: &[u64], p: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 * u64::from(p)).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Runs the same cluster at several store capacities, sharded across
/// `threads` worker threads with per-point panic isolation (one diverging
/// point reports an error; the rest of the sweep completes).
pub fn sweep_capacities(
    cfg: &ClusterConfig,
    capacities: &[usize],
    threads: usize,
) -> Vec<Result<ClusterOutcome, PanicFailure>> {
    fanout::run_indexed(capacities.len(), threads, |i| {
        let mut point = cfg.clone();
        point.store.capacity_bytes = capacities[i];
        ClusterSim::new(point).run()
    })
}

/// [`sweep_capacities`] with one shared, thread-safe memo cache across
/// every point: sweep points differ only in store capacity, so their
/// schedules share long common prefixes and later points replay what
/// earlier points simulated. Outcomes are bit-identical to the plain
/// sweep; the per-point memo counters are stripped (`memo: None`)
/// because hit patterns depend on which worker warmed the cache first —
/// schedule-dependent where the outcomes themselves are not.
pub fn sweep_capacities_memo(
    cfg: &ClusterConfig,
    capacities: &[usize],
    threads: usize,
    cache: &MemoCache,
) -> Vec<Result<ClusterOutcome, PanicFailure>> {
    fanout::run_indexed(capacities.len(), threads, |i| {
        let mut point = cfg.clone();
        point.store.capacity_bytes = capacities[i];
        let sim = ClusterSim::new(point);
        let mut out = sim.run_memo(cache);
        out.memo = None;
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 1_500_000, ..ArrivalConfig::default() },
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn serves_every_arrival() {
        let sim = ClusterSim::new(quick_cfg());
        let trace = {
            let mut a = sim.config().arrival;
            a.functions = 20;
            a.generate()
        };
        let out = sim.run_trace(&trace);
        assert_eq!(out.invocations as usize, trace.arrivals.len());
        assert!(out.makespan > 0);
        let per_core: u64 = out.cores.iter().map(|c| c.invocations).sum();
        assert_eq!(per_core, out.invocations);
    }

    #[test]
    fn deterministic_across_runs() {
        let sim = ClusterSim::new(quick_cfg());
        assert_eq!(sim.run(), sim.run());
    }

    /// Strips the memo counters so a memoized outcome can be compared
    /// against a plain one (the counters are the only allowed delta).
    fn sans_memo(mut out: ClusterOutcome) -> ClusterOutcome {
        out.memo = None;
        out
    }

    #[test]
    fn memoized_run_matches_plain_run_bit_for_bit() {
        let sim = ClusterSim::new(quick_cfg());
        let plain = sim.run();
        let cache = MemoCache::default();
        let memoized = sim.run_memo(&cache);
        let stats = memoized.memo.expect("memoized run carries counters");
        assert_eq!(stats.hits, 0, "a fresh cache cannot hit within one run");
        assert_eq!(stats.lookups, stats.misses);
        assert_eq!(stats.inserts, stats.misses);
        assert!(stats.misses > 0);
        assert_eq!(sans_memo(memoized), plain, "memoization must not move the outcome");
    }

    #[test]
    fn warmed_cache_replays_the_whole_run_from_hits() {
        let sim = ClusterSim::new(quick_cfg());
        let cache = MemoCache::default();
        let first = sim.run_memo(&cache);
        let second = sim.run_memo(&cache);
        let stats = second.memo.expect("memoized run carries counters");
        assert_eq!(stats.misses, 0, "an identical re-run must hit on every dispatch");
        assert_eq!(stats.hits, first.memo.expect("counters").misses);
        assert!(stats.cycles_saved > 0, "hits must account their saved engine cycles");
        assert_eq!(sans_memo(second), sans_memo(first), "replayed run must be identical");
    }

    #[test]
    fn shared_cache_sweep_matches_plain_sweep() {
        let mut cfg = quick_cfg();
        cfg.arrival.horizon_cycles = 600_000;
        let capacities = [2 * 1024, 8 * 1024, 256 * 1024];
        let plain: Vec<ClusterOutcome> = sweep_capacities(&cfg, &capacities, 3)
            .into_iter()
            .map(|r| r.expect("sweep point must not panic"))
            .collect();
        let cache = MemoCache::default();
        let memoized: Vec<ClusterOutcome> = sweep_capacities_memo(&cfg, &capacities, 3, &cache)
            .into_iter()
            .map(|r| r.expect("sweep point must not panic"))
            .collect();
        assert_eq!(memoized, plain, "sharing a cache across sweep points must not move output");
        assert!(!cache.is_empty(), "the sweep must have populated the shared cache");
    }

    #[test]
    fn divergent_config_with_warmed_cache_still_matches_plain_run() {
        // Warm the cache with one store capacity, then run a different
        // capacity: schedules share a prefix, then diverge — exercising
        // the stale-abort-and-rerun path (or an early clean miss). The
        // outcome must still be bit-identical to the plain run.
        let mut warm = quick_cfg();
        warm.arrival.horizon_cycles = 600_000;
        warm.store.capacity_bytes = 2 * 1024;
        let cache = MemoCache::default();
        ClusterSim::new(warm.clone()).run_memo(&cache);
        let mut probe = warm;
        probe.store.capacity_bytes = 64 * 1024;
        let plain = ClusterSim::new(probe.clone()).run();
        let memoized = ClusterSim::new(probe).run_memo(&cache);
        assert_eq!(sans_memo(memoized), plain);
    }

    #[test]
    fn store_hits_accumulate_under_repeat_traffic() {
        let out = ClusterSim::new(quick_cfg()).run();
        assert!(out.store.hits > 0, "hot functions must find their metadata");
        assert!(out.store.hit_rate() > 0.3, "hit rate {}", out.store.hit_rate());
        assert!(out.peak_footprint_bytes > 0);
        assert!(out.peak_footprint_bytes <= quick_cfg().store.capacity_bytes);
    }

    #[test]
    fn latency_percentiles_are_ordered() {
        let out = ClusterSim::new(quick_cfg()).run();
        assert!(out.p50_latency <= out.p95_latency);
        assert!(out.p95_latency <= out.p99_latency);
        for f in out.functions.iter().filter(|f| f.invocations > 0) {
            assert!(f.p50_latency <= f.p99_latency, "{}", f.abbr);
            assert!(f.mean_service > 0.0, "{}", f.abbr);
        }
    }

    #[test]
    fn popular_functions_run_data_warmer() {
        let out = ClusterSim::new(quick_cfg()).run();
        let head = &out.functions[0];
        let tail =
            out.functions.iter().rev().find(|f| f.invocations > 1).expect("some tail traffic");
        assert!(head.invocations > tail.invocations, "Zipf head gets more traffic");
        assert!(
            head.mean_cold_fraction < tail.mean_cold_fraction,
            "head cold {} must be below tail cold {}",
            head.mean_cold_fraction,
            tail.mean_cold_fraction
        );
    }

    #[test]
    fn no_store_traffic_without_ignite() {
        let mut cfg = quick_cfg();
        cfg.fe = FrontEndConfig::nl();
        let out = ClusterSim::new(cfg).run();
        assert_eq!(out.store.hits + out.store.misses, 0);
        assert_eq!(out.footprint_bytes, 0);
    }

    #[test]
    fn capacity_sweep_is_monotone_in_hit_rate() {
        let cfg = quick_cfg();
        let caps = [2 * 1024, 8 * 1024, 256 * 1024];
        let outs: Vec<ClusterOutcome> =
            sweep_capacities(&cfg, &caps, 3).into_iter().map(|r| r.expect("no panics")).collect();
        for w in outs.windows(2) {
            assert!(
                w[0].store.hit_rate() <= w[1].store.hit_rate(),
                "hit rate must not drop with capacity: {} vs {}",
                w[0].store.hit_rate(),
                w[1].store.hit_rate()
            );
        }
        assert!(
            outs[0].store.hit_rate() < outs[2].store.hit_rate(),
            "a 2 KiB store must hit less than a 256 KiB one"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let data: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&data, 50), 50);
        assert_eq!(percentile(&data, 95), 95);
        assert_eq!(percentile(&data, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn percentile_out_of_range_saturates_at_max() {
        // Regression: p > 100 used to compute rank > n and index past the
        // slice; it must saturate at the maximum instead.
        assert_eq!(percentile(&[1, 2, 3], 101), 3);
        assert_eq!(percentile(&[5], 400), 5);
    }

    /// Brute-force nearest-rank reference: the smallest value `v` in the
    /// data such that at least `p`% of the data is ≤ `v`.
    fn percentile_reference(sorted: &[u64], p: u32) -> u64 {
        for &v in sorted {
            let at_or_below = sorted.iter().filter(|&&y| y <= v).count() as u64;
            if at_or_below * 100 >= u64::from(p) * sorted.len() as u64 {
                return v;
            }
        }
        *sorted.last().expect("non-empty")
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        #[test]
        fn percentile_matches_brute_force(
            mut data in proptest::collection::vec(0u64..1_000_000, 1..200),
            p in 0u32..101,
        ) {
            data.sort_unstable();
            proptest::prop_assert_eq!(percentile(&data, p), percentile_reference(&data, p));
        }

        #[test]
        fn percentiles_are_monotone_and_max_bounded(
            mut data in proptest::collection::vec(0u64..1_000_000, 1..200),
        ) {
            data.sort_unstable();
            let max = *data.last().expect("non-empty");
            let curve: Vec<u64> = (0..=100).map(|p| percentile(&data, p)).collect();
            for w in curve.windows(2) {
                proptest::prop_assert!(w[0] <= w[1], "percentile curve must be monotone");
            }
            proptest::prop_assert_eq!(curve[100], max);
            if data.len() < 100 {
                // With fewer than 100 samples the 99th percentile is the max.
                proptest::prop_assert_eq!(percentile(&data, 99), max);
            }
        }
    }

    #[test]
    fn watchdog_abandons_are_not_double_counted() {
        let mut cfg = quick_cfg();
        let ig = cfg.fe.select.ignite.as_mut().expect("default cluster fe selects ignite");
        // Replay that can never catch up: no throttle headroom and a hair
        // trigger watchdog, so stalled replays abandon instead of pending.
        ig.replay.throttle_threshold = 0;
        ig.replay.watchdog_stall_steps = 4;
        ig.replay.prefetch_instructions = false;
        let out = ClusterSim::new(cfg).run();
        let total = out.total_result();
        assert!(total.replay.watchdog_abandons > 0, "config must force abandons");
        assert!(total.replay.entries_dropped > 0, "abandoned entries count as dropped");
        // Regression: entries the watchdog dropped used to also be
        // reported as unfinished, counting the same invocation twice.
        assert_eq!(total.replay_unfinished, 0);
    }

    #[test]
    fn observed_run_matches_plain_run_and_covers_transitions() {
        let sim = ClusterSim::new(quick_cfg());
        let plain = sim.run();
        let mut buf = ignite_obs::TraceBuffer::new(1 << 20);
        let observed = sim.run_obs(&mut buf);
        assert_eq!(plain, observed, "observation must not perturb the simulation");
        assert_eq!(buf.dropped(), 0, "buffer sized for the whole run");
        let names: std::collections::BTreeSet<&str> = buf.iter().map(|e| e.kind.name()).collect();
        for required in
            ["arrival", "dispatch", "context-switch", "invocation", "complete", "store-hit"]
        {
            assert!(names.contains(required), "missing {required} events; have {names:?}");
        }
    }

    #[test]
    fn latency_histogram_accounts_every_invocation() {
        let out = ClusterSim::new(quick_cfg()).run();
        assert_eq!(out.latency_histogram.len(), LATENCY_BUCKETS.len() + 1);
        assert_eq!(out.latency_histogram.iter().sum::<u64>(), out.invocations);
        assert!(out.latency_sum >= out.invocations * out.p50_latency / 2);
    }

    #[test]
    fn config_validation_names_the_offending_field() {
        assert!(ClusterConfig::default().validate().is_ok());
        assert!(chaos_cfg(7).validate().is_ok());
        let msg = |cfg: &ClusterConfig| cfg.validate().unwrap_err().to_string();
        let bad = ClusterConfig { cores: 0, ..ClusterConfig::default() };
        assert!(msg(&bad).contains("cores"));
        let bad = ClusterConfig { dram_bytes_per_cycle: f64::NAN, ..ClusterConfig::default() };
        assert!(msg(&bad).contains("dram_bytes_per_cycle"));
        let bad = ClusterConfig {
            retry: RetryPolicy { max_attempts: 0, ..RetryPolicy::default() },
            ..ClusterConfig::default()
        };
        assert!(msg(&bad).contains("max_attempts"));
        let mut bad = chaos_cfg(7);
        bad.chaos.as_mut().unwrap().crash_repair_cycles = 0;
        assert!(msg(&bad).contains("crash"));
        let mut bad = chaos_cfg(7);
        bad.chaos.as_mut().unwrap().straggle_factor_milli = 500;
        assert!(msg(&bad).contains("straggle_factor_milli"));
    }

    #[test]
    fn topology_validation_rejects_bad_shapes_with_typed_errors() {
        let bad = ClusterConfig {
            topology: Topology { nodes: 0, ..Topology::default() },
            ..ClusterConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err(), ConfigError::ZeroNodes);
        let bad = ClusterConfig {
            topology: Topology {
                scheduler: SchedulerKind::Random { choices: 0 },
                ..Topology::default()
            },
            ..ClusterConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err(), ConfigError::ZeroSchedulerChoices);
        let bad = ClusterConfig {
            topology: Topology {
                keepalive: KeepAliveKind::Fixed { window_cycles: 0 },
                ..Topology::default()
            },
            ..ClusterConfig::default()
        };
        assert_eq!(bad.validate().unwrap_err(), ConfigError::ZeroKeepAliveWindow);
        let ok = ClusterConfig {
            topology: Topology {
                nodes: 3,
                scheduler: SchedulerKind::Affinity,
                keepalive: KeepAliveKind::Hybrid { default_window_cycles: 50_000 },
            },
            ..ClusterConfig::default()
        };
        assert!(ok.validate().is_ok());
    }

    fn chaos_cfg(chaos_seed: u64) -> ClusterConfig {
        ClusterConfig { chaos: Some(ChaosPlan::default_preset().seeded(chaos_seed)), ..quick_cfg() }
    }

    #[test]
    fn chaos_run_conserves_every_submission() {
        let out = ClusterSim::new(chaos_cfg(7)).run();
        let ch = out.chaos.as_ref().expect("chaos stats present");
        assert!(ch.conserved(), "conservation violated: {ch:?}");
        assert_eq!(ch.completed, out.invocations);
        assert!(ch.submitted > 0);
        // The preset is violent enough to exercise the machinery.
        assert!(ch.attempts_failed > 0, "no failures injected: {ch:?}");
        assert!(ch.degraded_total() > 0, "no degradations: {ch:?}");
        // Per-function drop counters agree with the ledger.
        let dropped: u64 = out.functions.iter().map(|f| f.dropped).sum();
        assert_eq!(dropped, ch.dropped_total());
    }

    #[test]
    fn chaos_is_deterministic() {
        assert_eq!(ClusterSim::new(chaos_cfg(7)).run(), ClusterSim::new(chaos_cfg(7)).run());
    }

    #[test]
    fn inert_chaos_plan_matches_chaos_off_exactly() {
        // An all-zero plan schedules no failures; the chaos machinery
        // must then be arithmetically invisible.
        let inert = ClusterConfig { chaos: Some(ChaosPlan::none()), ..quick_cfg() };
        let with = ClusterSim::new(inert).run();
        let without = ClusterSim::new(quick_cfg()).run();
        assert_eq!(with.invocations, without.invocations);
        assert_eq!(with.makespan, without.makespan);
        assert_eq!(with.latency_sum, without.latency_sum);
        assert_eq!(with.latency_histogram, without.latency_histogram);
        assert_eq!(with.cores, without.cores);
        assert_eq!(with.functions, without.functions);
        let ch = with.chaos.expect("inert plan still reports chaos stats");
        assert_eq!(ch.submitted, ch.completed);
        assert_eq!(ch.attempts_failed, 0);
        assert_eq!(ch.degraded_total(), 0);
        assert_eq!(ch.retry_cycles, 0);
    }

    #[test]
    fn chaos_seed_does_not_perturb_the_arrival_stream() {
        // Satellite: the arrival process is driven by `--seed` alone;
        // re-seeding chaos must replay the identical offered load.
        let base = ClusterSim::new(chaos_cfg(7)).run();
        let other = ClusterSim::new(chaos_cfg(1234)).run();
        let a = base.chaos.as_ref().unwrap();
        let b = other.chaos.as_ref().unwrap();
        assert_eq!(a.submitted, b.submitted, "arrival count must not depend on the chaos seed");
        // And the failure schedules genuinely differ.
        assert_ne!(
            (a.attempts_failed, a.retry_cycles, a.degraded_total()),
            (b.attempts_failed, b.retry_cycles, b.degraded_total()),
            "distinct chaos seeds should inject distinct failures"
        );
    }

    #[test]
    fn chaos_latencies_tile_into_components() {
        // Replaying the chaos run under a scope analyzer must satisfy
        // the 7-component attribution invariant for every completion.
        let sim = ClusterSim::new(chaos_cfg(7));
        let mut buf = ignite_obs::TraceBuffer::new(1 << 21);
        let out = sim.run_obs(&mut buf);
        let mut attributed = 0u64;
        let mut latency_sum = 0u64;
        for e in buf.iter() {
            if let EventKind::Attribution {
                queue_cycles,
                retry_cycles,
                dram_cycles,
                cold_frontend_cycles,
                store_miss_cycles,
                degraded_cycles,
                execution_cycles,
                latency_cycles,
                ..
            } = e.kind
            {
                assert_eq!(
                    queue_cycles
                        + retry_cycles
                        + dram_cycles
                        + cold_frontend_cycles
                        + store_miss_cycles
                        + degraded_cycles
                        + execution_cycles,
                    latency_cycles,
                    "components must tile the latency"
                );
                attributed += 1;
                latency_sum += latency_cycles;
            }
        }
        assert_eq!(attributed, out.invocations, "every completion is attributed");
        assert_eq!(latency_sum, out.latency_sum, "attributed latency totals the sim's sum");
    }
}
