//! Invocation-result memoization: skip the cycle-accurate engine when an
//! identical invocation has already been simulated.
//!
//! # The key, and why it is sound
//!
//! [`ignite_engine::sim::run_invocation_obs`] is a pure function of
//! `(machine state, prepared function, invocation index, InvocationCtx)`
//! — it reads nothing else and its result is bit-identical whether or
//! not observability is wired. A memo key therefore has to pin exactly
//! those inputs. Machine state is the hard one: hashing a [`Machine`]
//! per dispatch would cost more than the run it saves. Instead each core
//! carries an incremental **history digest**: an FNV-1a fold, reseeded
//! on core crash, over everything that mutated the machine since it was
//! fresh — per dispatch, the function index, that function's global
//! invocation count, the chaos `bypass_ignite` flag, and a digest of the
//! metadata installed before the run (or a none marker). Equal digests
//! on fresh-equal machines ⇒ the same mutation sequence ⇒ equal machine
//! state.
//!
//! The same fold also pins the *raw* `data_cold_fraction`: coldness is a
//! pure function of the core's dispatch sequence (interleaving distance)
//! and `distance_saturation` (part of the config fingerprint), both
//! determined by the key. That is why the key's quantized
//! [`MemoKey::cold_bucket`] is safe — two contexts can only share a
//! bucket *and* the rest of the key if their raw fractions are already
//! equal, so quantization can never alias two different results. The
//! bucket exists to make the key an honest `Eq + Hash` value:
//! `InvocationCtx`'s derived `PartialEq` over a raw `f64` admits NaN
//! (never equal to itself) and sub-epsilon drift; [`MemoKey::new`]
//! rejects NaN at construction and buckets the rest.
//!
//! # Staleness
//!
//! On a cache hit the engine is skipped, so the core's *actual* machine
//! no longer matches its digest — the core is marked stale. Within one
//! run that is harmless: the invocation count is folded into the digest,
//! so no two dispatches of a run share a key, and hits only happen when
//! the cache was warmed by a *previous* run. A run that replays a warmed
//! cache and then diverges (a cache miss on a stale core) cannot run the
//! engine on the stale machine; [`ClusterSim::run_source_memo_obs`]
//! aborts the speculative pass and re-runs plainly (lookups off, stores
//! on). Arrivals and events are held replayable/transactional for
//! exactly this case — see [`RecordingSource`] and
//! [`ignite_obs::BufferingSink`].
//!
//! [`Machine`]: ignite_engine::machine::Machine
//! [`ClusterSim::run_source_memo_obs`]: crate::ClusterSim::run_source_memo_obs

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use ignite_core::codec::Metadata;
use ignite_engine::config::FrontEndConfig;
use ignite_engine::metrics::InvocationResult;
use ignite_obs::Event;
use ignite_uarch::UarchConfig;
use ignite_workloads::arrival::{Arrival, ArrivalSource};

/// FNV-1a 64-bit offset basis: the history digest of a fresh machine.
pub const HISTORY_SEED: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds one `u64` into an FNV-1a digest, byte by byte.
#[inline]
pub fn fold_u64(mut digest: u64, value: u64) -> u64 {
    for b in value.to_le_bytes() {
        digest = (digest ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    digest
}

/// Folds a byte slice into an FNV-1a digest.
#[inline]
pub fn fold_bytes(mut digest: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        digest = (digest ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    digest
}

/// Digest of one installed metadata region: enough structure (checksum,
/// entry count, byte length, codec widths) that two regions with equal
/// digests decode identically for replay purposes.
fn metadata_digest(md: &Metadata) -> u64 {
    let cfg = md.codec_config();
    let mut d = fold_u64(HISTORY_SEED, u64::from(md.checksum()));
    d = fold_u64(d, md.entries() as u64);
    d = fold_u64(d, md.byte_len() as u64);
    d = fold_u64(d, u64::from(cfg.src_delta_bits));
    fold_u64(d, u64::from(cfg.tgt_delta_bits))
}

/// Advances a core's history digest across one dispatch: the function
/// that ran, its global invocation count (the trace-walker seed), the
/// chaos bypass flag, and what was installed into the replay engine
/// beforehand. Everything else the engine reads is either fresh-machine
/// state (pinned by the crash reseed) or derived from this sequence.
pub fn dispatch_digest(
    history: u64,
    function: u32,
    invocation_count: u64,
    bypass_ignite: bool,
    installed: Option<&Metadata>,
) -> u64 {
    let mut d = fold_u64(history, u64::from(function));
    d = fold_u64(d, invocation_count);
    d = fold_u64(d, u64::from(bypass_ignite));
    match installed {
        Some(md) => fold_u64(d, metadata_digest(md)),
        // Distinct from any metadata digest's fold (tagged).
        None => fold_u64(d, u64::MAX),
    }
}

/// Fingerprint of everything configuration-side that shapes an engine
/// result: the microarchitecture, the front-end mechanisms and policy,
/// the suite scale (which fixes the prepared functions), and the
/// interleaving saturation (which maps dispatch distance to coldness).
/// Cached results only ever cross runs that share this fingerprint.
pub fn config_fingerprint(
    uarch: &UarchConfig,
    fe: &FrontEndConfig,
    scale: f64,
    distance_saturation: f64,
) -> u64 {
    let mut d = fold_bytes(HISTORY_SEED, format!("{uarch:?}").as_bytes());
    d = fold_bytes(d, format!("{fe:?}").as_bytes());
    d = fold_u64(d, scale.to_bits());
    fold_u64(d, distance_saturation.to_bits())
}

/// Number of buckets the cold fraction is quantized into: `[0, 1]`
/// maps to `0..=4096`.
pub const COLD_QUANTA: u32 = 4096;

/// The reason a [`MemoKey`] could not be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoKeyError {
    /// `data_cold_fraction` was NaN — a value that is never equal to
    /// itself has no place in an `Eq` key.
    NanColdFraction,
}

impl std::fmt::Display for MemoKeyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoKeyError::NanColdFraction => {
                write!(f, "data_cold_fraction is NaN; memo keys require a comparable value")
            }
        }
    }
}

impl std::error::Error for MemoKeyError {}

/// An honest `Eq + Hash` identity for one engine invocation. See the
/// module docs for why the quantized bucket cannot alias distinct
/// results when the rest of the key matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Suite function index.
    pub function: u32,
    /// `data_cold_fraction` quantized to [`COLD_QUANTA`] buckets.
    /// Negative zero buckets with positive zero; NaN is rejected by
    /// [`MemoKey::new`].
    pub cold_bucket: u16,
    /// The chaos circuit-breaker bypass flag (`InvocationCtx::bypass_ignite`).
    pub bypass: bool,
    /// [`config_fingerprint`] of the run.
    pub config_fp: u64,
    /// The core's [`dispatch_digest`] at this dispatch.
    pub state_digest: u64,
}

impl MemoKey {
    /// Builds a key, quantizing the cold fraction (clamped to `[0, 1]`)
    /// and rejecting NaN.
    pub fn new(
        function: u32,
        data_cold_fraction: f64,
        bypass: bool,
        config_fp: u64,
        state_digest: u64,
    ) -> Result<MemoKey, MemoKeyError> {
        if data_cold_fraction.is_nan() {
            return Err(MemoKeyError::NanColdFraction);
        }
        let cold = data_cold_fraction.clamp(0.0, 1.0);
        let cold_bucket = (cold * f64::from(COLD_QUANTA)).round() as u16;
        Ok(MemoKey { function, cold_bucket, bypass, config_fp, state_digest })
    }
}

/// One cached invocation: the engine result, the (merged) metadata the
/// engine handed back for writeback, and the engine's event stream with
/// timestamps relative to the invocation's start on the cluster clock.
/// Deliberately machine-free — a snapshot of the post-run [`Machine`]
/// would dwarf the cost of just re-running the engine.
///
/// [`Machine`]: ignite_engine::machine::Machine
#[derive(Debug, Clone)]
pub struct MemoEntry {
    /// The engine measurements.
    pub res: InvocationResult,
    /// What `take_metadata` returned after the run (before any
    /// store-availability gating, which is cluster-side and re-executed).
    pub taken: Option<Metadata>,
    /// Engine events with `ts` relative to `now + fetch_cycles`; the
    /// replaying dispatch rebases them onto its own clock and track.
    pub events: Vec<Event>,
}

/// Counters for one memoized run, serialized into the report's `memo`
/// section and the `ignite_memo_*` Prometheus families.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Cache probes performed.
    pub lookups: u64,
    /// Probes that found a usable entry.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// Entries written into the cache.
    pub inserts: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Speculative passes abandoned because a miss landed on a stale
    /// core, forcing a plain re-run.
    pub stale_reruns: u64,
    /// Engine cycles not re-simulated thanks to hits (the sum of cached
    /// `res.cycles` over hits).
    pub cycles_saved: u64,
}

const SHARDS: usize = 16;

struct Shard {
    map: HashMap<MemoKey, MemoEntry>,
    /// Insertion order, for bounded FIFO eviction.
    order: VecDeque<MemoKey>,
}

/// A bounded, sharded, thread-safe invocation cache. Sharding keeps
/// lock contention low when a capacity sweep shares one cache across
/// worker threads; shard selection is a deterministic FNV fold of the
/// key, so eviction behavior is reproducible run to run.
pub struct MemoCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
}

impl MemoCache {
    /// Default total entry capacity (entries are a few hundred bytes to
    /// a few KB each, dominated by the writeback metadata clone).
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a cache bounded to roughly `capacity` entries total
    /// (rounded up to a multiple of the shard count, minimum one entry
    /// per shard).
    pub fn new(capacity: usize) -> Self {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        let shards = (0..SHARDS)
            .map(|_| Mutex::new(Shard { map: HashMap::new(), order: VecDeque::new() }))
            .collect();
        MemoCache { shards, capacity_per_shard }
    }

    fn shard_for(&self, key: &MemoKey) -> &Mutex<Shard> {
        let mut d = fold_u64(HISTORY_SEED, key.state_digest);
        d = fold_u64(d, key.config_fp);
        d = fold_u64(d, u64::from(key.function));
        &self.shards[(d % SHARDS as u64) as usize]
    }

    /// Returns a clone of the cached entry, if present.
    pub fn lookup(&self, key: &MemoKey) -> Option<MemoEntry> {
        self.shard_for(key).lock().expect("memo shard poisoned").map.get(key).cloned()
    }

    /// Inserts (or replaces) an entry, evicting oldest-inserted entries
    /// past the shard bound; returns how many were evicted.
    pub fn insert(&self, key: MemoKey, entry: MemoEntry) -> u64 {
        let mut shard = self.shard_for(&key).lock().expect("memo shard poisoned");
        if shard.map.insert(key, entry).is_none() {
            shard.order.push_back(key);
        }
        let mut evicted = 0;
        while shard.map.len() > self.capacity_per_shard {
            let victim = shard.order.pop_front().expect("order tracks map");
            if shard.map.remove(&victim).is_some() {
                evicted += 1;
            }
        }
        evicted
    }

    /// Total entries resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("memo shard poisoned").map.len()).sum()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for MemoCache {
    fn default() -> Self {
        MemoCache::new(MemoCache::DEFAULT_CAPACITY)
    }
}

impl std::fmt::Debug for MemoCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("entries", &self.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .finish()
    }
}

/// Per-run memoization state threaded through the dispatch loop.
pub(crate) struct MemoRun<'c> {
    pub cache: &'c MemoCache,
    pub stats: MemoStats,
    /// Whether dispatches may consume cached entries (`false` on the
    /// plain re-run after a stale abort: stores still warm the cache,
    /// but nothing is replayed).
    pub lookups: bool,
    /// Set by a dispatch that hit a miss on a stale core; the run loop
    /// unwinds immediately and the caller re-runs plainly.
    pub aborted: bool,
    pub config_fp: u64,
}

/// Wraps an [`ArrivalSource`], remembering every arrival it hands out so
/// an aborted speculative pass can replay the exact same stream.
pub(crate) struct RecordingSource<'a, A: ArrivalSource + ?Sized> {
    inner: &'a mut A,
    recorded: Vec<Arrival>,
}

impl<'a, A: ArrivalSource + ?Sized> RecordingSource<'a, A> {
    pub fn new(inner: &'a mut A) -> Self {
        RecordingSource { inner, recorded: Vec::new() }
    }

    /// Converts into a source that first replays everything recorded,
    /// then continues draining the original stream.
    pub fn into_replay(self) -> ReplaySource<'a, A> {
        ReplaySource { inner: self.inner, recorded: self.recorded, next: 0 }
    }
}

impl<A: ArrivalSource + ?Sized> ArrivalSource for RecordingSource<'_, A> {
    fn functions(&self) -> usize {
        self.inner.functions()
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        let a = self.inner.next_arrival();
        if let Some(a) = a {
            self.recorded.push(a);
        }
        a
    }
}

/// The replay half of [`RecordingSource`].
pub(crate) struct ReplaySource<'a, A: ArrivalSource + ?Sized> {
    inner: &'a mut A,
    recorded: Vec<Arrival>,
    next: usize,
}

impl<A: ArrivalSource + ?Sized> ArrivalSource for ReplaySource<'_, A> {
    fn functions(&self) -> usize {
        self.inner.functions()
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.next < self.recorded.len() {
            let a = self.recorded[self.next];
            self.next += 1;
            return Some(a);
        }
        self.inner.next_arrival()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_engine::sim::InvocationCtx;

    #[test]
    fn sub_quantum_contexts_share_a_key_where_partial_eq_splits() {
        // The bug this satellite fixes: `InvocationCtx`'s derived
        // `PartialEq` over a raw f64 treats sub-quantum drift as a
        // different context, which would split cache entries that are
        // physically the same invocation.
        let a = InvocationCtx { data_cold_fraction: 0.5, bypass_ignite: false };
        let drift = 0.5 + 1e-9; // far below the 1/4096 quantum
        let b = InvocationCtx { data_cold_fraction: drift, bypass_ignite: false };
        assert_ne!(a, b, "derived PartialEq splits on sub-quantum drift");
        let ka = MemoKey::new(0, a.data_cold_fraction, a.bypass_ignite, 1, 2).unwrap();
        let kb = MemoKey::new(0, b.data_cold_fraction, b.bypass_ignite, 1, 2).unwrap();
        assert_eq!(ka, kb, "the quantized key must not split on sub-quantum drift");
    }

    #[test]
    fn nan_is_rejected_at_construction() {
        assert_eq!(
            MemoKey::new(0, f64::NAN, false, 1, 2),
            Err(MemoKeyError::NanColdFraction),
            "a NaN cold fraction must never become an Eq key"
        );
    }

    #[test]
    fn negative_zero_buckets_with_positive_zero() {
        let pos = MemoKey::new(0, 0.0, false, 1, 2).unwrap();
        let neg = MemoKey::new(0, -0.0, false, 1, 2).unwrap();
        assert_eq!(pos, neg);
        assert_eq!(pos.cold_bucket, 0);
    }

    #[test]
    fn out_of_range_fractions_clamp_to_the_bucket_range() {
        assert_eq!(MemoKey::new(0, -3.0, false, 1, 2).unwrap().cold_bucket, 0);
        assert_eq!(MemoKey::new(0, 7.5, false, 1, 2).unwrap().cold_bucket, COLD_QUANTA as u16);
        assert_eq!(MemoKey::new(0, 1.0, false, 1, 2).unwrap().cold_bucket, COLD_QUANTA as u16);
    }

    #[test]
    fn distinct_buckets_for_distinct_quanta() {
        let a = MemoKey::new(0, 0.25, false, 1, 2).unwrap();
        let b = MemoKey::new(0, 0.25 + 1.0 / f64::from(COLD_QUANTA), false, 1, 2).unwrap();
        assert_ne!(a.cold_bucket, b.cold_bucket);
    }

    #[test]
    fn dispatch_digest_distinguishes_every_folded_input() {
        let h = HISTORY_SEED;
        let base = dispatch_digest(h, 1, 0, false, None);
        assert_ne!(base, dispatch_digest(h, 2, 0, false, None), "function index folds");
        assert_ne!(base, dispatch_digest(h, 1, 1, false, None), "invocation count folds");
        assert_ne!(base, dispatch_digest(h, 1, 0, true, None), "bypass flag folds");
        assert_ne!(
            dispatch_digest(base, 1, 1, false, None),
            dispatch_digest(h, 1, 1, false, None),
            "history chains"
        );
    }

    fn entry(cycles: u64) -> MemoEntry {
        let res = InvocationResult { cycles, ..InvocationResult::default() };
        MemoEntry { res, taken: None, events: Vec::new() }
    }

    fn key(n: u64) -> MemoKey {
        MemoKey::new((n % 7) as u32, 0.0, false, 1, n).unwrap()
    }

    #[test]
    fn cache_round_trips_and_reports_len() {
        let cache = MemoCache::new(64);
        assert!(cache.is_empty());
        assert!(cache.lookup(&key(1)).is_none());
        assert_eq!(cache.insert(key(1), entry(42)), 0);
        assert_eq!(cache.lookup(&key(1)).expect("present").res.cycles, 42);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_eviction_is_bounded_and_counted() {
        // One entry per shard: every shard collision evicts.
        let cache = MemoCache::new(1);
        let mut evicted = 0;
        for n in 0..256 {
            evicted += cache.insert(key(n), entry(n));
        }
        assert!(cache.len() <= SHARDS, "bound respected: {} entries", cache.len());
        assert_eq!(evicted as usize, 256 - cache.len(), "every displaced entry was counted");
    }

    #[test]
    fn cache_replacing_a_key_does_not_grow_the_order_queue() {
        let cache = MemoCache::new(16);
        for _ in 0..100 {
            cache.insert(key(3), entry(3));
        }
        assert_eq!(cache.len(), 1);
    }
}
