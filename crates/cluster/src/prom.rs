//! Prometheus-style metrics exposition for cluster runs.
//!
//! Maps a ([`ClusterConfig`], [`ClusterOutcome`]) pair onto an
//! [`ignite_obs::MetricsRegistry`]: run totals, the latency histogram on
//! the [`LATENCY_BUCKETS`] grid, per-core usage, node-store counters,
//! aggregate replay/degradation counters and a per-function breakdown.
//! The registry's exposition is byte-deterministic, so two same-seed
//! runs — in different processes — emit identical metrics text (the
//! `obs` integration tests rely on this).
//!
//! Callers that sweep a parameter pass the swept value through
//! `extra_labels` (e.g. `store_capacity` for the capacity sweep) so one
//! scrape file can hold every point of the sweep.

use ignite_obs::MetricsRegistry;

use crate::sim::{ClusterConfig, ClusterOutcome, LATENCY_BUCKETS};

/// Builds the metrics registry for one finished run.
pub fn metrics_for(cfg: &ClusterConfig, out: &ClusterOutcome) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    record_metrics(&mut reg, cfg, out, &[]);
    reg
}

/// Records trace-buffer health for a traced run: how many events the
/// ring buffer retained and how many it evicted under pressure. A
/// nonzero drop counter means the exported trace is truncated.
pub fn record_trace_health(reg: &mut MetricsRegistry, events: u64, dropped: u64) {
    reg.inc_counter(
        "ignite_trace_events_total",
        "Events retained in the trace ring buffer",
        &[],
        events,
    );
    reg.inc_counter(
        "ignite_trace_dropped_events_total",
        "Events evicted from the trace ring buffer under pressure",
        &[],
        dropped,
    );
}

/// Records one run into an existing registry under extra labels, so a
/// sweep can accumulate every point into a single exposition.
pub fn record_metrics(
    reg: &mut MetricsRegistry,
    cfg: &ClusterConfig,
    out: &ClusterOutcome,
    extra_labels: &[(&str, &str)],
) {
    fn with<'a>(
        base: &[(&'a str, &'a str)],
        more: &[(&'a str, &'a str)],
    ) -> Vec<(&'a str, &'a str)> {
        let mut v = base.to_vec();
        v.extend_from_slice(more);
        v
    }
    let base: Vec<(&str, &str)> = {
        let mut v = vec![("fe", cfg.fe.name.as_str())];
        v.extend_from_slice(extra_labels);
        v
    };

    reg.inc_counter(
        "ignite_cluster_invocations_total",
        "Invocations completed over the run",
        &base,
        out.invocations,
    );
    reg.set_gauge(
        "ignite_cluster_makespan_cycles",
        "Cycle of the last completion",
        &base,
        out.makespan as f64,
    );
    reg.set_gauge(
        "ignite_cluster_mean_utilization",
        "Mean core utilization over the makespan",
        &base,
        out.mean_utilization(),
    );
    reg.merge_histogram(
        "ignite_cluster_latency_cycles",
        "Invocation latency (arrival to completion)",
        &LATENCY_BUCKETS,
        &base,
        &out.latency_histogram,
        out.latency_sum,
    );
    for (p, v) in [(50u32, out.p50_latency), (95, out.p95_latency), (99, out.p99_latency)] {
        let q = format!("{}", f64::from(p) / 100.0);
        reg.set_gauge(
            "ignite_cluster_latency_quantile_cycles",
            "Nearest-rank latency percentiles",
            &with(&base, &[("quantile", q.as_str())]),
            v as f64,
        );
    }

    for (i, core) in out.cores.iter().enumerate() {
        let id = i.to_string();
        let labels = with(&base, &[("core", id.as_str())]);
        reg.inc_counter(
            "ignite_core_invocations_total",
            "Invocations served per core",
            &labels,
            core.invocations,
        );
        reg.inc_counter(
            "ignite_core_busy_cycles_total",
            "Busy cycles per core",
            &labels,
            core.busy_cycles,
        );
        reg.set_gauge(
            "ignite_core_utilization",
            "Busy fraction of the makespan per core",
            &labels,
            core.utilization,
        );
    }

    let st = &out.store;
    for (name, help, v) in [
        ("ignite_store_hits_total", "Metadata store hits", st.hits),
        ("ignite_store_misses_total", "Metadata store misses", st.misses),
        ("ignite_store_insertions_total", "Metadata store insertions", st.insertions),
        ("ignite_store_evictions_total", "Metadata store evictions", st.evictions),
        ("ignite_store_rejected_total", "Oversized regions rejected", st.rejected),
        ("ignite_store_bytes_evicted_total", "Bytes evicted from the store", st.bytes_evicted),
    ] {
        reg.inc_counter(name, help, &base, v);
    }
    reg.set_gauge(
        "ignite_store_footprint_bytes",
        "Store bytes resident at end of run",
        &base,
        out.footprint_bytes as f64,
    );
    reg.set_gauge(
        "ignite_store_peak_footprint_bytes",
        "Store bytes resident at the high-water mark",
        &base,
        out.peak_footprint_bytes as f64,
    );

    let total = out.total_result();
    for (name, help, v) in [
        ("ignite_replay_entries_restored_total", "BTB entries restored by replay", {
            total.replay.entries_restored
        }),
        ("ignite_replay_decode_errors_total", "Metadata regions dropped undecodable", {
            total.replay.decode_errors
        }),
        ("ignite_replay_entries_dropped_total", "Replay entries dropped", {
            total.replay.entries_dropped
        }),
        ("ignite_replay_stale_restored_total", "Stale entries restored then corrected", {
            total.replay.stale_restored
        }),
        ("ignite_replay_watchdog_abandons_total", "Replays abandoned by the watchdog", {
            total.replay.watchdog_abandons
        }),
        ("ignite_replay_unfinished_total", "Invocation ends with replay entries pending", {
            total.replay_unfinished
        }),
    ] {
        reg.inc_counter(name, help, &base, v);
    }

    // Per-node families only exist for non-default topologies, so
    // single-node expositions stay byte-identical to pre-multinode
    // output.
    if !cfg.topology.is_default() {
        for (i, nd) in out.nodes.iter().enumerate() {
            let id = i.to_string();
            let labels = with(&base, &[("node", id.as_str())]);
            for (name, help, v) in [
                ("ignite_node_submitted_total", "Invocations routed to the node", nd.submitted),
                ("ignite_node_completed_total", "Invocations completed on the node", nd.completed),
                ("ignite_node_dropped_total", "Invocations dropped on the node", nd.dropped),
                ("ignite_node_busy_cycles_total", "Busy cycles summed over node cores", {
                    nd.busy_cycles
                }),
                ("ignite_node_store_hits_total", "Node store hits", nd.store.hits),
                ("ignite_node_store_misses_total", "Node store misses", nd.store.misses),
                (
                    "ignite_node_keepalive_wasted_cycles_total",
                    "Keep-alive cycles past the last fetch of a protected region",
                    nd.wasted_keepalive_cycles,
                ),
            ] {
                reg.inc_counter(name, help, &labels, v);
            }
            reg.set_gauge(
                "ignite_node_queue_peak",
                "Peak queue depth observed on the node",
                &labels,
                nd.queue_peak as f64,
            );
            reg.set_gauge(
                "ignite_node_utilization",
                "Busy fraction of the makespan across node cores",
                &labels,
                nd.utilization,
            );
            reg.set_gauge(
                "ignite_node_store_hit_rate",
                "Node store hit rate",
                &labels,
                nd.store.hit_rate(),
            );
            reg.set_gauge(
                "ignite_node_store_footprint_bytes",
                "Node store bytes resident at end of run",
                &labels,
                nd.footprint_bytes as f64,
            );
            reg.set_gauge(
                "ignite_node_store_peak_footprint_bytes",
                "Node store bytes resident at the high-water mark",
                &labels,
                nd.peak_footprint_bytes as f64,
            );
        }
    }

    // Chaos counters only exist for runs with failure injection, so
    // chaos-free expositions stay byte-identical to pre-chaos output.
    if let Some(ch) = &out.chaos {
        for (name, help, v) in [
            ("ignite_chaos_submitted_total", "Invocations submitted to the cluster", ch.submitted),
            ("ignite_chaos_completed_total", "Invocations completed despite chaos", ch.completed),
            (
                "ignite_chaos_retried_to_success_total",
                "Invocations that completed after at least one failed attempt",
                ch.retried_to_success,
            ),
            ("ignite_chaos_attempts_failed_total", "Attempts killed or dropped", {
                ch.attempts_failed
            }),
            ("ignite_chaos_crash_kills_total", "Attempts killed by a core crash", ch.crash_kills),
            ("ignite_chaos_dispatch_drops_total", "Attempts lost at dispatch", ch.dispatch_drops),
            (
                "ignite_chaos_dropped_total",
                "Invocations dropped after exhausting their deadline",
                ch.dropped_deadline,
            ),
            (
                "ignite_chaos_dropped_retries_total",
                "Invocations dropped after exhausting their retry budget",
                ch.dropped_retries_exhausted,
            ),
            (
                "ignite_chaos_degraded_total",
                "Invocations degraded to cold execution",
                ch.degraded_total(),
            ),
            ("ignite_chaos_straggled_total", "Attempts slowed by a straggler window", ch.straggled),
            (
                "ignite_chaos_writeback_skipped_total",
                "Metadata writebacks skipped (store unavailable)",
                ch.writeback_skipped,
            ),
            (
                "ignite_chaos_store_regions_dropped_total",
                "Corrupt or lost store regions evicted",
                ch.store_regions_dropped,
            ),
            ("ignite_chaos_breaker_opens_total", "Circuit breaker open transitions", {
                ch.breaker_opens
            }),
            ("ignite_chaos_breaker_closes_total", "Circuit breaker close transitions", {
                ch.breaker_closes
            }),
            ("ignite_chaos_retry_cycles_total", "Cycles lost to failed attempts and backoff", {
                ch.retry_cycles
            }),
        ] {
            reg.inc_counter(name, help, &base, v);
        }
        for (reason, v) in [
            ("unavailable", ch.degraded_unavailable),
            ("corrupt", ch.degraded_corrupt),
            ("loss", ch.degraded_loss),
            ("breaker", ch.degraded_breaker),
        ] {
            reg.inc_counter(
                "ignite_chaos_degraded_by_reason_total",
                "Invocations degraded to cold execution, by reason",
                &with(&base, &[("reason", reason)]),
                v,
            );
        }
    }

    // Memo counters only exist for memoized runs, so plain expositions
    // stay byte-identical to pre-memo output.
    if let Some(m) = &out.memo {
        for (name, help, v) in [
            ("ignite_memo_lookups_total", "Invocation memo cache probes", m.lookups),
            ("ignite_memo_hits_total", "Memo probes that replayed a cached result", m.hits),
            ("ignite_memo_misses_total", "Memo probes that ran the engine", m.misses),
            ("ignite_memo_inserts_total", "Invocation results cached", m.inserts),
            ("ignite_memo_evictions_total", "Memo entries evicted by the capacity bound", {
                m.evictions
            }),
            (
                "ignite_memo_stale_reruns_total",
                "Speculative passes abandoned on a stale-core miss",
                m.stale_reruns,
            ),
            (
                "ignite_memo_cycles_saved_total",
                "Engine cycles replayed from cache instead of re-simulated",
                m.cycles_saved,
            ),
        ] {
            reg.inc_counter(name, help, &base, v);
        }
    }

    // Controller counters only exist for controller-on runs, so every
    // static-policy exposition stays byte-identical to pre-controller
    // output. All seven per-rule counters are always emitted (zeros
    // included) so absence of a rule is distinguishable from absence of
    // the controller.
    if let Some(ctrl) = &out.controller {
        for (name, help, v) in [
            ("ignite_ctrl_epochs_total", "Controller epoch evaluations", ctrl.epochs),
            ("ignite_ctrl_samples_total", "Invocations folded through the controller", {
                ctrl.samples
            }),
            (
                "ignite_ctrl_replay_denied_total",
                "Invocations dispatched with record/replay suppressed",
                ctrl.replay_denied,
            ),
            ("ignite_ctrl_store_denied_total", "Writebacks denied store admission", {
                ctrl.store_denied
            }),
        ] {
            reg.inc_counter(name, help, &base, v);
        }
        reg.set_gauge(
            "ignite_ctrl_active_cores",
            "Active-core cap per node at end of run",
            &base,
            ctrl.final_active_cores as f64,
        );
        for rule in ignite_obs::CtrlRule::ALL {
            reg.inc_counter(
                "ignite_ctrl_decisions_total",
                "Controller decisions actuated, by rule",
                &with(&base, &[("rule", rule.key())]),
                ctrl.fires(rule),
            );
        }
    }

    for f in &out.functions {
        let labels = with(&base, &[("function", f.abbr.as_str())]);
        reg.inc_counter(
            "ignite_function_invocations_total",
            "Invocations completed per function",
            &labels,
            f.invocations,
        );
        reg.set_gauge(
            "ignite_function_p99_latency_cycles",
            "Per-function 99th percentile latency",
            &labels,
            f.p99_latency as f64,
        );
        reg.set_gauge(
            "ignite_function_metadata_hit_rate",
            "Per-function metadata store hit rate",
            &labels,
            f.metadata_hit_rate(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ClusterSim;
    use ignite_workloads::arrival::ArrivalConfig;

    fn run() -> (ClusterConfig, ClusterOutcome) {
        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            ..ClusterConfig::default()
        };
        let out = ClusterSim::new(cfg.clone()).run();
        (cfg, out)
    }

    #[test]
    fn exposition_is_deterministic_and_complete() {
        let (cfg, out) = run();
        let a = metrics_for(&cfg, &out).expose();
        let b = metrics_for(&cfg, &out).expose();
        assert_eq!(a, b);
        for needle in [
            "ignite_cluster_invocations_total",
            "ignite_cluster_latency_cycles_bucket",
            "le=\"+Inf\"",
            "ignite_core_utilization",
            "ignite_store_hits_total",
            "ignite_replay_entries_restored_total",
            "ignite_function_p99_latency_cycles",
        ] {
            assert!(a.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn histogram_count_matches_invocations() {
        let (cfg, out) = run();
        let text = metrics_for(&cfg, &out).expose();
        let count_line = text
            .lines()
            .find(|l| l.starts_with("ignite_cluster_latency_cycles_count"))
            .expect("histogram count present");
        let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(count, out.invocations);
    }

    #[test]
    fn chaos_families_appear_only_under_chaos() {
        let (cfg, out) = run();
        let plain = metrics_for(&cfg, &out).expose();
        assert!(
            !plain.contains("ignite_chaos_"),
            "chaos-free exposition must have no chaos family"
        );
        let ccfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            chaos: Some(ignite_chaos::ChaosPlan::default_preset().seeded(7)),
            ..ClusterConfig::default()
        };
        let cout = ClusterSim::new(ccfg.clone()).run();
        let text = metrics_for(&ccfg, &cout).expose();
        for needle in [
            "ignite_chaos_submitted_total",
            "ignite_chaos_completed_total",
            "ignite_chaos_degraded_by_reason_total",
            "reason=\"corrupt\"",
            "ignite_chaos_retry_cycles_total",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn memo_families_appear_only_under_memoization() {
        let (cfg, out) = run();
        let plain = metrics_for(&cfg, &out).expose();
        assert!(!plain.contains("ignite_memo_"), "plain exposition must have no memo family");
        let cache = crate::memo::MemoCache::default();
        let mout = ClusterSim::new(cfg.clone()).run_memo(&cache);
        let text = metrics_for(&cfg, &mout).expose();
        for needle in [
            "ignite_memo_lookups_total",
            "ignite_memo_hits_total",
            "ignite_memo_misses_total",
            "ignite_memo_inserts_total",
            "ignite_memo_evictions_total",
            "ignite_memo_stale_reruns_total",
            "ignite_memo_cycles_saved_total",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn ctrl_families_appear_only_under_a_controller() {
        let (cfg, out) = run();
        let plain = metrics_for(&cfg, &out).expose();
        assert!(!plain.contains("ignite_ctrl_"), "plain exposition must have no ctrl family");
        let mut cout = out;
        cout.controller = Some(crate::policy::ControllerStats {
            epochs: 16,
            decisions: vec![crate::policy::Decision {
                at: 50_000,
                epoch: 0,
                rule: ignite_obs::CtrlRule::CoresDown,
                function: u32::MAX,
                value: 1,
                observed: 100,
                threshold: 400_000,
            }],
            samples: 500,
            replay_denied: 12,
            store_denied: 3,
            final_active_cores: 1,
        });
        let a = metrics_for(&cfg, &cout).expose();
        assert_eq!(a, metrics_for(&cfg, &cout).expose(), "exposition must be deterministic");
        for needle in [
            "ignite_ctrl_epochs_total",
            "ignite_ctrl_samples_total",
            "ignite_ctrl_replay_denied_total",
            "ignite_ctrl_store_denied_total",
            "ignite_ctrl_active_cores",
            "rule=\"cores_down\"",
            // Zero counters are still exposed: absence of a rule must be
            // distinguishable from absence of the controller.
            "rule=\"keepalive_retune\"",
        ] {
            assert!(a.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn node_families_appear_only_under_multinode() {
        let (cfg, out) = run();
        let plain = metrics_for(&cfg, &out).expose();
        assert!(!plain.contains("ignite_node_"), "single-node exposition must have no node family");
        let mcfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            topology: crate::sim::Topology {
                nodes: 2,
                scheduler: crate::sched::SchedulerKind::LeastLoaded,
                keepalive: crate::keepalive::KeepAliveKind::Fixed { window_cycles: 50_000 },
            },
            ..ClusterConfig::default()
        };
        let mout = ClusterSim::new(mcfg.clone()).run();
        let text = metrics_for(&mcfg, &mout).expose();
        for needle in [
            "ignite_node_submitted_total",
            "ignite_node_store_hit_rate",
            "ignite_node_keepalive_wasted_cycles_total",
            "node=\"1\"",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn sweep_points_share_one_registry_under_labels() {
        let (cfg, out) = run();
        let mut reg = MetricsRegistry::new();
        record_metrics(&mut reg, &cfg, &out, &[("store_capacity", "4096")]);
        record_metrics(&mut reg, &cfg, &out, &[("store_capacity", "65536")]);
        let text = reg.expose();
        assert!(text.contains("store_capacity=\"4096\""));
        assert!(text.contains("store_capacity=\"65536\""));
    }
}
