#![warn(missing_docs)]
//! `ignite-cluster`: a discrete-event serverless worker-fleet simulator
//! that serves interleaved invocation traffic over the front-end model.
//!
//! The paper's lukewarm setting is emergent, not scripted: a server
//! interleaves thousands of invocations of many functions, and each
//! function returns to find its front-end state partially evicted by
//! whoever ran in between (Ignite §2). The per-function harness imposes
//! that with a protocol flush; this crate *produces* it:
//!
//! * an open-loop Poisson arrival process with Zipf popularity skew over
//!   the 20-function suite ([`ignite_workloads::arrival`]), replayable via
//!   a text trace format;
//! * a deterministic N-node topology ([`sim::Topology`]): pluggable
//!   placement schedulers ([`sched`] — fifo, least-loaded, random:N
//!   power-of-N-choices, metadata-affinity) route arrivals onto nodes,
//!   and each node dispatches onto its own simulated cores, each a
//!   persistent [`ignite_engine::machine::Machine`] that is *never
//!   flushed* between invocations — other functions' code evicts
//!   front-end state naturally, and the per-(core, function) interleaving
//!   distance drives the back-end data-cold model
//!   ([`ignite_engine::sim::InvocationCtx`]);
//! * a bounded, per-node Ignite metadata store
//!   ([`ignite_core::MetadataStore`]) with LRU / size-aware / pin-hot
//!   eviction, charging record/replay DRAM bandwidth on the critical
//!   path, plus pluggable keep-alive pre-warm policies ([`keepalive`] —
//!   none, fixed-window, hybrid per-function idle-gap histogram) with
//!   dslab-faas-style cold/lukewarm/warm start and wasted-cycle
//!   accounting;
//! * queueing/latency accounting: per-function p50/p95/p99 invocation
//!   latency, core utilization, metadata hit rate and footprint, emitted
//!   as a versioned JSON report (schema [`report::CLUSTER_SCHEMA`]);
//! * observability: every DES transition reported to an
//!   [`ignite_obs::EventSink`] ([`sim::ClusterSim::run_trace_obs`]),
//!   exportable as a validated Chrome trace ([`tracecheck`]) and as
//!   deterministic Prometheus-style metrics ([`prom`]);
//! * failure injection and recovery ([`ignite_chaos`]): seeded core
//!   crash/repair windows, store corruption and unavailability,
//!   stragglers and dispatch drops, answered by deadlines, bounded
//!   retry with deterministic backoff, per-function circuit breakers
//!   and graceful degradation to cold execution. Chaos runs report
//!   under schema [`report::CLUSTER_SCHEMA_V2`] with a
//!   validator-enforced invocation conservation law; with chaos off
//!   every output is byte-identical to the failure-free simulator.
//!
//! Everything is bit-deterministic for a fixed seed, across thread counts
//! and processes: the event loop breaks ties by (completion before
//! arrival, core index), the store iterates `BTreeMap`s, and the report
//! serializes floats with shortest round-trip formatting.

pub mod fanout;
pub mod json;
pub mod keepalive;
pub mod memo;
pub mod policy;
pub mod prom;
pub mod report;
pub mod sched;
pub mod sim;
pub mod tracecheck;

pub use fanout::{run_indexed, PanicFailure};
pub use keepalive::{KeepAliveKind, KeepAliveRt};
pub use memo::{MemoCache, MemoKey, MemoKeyError, MemoStats};
pub use policy::{
    ClusterGauges, ControllerStats, Decision, PolicyHook, PolicySample, StaticPolicy,
};
pub use prom::{metrics_for, record_metrics, record_trace_health};
pub use report::{ClusterReport, ObsSummary, CLUSTER_SCHEMA, CLUSTER_SCHEMA_V2};
pub use sched::{NodeLoad, Scheduler, SchedulerKind};
pub use sim::{
    sweep_capacities, sweep_capacities_memo, ClusterConfig, ClusterOutcome, ClusterSim,
    ConfigError, CoreUsage, FunctionSummary, NodeUsage, Topology, LATENCY_BUCKETS,
};
pub use tracecheck::{validate_trace, TraceSummary};
