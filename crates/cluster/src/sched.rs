//! Pluggable node-placement schedulers for the multi-node cluster.
//!
//! A cluster run routes every arrival (and nothing else — retries stay
//! on the node that first accepted the job, so the per-node conservation
//! law `submitted == completed + dropped` is exact) through one
//! [`Scheduler`]. Placement sees a [`NodeLoad`] snapshot per node and
//! picks an index; every comparison ends in the node index, so placement
//! is a total order and a fixed `(seed, config)` reproduces the routing
//! bit-exactly in any process.
//!
//! The only stochastic policy — [`SchedulerKind::Random`], the classic
//! power-of-N-choices sampler — draws from its own stream forked off the
//! arrival seed under a fixed label, so adding or re-seeding it never
//! perturbs the arrival process (the same independence contract the
//! chaos layer keeps with `--chaos-seed`).
//!
//! With a single node every policy short-circuits to node 0 without
//! consuming randomness, which is what keeps `--nodes 1` runs
//! byte-identical to the committed single-node goldens regardless of the
//! scheduler named on the command line.

use ignite_uarch::rng::SplitMix64;

use crate::sim::ConfigError;

/// Label for the scheduler's RNG stream (forked from the arrival seed;
/// fixed so adding streams elsewhere never reshuffles placement).
const LABEL_SCHED: u64 = 0x53_43_48_45_44; // "SCHED"

/// Which placement policy routes arrivals onto nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// The single-queue legacy policy, generalized as first-fit: the
    /// lowest-indexed node with a free core, else the shortest queue.
    /// The default — and the only policy a 1-node cluster ever needs.
    Fifo,
    /// The node with the fewest outstanding jobs (busy cores + queued),
    /// ties to fewer queued, then lowest index.
    LeastLoaded,
    /// Power-of-N-choices: sample `choices` nodes (with replacement) on
    /// the scheduler RNG stream and keep the least loaded of the sample.
    Random {
        /// How many nodes to sample per placement (`random:N`; `random`
        /// alone means the classic power-of-two-choices `N = 2`).
        choices: u32,
    },
    /// Metadata-affinity: steer to the node whose store already holds
    /// the function's Ignite stream (least-loaded among holders),
    /// trading queue delay for replay hits; falls back to least-loaded
    /// when no node holds it.
    Affinity,
}

impl SchedulerKind {
    /// Stable spec string, as written into reports (inverse of
    /// [`SchedulerKind::parse`]).
    pub fn spec(&self) -> String {
        match self {
            SchedulerKind::Fifo => "fifo".to_string(),
            SchedulerKind::LeastLoaded => "least-loaded".to_string(),
            SchedulerKind::Random { choices } => format!("random:{choices}"),
            SchedulerKind::Affinity => "affinity".to_string(),
        }
    }

    /// Parses a scheduler spec: `fifo`, `least-loaded`, `random`,
    /// `random:N`, or `affinity`. Typos come back as a typed
    /// [`ConfigError::UnknownScheduler`], never a panic.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let unknown = || ConfigError::UnknownScheduler { spec: spec.to_string() };
        match spec {
            "fifo" => Ok(SchedulerKind::Fifo),
            "least-loaded" => Ok(SchedulerKind::LeastLoaded),
            "affinity" => Ok(SchedulerKind::Affinity),
            "random" => Ok(SchedulerKind::Random { choices: 2 }),
            _ => match spec.strip_prefix("random:") {
                Some(n) => match n.parse::<u32>() {
                    Ok(0) => Err(ConfigError::ZeroSchedulerChoices),
                    Ok(choices) => Ok(SchedulerKind::Random { choices }),
                    Err(_) => Err(unknown()),
                },
                None => Err(unknown()),
            },
        }
    }
}

/// What the scheduler may inspect about one node when placing a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeLoad {
    /// Cores currently serving an invocation (or held by a crash).
    pub busy_cores: usize,
    /// Jobs waiting in the node's dispatch queue.
    pub queued: usize,
    /// Cores neither busy nor held; first-fit targets these.
    pub free_cores: usize,
    /// Whether the node's metadata store holds the function's region
    /// (probed without counting a hit or a miss).
    pub holds_metadata: bool,
}

impl NodeLoad {
    /// Outstanding work: jobs holding a core plus jobs waiting for one.
    pub fn outstanding(&self) -> usize {
        self.busy_cores + self.queued
    }
}

/// The load key every deterministic policy minimizes (ties are broken
/// by node index at the call site, keeping the order total).
fn load_key(l: &NodeLoad) -> (usize, usize) {
    (l.outstanding(), l.queued)
}

/// Index of the load-key minimum among `candidates`, ties to the lowest
/// node index.
fn least_loaded_of(loads: &[NodeLoad], candidates: impl Iterator<Item = usize>) -> Option<usize> {
    candidates.min_by_key(|&i| (load_key(&loads[i]), i))
}

/// A scheduler ready to place jobs: the policy plus (for
/// [`SchedulerKind::Random`]) its private RNG stream.
#[derive(Debug, Clone)]
pub struct Scheduler {
    kind: SchedulerKind,
    rng: SplitMix64,
}

impl Scheduler {
    /// Builds the scheduler. `seed` is the arrival seed; the random
    /// policy forks its own stream from it under a fixed label.
    pub fn new(kind: SchedulerKind, seed: u64) -> Self {
        Scheduler { kind, rng: SplitMix64::new(seed).fork(LABEL_SCHED) }
    }

    /// The policy this scheduler runs.
    pub fn kind(&self) -> SchedulerKind {
        self.kind
    }

    /// Picks the node for one job. With a single node this returns 0
    /// without consuming randomness (the `--nodes 1` byte-identity
    /// contract).
    ///
    /// # Panics
    ///
    /// Panics if `loads` is empty.
    pub fn pick(&mut self, loads: &[NodeLoad]) -> usize {
        assert!(!loads.is_empty(), "cannot place a job on zero nodes");
        if loads.len() == 1 {
            return 0;
        }
        match self.kind {
            SchedulerKind::Fifo => (0..loads.len())
                .find(|&i| loads[i].free_cores > 0)
                .or_else(|| (0..loads.len()).min_by_key(|&i| (loads[i].queued, i)))
                .expect("non-empty loads"),
            SchedulerKind::LeastLoaded => {
                least_loaded_of(loads, 0..loads.len()).expect("non-empty loads")
            }
            SchedulerKind::Random { choices } => {
                let sample: Vec<usize> = (0..choices)
                    .map(|_| self.rng.next_below(loads.len() as u64) as usize)
                    .collect();
                least_loaded_of(loads, sample.into_iter()).expect("at least one choice")
            }
            SchedulerKind::Affinity => {
                let holders = (0..loads.len()).filter(|&i| loads[i].holds_metadata);
                least_loaded_of(loads, holders)
                    .or_else(|| least_loaded_of(loads, 0..loads.len()))
                    .expect("non-empty loads")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(busy: usize, queued: usize, free: usize, holds: bool) -> NodeLoad {
        NodeLoad { busy_cores: busy, queued, free_cores: free, holds_metadata: holds }
    }

    #[test]
    fn specs_round_trip() {
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::LeastLoaded,
            SchedulerKind::Random { choices: 2 },
            SchedulerKind::Random { choices: 5 },
            SchedulerKind::Affinity,
        ] {
            assert_eq!(SchedulerKind::parse(&kind.spec()), Ok(kind));
        }
        assert_eq!(SchedulerKind::parse("random"), Ok(SchedulerKind::Random { choices: 2 }));
        for bad in ["", "fifo ", "least_loaded", "random:0", "random:x", "affinty"] {
            assert!(SchedulerKind::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn single_node_short_circuits_every_policy() {
        let loads = [load(3, 9, 0, false)];
        for kind in [
            SchedulerKind::Fifo,
            SchedulerKind::LeastLoaded,
            SchedulerKind::Random { choices: 2 },
            SchedulerKind::Affinity,
        ] {
            let mut a = Scheduler::new(kind, 42);
            let before = a.rng.clone();
            assert_eq!(a.pick(&loads), 0);
            // The RNG stream was not consumed: `--nodes 1` runs stay
            // byte-identical no matter which scheduler was named.
            assert_eq!(a.rng.next_u64(), before.clone().next_u64());
        }
    }

    #[test]
    fn fifo_first_fits_then_falls_back_to_shortest_queue() {
        let mut s = Scheduler::new(SchedulerKind::Fifo, 1);
        assert_eq!(s.pick(&[load(2, 3, 0, false), load(1, 0, 1, false)]), 1);
        // Nothing free: shortest queue, ties to the lowest index.
        assert_eq!(s.pick(&[load(2, 3, 0, false), load(2, 1, 0, false)]), 1);
        assert_eq!(s.pick(&[load(2, 1, 0, false), load(2, 1, 0, false)]), 0);
    }

    #[test]
    fn least_loaded_minimizes_outstanding_work() {
        let mut s = Scheduler::new(SchedulerKind::LeastLoaded, 1);
        assert_eq!(s.pick(&[load(2, 2, 0, false), load(1, 0, 1, false), load(2, 1, 0, false)]), 1);
        // Equal outstanding: fewer queued wins, then the lower index.
        assert_eq!(s.pick(&[load(0, 2, 2, false), load(1, 1, 1, false)]), 1);
        assert_eq!(s.pick(&[load(1, 1, 1, false), load(1, 1, 1, false)]), 0);
    }

    #[test]
    fn affinity_steers_to_the_holder_even_when_busier() {
        let mut s = Scheduler::new(SchedulerKind::Affinity, 1);
        // Node 1 holds the region and is busier; affinity still takes it.
        assert_eq!(s.pick(&[load(0, 0, 2, false), load(2, 3, 0, true)]), 1);
        // Several holders: least loaded among them.
        assert_eq!(s.pick(&[load(2, 2, 0, true), load(1, 0, 1, true), load(0, 0, 2, false)]), 1);
        // No holder: plain least-loaded fallback.
        assert_eq!(s.pick(&[load(2, 2, 0, false), load(0, 0, 2, false)]), 1);
    }

    #[test]
    fn random_is_deterministic_under_a_fixed_seed() {
        let loads = [load(1, 0, 1, false), load(0, 0, 2, false), load(2, 2, 0, false)];
        let picks = |seed: u64| -> Vec<usize> {
            let mut s = Scheduler::new(SchedulerKind::Random { choices: 2 }, seed);
            (0..32).map(|_| s.pick(&loads)).collect()
        };
        assert_eq!(picks(42), picks(42), "same seed, same placements");
        assert_ne!(picks(42), picks(43), "distinct seeds should explore distinct placements");
        // Power-of-two-choices never picks the strictly worst node when
        // its sample contains a better one; over 32 draws the overloaded
        // node 2 must lose at least once to each lighter node.
        let p = picks(42);
        assert!(p.contains(&0) || p.contains(&1));
    }
}
