//! Keep-alive policies: how long a node keeps a function's Ignite
//! region pinned in its metadata store after an invocation completes.
//!
//! A keep-alive window trades store capacity (pinned regions cannot be
//! evicted while their window is open) for replay hits on the next
//! invocation. The policies mirror the serverless keep-alive lineage:
//! [`KeepAliveKind::None`] (evict on capacity pressure, the legacy
//! behaviour), [`KeepAliveKind::Fixed`] (one window for every function),
//! and [`KeepAliveKind::Hybrid`] — the hybrid-histogram policy of
//! "How Low Can You Go?" (Tan et al.): each function tracks a log2
//! histogram of its observed idle gaps and pins for the 99th-percentile
//! gap, falling back to a default window until it has seen enough gaps
//! to trust the histogram.
//!
//! Accounting follows the dslab-faas cost model: every cycle a window
//! holds a region that no invocation touches is a **wasted keep-alive
//! cycle**, charged per node and per function, so a policy sweep can
//! put hit-rate gains and pinning waste on the same axis.
//!
//! With [`KeepAliveKind::None`] every method is a no-op and the store
//! sees the exact eviction stream it saw before this module existed —
//! that is the byte-identity contract with the committed goldens.

use std::collections::BTreeMap;

use crate::sim::ConfigError;

/// Observations a hybrid histogram needs before its percentile
/// estimate overrides the default window.
const HYBRID_MIN_OBSERVATIONS: u64 = 4;

/// Bounds on any hybrid-derived window, in cycles (the histogram is
/// log2-bucketed, so the derived window is always a power of two).
const HYBRID_MIN_WINDOW: u64 = 1 << 10;
const HYBRID_MAX_WINDOW: u64 = 1 << 22;

/// Which keep-alive policy governs post-completion pinning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeepAliveKind {
    /// No pinning: regions live and die by store eviction alone. The
    /// default, and byte-identical to the pre-multinode simulator.
    None,
    /// Pin every function's region for the same window after each
    /// completion.
    Fixed {
        /// Window length in cycles (`fixed:CYCLES`).
        window_cycles: u64,
    },
    /// Hybrid-histogram: per-function idle-gap histograms pick the
    /// window (p99 of observed gaps); the default window covers the
    /// cold-start period before a function has enough history.
    Hybrid {
        /// Window used until a function has [`HYBRID_MIN_OBSERVATIONS`]
        /// gaps on record (`hybrid:CYCLES`; bare `hybrid` = 50000).
        default_window_cycles: u64,
    },
}

impl KeepAliveKind {
    /// Stable spec string, as written into reports (inverse of
    /// [`KeepAliveKind::parse`]).
    pub fn spec(&self) -> String {
        match self {
            KeepAliveKind::None => "none".to_string(),
            KeepAliveKind::Fixed { window_cycles } => format!("fixed:{window_cycles}"),
            KeepAliveKind::Hybrid { default_window_cycles } => {
                format!("hybrid:{default_window_cycles}")
            }
        }
    }

    /// Parses a keep-alive spec: `none`, `fixed:CYCLES`, `hybrid`, or
    /// `hybrid:CYCLES`. Typos come back as a typed
    /// [`ConfigError::UnknownKeepAlive`], never a panic.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let unknown = || ConfigError::UnknownKeepAlive { spec: spec.to_string() };
        match spec {
            "none" => Ok(KeepAliveKind::None),
            "hybrid" => Ok(KeepAliveKind::Hybrid { default_window_cycles: 50_000 }),
            _ => {
                if let Some(w) = spec.strip_prefix("fixed:") {
                    return match w.parse::<u64>() {
                        Ok(0) => Err(ConfigError::ZeroKeepAliveWindow),
                        Ok(window_cycles) => Ok(KeepAliveKind::Fixed { window_cycles }),
                        Err(_) => Err(unknown()),
                    };
                }
                if let Some(w) = spec.strip_prefix("hybrid:") {
                    return match w.parse::<u64>() {
                        Ok(0) => Err(ConfigError::ZeroKeepAliveWindow),
                        Ok(default_window_cycles) => {
                            Ok(KeepAliveKind::Hybrid { default_window_cycles })
                        }
                        Err(_) => Err(unknown()),
                    };
                }
                Err(unknown())
            }
        }
    }
}

/// Per-function log2 histogram of observed idle gaps (completion to
/// next fetch), feeding the hybrid policy's percentile window.
#[derive(Debug, Clone)]
struct IdleHist {
    counts: [u64; 64],
    total: u64,
}

impl Default for IdleHist {
    fn default() -> Self {
        IdleHist { counts: [0; 64], total: 0 }
    }
}

impl IdleHist {
    fn record(&mut self, gap: u64) {
        // Bucket i covers [2^i, 2^(i+1)): floor(log2) of the gap.
        let bucket = 63 - gap.max(1).leading_zeros() as usize;
        self.counts[bucket] += 1;
        self.total += 1;
    }

    /// p99 of recorded gaps, rounded up to its bucket's upper bound and
    /// clamped to the hybrid window range; `None` with too few gaps.
    fn p99_window(&self) -> Option<u64> {
        if self.total < HYBRID_MIN_OBSERVATIONS {
            return None;
        }
        let rank = (self.total * 99).div_ceil(100).max(1);
        let mut seen = 0;
        for (bucket, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if bucket >= 63 { u64::MAX } else { 1u64 << (bucket + 1) };
                return Some(upper.clamp(HYBRID_MIN_WINDOW, HYBRID_MAX_WINDOW));
            }
        }
        None
    }
}

/// One open keep-alive episode: the region has been pinned on a node
/// since `since` and stays pinned until `until` (or the next fetch,
/// whichever comes first).
#[derive(Debug, Clone, Copy)]
struct Slot {
    function: usize,
    since: u64,
    until: u64,
}

/// Keep-alive runtime: open episodes, per-function idle histograms, and
/// the wasted-cycle ledgers. One instance serves the whole cluster;
/// episodes are keyed by `(node, container)` so nodes never share a
/// window.
#[derive(Debug, Clone)]
pub struct KeepAliveRt {
    kind: KeepAliveKind,
    hist: BTreeMap<usize, IdleHist>,
    slots: BTreeMap<(usize, u64), Slot>,
    wasted_node: Vec<u64>,
    wasted_fn: Vec<u64>,
}

impl KeepAliveRt {
    /// Builds the runtime for `nodes` nodes and `functions` functions.
    pub fn new(kind: KeepAliveKind, nodes: usize, functions: usize) -> Self {
        KeepAliveRt {
            kind,
            hist: BTreeMap::new(),
            slots: BTreeMap::new(),
            wasted_node: vec![0; nodes],
            wasted_fn: vec![0; functions],
        }
    }

    /// Whether any pinning can happen at all.
    pub fn enabled(&self) -> bool {
        self.kind != KeepAliveKind::None
    }

    /// The window the policy would grant `function` right now.
    fn window_for(&self, function: usize) -> Option<u64> {
        match self.kind {
            KeepAliveKind::None => None,
            KeepAliveKind::Fixed { window_cycles } => Some(window_cycles),
            KeepAliveKind::Hybrid { default_window_cycles } => Some(
                self.hist
                    .get(&function)
                    .and_then(IdleHist::p99_window)
                    .unwrap_or(default_window_cycles),
            ),
        }
    }

    /// Closes an episode at `end`, charging its unused span as waste.
    fn close(&mut self, node: usize, slot: Slot, end: u64) {
        let idle = end.min(slot.until).saturating_sub(slot.since);
        self.wasted_node[node] += idle;
        self.wasted_fn[slot.function] += idle;
    }

    /// An invocation of `function` completed on `node` at `completion`:
    /// open (or refresh) the pin on its region.
    pub fn on_complete(&mut self, node: usize, function: usize, container: u64, completion: u64) {
        self.on_complete_with(node, function, container, completion, None);
    }

    /// [`KeepAliveRt::on_complete`] with an optional window override —
    /// the policy-controller seam. `Some(w)` pins for exactly `w`
    /// cycles regardless of what this policy would grant; `None` is
    /// the plain policy window. Under [`KeepAliveKind::None`] the
    /// override is ignored (there is no pinning machinery to retune).
    pub fn on_complete_with(
        &mut self,
        node: usize,
        function: usize,
        container: u64,
        completion: u64,
        override_window: Option<u64>,
    ) {
        if !self.enabled() {
            return;
        }
        let window = match override_window {
            Some(w) => w,
            None => match self.window_for(function) {
                Some(w) => w,
                None => return,
            },
        };
        let slot = Slot { function, since: completion, until: completion.saturating_add(window) };
        if let Some(prev) = self.slots.insert((node, container), slot) {
            // A previous episode was never consumed by a fetch (e.g. the
            // next invocation bypassed the store); its span was waste.
            self.close(node, prev, completion);
        }
    }

    /// `node` is about to fetch `container` at `t` (hit or miss): the
    /// open episode, if any, ends here — its span up to `t` was useful,
    /// anything the window still promised past `t` costs nothing. The
    /// observed idle gap feeds the hybrid histogram.
    pub fn on_fetch(&mut self, node: usize, container: u64, t: u64) {
        if !self.enabled() {
            return;
        }
        if let Some(slot) = self.slots.remove(&(node, container)) {
            if matches!(self.kind, KeepAliveKind::Hybrid { .. }) {
                self.hist.entry(slot.function).or_default().record(t.saturating_sub(slot.since));
            }
            if t < slot.until {
                // Reused inside the window: nothing wasted.
            } else {
                self.close(node, slot, t);
            }
        }
    }

    /// Whether `container` is pinned on `node` at time `t` (eviction
    /// protection; the store may still drop it if *everything* resident
    /// is pinned and capacity demands a victim).
    pub fn is_protected(&self, node: usize, container: u64, t: u64) -> bool {
        self.slots.get(&(node, container)).is_some_and(|s| t < s.until)
    }

    /// End of run: every still-open episode wasted its span up to the
    /// makespan (or its window end, whichever came first).
    pub fn finish(&mut self, makespan: u64) {
        let open: Vec<((usize, u64), Slot)> = self.slots.iter().map(|(&k, &v)| (k, v)).collect();
        self.slots.clear();
        for ((node, _), slot) in open {
            self.close(node, slot, makespan);
        }
    }

    /// Wasted keep-alive cycles charged to `node`.
    pub fn wasted_on_node(&self, node: usize) -> u64 {
        self.wasted_node[node]
    }

    /// Wasted keep-alive cycles charged to `function`.
    pub fn wasted_for_function(&self, function: usize) -> u64 {
        self.wasted_fn.get(function).copied().unwrap_or(0)
    }

    /// Total wasted keep-alive cycles across the cluster.
    pub fn wasted_total(&self) -> u64 {
        self.wasted_node.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip() {
        for kind in [
            KeepAliveKind::None,
            KeepAliveKind::Fixed { window_cycles: 1 },
            KeepAliveKind::Fixed { window_cycles: 200_000 },
            KeepAliveKind::Hybrid { default_window_cycles: 50_000 },
        ] {
            assert_eq!(KeepAliveKind::parse(&kind.spec()), Ok(kind));
        }
        assert_eq!(
            KeepAliveKind::parse("hybrid"),
            Ok(KeepAliveKind::Hybrid { default_window_cycles: 50_000 })
        );
        for bad in ["", "off", "fixed", "fixed:0", "fixed:x", "hybrid:0", "hybird"] {
            assert!(KeepAliveKind::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn none_is_inert() {
        let mut rt = KeepAliveRt::new(KeepAliveKind::None, 2, 3);
        assert!(!rt.enabled());
        rt.on_complete(0, 1, 10, 1_000);
        assert!(!rt.is_protected(0, 10, 1_001));
        rt.on_fetch(0, 10, 2_000);
        rt.finish(100_000);
        assert_eq!(rt.wasted_total(), 0);
    }

    #[test]
    fn fixed_window_protects_then_expires() {
        let mut rt = KeepAliveRt::new(KeepAliveKind::Fixed { window_cycles: 100 }, 1, 1);
        rt.on_complete(0, 0, 7, 1_000);
        assert!(rt.is_protected(0, 7, 1_050));
        assert!(!rt.is_protected(0, 7, 1_100), "window end is exclusive");
        // The pin is per-node: node-local state never leaks.
        let mut rt2 = KeepAliveRt::new(KeepAliveKind::Fixed { window_cycles: 100 }, 2, 1);
        rt2.on_complete(0, 0, 7, 1_000);
        assert!(!rt2.is_protected(1, 7, 1_050));
    }

    #[test]
    fn wasted_cycles_follow_the_dslab_accounting() {
        let mut rt = KeepAliveRt::new(KeepAliveKind::Fixed { window_cycles: 100 }, 1, 2);
        // Reused inside the window: nothing wasted.
        rt.on_complete(0, 0, 7, 1_000);
        rt.on_fetch(0, 7, 1_040);
        assert_eq!(rt.wasted_total(), 0);
        // Reused after expiry: the whole window was held for nothing.
        rt.on_complete(0, 0, 7, 2_000);
        rt.on_fetch(0, 7, 5_000);
        assert_eq!(rt.wasted_total(), 100);
        // Never reused: charged up to the makespan, capped at the window.
        rt.on_complete(0, 1, 9, 6_000);
        rt.finish(6_030);
        assert_eq!(rt.wasted_total(), 130);
        assert_eq!(rt.wasted_for_function(1), 30);
        assert_eq!(rt.wasted_on_node(0), 130);
    }

    #[test]
    fn hybrid_histogram_tracks_the_idle_gap_percentile() {
        let mut rt = KeepAliveRt::new(KeepAliveKind::Hybrid { default_window_cycles: 77 }, 1, 1);
        // Too little history: default window.
        assert_eq!(rt.window_for(0), Some(77));
        let mut t = 0u64;
        for _ in 0..8 {
            rt.on_complete(0, 0, 5, t);
            t += 3_000; // gap of 3000 cycles, bucket [2048, 4096)
            rt.on_fetch(0, 5, t);
            t += 10;
        }
        // p99 of a point mass at 3000 is its bucket's upper bound, 4096.
        assert_eq!(rt.window_for(0), Some(4_096));
        // Tiny gaps clamp up to the minimum window.
        let mut small = KeepAliveRt::new(KeepAliveKind::Hybrid { default_window_cycles: 77 }, 1, 1);
        for i in 0..8u64 {
            small.on_complete(0, 0, 5, i * 100);
            small.on_fetch(0, 5, i * 100 + 2);
        }
        assert_eq!(small.window_for(0), Some(HYBRID_MIN_WINDOW));
    }

    /// Audit pin: the hybrid window clamp is exact at both power-of-two
    /// boundaries. A gap in the bucket just below the floor rounds up to
    /// exactly `HYBRID_MIN_WINDOW` (no off-by-one shift past it), a gap
    /// whose bucket upper bound IS the floor passes through unclamped,
    /// and gaps at or beyond the ceiling bucket — including the
    /// saturating `u64::MAX` top bucket — pin to `HYBRID_MAX_WINDOW`.
    #[test]
    fn hybrid_window_clamps_exactly_at_the_power_of_two_boundaries() {
        let fill = |gap: u64| {
            let mut h = IdleHist::default();
            for _ in 0..HYBRID_MIN_OBSERVATIONS {
                h.record(gap);
            }
            h.p99_window().expect("enough observations")
        };
        // Bucket [2^9, 2^10) rounds up to 2^10 == the floor: clamp is a
        // no-op, not a push to the next bucket.
        assert_eq!(fill((1 << 10) - 1), HYBRID_MIN_WINDOW);
        // Bucket [2^10, 2^11) rounds up to 2^11, already above the floor.
        assert_eq!(fill(1 << 10), 1 << 11);
        // Bucket [2^21, 2^22) rounds up to exactly the ceiling.
        assert_eq!(fill((1 << 22) - 1), HYBRID_MAX_WINDOW);
        // Bucket [2^22, 2^23) rounds up past the ceiling and clamps back.
        assert_eq!(fill(1 << 22), HYBRID_MAX_WINDOW);
        // The saturating top bucket (upper bound u64::MAX) clamps too.
        assert_eq!(fill(u64::MAX), HYBRID_MAX_WINDOW);
    }

    #[test]
    fn override_window_supersedes_the_policy_window() {
        let mut rt = KeepAliveRt::new(KeepAliveKind::Fixed { window_cycles: 100 }, 1, 1);
        rt.on_complete_with(0, 0, 7, 1_000, Some(10));
        assert!(rt.is_protected(0, 7, 1_009));
        assert!(!rt.is_protected(0, 7, 1_010), "overridden window, not the fixed 100");
        // None falls back to the policy window.
        rt.on_fetch(0, 7, 1_020);
        rt.on_complete_with(0, 0, 7, 2_000, None);
        assert!(rt.is_protected(0, 7, 2_099));
        // Under KeepAliveKind::None the override is ignored entirely.
        let mut off = KeepAliveRt::new(KeepAliveKind::None, 1, 1);
        off.on_complete_with(0, 0, 7, 1_000, Some(1_000_000));
        assert!(!off.is_protected(0, 7, 1_001));
    }

    #[test]
    fn refreshing_an_unconsumed_slot_charges_the_old_episode() {
        let mut rt = KeepAliveRt::new(KeepAliveKind::Fixed { window_cycles: 100 }, 1, 1);
        rt.on_complete(0, 0, 7, 1_000);
        // A second completion without an intervening fetch (store was
        // bypassed): the first window ran 50 useful-less cycles.
        rt.on_complete(0, 0, 7, 1_050);
        assert_eq!(rt.wasted_total(), 50);
        assert!(rt.is_protected(0, 7, 1_149));
    }
}
