//! Validator for `ignite-trace-chrome-v1` trace files.
//!
//! Mirrors the report validator ([`crate::report::ClusterReport::validate`])
//! for the Chrome trace-event export in [`ignite_obs::chrome`]: parseable
//! JSON, the right schema tag in `otherData`, and every event shaped the
//! way Perfetto / `chrome://tracing` expect — a known phase (`M`, `X` or
//! `i`), numeric `ts`/`pid`/`tid`, and a `dur` on complete events. On
//! success it returns per-event-name counts, which the integration tests
//! use to assert that a cluster run produced at least one event for every
//! DES transition type.

use std::collections::BTreeMap;

use ignite_obs::CHROME_SCHEMA;

use crate::json::{self, Value};

/// What a valid trace contained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Non-metadata events, keyed by event name.
    pub events_by_name: BTreeMap<String, u64>,
    /// Non-metadata events, keyed by category.
    pub events_by_category: BTreeMap<String, u64>,
    /// Events the bounded ring buffer dropped before export.
    pub dropped_events: u64,
}

impl TraceSummary {
    /// Total non-metadata events.
    pub fn total_events(&self) -> u64 {
        self.events_by_name.values().sum()
    }
}

fn require_u64(obj: &[(String, Value)], ctx: &str, key: &str) -> Result<f64, String> {
    json::get(obj, key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric '{key}'"))
}

/// Validates a Chrome trace-event document emitted by
/// [`ignite_obs::to_chrome_json`].
pub fn validate_trace(text: &str) -> Result<TraceSummary, String> {
    let doc = json::parse(text)?;
    let obj = doc.as_object().ok_or("trace is not an object")?;

    let other = json::get(obj, "otherData")
        .and_then(Value::as_object)
        .ok_or("missing object 'otherData'")?;
    let schema = json::get(other, "schema").and_then(Value::as_str);
    if schema != Some(CHROME_SCHEMA) {
        return Err(format!("schema {schema:?}, want {CHROME_SCHEMA:?}"));
    }
    let dropped_events = json::get(other, "dropped_events")
        .and_then(Value::as_str)
        .ok_or("otherData: missing 'dropped_events'")?
        .parse::<u64>()
        .map_err(|_| "otherData: 'dropped_events' is not an integer".to_string())?;
    if json::get(obj, "displayTimeUnit").and_then(Value::as_str).is_none() {
        return Err("missing string 'displayTimeUnit'".to_string());
    }

    let events = json::get(obj, "traceEvents")
        .and_then(Value::as_array)
        .ok_or("missing array 'traceEvents'")?;
    if events.is_empty() {
        return Err("empty 'traceEvents' array".to_string());
    }

    let mut summary = TraceSummary { dropped_events, ..TraceSummary::default() };
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("traceEvents[{i}]");
        let eo = ev.as_object().ok_or_else(|| format!("{ctx} is not an object"))?;
        let name = json::get(eo, "name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx}: missing string 'name'"))?;
        let ph = json::get(eo, "ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx}: missing string 'ph'"))?;
        require_u64(eo, &ctx, "pid")?;
        require_u64(eo, &ctx, "tid")?;
        match ph {
            "M" => continue, // process/thread name metadata carries no ts
            "X" => {
                require_u64(eo, &ctx, "ts")?;
                require_u64(eo, &ctx, "dur")?;
            }
            "i" => {
                require_u64(eo, &ctx, "ts")?;
                if json::get(eo, "s").and_then(Value::as_str).is_none() {
                    return Err(format!("{ctx}: instant event missing scope 's'"));
                }
            }
            other => return Err(format!("{ctx}: unknown phase {other:?}")),
        }
        let cat = json::get(eo, "cat")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{ctx}: missing string 'cat'"))?;
        json::get(eo, "args")
            .and_then(Value::as_object)
            .ok_or_else(|| format!("{ctx}: missing object 'args'"))?;
        *summary.events_by_name.entry(name.to_string()).or_insert(0) += 1;
        *summary.events_by_category.entry(cat.to_string()).or_insert(0) += 1;
    }
    if summary.events_by_name.is_empty() {
        return Err("trace contains only metadata events".to_string());
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{ClusterConfig, ClusterSim};
    use ignite_obs::{to_chrome_json, ChromeOptions, TraceBuffer};
    use ignite_workloads::arrival::ArrivalConfig;

    fn trace_text() -> String {
        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 600_000, ..ArrivalConfig::default() },
            ..ClusterConfig::default()
        };
        let sim = ClusterSim::new(cfg);
        let mut buf = TraceBuffer::new(1 << 20);
        sim.run_obs(&mut buf);
        to_chrome_json(&buf, &ChromeOptions { process_name: "ignite-cluster", function_names: &[] })
    }

    #[test]
    fn cluster_trace_validates_with_event_counts() {
        let summary = validate_trace(&trace_text()).expect("own trace must validate");
        assert_eq!(summary.dropped_events, 0);
        for name in ["arrival", "dispatch", "context-switch", "complete", "store-hit"] {
            assert!(
                summary.events_by_name.get(name).copied().unwrap_or(0) > 0,
                "no {name} events: {:?}",
                summary.events_by_name
            );
        }
        assert!(summary.total_events() > 0);
    }

    #[test]
    fn chaos_run_emits_chaos_category_events() {
        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 600_000, ..ArrivalConfig::default() },
            chaos: Some(ignite_chaos::ChaosPlan::default_preset().seeded(7)),
            ..ClusterConfig::default()
        };
        let sim = ClusterSim::new(cfg);
        let mut buf = TraceBuffer::new(1 << 20);
        sim.run_obs(&mut buf);
        let text = to_chrome_json(
            &buf,
            &ChromeOptions { process_name: "ignite-cluster", function_names: &[] },
        );
        let summary = validate_trace(&text).expect("chaos trace must validate");
        assert!(
            summary.events_by_category.get("chaos").copied().unwrap_or(0) > 0,
            "no chaos-category events: {:?}",
            summary.events_by_category
        );
        // Chaos events live on their own track.
        assert!(text.contains("\"name\":\"chaos\""), "chaos thread name missing");
    }

    #[test]
    fn validate_rejects_wrong_schema_and_garbage() {
        let text = trace_text().replace(CHROME_SCHEMA, "ignite-trace-chrome-v0");
        assert!(validate_trace(&text).is_err());
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace("{}").is_err());
        assert!(validate_trace("{\"traceEvents\":[]}").is_err());
    }

    #[test]
    fn validate_rejects_malformed_events() {
        let good = trace_text();
        // Strip every ts field: complete/instant events become invalid.
        let no_ts = good.replace("\"ts\":", "\"_ts\":");
        assert!(validate_trace(&no_ts).is_err());
        let bad_ph = good.replace("\"ph\":\"i\"", "\"ph\":\"Q\"");
        assert!(validate_trace(&bad_ph).is_err());
    }
}
