//! Panic-isolated thread fan-out over an indexed work list.
//!
//! Extracted from the experiment harness so every sweep in the workspace
//! (suite functions in `ignite-harness`, capacity/seed points in the
//! cluster binary) shares one implementation. Workers pull indices from a
//! shared queue, run each job under `catch_unwind`, and deposit results in
//! order — one panicking job yields an `Err` in its slot instead of
//! tearing down the whole sweep, and results never depend on thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// One job panicked while running.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicFailure {
    /// The job's index in the work list.
    pub index: usize,
    /// The panic payload, rendered as text.
    pub message: String,
}

impl std::fmt::Display for PanicFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {} panicked: {}", self.index, self.message)
    }
}

impl std::error::Error for PanicFailure {}

/// Renders a panic payload as text (panics carry `&str` or `String`;
/// anything else gets a placeholder).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `job(0..count)` across up to `threads` worker threads, returning
/// results in index order. Each job is isolated under `catch_unwind`.
///
/// The jobs themselves must be deterministic; the fan-out then guarantees
/// the *collection* is too (slot `i` always holds job `i`'s outcome,
/// whatever the interleaving).
pub fn run_indexed<T, F>(count: usize, threads: usize, job: F) -> Vec<Result<T, PanicFailure>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<Option<Result<T, PanicFailure>>>> =
        Mutex::new((0..count).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(count).max(1) {
            scope.spawn(|| loop {
                let i = {
                    // A worker that panicked inside `catch_unwind` never
                    // poisons these locks, but a defensive recovery keeps
                    // the queue draining even if one did.
                    let mut n = next.lock().unwrap_or_else(PoisonError::into_inner);
                    let i = *n;
                    *n += 1;
                    i
                };
                if i >= count {
                    break;
                }
                let outcome = catch_unwind(AssertUnwindSafe(|| job(i)))
                    .map_err(|payload| PanicFailure { index: i, message: panic_message(payload) });
                results.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(outcome);
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|r| r.expect("every job slot is filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_index_order() {
        let r = run_indexed(32, 4, |i| i * i);
        for (i, slot) in r.iter().enumerate() {
            assert_eq!(slot, &Ok(i * i));
        }
    }

    #[test]
    fn panic_is_isolated_to_its_slot() {
        let r = run_indexed(8, 3, |i| {
            if i == 5 {
                panic!("boom at {i}");
            }
            i
        });
        for (i, slot) in r.iter().enumerate() {
            if i == 5 {
                let f = slot.as_ref().expect_err("job 5 must fail");
                assert_eq!(f.index, 5);
                assert!(f.message.contains("boom"));
            } else {
                assert_eq!(slot, &Ok(i));
            }
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        assert!(run_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let a = run_indexed(20, 1, |i| i + 1);
        let b = run_indexed(20, 16, |i| i + 1);
        assert_eq!(a, b);
    }
}
