//! The versioned cluster report (`ignite-cluster-v1`).
//!
//! One JSON document per run: the configuration, cluster-wide totals,
//! per-core utilization, node-store counters, aggregate replay statistics
//! (including every degradation counter), and a per-function breakdown
//! with p50/p95/p99 latency. Serialization is byte-deterministic — fixed
//! key order, integers for cycle counts, shortest round-trip formatting
//! for floats — so two same-seed runs, in different processes, produce
//! identical bytes (the golden tests rely on this).

use std::fmt::Write as _;

use ignite_core::ReplayStats;

use crate::json::{self, Value};
use crate::keepalive::KeepAliveKind;
use crate::sched::SchedulerKind;
use crate::sim::{ClusterConfig, ClusterOutcome};

/// Schema tag written into (and required of) every chaos-free report.
pub const CLUSTER_SCHEMA: &str = "ignite-cluster-v1";

/// Schema tag for reports of runs with failure injection enabled. The
/// v2 document is a strict superset of v1: a `chaos` section (the
/// failure plan, the retry policy, and every chaos counter) plus
/// per-function `retries`/`degraded`/`dropped` keys. The validator
/// enforces the invocation conservation law on v2 documents and rejects
/// chaos content under the v1 tag.
pub const CLUSTER_SCHEMA_V2: &str = "ignite-cluster-v2";

/// Observability health for a traced run: how much of the timeline the
/// bounded ring buffer kept. A nonzero `trace_dropped` means the
/// exported trace is truncated — surfaced here (and in the metrics
/// exposition) so truncation is detectable instead of silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsSummary {
    /// Events retained in the trace buffer at end of run.
    pub trace_events: u64,
    /// Events the ring buffer evicted under pressure.
    pub trace_dropped: u64,
}

/// A run's configuration and outcome, ready to serialize.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The configuration the run used.
    pub config: ClusterConfig,
    /// What happened.
    pub outcome: ClusterOutcome,
    /// Trace-buffer health, present only for traced runs. `None` (the
    /// untraced default) serializes no `obs` section at all, keeping
    /// untraced reports — including the golden snapshot — byte-identical
    /// to pre-observability output.
    pub obs: Option<ObsSummary>,
}

/// Renders a float for the report. Non-finite values serialize as `0`
/// rather than `json::number`'s `null`: every numeric field in the schema
/// is required to be a scalar, and a `null` (or a bare `NaN`) would make
/// the emitted report fail its own validator.
fn num(x: f64) -> String {
    if x.is_finite() {
        json::number(x)
    } else {
        "0".to_string()
    }
}

fn push_replay(out: &mut String, indent: &str, replay: &ReplayStats, unfinished: u64) {
    let _ = writeln!(out, "{indent}\"entries_restored\": {},", replay.entries_restored);
    let _ = writeln!(out, "{indent}\"bim_initialized\": {},", replay.bim_initialized);
    let _ = writeln!(out, "{indent}\"l2_prefetches\": {},", replay.l2_prefetches);
    let _ = writeln!(out, "{indent}\"itlb_warmed\": {},", replay.itlb_warmed);
    let _ = writeln!(out, "{indent}\"metadata_bytes\": {},", replay.metadata_bytes);
    let _ = writeln!(out, "{indent}\"throttled_steps\": {},", replay.throttled_steps);
    let _ = writeln!(out, "{indent}\"decode_errors\": {},", replay.decode_errors);
    let _ = writeln!(out, "{indent}\"entries_dropped\": {},", replay.entries_dropped);
    let _ = writeln!(out, "{indent}\"stale_restored\": {},", replay.stale_restored);
    let _ = writeln!(out, "{indent}\"watchdog_abandons\": {},", replay.watchdog_abandons);
    let _ = writeln!(out, "{indent}\"replay_unfinished\": {unfinished}");
}

impl ClusterReport {
    /// Pairs a configuration with its outcome.
    pub fn new(config: ClusterConfig, outcome: ClusterOutcome) -> Self {
        ClusterReport { config, outcome, obs: None }
    }

    /// Attaches trace-buffer health (traced runs only).
    pub fn with_obs(mut self, obs: ObsSummary) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The schema tag this report serializes under: v2 when the run had
    /// failure injection, v1 (byte-identical to pre-chaos output)
    /// otherwise.
    pub fn schema(&self) -> &'static str {
        if self.outcome.chaos.is_some() {
            CLUSTER_SCHEMA_V2
        } else {
            CLUSTER_SCHEMA
        }
    }

    /// Serializes the report.
    ///
    /// Multi-node runs (any non-default [`crate::sim::Topology`]) add a
    /// `nodes`/`scheduler`/`keepalive` trio to `config`, a top-level
    /// `nodes` array, a totals `wasted_keepalive_cycles`, and
    /// per-function cold-start accounting — all under the same schema
    /// tag. A default topology emits none of them, keeping single-node
    /// reports byte-identical to pre-multinode output.
    pub fn to_json(&self) -> String {
        let cfg = &self.config;
        let out_ = &self.outcome;
        let total = out_.total_result();
        let multi = !cfg.topology.is_default();
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{}\",", self.schema());
        s.push_str("  \"config\": {\n");
        let _ = writeln!(s, "    \"cores\": {},", cfg.cores);
        if multi {
            let _ = writeln!(s, "    \"nodes\": {},", cfg.topology.nodes);
            let _ =
                writeln!(s, "    \"scheduler\": {},", json::escape(&cfg.topology.scheduler.spec()));
            let _ =
                writeln!(s, "    \"keepalive\": {},", json::escape(&cfg.topology.keepalive.spec()));
        }
        let _ = writeln!(s, "    \"fe\": {},", json::escape(&cfg.fe.name));
        let _ = writeln!(s, "    \"scale\": {},", num(cfg.scale));
        let _ = writeln!(s, "    \"seed\": {},", cfg.arrival.seed);
        let _ = writeln!(s, "    \"functions\": {},", cfg.arrival.functions);
        let _ = writeln!(s, "    \"rate_per_mcycle\": {},", num(cfg.arrival.rate_per_mcycle));
        let _ = writeln!(s, "    \"zipf_s\": {},", num(cfg.arrival.zipf_s));
        let _ = writeln!(s, "    \"horizon_cycles\": {},", cfg.arrival.horizon_cycles);
        if let Some(spec) = &cfg.traffic {
            let _ = writeln!(s, "    \"traffic\": {},", json::escape(spec));
        }
        if let Some(spec) = &cfg.controller {
            let _ = writeln!(s, "    \"controller\": {},", json::escape(spec));
        }
        let _ = writeln!(s, "    \"store_capacity_bytes\": {},", cfg.store.capacity_bytes);
        let _ = writeln!(s, "    \"store_policy\": {},", json::escape(cfg.store.policy.name()));
        let _ = writeln!(s, "    \"store_pinned_hot\": {},", cfg.store.pinned_hot);
        let _ = writeln!(s, "    \"distance_saturation\": {},", num(cfg.distance_saturation));
        let _ = writeln!(s, "    \"dram_bytes_per_cycle\": {}", num(cfg.dram_bytes_per_cycle));
        s.push_str("  },\n");
        s.push_str("  \"totals\": {\n");
        let _ = writeln!(s, "    \"invocations\": {},", out_.invocations);
        let _ = writeln!(s, "    \"makespan_cycles\": {},", out_.makespan);
        let _ = writeln!(s, "    \"instructions\": {},", total.instructions);
        let _ = writeln!(s, "    \"cycles\": {},", total.cycles);
        let _ = writeln!(s, "    \"mean_latency_cycles\": {},", num(out_.mean_latency));
        let _ = writeln!(s, "    \"p50_latency_cycles\": {},", out_.p50_latency);
        let _ = writeln!(s, "    \"p95_latency_cycles\": {},", out_.p95_latency);
        let _ = writeln!(s, "    \"p99_latency_cycles\": {},", out_.p99_latency);
        if multi {
            let _ = writeln!(s, "    \"mean_utilization\": {},", num(out_.mean_utilization()));
            let _ =
                writeln!(s, "    \"wasted_keepalive_cycles\": {}", out_.wasted_keepalive_cycles());
        } else {
            let _ = writeln!(s, "    \"mean_utilization\": {}", num(out_.mean_utilization()));
        }
        s.push_str("  },\n");
        s.push_str("  \"cores\": [\n");
        for (i, c) in out_.cores.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"core\": {i}, \"invocations\": {}, \"busy_cycles\": {}, \
                 \"utilization\": {}}}{}",
                c.invocations,
                c.busy_cycles,
                num(c.utilization),
                if i + 1 == out_.cores.len() { "" } else { "," }
            );
        }
        s.push_str("  ],\n");
        if multi {
            s.push_str("  \"nodes\": [\n");
            for (i, nd) in out_.nodes.iter().enumerate() {
                s.push_str("    {\n");
                let _ = writeln!(s, "      \"node\": {i},");
                let _ = writeln!(s, "      \"submitted\": {},", nd.submitted);
                let _ = writeln!(s, "      \"completed\": {},", nd.completed);
                let _ = writeln!(s, "      \"dropped\": {},", nd.dropped);
                let _ = writeln!(s, "      \"queue_peak\": {},", nd.queue_peak);
                let _ = writeln!(s, "      \"busy_cycles\": {},", nd.busy_cycles);
                let _ = writeln!(s, "      \"utilization\": {},", num(nd.utilization));
                let _ = writeln!(
                    s,
                    "      \"wasted_keepalive_cycles\": {},",
                    nd.wasted_keepalive_cycles
                );
                s.push_str("      \"store\": {\n");
                let _ = writeln!(s, "        \"hits\": {},", nd.store.hits);
                let _ = writeln!(s, "        \"misses\": {},", nd.store.misses);
                let _ = writeln!(s, "        \"hit_rate\": {},", num(nd.store.hit_rate()));
                let _ = writeln!(s, "        \"footprint_bytes\": {},", nd.footprint_bytes);
                let _ =
                    writeln!(s, "        \"peak_footprint_bytes\": {}", nd.peak_footprint_bytes);
                s.push_str("      }\n");
                s.push_str(if i + 1 == out_.nodes.len() { "    }\n" } else { "    },\n" });
            }
            s.push_str("  ],\n");
        }
        s.push_str("  \"store\": {\n");
        let st = &out_.store;
        let _ = writeln!(s, "    \"hits\": {},", st.hits);
        let _ = writeln!(s, "    \"misses\": {},", st.misses);
        let _ = writeln!(s, "    \"hit_rate\": {},", num(st.hit_rate()));
        let _ = writeln!(s, "    \"insertions\": {},", st.insertions);
        let _ = writeln!(s, "    \"evictions\": {},", st.evictions);
        let _ = writeln!(s, "    \"rejected\": {},", st.rejected);
        let _ = writeln!(s, "    \"bytes_read\": {},", st.bytes_read);
        let _ = writeln!(s, "    \"bytes_written\": {},", st.bytes_written);
        let _ = writeln!(s, "    \"bytes_evicted\": {},", st.bytes_evicted);
        let _ = writeln!(s, "    \"footprint_bytes\": {},", out_.footprint_bytes);
        let _ = writeln!(s, "    \"peak_footprint_bytes\": {}", out_.peak_footprint_bytes);
        s.push_str("  },\n");
        s.push_str("  \"replay\": {\n");
        push_replay(&mut s, "    ", &total.replay, total.replay_unfinished);
        s.push_str("  },\n");
        // Workload fingerprint: present exactly when a `--traffic` spec
        // drove the run. Default Poisson/Zipf runs emit nothing here, so
        // pre-traffic reports stay byte-identical.
        if cfg.traffic.is_some() {
            let wl = &out_.workload;
            s.push_str("  \"workload\": {\n");
            let _ = writeln!(s, "    \"schema\": \"{}\",", ignite_traffic::WORKLOAD_SCHEMA);
            let _ = writeln!(s, "    \"arrivals\": {},", wl.arrivals);
            let _ = writeln!(s, "    \"functions\": {},", wl.functions);
            let _ = writeln!(s, "    \"horizon_cycles\": {},", wl.horizon_cycles);
            let _ = writeln!(s, "    \"rate_per_mcycle\": {},", num(wl.rate_per_mcycle));
            let _ = writeln!(s, "    \"interarrival_cv2\": {},", num(wl.interarrival_cv2));
            let _ = writeln!(s, "    \"zipf_s_hat\": {},", num(wl.zipf_s_hat));
            let _ = writeln!(s, "    \"top1_share\": {},", num(wl.top1_share));
            let _ = writeln!(s, "    \"top5_share\": {}", num(wl.top5_share));
            s.push_str("  },\n");
        }
        if let Some(ch) = &out_.chaos {
            let plan = cfg.chaos.as_ref().expect("chaos stats imply a chaos plan");
            let rp = &cfg.retry;
            s.push_str("  \"chaos\": {\n");
            s.push_str("    \"plan\": {\n");
            let _ = writeln!(s, "      \"seed\": {},", plan.seed);
            let _ = writeln!(s, "      \"crash_mtbf_cycles\": {},", plan.crash_mtbf_cycles);
            let _ = writeln!(s, "      \"crash_repair_cycles\": {},", plan.crash_repair_cycles);
            let _ = writeln!(s, "      \"straggle_mtbf_cycles\": {},", plan.straggle_mtbf_cycles);
            let _ = writeln!(
                s,
                "      \"straggle_duration_cycles\": {},",
                plan.straggle_duration_cycles
            );
            let _ = writeln!(s, "      \"straggle_factor_milli\": {},", plan.straggle_factor_milli);
            let _ = writeln!(
                s,
                "      \"store_unavail_mtbf_cycles\": {},",
                plan.store_unavail_mtbf_cycles
            );
            let _ = writeln!(
                s,
                "      \"store_unavail_duration_cycles\": {},",
                plan.store_unavail_duration_cycles
            );
            let _ = writeln!(s, "      \"corrupt_ppm\": {},", plan.store_fault.bit_flip_ppm);
            let _ = writeln!(s, "      \"loss_ppm\": {},", plan.store_fault.loss_ppm);
            let _ = writeln!(s, "      \"dispatch_drop_ppm\": {}", plan.dispatch_drop_ppm);
            s.push_str("    },\n");
            s.push_str("    \"retry\": {\n");
            let _ = writeln!(s, "      \"max_attempts\": {},", rp.max_attempts);
            let _ = writeln!(s, "      \"backoff_base_cycles\": {},", rp.backoff_base_cycles);
            let _ = writeln!(s, "      \"backoff_mult_milli\": {},", rp.backoff_mult_milli);
            let _ = writeln!(s, "      \"backoff_max_cycles\": {},", rp.backoff_max_cycles);
            let _ = writeln!(s, "      \"jitter_ppm\": {},", rp.jitter_ppm);
            let _ = writeln!(s, "      \"deadline_cycles\": {},", rp.deadline_cycles);
            let _ = writeln!(s, "      \"breaker_threshold\": {},", rp.breaker_threshold);
            let _ =
                writeln!(s, "      \"breaker_cooldown_cycles\": {}", rp.breaker_cooldown_cycles);
            s.push_str("    },\n");
            let _ = writeln!(s, "    \"submitted\": {},", ch.submitted);
            let _ = writeln!(s, "    \"completed\": {},", ch.completed);
            let _ = writeln!(s, "    \"retried_to_success\": {},", ch.retried_to_success);
            let _ = writeln!(s, "    \"attempts_failed\": {},", ch.attempts_failed);
            let _ = writeln!(s, "    \"crash_kills\": {},", ch.crash_kills);
            let _ = writeln!(s, "    \"dispatch_drops\": {},", ch.dispatch_drops);
            let _ = writeln!(s, "    \"dropped_deadline\": {},", ch.dropped_deadline);
            let _ =
                writeln!(s, "    \"dropped_retries_exhausted\": {},", ch.dropped_retries_exhausted);
            let _ = writeln!(s, "    \"degraded_unavailable\": {},", ch.degraded_unavailable);
            let _ = writeln!(s, "    \"degraded_corrupt\": {},", ch.degraded_corrupt);
            let _ = writeln!(s, "    \"degraded_loss\": {},", ch.degraded_loss);
            let _ = writeln!(s, "    \"degraded_breaker\": {},", ch.degraded_breaker);
            let _ = writeln!(s, "    \"straggled\": {},", ch.straggled);
            let _ = writeln!(s, "    \"writeback_skipped\": {},", ch.writeback_skipped);
            let _ = writeln!(s, "    \"store_regions_dropped\": {},", ch.store_regions_dropped);
            let _ = writeln!(s, "    \"breaker_opens\": {},", ch.breaker_opens);
            let _ = writeln!(s, "    \"breaker_closes\": {},", ch.breaker_closes);
            let _ = writeln!(s, "    \"retry_cycles\": {},", ch.retry_cycles);
            let _ = writeln!(s, "    \"backoff_cycles\": {}", ch.backoff_cycles);
            s.push_str("  },\n");
        }
        if let Some(obs) = &self.obs {
            s.push_str("  \"obs\": {\n");
            let _ = writeln!(s, "    \"trace_events\": {},", obs.trace_events);
            let _ = writeln!(s, "    \"trace_dropped\": {}", obs.trace_dropped);
            s.push_str("  },\n");
        }
        // The memo section exists only for memoized runs, so every
        // non-memoized report stays byte-identical to its golden.
        if let Some(m) = &out_.memo {
            s.push_str("  \"memo\": {\n");
            let _ = writeln!(s, "    \"lookups\": {},", m.lookups);
            let _ = writeln!(s, "    \"hits\": {},", m.hits);
            let _ = writeln!(s, "    \"misses\": {},", m.misses);
            let _ = writeln!(s, "    \"inserts\": {},", m.inserts);
            let _ = writeln!(s, "    \"evictions\": {},", m.evictions);
            let _ = writeln!(s, "    \"stale_reruns\": {},", m.stale_reruns);
            let _ = writeln!(s, "    \"cycles_saved\": {}", m.cycles_saved);
            s.push_str("  },\n");
        }
        // The controller section — the decision audit trail — exists
        // only for controller-on runs, so every controller-off report
        // stays byte-identical to its golden.
        if let Some(ctrl) = &out_.controller {
            s.push_str("  \"controller\": {\n");
            let _ = writeln!(s, "    \"epochs\": {},", ctrl.epochs);
            let _ = writeln!(s, "    \"samples\": {},", ctrl.samples);
            let _ = writeln!(s, "    \"replay_denied\": {},", ctrl.replay_denied);
            let _ = writeln!(s, "    \"store_denied\": {},", ctrl.store_denied);
            let _ = writeln!(s, "    \"final_active_cores\": {},", ctrl.final_active_cores);
            s.push_str("    \"fires\": {\n");
            for (i, &rule) in ignite_obs::CtrlRule::ALL.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "      \"{}\": {}{}",
                    rule.key(),
                    ctrl.fires(rule),
                    if i + 1 == ignite_obs::CtrlRule::ALL.len() { "" } else { "," }
                );
            }
            s.push_str("    },\n");
            s.push_str("    \"decisions\": [\n");
            for (i, d) in ctrl.decisions.iter().enumerate() {
                // Cluster-wide decisions (no single target function)
                // serialize `function` as -1.
                let function = if d.function == u32::MAX { -1 } else { d.function as i64 };
                let _ = writeln!(
                    s,
                    "      {{\"at\": {}, \"epoch\": {}, \"rule\": {}, \"function\": {}, \
                     \"value\": {}, \"observed\": {}, \"threshold\": {}}}{}",
                    d.at,
                    d.epoch,
                    json::escape(d.rule.key()),
                    function,
                    d.value,
                    d.observed,
                    d.threshold,
                    if i + 1 == ctrl.decisions.len() { "" } else { "," }
                );
            }
            s.push_str("    ]\n");
            s.push_str("  },\n");
        }
        s.push_str("  \"functions\": [\n");
        for (i, f) in out_.functions.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"function\": {},", json::escape(&f.abbr));
            let _ = writeln!(s, "      \"invocations\": {},", f.invocations);
            let _ = writeln!(s, "      \"p50_latency_cycles\": {},", f.p50_latency);
            let _ = writeln!(s, "      \"p95_latency_cycles\": {},", f.p95_latency);
            let _ = writeln!(s, "      \"p99_latency_cycles\": {},", f.p99_latency);
            let _ = writeln!(s, "      \"mean_service_cycles\": {},", num(f.mean_service));
            let _ = writeln!(s, "      \"mean_queue_cycles\": {},", num(f.mean_queue));
            let _ = writeln!(s, "      \"mean_cold_fraction\": {},", num(f.mean_cold_fraction));
            let _ = writeln!(s, "      \"metadata_hits\": {},", f.metadata_hits);
            let _ = writeln!(s, "      \"metadata_misses\": {},", f.metadata_misses);
            let _ = writeln!(s, "      \"metadata_hit_rate\": {},", num(f.metadata_hit_rate()));
            if multi {
                let _ = writeln!(s, "      \"cold_starts\": {},", f.cold_starts);
                let _ = writeln!(s, "      \"lukewarm_starts\": {},", f.lukewarm_starts);
                let _ = writeln!(s, "      \"warm_starts\": {},", f.warm_starts);
                let _ = writeln!(s, "      \"min_service_cycles\": {},", f.min_service);
                let _ = writeln!(s, "      \"slowdown\": {},", num(f.slowdown()));
                let _ = writeln!(
                    s,
                    "      \"wasted_keepalive_cycles\": {},",
                    f.wasted_keepalive_cycles
                );
            }
            if out_.chaos.is_some() {
                let _ = writeln!(s, "      \"retries\": {},", f.retries);
                let _ = writeln!(s, "      \"degraded\": {},", f.degraded);
                let _ = writeln!(s, "      \"dropped\": {},", f.dropped);
            }
            let _ = writeln!(s, "      \"cpi\": {},", num(f.result.cpi()));
            let _ = writeln!(s, "      \"l1i_mpki\": {},", num(f.result.l1i_mpki()));
            let _ = writeln!(s, "      \"btb_mpki\": {},", num(f.result.btb_mpki()));
            s.push_str("      \"replay\": {\n");
            push_replay(&mut s, "        ", &f.result.replay, f.result.replay_unfinished);
            s.push_str("      }\n");
            s.push_str(if i + 1 == out_.functions.len() { "    }\n" } else { "    },\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Validates that `text` is a well-formed `ignite-cluster-v1` or
    /// `ignite-cluster-v2` report: parseable JSON, a known schema tag,
    /// and every required section and field present with the right
    /// shape. v2 additionally requires the `chaos` section and enforces
    /// the invocation conservation law (`submitted == completed +
    /// dropped_deadline + dropped_retries_exhausted`); a `chaos` section
    /// under the v1 tag is rejected. A config `traffic` spec and a
    /// `workload` fingerprint section must likewise appear together or
    /// not at all, with the fingerprint's own schema tag and sane
    /// statistics (shares in `[0, 1]`, `top1 <= top5`, CV² >= 0). A
    /// config `controller` spec and a `controller` section pair the
    /// same way, and the decision audit log must agree with the
    /// per-rule fire counters entry for entry.
    pub fn validate(text: &str) -> Result<(), String> {
        let doc = json::parse(text)?;
        let obj = doc.as_object().ok_or("report is not an object")?;
        let schema = json::get(obj, "schema").and_then(Value::as_str);
        let v2 = match schema {
            Some(CLUSTER_SCHEMA) => false,
            Some(CLUSTER_SCHEMA_V2) => true,
            other => {
                return Err(format!(
                    "schema {other:?}, want {CLUSTER_SCHEMA:?} or {CLUSTER_SCHEMA_V2:?}"
                ))
            }
        };
        let section = |key: &str| {
            json::get(obj, key)
                .and_then(Value::as_object)
                .ok_or_else(|| format!("missing object '{key}'"))
        };
        let require = |o: &[(String, Value)], ctx: &str, keys: &[&str]| {
            for k in keys {
                let v = json::get(o, k).ok_or_else(|| format!("{ctx}: missing '{k}'"))?;
                if v.as_f64().is_none() && v.as_str().is_none() {
                    return Err(format!("{ctx}: '{k}' is not a scalar"));
                }
            }
            Ok(())
        };
        require(
            section("config")?,
            "config",
            &[
                "cores",
                "fe",
                "scale",
                "seed",
                "rate_per_mcycle",
                "zipf_s",
                "horizon_cycles",
                "store_capacity_bytes",
                "store_policy",
            ],
        )?;
        require(
            section("totals")?,
            "totals",
            &[
                "invocations",
                "makespan_cycles",
                "mean_latency_cycles",
                "p50_latency_cycles",
                "p95_latency_cycles",
                "p99_latency_cycles",
                "mean_utilization",
            ],
        )?;
        // Multi-node pairing: a config `nodes` count and a top-level
        // `nodes` array must appear together or not at all, the specs
        // must parse, the array length must match the count, and each
        // node must satisfy its own conservation law.
        let nodes_cfg = json::get(section("config")?, "nodes").and_then(Value::as_f64);
        let nodes_arr = json::get(obj, "nodes").and_then(Value::as_array);
        let multi = match (nodes_cfg, nodes_arr) {
            (Some(_), None) => {
                return Err("config names a node count but the report has no 'nodes' array".into())
            }
            (None, Some(_)) => {
                return Err("'nodes' array requires a config 'nodes' key".into());
            }
            (None, None) => false,
            (Some(count), Some(arr)) => {
                let config = section("config")?;
                let sched = json::get(config, "scheduler")
                    .and_then(Value::as_str)
                    .ok_or("config: multi-node report is missing 'scheduler'")?;
                SchedulerKind::parse(sched).map_err(|e| format!("config: {e}"))?;
                let ka = json::get(config, "keepalive")
                    .and_then(Value::as_str)
                    .ok_or("config: multi-node report is missing 'keepalive'")?;
                KeepAliveKind::parse(ka).map_err(|e| format!("config: {e}"))?;
                if arr.len() as f64 != count {
                    return Err(format!(
                        "'nodes' array has {} entries, config says {count}",
                        arr.len()
                    ));
                }
                require(section("totals")?, "totals", &["wasted_keepalive_cycles"])?;
                for (i, nd) in arr.iter().enumerate() {
                    let no =
                        nd.as_object().ok_or_else(|| format!("nodes[{i}] is not an object"))?;
                    require(
                        no,
                        &format!("nodes[{i}]"),
                        &[
                            "node",
                            "submitted",
                            "completed",
                            "dropped",
                            "queue_peak",
                            "busy_cycles",
                            "utilization",
                            "wasted_keepalive_cycles",
                        ],
                    )?;
                    let so = json::get(no, "store")
                        .and_then(Value::as_object)
                        .ok_or_else(|| format!("nodes[{i}]: missing object 'store'"))?;
                    require(
                        so,
                        &format!("nodes[{i}].store"),
                        &["hits", "misses", "hit_rate", "footprint_bytes", "peak_footprint_bytes"],
                    )?;
                    let n = |k: &str| json::get(no, k).and_then(Value::as_f64).unwrap_or(f64::NAN);
                    if n("node") != i as f64 {
                        return Err(format!("nodes[{i}] is labeled node {}", n("node")));
                    }
                    if n("submitted") != n("completed") + n("dropped") {
                        return Err(format!(
                            "nodes[{i}]: conservation violated: submitted {} != \
                             completed {} + dropped {}",
                            n("submitted"),
                            n("completed"),
                            n("dropped")
                        ));
                    }
                }
                true
            }
        };
        require(
            section("store")?,
            "store",
            &["hits", "misses", "hit_rate", "footprint_bytes", "peak_footprint_bytes"],
        )?;
        require(
            section("replay")?,
            "replay",
            &[
                "entries_restored",
                "decode_errors",
                "entries_dropped",
                "stale_restored",
                "watchdog_abandons",
                "replay_unfinished",
            ],
        )?;
        // The obs section is optional (traced runs only), but when
        // present it must be well-formed.
        if let Some(obs) = json::get(obj, "obs") {
            let oo = obs.as_object().ok_or("'obs' is not an object")?;
            require(oo, "obs", &["trace_events", "trace_dropped"])?;
        }
        // The memo section is optional (memoized runs only), but when
        // present must be complete and internally consistent
        // (`lookups == hits + misses`).
        if let Some(memo) = json::get(obj, "memo") {
            let mo = memo.as_object().ok_or("'memo' is not an object")?;
            require(
                mo,
                "memo",
                &[
                    "lookups",
                    "hits",
                    "misses",
                    "inserts",
                    "evictions",
                    "stale_reruns",
                    "cycles_saved",
                ],
            )?;
            let count = |k: &str| json::get(mo, k).and_then(Value::as_f64).unwrap_or(0.0);
            if count("lookups") != count("hits") + count("misses") {
                return Err(format!(
                    "memo: lookups {} != hits {} + misses {}",
                    count("lookups"),
                    count("hits"),
                    count("misses")
                ));
            }
        }
        // Controller pairing: a config `controller` spec and a
        // top-level `controller` section appear together or not at all,
        // the section is complete, and the decision log is consistent
        // with the per-rule fire counters (every decision counted
        // exactly once, every counter backed by decisions).
        let controller_cfg = json::get(section("config")?, "controller").and_then(Value::as_str);
        match (controller_cfg, json::get(obj, "controller")) {
            (Some(_), None) => {
                return Err(
                    "config names a controller spec but the report has no 'controller' section"
                        .into(),
                )
            }
            (None, Some(_)) => {
                return Err("'controller' section requires a config 'controller' key".into())
            }
            (None, None) => {}
            (Some(_), Some(ctrl)) => {
                let co = ctrl.as_object().ok_or("'controller' is not an object")?;
                require(
                    co,
                    "controller",
                    &["epochs", "samples", "replay_denied", "store_denied", "final_active_cores"],
                )?;
                let fires = json::get(co, "fires")
                    .and_then(Value::as_object)
                    .ok_or("controller: missing object 'fires'")?;
                let decisions = json::get(co, "decisions")
                    .and_then(Value::as_array)
                    .ok_or("controller: missing array 'decisions'")?;
                for (i, d) in decisions.iter().enumerate() {
                    let dobj = d
                        .as_object()
                        .ok_or_else(|| format!("controller.decisions[{i}] is not an object"))?;
                    require(
                        dobj,
                        &format!("controller.decisions[{i}]"),
                        &["at", "epoch", "rule", "function", "value", "observed", "threshold"],
                    )?;
                }
                let mut counted = 0.0;
                for rule in ignite_obs::CtrlRule::ALL {
                    let n = json::get(fires, rule.key())
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("controller.fires: missing '{}'", rule.key()))?;
                    let logged = decisions
                        .iter()
                        .filter(|d| {
                            d.as_object().and_then(|o| json::get(o, "rule")).and_then(Value::as_str)
                                == Some(rule.key())
                        })
                        .count() as f64;
                    if n != logged {
                        return Err(format!(
                            "controller: fires['{}'] is {n} but the decision log has {logged}",
                            rule.key()
                        ));
                    }
                    counted += n;
                }
                if counted != decisions.len() as f64 {
                    return Err(format!(
                        "controller: decision log has {} entries, fires total {counted} \
                         (unknown rule in log)",
                        decisions.len()
                    ));
                }
            }
        }
        // Workload-fingerprint pairing: a config `traffic` spec and a
        // top-level `workload` section appear together or not at all,
        // the fingerprint carries its own schema tag, and its statistics
        // must be internally sane.
        let traffic_cfg = json::get(section("config")?, "traffic").and_then(Value::as_str);
        match (traffic_cfg, json::get(obj, "workload")) {
            (Some(_), None) => {
                return Err(
                    "config names a traffic spec but the report has no 'workload' section".into()
                )
            }
            (None, Some(_)) => {
                return Err("'workload' section requires a config 'traffic' key".into())
            }
            (None, None) => {}
            (Some(_), Some(wl)) => {
                let wo = wl.as_object().ok_or("'workload' is not an object")?;
                let ws = json::get(wo, "schema").and_then(Value::as_str);
                if ws != Some(ignite_traffic::WORKLOAD_SCHEMA) {
                    return Err(format!(
                        "workload: schema {ws:?}, want {:?}",
                        ignite_traffic::WORKLOAD_SCHEMA
                    ));
                }
                require(
                    wo,
                    "workload",
                    &[
                        "arrivals",
                        "functions",
                        "horizon_cycles",
                        "rate_per_mcycle",
                        "interarrival_cv2",
                        "zipf_s_hat",
                        "top1_share",
                        "top5_share",
                    ],
                )?;
                let n = |k: &str| json::get(wo, k).and_then(Value::as_f64).unwrap_or(f64::NAN);
                for k in ["top1_share", "top5_share"] {
                    let v = n(k);
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("workload: '{k}' {v} outside [0, 1]"));
                    }
                }
                if n("top1_share") > n("top5_share") {
                    return Err(format!(
                        "workload: top1_share {} exceeds top5_share {}",
                        n("top1_share"),
                        n("top5_share")
                    ));
                }
                let cv2 = n("interarrival_cv2");
                if cv2.is_nan() || cv2 < 0.0 {
                    return Err(format!("workload: negative interarrival_cv2 {cv2}"));
                }
            }
        }
        match (v2, json::get(obj, "chaos")) {
            (false, Some(_)) => {
                return Err(format!("'chaos' section requires the {CLUSTER_SCHEMA_V2:?} tag"))
            }
            (true, None) => {
                return Err(format!("{CLUSTER_SCHEMA_V2:?} report is missing its 'chaos' section"))
            }
            (false, None) => {}
            (true, Some(ch)) => {
                let co = ch.as_object().ok_or("'chaos' is not an object")?;
                json::get(co, "plan")
                    .and_then(Value::as_object)
                    .ok_or("chaos: missing object 'plan'")?;
                json::get(co, "retry")
                    .and_then(Value::as_object)
                    .ok_or("chaos: missing object 'retry'")?;
                require(
                    co,
                    "chaos",
                    &[
                        "submitted",
                        "completed",
                        "retried_to_success",
                        "attempts_failed",
                        "crash_kills",
                        "dispatch_drops",
                        "dropped_deadline",
                        "dropped_retries_exhausted",
                        "degraded_unavailable",
                        "degraded_corrupt",
                        "degraded_loss",
                        "degraded_breaker",
                        "straggled",
                        "writeback_skipped",
                        "store_regions_dropped",
                        "breaker_opens",
                        "breaker_closes",
                        "retry_cycles",
                        "backoff_cycles",
                    ],
                )?;
                let n = |k: &str| json::get(co, k).and_then(Value::as_f64).unwrap_or(f64::NAN);
                // Conservation law: every submitted invocation is
                // accounted for, either completed or dropped with a
                // reason. Integer counts round-trip f64 exactly below
                // 2^53, so equality is exact.
                let submitted = n("submitted");
                let accounted =
                    n("completed") + n("dropped_deadline") + n("dropped_retries_exhausted");
                if submitted != accounted {
                    return Err(format!(
                        "chaos: conservation violated: submitted {submitted} != \
                         completed+dropped {accounted}"
                    ));
                }
            }
        }
        let cores =
            json::get(obj, "cores").and_then(Value::as_array).ok_or("missing array 'cores'")?;
        if cores.is_empty() {
            return Err("empty 'cores' array".to_string());
        }
        let functions = json::get(obj, "functions")
            .and_then(Value::as_array)
            .ok_or("missing array 'functions'")?;
        if functions.is_empty() {
            return Err("empty 'functions' array".to_string());
        }
        for (i, f) in functions.iter().enumerate() {
            let fo = f.as_object().ok_or_else(|| format!("functions[{i}] is not an object"))?;
            require(
                fo,
                &format!("functions[{i}]"),
                &[
                    "function",
                    "invocations",
                    "p50_latency_cycles",
                    "p95_latency_cycles",
                    "p99_latency_cycles",
                    "metadata_hit_rate",
                ],
            )?;
            if v2 {
                require(fo, &format!("functions[{i}]"), &["retries", "degraded", "dropped"])?;
            }
            if multi {
                require(
                    fo,
                    &format!("functions[{i}]"),
                    &[
                        "cold_starts",
                        "lukewarm_starts",
                        "warm_starts",
                        "min_service_cycles",
                        "slowdown",
                        "wasted_keepalive_cycles",
                    ],
                )?;
            } else if json::get(fo, "cold_starts").is_some() {
                return Err(format!(
                    "functions[{i}]: cold-start accounting requires a multi-node config"
                ));
            }
            json::get(fo, "replay")
                .and_then(Value::as_object)
                .ok_or_else(|| format!("functions[{i}]: missing replay block"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ClusterSim;
    use ignite_workloads::arrival::ArrivalConfig;

    fn report() -> ClusterReport {
        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            ..ClusterConfig::default()
        };
        let outcome = ClusterSim::new(cfg.clone()).run();
        ClusterReport::new(cfg, outcome)
    }

    #[test]
    fn emitted_report_validates() {
        let text = report().to_json();
        ClusterReport::validate(&text).expect("own report must be schema-valid");
    }

    #[test]
    fn serialization_is_byte_deterministic() {
        let r = report();
        assert_eq!(r.to_json(), r.to_json());
        assert_eq!(report().to_json(), report().to_json());
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let text = report().to_json().replace(CLUSTER_SCHEMA, "ignite-cluster-v0");
        assert!(ClusterReport::validate(&text).is_err());
    }

    #[test]
    fn validate_rejects_missing_section() {
        let text = report().to_json().replace("\"p95_latency_cycles\"", "\"q95\"");
        assert!(ClusterReport::validate(&text).is_err());
    }

    #[test]
    fn memo_section_appears_only_for_memoized_runs_and_validates() {
        let plain = report().to_json();
        assert!(!plain.contains("\"memo\""), "plain reports must carry no memo section");

        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            ..ClusterConfig::default()
        };
        let cache = crate::memo::MemoCache::default();
        let outcome = ClusterSim::new(cfg.clone()).run_memo(&cache);
        assert!(outcome.memo.is_some(), "memoized runs must carry counters");
        let text = ClusterReport::new(cfg, outcome).to_json();
        assert!(text.contains("\"memo\": {"));
        ClusterReport::validate(&text).expect("memoized report must validate");

        // Tampering with the hit/miss ledger must be caught.
        let bad = text.replacen("\"hits\": 0,", "\"hits\": 3,", 1);
        assert!(
            ClusterReport::validate(&bad).is_err(),
            "lookups != hits + misses must be rejected"
        );
        let bad = text.replacen("    \"cycles_saved\"", "    \"cycles_zaved\"", 1);
        assert!(ClusterReport::validate(&bad).is_err(), "missing memo field must be caught");
    }

    #[test]
    fn controller_section_appears_only_for_controller_runs_and_validates() {
        let plain = report().to_json();
        assert!(!plain.contains("\"controller\""), "plain reports must carry no controller keys");

        let mut r = report();
        r.config.controller = Some("epoch=50000,slo=400000".to_string());
        let d = |rule, function, value| crate::policy::Decision {
            at: 50_000,
            epoch: 0,
            rule,
            function,
            value,
            observed: 10,
            threshold: 5,
        };
        r.outcome.controller = Some(crate::policy::ControllerStats {
            epochs: 12,
            decisions: vec![
                d(ignite_obs::CtrlRule::ReplayOff, 3, 0),
                d(ignite_obs::CtrlRule::CoresDown, u32::MAX, 1),
            ],
            samples: 600,
            replay_denied: 40,
            store_denied: 2,
            final_active_cores: 1,
        });
        let text = r.to_json();
        assert!(text.contains("\"controller\": \"epoch=50000,slo=400000\""));
        assert!(text.contains("\"replay_off\": 1"));
        assert!(text.contains("\"keepalive_retune\": 0"));
        assert!(text.contains("\"rule\": \"cores_down\", \"function\": -1"));
        ClusterReport::validate(&text).expect("controller report must self-validate");

        // Pairing both ways.
        let bad = text.replacen("    \"controller\": \"epoch=50000,slo=400000\",\n", "", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("'controller'"));
        let start = text.find("  \"controller\": {").unwrap();
        let end = text[start..].find("\n  },\n").unwrap() + start + 6;
        let bad = format!("{}{}", &text[..start], &text[end..]);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("'controller'"));
        // A fire counter disagreeing with the decision log.
        let bad = text.replacen("\"replay_off\": 1", "\"replay_off\": 2", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("fires"));
        // A decision whose rule no counter accounts for.
        let bad = text.replacen("\"rule\": \"replay_off\"", "\"rule\": \"replay_offf\"", 1);
        assert!(ClusterReport::validate(&bad).is_err());
    }

    #[test]
    fn non_finite_config_floats_serialize_as_zero() {
        let mut r = report();
        r.config.arrival.zipf_s = f64::NAN;
        r.config.dram_bytes_per_cycle = f64::INFINITY;
        let text = r.to_json();
        // Regression: these used to serialize as `null`, which the
        // report's own validator rejects (every numeric field must be a
        // scalar).
        assert!(!text.contains("null"), "non-finite floats must not serialize as null");
        assert!(!text.contains("NaN"));
        ClusterReport::validate(&text).expect("report with pinned zeros must validate");
        assert!(text.contains("\"zipf_s\": 0,"));
        assert!(text.contains("\"dram_bytes_per_cycle\": 0\n"));
    }

    #[test]
    fn zero_arrival_functions_emit_finite_zeros() {
        // A short, heavily skewed arrival process starves the suite tail:
        // at least one function must complete zero invocations, and its
        // ratio fields (hit rate, CPI, means) must come out as 0.
        let cfg = ClusterConfig {
            arrival: ArrivalConfig {
                horizon_cycles: 300_000,
                zipf_s: 2.5,
                ..ArrivalConfig::default()
            },
            ..ClusterConfig::default()
        };
        let outcome = ClusterSim::new(cfg.clone()).run();
        assert!(
            outcome.functions.iter().any(|f| f.invocations == 0),
            "config must starve at least one function"
        );
        let text = ClusterReport::new(cfg, outcome).to_json();
        assert!(!text.contains("null"));
        ClusterReport::validate(&text).expect("starved functions must still validate");
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(ClusterReport::validate("not json").is_err());
        assert!(ClusterReport::validate("{}").is_err());
    }

    fn chaos_report() -> ClusterReport {
        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            chaos: Some(ignite_chaos::ChaosPlan::default_preset().seeded(7)),
            ..ClusterConfig::default()
        };
        let outcome = ClusterSim::new(cfg.clone()).run();
        ClusterReport::new(cfg, outcome)
    }

    #[test]
    fn chaos_report_is_v2_and_validates() {
        let r = chaos_report();
        assert_eq!(r.schema(), CLUSTER_SCHEMA_V2);
        let text = r.to_json();
        assert!(text.contains("\"schema\": \"ignite-cluster-v2\""));
        assert!(text.contains("\"chaos\": {"));
        assert!(text.contains("\"retries\": "));
        ClusterReport::validate(&text).expect("chaos report must self-validate");
    }

    #[test]
    fn validate_enforces_conservation_and_tag_pairing() {
        let good = chaos_report().to_json();
        // Break conservation: bump submitted by prefixing a digit.
        let bad = good.replacen("\"submitted\": ", "\"submitted\": 9", 1);
        let err = ClusterReport::validate(&bad).unwrap_err();
        assert!(err.contains("conservation"), "unexpected error: {err}");
        // A chaos section under the v1 tag is rejected.
        let mislabeled = good.replacen(CLUSTER_SCHEMA_V2, CLUSTER_SCHEMA, 1);
        assert!(ClusterReport::validate(&mislabeled).is_err());
        // A v2 tag without a chaos section is rejected.
        let plain = report().to_json().replacen(CLUSTER_SCHEMA, CLUSTER_SCHEMA_V2, 1);
        assert!(ClusterReport::validate(&plain).is_err());
    }

    #[test]
    fn chaos_free_report_stays_v1_with_no_chaos_keys() {
        let r = report();
        assert_eq!(r.schema(), CLUSTER_SCHEMA);
        let text = r.to_json();
        assert!(!text.contains("\"chaos\""));
        assert!(!text.contains("\"retries\""));
    }

    fn multinode_report() -> ClusterReport {
        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            topology: crate::sim::Topology {
                nodes: 3,
                scheduler: SchedulerKind::Affinity,
                keepalive: KeepAliveKind::Hybrid { default_window_cycles: 50_000 },
            },
            ..ClusterConfig::default()
        };
        let outcome = ClusterSim::new(cfg.clone()).run();
        ClusterReport::new(cfg, outcome)
    }

    #[test]
    fn multinode_report_validates_and_carries_node_sections() {
        let text = multinode_report().to_json();
        assert!(text.contains("\"nodes\": 3"));
        assert!(text.contains("\"scheduler\": \"affinity\""));
        assert!(text.contains("\"keepalive\": \"hybrid:50000\""));
        assert!(text.contains("\"cold_starts\""));
        assert!(text.contains("\"wasted_keepalive_cycles\""));
        ClusterReport::validate(&text).expect("multi-node report must self-validate");
    }

    #[test]
    fn single_node_default_report_carries_no_node_sections() {
        let text = report().to_json();
        assert!(!text.contains("\"scheduler\""));
        assert!(!text.contains("\"keepalive\""));
        assert!(!text.contains("\"cold_starts\""));
        assert!(!text.contains("\"wasted_keepalive_cycles\""));
    }

    fn traffic_report() -> ClusterReport {
        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            traffic: Some("mmpp:mults=1/6,dwells=300000/60000".to_string()),
            ..ClusterConfig::default()
        };
        let spec = ignite_traffic::TrafficSpec::parse(cfg.traffic.as_deref().unwrap()).unwrap();
        let sim = ClusterSim::new(cfg.clone());
        let suite = ignite_workloads::Suite::paper_suite_scaled(cfg.scale);
        let mut arrival = cfg.arrival;
        arrival.functions = suite.functions().len();
        let mut source = spec.build(&arrival, &suite).unwrap();
        let outcome = sim.run_source(&mut *source);
        ClusterReport::new(cfg, outcome)
    }

    #[test]
    fn traffic_report_carries_workload_fingerprint() {
        let text = traffic_report().to_json();
        assert!(text.contains("\"traffic\": \"mmpp:mults=1/6,dwells=300000/60000\""));
        assert!(text.contains("\"workload\": {"));
        assert!(text.contains(&format!("\"schema\": \"{}\"", ignite_traffic::WORKLOAD_SCHEMA)));
        ClusterReport::validate(&text).expect("traffic report must self-validate");
    }

    #[test]
    fn default_report_carries_no_workload_section() {
        let text = report().to_json();
        assert!(!text.contains("\"traffic\""));
        assert!(!text.contains("\"workload\""));
    }

    #[test]
    fn validate_enforces_workload_pairing_and_sanity() {
        let good = traffic_report().to_json();
        // A workload section without the config traffic key.
        let bad =
            good.replacen("    \"traffic\": \"mmpp:mults=1/6,dwells=300000/60000\",\n", "", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("'traffic'"));
        // A traffic key without a workload section.
        let start = good.find("  \"workload\": {").unwrap();
        let end = good[start..].find("},\n").unwrap() + start + 3;
        let bad = format!("{}{}", &good[..start], &good[end..]);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("'workload'"));
        // A stale fingerprint schema tag.
        let bad = good.replacen(ignite_traffic::WORKLOAD_SCHEMA, "ignite-workload-v0", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("workload"));
        // A share outside [0, 1].
        let bad = good.replacen("\"top1_share\": ", "\"top1_share\": 9", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("top1_share"));
    }

    #[test]
    fn validate_rejects_mislabeled_node_sections() {
        let good = multinode_report().to_json();
        // Node array length disagreeing with the config count.
        let bad = good.replacen("\"nodes\": 3", "\"nodes\": 2", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("entries"));
        // A scheduler spec that does not parse.
        let bad = good.replacen("\"scheduler\": \"affinity\"", "\"scheduler\": \"affinty\"", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("scheduler"));
        // A node labeled with the wrong index.
        let bad = good.replacen("\"node\": 1,", "\"node\": 2,", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("labeled"));
        // Per-node conservation: bump one node's submitted count.
        let bad = good.replacen("\"submitted\": ", "\"submitted\": 9", 1);
        assert!(ClusterReport::validate(&bad).unwrap_err().contains("conservation"));
    }
}
