//! The versioned cluster report (`ignite-cluster-v1`).
//!
//! One JSON document per run: the configuration, cluster-wide totals,
//! per-core utilization, node-store counters, aggregate replay statistics
//! (including every degradation counter), and a per-function breakdown
//! with p50/p95/p99 latency. Serialization is byte-deterministic — fixed
//! key order, integers for cycle counts, shortest round-trip formatting
//! for floats — so two same-seed runs, in different processes, produce
//! identical bytes (the golden tests rely on this).

use std::fmt::Write as _;

use ignite_core::ReplayStats;

use crate::json::{self, Value};
use crate::sim::{ClusterConfig, ClusterOutcome};

/// Schema tag written into (and required of) every report.
pub const CLUSTER_SCHEMA: &str = "ignite-cluster-v1";

/// Observability health for a traced run: how much of the timeline the
/// bounded ring buffer kept. A nonzero `trace_dropped` means the
/// exported trace is truncated — surfaced here (and in the metrics
/// exposition) so truncation is detectable instead of silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsSummary {
    /// Events retained in the trace buffer at end of run.
    pub trace_events: u64,
    /// Events the ring buffer evicted under pressure.
    pub trace_dropped: u64,
}

/// A run's configuration and outcome, ready to serialize.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The configuration the run used.
    pub config: ClusterConfig,
    /// What happened.
    pub outcome: ClusterOutcome,
    /// Trace-buffer health, present only for traced runs. `None` (the
    /// untraced default) serializes no `obs` section at all, keeping
    /// untraced reports — including the golden snapshot — byte-identical
    /// to pre-observability output.
    pub obs: Option<ObsSummary>,
}

/// Renders a float for the report. Non-finite values serialize as `0`
/// rather than `json::number`'s `null`: every numeric field in the schema
/// is required to be a scalar, and a `null` (or a bare `NaN`) would make
/// the emitted report fail its own validator.
fn num(x: f64) -> String {
    if x.is_finite() {
        json::number(x)
    } else {
        "0".to_string()
    }
}

fn push_replay(out: &mut String, indent: &str, replay: &ReplayStats, unfinished: u64) {
    let _ = writeln!(out, "{indent}\"entries_restored\": {},", replay.entries_restored);
    let _ = writeln!(out, "{indent}\"bim_initialized\": {},", replay.bim_initialized);
    let _ = writeln!(out, "{indent}\"l2_prefetches\": {},", replay.l2_prefetches);
    let _ = writeln!(out, "{indent}\"itlb_warmed\": {},", replay.itlb_warmed);
    let _ = writeln!(out, "{indent}\"metadata_bytes\": {},", replay.metadata_bytes);
    let _ = writeln!(out, "{indent}\"throttled_steps\": {},", replay.throttled_steps);
    let _ = writeln!(out, "{indent}\"decode_errors\": {},", replay.decode_errors);
    let _ = writeln!(out, "{indent}\"entries_dropped\": {},", replay.entries_dropped);
    let _ = writeln!(out, "{indent}\"stale_restored\": {},", replay.stale_restored);
    let _ = writeln!(out, "{indent}\"watchdog_abandons\": {},", replay.watchdog_abandons);
    let _ = writeln!(out, "{indent}\"replay_unfinished\": {unfinished}");
}

impl ClusterReport {
    /// Pairs a configuration with its outcome.
    pub fn new(config: ClusterConfig, outcome: ClusterOutcome) -> Self {
        ClusterReport { config, outcome, obs: None }
    }

    /// Attaches trace-buffer health (traced runs only).
    pub fn with_obs(mut self, obs: ObsSummary) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Serializes the report.
    pub fn to_json(&self) -> String {
        let cfg = &self.config;
        let out_ = &self.outcome;
        let total = out_.total_result();
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{CLUSTER_SCHEMA}\",");
        s.push_str("  \"config\": {\n");
        let _ = writeln!(s, "    \"cores\": {},", cfg.cores);
        let _ = writeln!(s, "    \"fe\": {},", json::escape(&cfg.fe.name));
        let _ = writeln!(s, "    \"scale\": {},", num(cfg.scale));
        let _ = writeln!(s, "    \"seed\": {},", cfg.arrival.seed);
        let _ = writeln!(s, "    \"functions\": {},", cfg.arrival.functions);
        let _ = writeln!(s, "    \"rate_per_mcycle\": {},", num(cfg.arrival.rate_per_mcycle));
        let _ = writeln!(s, "    \"zipf_s\": {},", num(cfg.arrival.zipf_s));
        let _ = writeln!(s, "    \"horizon_cycles\": {},", cfg.arrival.horizon_cycles);
        let _ = writeln!(s, "    \"store_capacity_bytes\": {},", cfg.store.capacity_bytes);
        let _ = writeln!(s, "    \"store_policy\": {},", json::escape(cfg.store.policy.name()));
        let _ = writeln!(s, "    \"store_pinned_hot\": {},", cfg.store.pinned_hot);
        let _ = writeln!(s, "    \"distance_saturation\": {},", num(cfg.distance_saturation));
        let _ = writeln!(s, "    \"dram_bytes_per_cycle\": {}", num(cfg.dram_bytes_per_cycle));
        s.push_str("  },\n");
        s.push_str("  \"totals\": {\n");
        let _ = writeln!(s, "    \"invocations\": {},", out_.invocations);
        let _ = writeln!(s, "    \"makespan_cycles\": {},", out_.makespan);
        let _ = writeln!(s, "    \"instructions\": {},", total.instructions);
        let _ = writeln!(s, "    \"cycles\": {},", total.cycles);
        let _ = writeln!(s, "    \"mean_latency_cycles\": {},", num(out_.mean_latency));
        let _ = writeln!(s, "    \"p50_latency_cycles\": {},", out_.p50_latency);
        let _ = writeln!(s, "    \"p95_latency_cycles\": {},", out_.p95_latency);
        let _ = writeln!(s, "    \"p99_latency_cycles\": {},", out_.p99_latency);
        let _ = writeln!(s, "    \"mean_utilization\": {}", num(out_.mean_utilization()));
        s.push_str("  },\n");
        s.push_str("  \"cores\": [\n");
        for (i, c) in out_.cores.iter().enumerate() {
            let _ = writeln!(
                s,
                "    {{\"core\": {i}, \"invocations\": {}, \"busy_cycles\": {}, \
                 \"utilization\": {}}}{}",
                c.invocations,
                c.busy_cycles,
                num(c.utilization),
                if i + 1 == out_.cores.len() { "" } else { "," }
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"store\": {\n");
        let st = &out_.store;
        let _ = writeln!(s, "    \"hits\": {},", st.hits);
        let _ = writeln!(s, "    \"misses\": {},", st.misses);
        let _ = writeln!(s, "    \"hit_rate\": {},", num(st.hit_rate()));
        let _ = writeln!(s, "    \"insertions\": {},", st.insertions);
        let _ = writeln!(s, "    \"evictions\": {},", st.evictions);
        let _ = writeln!(s, "    \"rejected\": {},", st.rejected);
        let _ = writeln!(s, "    \"bytes_read\": {},", st.bytes_read);
        let _ = writeln!(s, "    \"bytes_written\": {},", st.bytes_written);
        let _ = writeln!(s, "    \"bytes_evicted\": {},", st.bytes_evicted);
        let _ = writeln!(s, "    \"footprint_bytes\": {},", out_.footprint_bytes);
        let _ = writeln!(s, "    \"peak_footprint_bytes\": {}", out_.peak_footprint_bytes);
        s.push_str("  },\n");
        s.push_str("  \"replay\": {\n");
        push_replay(&mut s, "    ", &total.replay, total.replay_unfinished);
        s.push_str("  },\n");
        if let Some(obs) = &self.obs {
            s.push_str("  \"obs\": {\n");
            let _ = writeln!(s, "    \"trace_events\": {},", obs.trace_events);
            let _ = writeln!(s, "    \"trace_dropped\": {}", obs.trace_dropped);
            s.push_str("  },\n");
        }
        s.push_str("  \"functions\": [\n");
        for (i, f) in out_.functions.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"function\": {},", json::escape(&f.abbr));
            let _ = writeln!(s, "      \"invocations\": {},", f.invocations);
            let _ = writeln!(s, "      \"p50_latency_cycles\": {},", f.p50_latency);
            let _ = writeln!(s, "      \"p95_latency_cycles\": {},", f.p95_latency);
            let _ = writeln!(s, "      \"p99_latency_cycles\": {},", f.p99_latency);
            let _ = writeln!(s, "      \"mean_service_cycles\": {},", num(f.mean_service));
            let _ = writeln!(s, "      \"mean_queue_cycles\": {},", num(f.mean_queue));
            let _ = writeln!(s, "      \"mean_cold_fraction\": {},", num(f.mean_cold_fraction));
            let _ = writeln!(s, "      \"metadata_hits\": {},", f.metadata_hits);
            let _ = writeln!(s, "      \"metadata_misses\": {},", f.metadata_misses);
            let _ = writeln!(s, "      \"metadata_hit_rate\": {},", num(f.metadata_hit_rate()));
            let _ = writeln!(s, "      \"cpi\": {},", num(f.result.cpi()));
            let _ = writeln!(s, "      \"l1i_mpki\": {},", num(f.result.l1i_mpki()));
            let _ = writeln!(s, "      \"btb_mpki\": {},", num(f.result.btb_mpki()));
            s.push_str("      \"replay\": {\n");
            push_replay(&mut s, "        ", &f.result.replay, f.result.replay_unfinished);
            s.push_str("      }\n");
            s.push_str(if i + 1 == out_.functions.len() { "    }\n" } else { "    },\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Validates that `text` is a well-formed `ignite-cluster-v1` report:
    /// parseable JSON, the right schema tag, and every required section
    /// and field present with the right shape.
    pub fn validate(text: &str) -> Result<(), String> {
        let doc = json::parse(text)?;
        let obj = doc.as_object().ok_or("report is not an object")?;
        let schema = json::get(obj, "schema").and_then(Value::as_str);
        if schema != Some(CLUSTER_SCHEMA) {
            return Err(format!("schema {schema:?}, want {CLUSTER_SCHEMA:?}"));
        }
        let section = |key: &str| {
            json::get(obj, key)
                .and_then(Value::as_object)
                .ok_or_else(|| format!("missing object '{key}'"))
        };
        let require = |o: &[(String, Value)], ctx: &str, keys: &[&str]| {
            for k in keys {
                let v = json::get(o, k).ok_or_else(|| format!("{ctx}: missing '{k}'"))?;
                if v.as_f64().is_none() && v.as_str().is_none() {
                    return Err(format!("{ctx}: '{k}' is not a scalar"));
                }
            }
            Ok(())
        };
        require(
            section("config")?,
            "config",
            &[
                "cores",
                "fe",
                "scale",
                "seed",
                "rate_per_mcycle",
                "zipf_s",
                "horizon_cycles",
                "store_capacity_bytes",
                "store_policy",
            ],
        )?;
        require(
            section("totals")?,
            "totals",
            &[
                "invocations",
                "makespan_cycles",
                "mean_latency_cycles",
                "p50_latency_cycles",
                "p95_latency_cycles",
                "p99_latency_cycles",
                "mean_utilization",
            ],
        )?;
        require(
            section("store")?,
            "store",
            &["hits", "misses", "hit_rate", "footprint_bytes", "peak_footprint_bytes"],
        )?;
        require(
            section("replay")?,
            "replay",
            &[
                "entries_restored",
                "decode_errors",
                "entries_dropped",
                "stale_restored",
                "watchdog_abandons",
                "replay_unfinished",
            ],
        )?;
        // The obs section is optional (traced runs only), but when
        // present it must be well-formed.
        if let Some(obs) = json::get(obj, "obs") {
            let oo = obs.as_object().ok_or("'obs' is not an object")?;
            require(oo, "obs", &["trace_events", "trace_dropped"])?;
        }
        let cores =
            json::get(obj, "cores").and_then(Value::as_array).ok_or("missing array 'cores'")?;
        if cores.is_empty() {
            return Err("empty 'cores' array".to_string());
        }
        let functions = json::get(obj, "functions")
            .and_then(Value::as_array)
            .ok_or("missing array 'functions'")?;
        if functions.is_empty() {
            return Err("empty 'functions' array".to_string());
        }
        for (i, f) in functions.iter().enumerate() {
            let fo = f.as_object().ok_or_else(|| format!("functions[{i}] is not an object"))?;
            require(
                fo,
                &format!("functions[{i}]"),
                &[
                    "function",
                    "invocations",
                    "p50_latency_cycles",
                    "p95_latency_cycles",
                    "p99_latency_cycles",
                    "metadata_hit_rate",
                ],
            )?;
            json::get(fo, "replay")
                .and_then(Value::as_object)
                .ok_or_else(|| format!("functions[{i}]: missing replay block"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::ClusterSim;
    use ignite_workloads::arrival::ArrivalConfig;

    fn report() -> ClusterReport {
        let cfg = ClusterConfig {
            arrival: ArrivalConfig { horizon_cycles: 800_000, ..ArrivalConfig::default() },
            ..ClusterConfig::default()
        };
        let outcome = ClusterSim::new(cfg.clone()).run();
        ClusterReport::new(cfg, outcome)
    }

    #[test]
    fn emitted_report_validates() {
        let text = report().to_json();
        ClusterReport::validate(&text).expect("own report must be schema-valid");
    }

    #[test]
    fn serialization_is_byte_deterministic() {
        let r = report();
        assert_eq!(r.to_json(), r.to_json());
        assert_eq!(report().to_json(), report().to_json());
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        let text = report().to_json().replace(CLUSTER_SCHEMA, "ignite-cluster-v0");
        assert!(ClusterReport::validate(&text).is_err());
    }

    #[test]
    fn validate_rejects_missing_section() {
        let text = report().to_json().replace("\"p95_latency_cycles\"", "\"q95\"");
        assert!(ClusterReport::validate(&text).is_err());
    }

    #[test]
    fn non_finite_config_floats_serialize_as_zero() {
        let mut r = report();
        r.config.arrival.zipf_s = f64::NAN;
        r.config.dram_bytes_per_cycle = f64::INFINITY;
        let text = r.to_json();
        // Regression: these used to serialize as `null`, which the
        // report's own validator rejects (every numeric field must be a
        // scalar).
        assert!(!text.contains("null"), "non-finite floats must not serialize as null");
        assert!(!text.contains("NaN"));
        ClusterReport::validate(&text).expect("report with pinned zeros must validate");
        assert!(text.contains("\"zipf_s\": 0,"));
        assert!(text.contains("\"dram_bytes_per_cycle\": 0\n"));
    }

    #[test]
    fn zero_arrival_functions_emit_finite_zeros() {
        // A short, heavily skewed arrival process starves the suite tail:
        // at least one function must complete zero invocations, and its
        // ratio fields (hit rate, CPI, means) must come out as 0.
        let cfg = ClusterConfig {
            arrival: ArrivalConfig {
                horizon_cycles: 300_000,
                zipf_s: 2.5,
                ..ArrivalConfig::default()
            },
            ..ClusterConfig::default()
        };
        let outcome = ClusterSim::new(cfg.clone()).run();
        assert!(
            outcome.functions.iter().any(|f| f.invocations == 0),
            "config must starve at least one function"
        );
        let text = ClusterReport::new(cfg, outcome).to_json();
        assert!(!text.contains("null"));
        ClusterReport::validate(&text).expect("starved functions must still validate");
    }

    #[test]
    fn validate_rejects_garbage() {
        assert!(ClusterReport::validate("not json").is_err());
        assert!(ClusterReport::validate("{}").is_err());
    }
}
