//! The policy seam: every knob the simulator consults at runtime.
//!
//! `cluster::sim` routes its four actuation points — replay admission,
//! store-writeback admission, the schedulable-core mask, and the
//! keep-alive window — through a [`PolicyHook`]. The default
//! [`StaticPolicy`] answers every query with the configured constant
//! and reports [`PolicyHook::enabled`]` == false`, so the monomorphized
//! static path compiles to exactly the pre-seam code (the same
//! zero-cost contract [`ignite_obs::EventSink`] uses): committed golden
//! outputs do not move. An online controller (`ignite-control`)
//! implements the same trait to close the loop from scope attribution
//! back into policy.
//!
//! The contract mirrors the sink contract:
//!
//! * Emission/actuation sites are guarded by [`PolicyHook::enabled`];
//!   a disabled policy's sites dead-code-eliminate completely.
//! * [`PolicyHook::observe`] receives one [`PolicySample`] per
//!   completed invocation (the same seven attribution components the
//!   scope layer records) and must be O(1).
//! * [`PolicyHook::on_epoch`] runs at epoch boundaries only (gated by
//!   [`PolicyHook::epoch_due`] so the simulator never assembles
//!   [`ClusterGauges`] off-epoch) and returns the decisions taken, each
//!   of which the simulator mirrors onto the `Track::Controller` trace
//!   track.

use ignite_obs::CtrlRule;

/// One completed invocation, folded into the policy online. Fields are
/// the exact seven-component attribution tiling (they sum to
/// `latency_cycles`) plus the store outcome the components were
/// attributed under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicySample {
    /// Function index.
    pub function: u32,
    /// Completion timestamp (cluster cycles).
    pub completion: u64,
    /// End-to-end latency; the seven components below tile it exactly.
    pub latency_cycles: u64,
    /// Time queued before dispatch.
    pub queue_cycles: u64,
    /// Cycles lost to failed attempts and backoff waits (chaos only).
    pub retry_cycles: u64,
    /// Metadata DRAM transfer on a store hit.
    pub dram_cycles: u64,
    /// Cold front-end stalls (store hit with Ignite replaying, Ignite
    /// off, or replay suppressed by policy).
    pub cold_frontend_cycles: u64,
    /// Front-end stalls re-paid because the store missed.
    pub store_miss_cycles: u64,
    /// Front-end stalls paid because chaos degraded replay away.
    pub degraded_cycles: u64,
    /// Steady-state execution.
    pub execution_cycles: u64,
    /// Whether the metadata store served this invocation.
    pub store_hit: bool,
    /// Whether this policy suppressed record/replay for the invocation.
    pub replay_suppressed: bool,
}

/// Cluster-wide state snapshot assembled for an epoch evaluation.
/// Store counters are cumulative (the policy diffs them per epoch);
/// core/queue fields are instantaneous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterGauges {
    /// Cores currently executing an invocation, across all nodes.
    pub busy_cores: usize,
    /// Total cores in the cluster.
    pub total_cores: usize,
    /// Cores per node (the unit [`PolicyHook::active_cores`] masks).
    pub cores_per_node: usize,
    /// Arrivals queued and waiting for a core, across all nodes.
    pub queued: usize,
    /// Resident metadata bytes across all node stores.
    pub footprint_bytes: u64,
    /// Total store capacity across all node stores.
    pub capacity_bytes: u64,
    /// Cumulative successful store insertions.
    pub insertions: u64,
    /// Cumulative store evictions.
    pub evictions: u64,
    /// Whether a keep-alive policy is active (retune decisions are
    /// meaningless without one).
    pub keepalive_enabled: bool,
}

/// One controller decision: the cause snapshot (`observed` vs
/// `threshold`), the rule that fired, and the actuated `value`.
/// `function` is `u32::MAX` for cluster-wide decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// Epoch-boundary cycle the decision actuated at.
    pub at: u64,
    /// Zero-based epoch index.
    pub epoch: u64,
    /// Which rule fired.
    pub rule: CtrlRule,
    /// Target function, or `u32::MAX` for cluster-wide rules.
    pub function: u32,
    /// New setting: keep-alive window cycles, active core count,
    /// admission byte cap, or 0/1 for replay toggles.
    pub value: u64,
    /// The observed input that triggered the rule.
    pub observed: u64,
    /// The bound `observed` was compared against.
    pub threshold: u64,
}

/// End-of-run controller summary surfaced as
/// `ClusterOutcome::controller`, the report's `controller` section and
/// the `ignite_ctrl_*` Prometheus family.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ControllerStats {
    /// Epoch evaluations completed.
    pub epochs: u64,
    /// Every decision taken, in actuation order — the audit trail.
    pub decisions: Vec<Decision>,
    /// Completed invocations folded through [`PolicyHook::observe`].
    pub samples: u64,
    /// Invocations dispatched with record/replay suppressed.
    pub replay_denied: u64,
    /// Completed writebacks denied store admission.
    pub store_denied: u64,
    /// Active-core cap per node at end of run.
    pub final_active_cores: u64,
}

impl ControllerStats {
    /// Decisions taken by `rule`.
    pub fn fires(&self, rule: CtrlRule) -> u64 {
        self.decisions.iter().filter(|d| d.rule == rule).count() as u64
    }
}

/// The simulator's policy interface. Defaults answer every query with
/// the static (pre-seam) behavior, so an implementation overrides only
/// the axes it actuates.
pub trait PolicyHook {
    /// Whether actuation sites should consult this policy at all. Must
    /// be trivially inlinable; the disabled path must dead-code-
    /// eliminate completely (see [`StaticPolicy`]).
    fn enabled(&self) -> bool;

    /// Folds one completed invocation. Called only when enabled.
    fn observe(&mut self, _sample: &PolicySample) {}

    /// Whether `now` has crossed the next epoch boundary. Guards
    /// [`PolicyHook::on_epoch`] so gauges are assembled only on epochs.
    fn epoch_due(&self, _now: u64) -> bool {
        false
    }

    /// Evaluates every epoch boundary at or before `now` and returns
    /// the decisions actuated (usually empty). Called only when
    /// [`PolicyHook::epoch_due`].
    fn on_epoch(&mut self, _now: u64, _gauges: &ClusterGauges) -> Vec<Decision> {
        Vec::new()
    }

    /// Whether `function` may use record/replay for this dispatch.
    /// Denial skips the store fetch entirely (no miss is counted) and
    /// the invocation runs cold; its front-end stalls attribute to
    /// `cold_frontend`.
    fn replay_admitted(&mut self, _function: u32) -> bool {
        true
    }

    /// Whether a completed recording of `bytes` may be written back to
    /// the node store.
    fn store_admitted(&mut self, _function: u32, _bytes: u64) -> bool {
        true
    }

    /// Cap on schedulable cores per node (clamped to
    /// `1..=cores_per_node` by the caller).
    fn active_cores(&self, cores_per_node: usize) -> usize {
        cores_per_node
    }

    /// Keep-alive window override for `function`, in cycles.
    fn keepalive_window(&self, _function: u32) -> Option<u64> {
        None
    }

    /// Drains the controller summary at end of run.
    fn finish(&mut self, _makespan: u64) -> Option<ControllerStats> {
        None
    }
}

/// The zero-cost static policy: `enabled()` is a constant `false`, so
/// monomorphized actuation sites vanish entirely and the simulator runs
/// the exact pre-seam code.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticPolicy;

impl PolicyHook for StaticPolicy {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

impl<P: PolicyHook + ?Sized> PolicyHook for &mut P {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn observe(&mut self, sample: &PolicySample) {
        (**self).observe(sample);
    }

    #[inline]
    fn epoch_due(&self, now: u64) -> bool {
        (**self).epoch_due(now)
    }

    #[inline]
    fn on_epoch(&mut self, now: u64, gauges: &ClusterGauges) -> Vec<Decision> {
        (**self).on_epoch(now, gauges)
    }

    #[inline]
    fn replay_admitted(&mut self, function: u32) -> bool {
        (**self).replay_admitted(function)
    }

    #[inline]
    fn store_admitted(&mut self, function: u32, bytes: u64) -> bool {
        (**self).store_admitted(function, bytes)
    }

    #[inline]
    fn active_cores(&self, cores_per_node: usize) -> usize {
        (**self).active_cores(cores_per_node)
    }

    #[inline]
    fn keepalive_window(&self, function: u32) -> Option<u64> {
        (**self).keepalive_window(function)
    }

    #[inline]
    fn finish(&mut self, makespan: u64) -> Option<ControllerStats> {
        (**self).finish(makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_is_disabled_and_permissive() {
        let mut p = StaticPolicy;
        assert!(!p.enabled());
        assert!(!p.epoch_due(u64::MAX));
        assert!(p.replay_admitted(3));
        assert!(p.store_admitted(3, 1 << 30));
        assert_eq!(p.active_cores(8), 8);
        assert_eq!(p.keepalive_window(0), None);
        assert!(p.finish(1_000).is_none());
        assert!(p.on_epoch(0, &ClusterGauges::default()).is_empty());
    }

    #[test]
    fn stats_count_fires_per_rule() {
        let d = |rule| Decision {
            at: 100,
            epoch: 1,
            rule,
            function: u32::MAX,
            value: 2,
            observed: 10,
            threshold: 5,
        };
        let stats = ControllerStats {
            epochs: 2,
            decisions: vec![d(CtrlRule::CoresUp), d(CtrlRule::CoresUp), d(CtrlRule::ReplayOff)],
            ..ControllerStats::default()
        };
        assert_eq!(stats.fires(CtrlRule::CoresUp), 2);
        assert_eq!(stats.fires(CtrlRule::ReplayOff), 1);
        assert_eq!(stats.fires(CtrlRule::StoreTighten), 0);
        let total: u64 = CtrlRule::ALL.iter().map(|&r| stats.fires(r)).sum();
        assert_eq!(total, stats.decisions.len() as u64);
    }

    #[test]
    fn mut_ref_forwarding_preserves_policy_behavior() {
        struct AlwaysOn;
        impl PolicyHook for AlwaysOn {
            fn enabled(&self) -> bool {
                true
            }
            fn active_cores(&self, _cores_per_node: usize) -> usize {
                1
            }
        }
        let mut p = AlwaysOn;
        let r = &mut p;
        assert!(r.enabled());
        assert_eq!(r.active_cores(8), 1);
        assert!(r.replay_admitted(0));
    }
}
