//! Synthetic non-stationary arrival processes.
//!
//! All generators share one construction: a time-varying rate
//! `λ(t) = base_rate · m(t)` realized by Lewis–Shedler thinning. A
//! homogeneous Poisson candidate stream runs at the peak rate
//! `base_rate · max(m)`, and each candidate at time `t` is accepted with
//! probability `m(t) / max(m)`. The modulation function `m(t)` is
//! supplied by a [`RateModulator`]:
//!
//! * [`MmppChain`] — a Markov-modulated Poisson process: states carry
//!   rate multipliers, dwell times are exponential draws on a dedicated
//!   forked [`SplitMix64`] stream, and state transitions cycle
//!   deterministically so the chain is reproducible from the seed alone.
//! * [`DiurnalWave`] — smooth day/night modulation via a triangle wave.
//!   A triangle (pure arithmetic) rather than a sinusoid keeps the
//!   stream bit-identical across platforms: no `sin` from a platform
//!   libm in the hot path.
//! * [`BurstWave`] — periodic burst trains: rate multiplied by `mult`
//!   for the first `width` cycles of every `every`-cycle period.
//!
//! Determinism: candidate times, acceptance draws, and function draws
//! all come from one forked stream (label `"TRAF"`), the MMPP dwell
//! stream from another (label `"MMPP"`), so the arrival stream is a pure
//! function of (seed, spec, horizon).

use ignite_uarch::rng::SplitMix64;
use ignite_workloads::arrival::pick_function;
use ignite_workloads::{Arrival, ArrivalConfig, ArrivalSource};

/// Fork label for the candidate/acceptance/function draw stream.
const TRAFFIC_STREAM: u64 = 0x54_52_41_46; // "TRAF"
/// Fork label for the MMPP state-dwell stream.
const MMPP_STREAM: u64 = 0x4D_4D_50_50; // "MMPP"

/// A time-varying rate multiplier `m(t) ≥ 0`, queried at non-decreasing
/// times by the thinning loop.
pub trait RateModulator {
    /// The supremum of `m(t)`; the thinning envelope rate. Must be
    /// positive and finite.
    fn max_multiplier(&self) -> f64;

    /// The multiplier at time `t` (cycles). Called with non-decreasing
    /// `t`; implementations may advance internal state.
    fn multiplier_at(&mut self, t: f64) -> f64;

    /// Short stable name for reports and labels.
    fn name(&self) -> &'static str;
}

/// Markov-modulated Poisson chain: state `i` multiplies the base rate by
/// `mults[i]` and dwells for an exponential time with mean `dwells[i]`
/// cycles; states advance cyclically (`i → i+1 mod K`).
#[derive(Debug, Clone)]
pub struct MmppChain {
    mults: Vec<f64>,
    dwell_means: Vec<f64>,
    state: usize,
    next_transition: f64,
    rng: SplitMix64,
}

impl MmppChain {
    /// Builds the chain in state 0 with its dwell stream forked from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the lists are empty, differ in length, contain
    /// non-finite or negative multipliers, non-positive dwell means, or
    /// if every multiplier is zero.
    pub fn new(mults: Vec<f64>, dwell_means: Vec<f64>, seed: u64) -> Self {
        assert!(!mults.is_empty(), "MMPP needs at least one state");
        assert_eq!(mults.len(), dwell_means.len(), "MMPP mults/dwells length mismatch");
        for &m in &mults {
            assert!(m.is_finite() && m >= 0.0, "bad MMPP multiplier {m}");
        }
        for &d in &dwell_means {
            assert!(d.is_finite() && d > 0.0, "bad MMPP dwell {d}");
        }
        assert!(mults.iter().any(|&m| m > 0.0), "MMPP needs a state with positive rate");
        let mut rng = SplitMix64::new(seed).fork(MMPP_STREAM);
        let next_transition = exponential(&mut rng, dwell_means[0]);
        MmppChain { mults, dwell_means, state: 0, next_transition, rng }
    }
}

/// Exponential draw with the given mean; `next_f64` is in `[0, 1)` so
/// the log argument stays in `(0, 1]`.
fn exponential(rng: &mut SplitMix64, mean: f64) -> f64 {
    -mean * (1.0 - rng.next_f64()).ln()
}

impl RateModulator for MmppChain {
    fn max_multiplier(&self) -> f64 {
        self.mults.iter().copied().fold(0.0, f64::max)
    }

    fn multiplier_at(&mut self, t: f64) -> f64 {
        while t >= self.next_transition {
            self.state = (self.state + 1) % self.mults.len();
            self.next_transition += exponential(&mut self.rng, self.dwell_means[self.state]);
        }
        self.mults[self.state]
    }

    fn name(&self) -> &'static str {
        "mmpp"
    }
}

/// Diurnal triangle-wave modulation: `m(t)` ramps linearly from
/// `1 - amp` up to `1 + amp` over the first half of each period and back
/// down over the second, starting mid-ramp at `m(0) = 1`.
#[derive(Debug, Clone)]
pub struct DiurnalWave {
    period: f64,
    amp: f64,
}

impl DiurnalWave {
    /// Builds the wave.
    ///
    /// # Panics
    ///
    /// Panics unless `period` is positive and finite and `amp` is in
    /// `[0, 1]` (so the rate never goes negative).
    pub fn new(period: f64, amp: f64) -> Self {
        assert!(period.is_finite() && period > 0.0, "bad diurnal period {period}");
        assert!((0.0..=1.0).contains(&amp), "diurnal amp {amp} outside [0, 1]");
        DiurnalWave { period, amp }
    }
}

impl RateModulator for DiurnalWave {
    fn max_multiplier(&self) -> f64 {
        1.0 + self.amp
    }

    fn multiplier_at(&mut self, t: f64) -> f64 {
        let phase = (t / self.period).fract();
        // Triangle in [-1, 1] starting mid-ramp: 0 at phase 0, peak at
        // 0.25, trough at 0.75.
        let tri = if phase < 0.25 {
            4.0 * phase
        } else if phase < 0.75 {
            2.0 - 4.0 * phase
        } else {
            4.0 * phase - 4.0
        };
        1.0 + self.amp * tri
    }

    fn name(&self) -> &'static str {
        "diurnal"
    }
}

/// Periodic burst train: `m(t) = mult` during the first `width` cycles
/// of each `every`-cycle period, 1 otherwise.
#[derive(Debug, Clone)]
pub struct BurstWave {
    every: f64,
    width: f64,
    mult: f64,
}

impl BurstWave {
    /// Builds the train.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < width <= every`, both finite, and `mult` is
    /// finite and ≥ 1.
    pub fn new(every: f64, width: f64, mult: f64) -> Self {
        assert!(every.is_finite() && every > 0.0, "bad burst period {every}");
        assert!(width.is_finite() && width > 0.0 && width <= every, "bad burst width {width}");
        assert!(mult.is_finite() && mult >= 1.0, "bad burst multiplier {mult}");
        BurstWave { every, width, mult }
    }
}

impl RateModulator for BurstWave {
    fn max_multiplier(&self) -> f64 {
        self.mult
    }

    fn multiplier_at(&mut self, t: f64) -> f64 {
        if t % self.every < self.width {
            self.mult
        } else {
            1.0
        }
    }

    fn name(&self) -> &'static str {
        "burst"
    }
}

/// A modulated Poisson [`ArrivalSource`]: thinning over a candidate
/// stream at the envelope rate, Zipf function draw per accepted arrival.
/// O(1) state regardless of stream length.
#[derive(Debug, Clone)]
pub struct ModulatedSource<M: RateModulator> {
    functions: usize,
    cumulative: Vec<f64>,
    envelope_gap: f64,
    max_mult: f64,
    horizon: f64,
    modulator: M,
    rng: SplitMix64,
    t: f64,
    done: bool,
}

impl<M: RateModulator> ModulatedSource<M> {
    /// Builds the source: base rate, Zipf skew, horizon, and seed come
    /// from `cfg`; the shape comes from `modulator`.
    ///
    /// # Panics
    ///
    /// Panics on the [`ArrivalConfig::zipf_cumulative`] conditions, on a
    /// non-positive/non-finite base rate, or on a non-positive/non-finite
    /// envelope multiplier.
    pub fn new(cfg: &ArrivalConfig, modulator: M) -> Self {
        assert!(
            cfg.rate_per_mcycle > 0.0 && cfg.rate_per_mcycle.is_finite(),
            "bad rate {}",
            cfg.rate_per_mcycle
        );
        let max_mult = modulator.max_multiplier();
        assert!(max_mult > 0.0 && max_mult.is_finite(), "bad envelope multiplier {max_mult}");
        ModulatedSource {
            functions: cfg.functions,
            cumulative: cfg.zipf_cumulative(),
            envelope_gap: 1.0e6 / (cfg.rate_per_mcycle * max_mult),
            max_mult,
            horizon: cfg.horizon_cycles as f64,
            modulator,
            rng: SplitMix64::new(cfg.seed).fork(TRAFFIC_STREAM),
            t: 0.0,
            done: false,
        }
    }
}

impl<M: RateModulator> ArrivalSource for ModulatedSource<M> {
    fn functions(&self) -> usize {
        self.functions
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.done {
            return None;
        }
        loop {
            self.t += exponential(&mut self.rng, self.envelope_gap);
            if self.t >= self.horizon {
                self.done = true;
                return None;
            }
            // Thin: accept the candidate with probability m(t)/max(m).
            let accept = self.rng.next_f64();
            let m = self.modulator.multiplier_at(self.t);
            if accept * self.max_mult < m {
                let v = self.rng.next_f64();
                return Some(Arrival {
                    cycle: self.t as u64,
                    function: pick_function(&self.cumulative, v),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> ArrivalConfig {
        ArrivalConfig {
            rate_per_mcycle: 50.0,
            horizon_cycles: 8_000_000,
            ..ArrivalConfig::default()
        }
    }

    fn drain<S: ArrivalSource>(mut source: S) -> Vec<Arrival> {
        let mut out = Vec::new();
        while let Some(a) = source.next_arrival() {
            out.push(a);
        }
        out
    }

    fn default_mmpp(cfg: &ArrivalConfig) -> ModulatedSource<MmppChain> {
        ModulatedSource::new(
            cfg,
            MmppChain::new(vec![1.0, 6.0], vec![300_000.0, 60_000.0], cfg.seed),
        )
    }

    #[test]
    fn mmpp_same_seed_identical_stream() {
        let cfg = base_cfg();
        assert_eq!(drain(default_mmpp(&cfg)), drain(default_mmpp(&cfg)));
    }

    #[test]
    fn mmpp_different_seed_differs() {
        let a = drain(default_mmpp(&base_cfg()));
        let b = drain(default_mmpp(&ArrivalConfig { seed: 43, ..base_cfg() }));
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_ordered_and_in_range() {
        let cfg = base_cfg();
        let arrivals = drain(default_mmpp(&cfg));
        assert!(!arrivals.is_empty());
        for pair in arrivals.windows(2) {
            assert!(pair[0].cycle <= pair[1].cycle);
        }
        assert!(arrivals.iter().all(|a| (a.function as usize) < cfg.functions));
        assert!(arrivals.iter().all(|a| a.cycle < cfg.horizon_cycles));
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // A 2-state chain alternating 1x/6x must raise the inter-arrival
        // CV² well above the Poisson value of 1.
        let cfg = ArrivalConfig { horizon_cycles: 60_000_000, ..base_cfg() };
        let arrivals = drain(default_mmpp(&cfg));
        let gaps: Vec<f64> =
            arrivals.windows(2).map(|p| (p[1].cycle - p[0].cycle) as f64).collect();
        let n = gaps.len() as f64;
        let mean = gaps.iter().sum::<f64>() / n;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / n;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 1.3, "cv2 {cv2} not bursty");
    }

    #[test]
    fn diurnal_wave_shape() {
        let mut wave = DiurnalWave::new(1_000_000.0, 0.5);
        assert_eq!(wave.multiplier_at(0.0), 1.0);
        assert_eq!(wave.multiplier_at(250_000.0), 1.5);
        assert_eq!(wave.multiplier_at(750_000.0), 0.5);
        assert_eq!(wave.multiplier_at(1_250_000.0), 1.5);
        assert_eq!(wave.max_multiplier(), 1.5);
    }

    #[test]
    fn burst_wave_shape() {
        let mut wave = BurstWave::new(500_000.0, 50_000.0, 8.0);
        assert_eq!(wave.multiplier_at(0.0), 8.0);
        assert_eq!(wave.multiplier_at(49_999.0), 8.0);
        assert_eq!(wave.multiplier_at(50_000.0), 1.0);
        assert_eq!(wave.multiplier_at(499_999.0), 1.0);
        assert_eq!(wave.multiplier_at(500_001.0), 8.0);
    }

    #[test]
    fn burst_raises_arrival_count() {
        let cfg = base_cfg();
        let plain = drain(ModulatedSource::new(&cfg, BurstWave::new(400_000.0, 40_000.0, 1.0)));
        let bursty = drain(ModulatedSource::new(&cfg, BurstWave::new(400_000.0, 40_000.0, 8.0)));
        assert!(
            bursty.len() > plain.len() + plain.len() / 2,
            "{} vs {}",
            bursty.len(),
            plain.len()
        );
    }

    #[test]
    #[should_panic(expected = "MMPP mults/dwells length mismatch")]
    fn mmpp_rejects_length_mismatch() {
        MmppChain::new(vec![1.0, 2.0], vec![100.0], 1);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn diurnal_rejects_overdeep_amp() {
        DiurnalWave::new(1000.0, 1.5);
    }
}
