//! Workload fingerprints: a compact, versioned statistical summary of the
//! arrival stream a simulation actually consumed.
//!
//! The fingerprint rides inside the cluster report (`"workload"` section,
//! schema [`WORKLOAD_SCHEMA`]) so an experiment is self-describing — the
//! report says not just which policies ran but what traffic shape they
//! ran under — and so `scope diff` can refuse to compare reports produced
//! by different workloads. The accumulator is strictly online: O(1) per
//! arrival plus one counter per function, matching the streaming
//! simulator's O(1) arrival-state budget.

use ignite_workloads::Arrival;

/// Schema tag for the fingerprint section in cluster reports.
pub const WORKLOAD_SCHEMA: &str = "ignite-workload-v1";

/// Summary statistics of one consumed arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadFingerprint {
    /// Total arrivals consumed.
    pub arrivals: u64,
    /// Number of distinct function indices the source could emit.
    pub functions: usize,
    /// Cycle of the last arrival (0 when the stream was empty).
    pub horizon_cycles: u64,
    /// Mean arrival rate over the observed horizon, per million cycles.
    pub rate_per_mcycle: f64,
    /// Squared coefficient of variation of inter-arrival gaps. 1.0 for a
    /// Poisson process; >1 means burstier, <1 more regular.
    pub interarrival_cv2: f64,
    /// Least-squares Zipf exponent estimate over the observed
    /// per-function popularity ranking (0 when fewer than two functions
    /// were invoked).
    pub zipf_s_hat: f64,
    /// Share of arrivals going to the single most popular function.
    pub top1_share: f64,
    /// Share of arrivals going to the five most popular functions.
    pub top5_share: f64,
}

/// Online accumulator producing a [`WorkloadFingerprint`].
#[derive(Debug, Clone)]
pub struct FingerprintAccum {
    counts: Vec<u64>,
    arrivals: u64,
    last_cycle: u64,
    prev_cycle: Option<u64>,
    gap_sum: f64,
    gap_sumsq: f64,
}

impl FingerprintAccum {
    /// An empty accumulator over `functions` distinct indices.
    pub fn new(functions: usize) -> Self {
        FingerprintAccum {
            counts: vec![0; functions],
            arrivals: 0,
            last_cycle: 0,
            prev_cycle: None,
            gap_sum: 0.0,
            gap_sumsq: 0.0,
        }
    }

    /// Folds one arrival in. Arrivals must be observed in stream order.
    ///
    /// # Panics
    ///
    /// Panics if the arrival's function index is out of range.
    pub fn observe(&mut self, arrival: Arrival) {
        let f = arrival.function as usize;
        assert!(f < self.counts.len(), "function {f} out of range {}", self.counts.len());
        self.counts[f] += 1;
        self.arrivals += 1;
        if let Some(prev) = self.prev_cycle {
            let gap = arrival.cycle.saturating_sub(prev) as f64;
            self.gap_sum += gap;
            self.gap_sumsq += gap * gap;
        }
        self.prev_cycle = Some(arrival.cycle);
        self.last_cycle = arrival.cycle;
    }

    /// Per-function arrival counts observed so far (indexed by function).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The fingerprint of everything observed so far.
    pub fn finish(&self) -> WorkloadFingerprint {
        let gaps = self.arrivals.saturating_sub(1) as f64;
        let (interarrival_cv2, rate_per_mcycle) = if gaps >= 1.0 && self.gap_sum > 0.0 {
            let mean = self.gap_sum / gaps;
            // Population variance, clamped: float cancellation can leave
            // a tiny negative residue for near-constant gaps.
            let var = (self.gap_sumsq / gaps - mean * mean).max(0.0);
            (var / (mean * mean), 1.0e6 / mean)
        } else {
            (0.0, 0.0)
        };

        let mut sorted: Vec<u64> = self.counts.iter().copied().filter(|&c| c > 0).collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let total = self.arrivals as f64;
        let share = |k: usize| -> f64 {
            if self.arrivals == 0 {
                0.0
            } else {
                sorted.iter().take(k).sum::<u64>() as f64 / total
            }
        };

        WorkloadFingerprint {
            arrivals: self.arrivals,
            functions: self.counts.len(),
            horizon_cycles: self.last_cycle,
            rate_per_mcycle,
            interarrival_cv2,
            zipf_s_hat: zipf_fit(&sorted),
            top1_share: share(1),
            top5_share: share(5),
        }
    }
}

/// Least-squares fit of `ln(count) = a - s·ln(rank)` over the non-zero
/// popularity ranking (rank 1 = most popular); returns the exponent `s`,
/// or 0 for fewer than two ranks. A flat (all-equal) distribution fits
/// s = 0; the default Zipf(s=1) workload fits close to 1.
fn zipf_fit(sorted_desc: &[u64]) -> f64 {
    if sorted_desc.len() < 2 {
        return 0.0;
    }
    let n = sorted_desc.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for (i, &c) in sorted_desc.iter().enumerate() {
        let x = ((i + 1) as f64).ln();
        let y = (c as f64).ln();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    if denom <= 0.0 {
        return 0.0;
    }
    -((n * sxy - sx * sy) / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_workloads::ArrivalConfig;

    fn fingerprint_of(cfg: &ArrivalConfig) -> WorkloadFingerprint {
        let trace = cfg.generate();
        let mut accum = FingerprintAccum::new(trace.functions);
        for &a in &trace.arrivals {
            accum.observe(a);
        }
        accum.finish()
    }

    #[test]
    fn empty_stream_fingerprint_is_zeroed() {
        let fp = FingerprintAccum::new(8).finish();
        assert_eq!(fp.arrivals, 0);
        assert_eq!(fp.functions, 8);
        assert_eq!(fp.horizon_cycles, 0);
        assert_eq!(fp.rate_per_mcycle, 0.0);
        assert_eq!(fp.interarrival_cv2, 0.0);
        assert_eq!(fp.zipf_s_hat, 0.0);
        assert_eq!(fp.top1_share, 0.0);
        assert_eq!(fp.top5_share, 0.0);
    }

    /// Audit pin: with fewer than two arrivals there are no gaps, so
    /// the CV² branch must stay on its guarded zero path — no NaN from
    /// a 0/0 mean and no division by a zero gap count.
    #[test]
    fn single_arrival_yields_finite_zero_cv2_and_rate() {
        let mut accum = FingerprintAccum::new(4);
        accum.observe(Arrival { cycle: 123, function: 2 });
        let fp = accum.finish();
        assert_eq!(fp.arrivals, 1);
        assert_eq!(fp.interarrival_cv2, 0.0);
        assert_eq!(fp.rate_per_mcycle, 0.0);
        assert!(fp.interarrival_cv2.is_finite() && fp.rate_per_mcycle.is_finite());
        // Two simultaneous arrivals make one zero-width gap: gap_sum is
        // 0, so the same guard must hold the zero path.
        accum.observe(Arrival { cycle: 123, function: 2 });
        let fp = accum.finish();
        assert_eq!(fp.interarrival_cv2, 0.0);
        assert_eq!(fp.rate_per_mcycle, 0.0);
    }

    /// Audit pin: a stream that only ever invokes one function gives
    /// the least-squares Zipf fit a single rank — the `len() < 2` guard
    /// must return 0 rather than divide by a zero ln-rank variance.
    #[test]
    fn single_distinct_function_fits_zipf_zero() {
        let mut accum = FingerprintAccum::new(8);
        for i in 0..50u64 {
            accum.observe(Arrival { cycle: i * 1_000, function: 3 });
        }
        let fp = accum.finish();
        assert_eq!(fp.zipf_s_hat, 0.0);
        assert!(fp.zipf_s_hat.is_finite());
        assert_eq!(fp.top1_share, 1.0);
    }

    #[test]
    fn poisson_stream_has_cv2_near_one_and_matching_rate() {
        let cfg = ArrivalConfig {
            rate_per_mcycle: 80.0,
            horizon_cycles: 40_000_000,
            ..ArrivalConfig::default()
        };
        let fp = fingerprint_of(&cfg);
        assert!(fp.arrivals > 2_000, "arrivals {}", fp.arrivals);
        assert!((fp.interarrival_cv2 - 1.0).abs() < 0.15, "cv2 {}", fp.interarrival_cv2);
        assert!((fp.rate_per_mcycle - 80.0).abs() < 8.0, "rate {}", fp.rate_per_mcycle);
    }

    #[test]
    fn zipf_fit_recovers_exponent_roughly() {
        let skewed = fingerprint_of(&ArrivalConfig {
            zipf_s: 1.5,
            rate_per_mcycle: 100.0,
            horizon_cycles: 40_000_000,
            ..ArrivalConfig::default()
        });
        let flat = fingerprint_of(&ArrivalConfig {
            zipf_s: 0.0,
            rate_per_mcycle: 100.0,
            horizon_cycles: 40_000_000,
            ..ArrivalConfig::default()
        });
        assert!(skewed.zipf_s_hat > 1.0, "skewed fit {}", skewed.zipf_s_hat);
        assert!(flat.zipf_s_hat < 0.3, "flat fit {}", flat.zipf_s_hat);
        assert!(skewed.top1_share > flat.top1_share);
    }

    #[test]
    fn shares_are_ordered_and_bounded() {
        let fp = fingerprint_of(&ArrivalConfig::default());
        assert!(fp.top1_share > 0.0 && fp.top1_share <= fp.top5_share);
        assert!(fp.top5_share <= 1.0);
    }
}
