//! The `--traffic` spec language.
//!
//! A spec is `kind[:arg,key=value,...]`:
//!
//! * `azure:PATH` or `azure:PATH,cpm=100000` — import an Azure-style CSV
//!   (see [`crate::azure`]); `cpm` is simulated cycles per trace minute.
//! * `mmpp:mults=1/6,dwells=300000/60000` — Markov-modulated Poisson;
//!   `/`-separated per-state rate multipliers and mean dwell cycles.
//! * `diurnal:period=1000000,amp=0.5` — triangle-wave rate modulation.
//! * `burst:every=400000,width=40000,mult=6` — periodic burst trains.
//!
//! Synthetic kinds take their base rate, Zipf skew, seed, and horizon
//! from the surrounding arrival configuration (`--rate`, `--zipf`,
//! `--seed`, `--horizon`); omitted keys fall back to the defaults shown
//! above. The raw spec string is echoed verbatim into the cluster
//! report's config section, so goldens pin specs byte-for-byte.

use crate::azure::{AzureParseError, AzureSource, AzureTrace};
use crate::synth::{BurstWave, DiurnalWave, MmppChain, ModulatedSource};
use ignite_workloads::suite::Suite;
use ignite_workloads::{ArrivalConfig, ArrivalSource, Trace};

/// A parsed, validated `--traffic` spec.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficSpec {
    /// Azure-style CSV import.
    Azure {
        /// Path to the CSV file.
        path: String,
        /// Simulated cycles per trace minute.
        cycles_per_minute: u64,
    },
    /// Markov-modulated Poisson process.
    Mmpp {
        /// Per-state rate multipliers.
        mults: Vec<f64>,
        /// Per-state mean dwell times in cycles.
        dwells: Vec<f64>,
    },
    /// Diurnal triangle-wave modulation.
    Diurnal {
        /// Wave period in cycles.
        period: f64,
        /// Amplitude in `[0, 1]`.
        amp: f64,
    },
    /// Periodic burst train.
    Burst {
        /// Burst period in cycles.
        every: f64,
        /// Burst width in cycles (`0 < width <= every`).
        width: f64,
        /// Rate multiplier inside a burst (`>= 1`).
        mult: f64,
    },
}

/// Spec parse/validation error.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec string was empty.
    Empty,
    /// Unknown spec kind.
    UnknownKind {
        /// The kind found before `:`.
        kind: String,
    },
    /// `azure:` without a path.
    MissingPath,
    /// A key the kind does not accept.
    UnknownKey {
        /// Spec kind.
        kind: &'static str,
        /// Offending key.
        key: String,
    },
    /// A value failed to parse or was out of domain.
    BadValue {
        /// Offending key.
        key: &'static str,
        /// Raw value text.
        value: String,
    },
    /// `mults` and `dwells` lists differ in length.
    MmppLengthMismatch {
        /// Number of multipliers.
        mults: usize,
        /// Number of dwell means.
        dwells: usize,
    },
    /// Every MMPP multiplier was zero.
    MmppAllZero,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty traffic spec"),
            SpecError::UnknownKind { kind } => {
                write!(f, "unknown traffic kind '{kind}' (expected azure, mmpp, diurnal, burst)")
            }
            SpecError::MissingPath => write!(f, "azure spec needs a path: azure:PATH"),
            SpecError::UnknownKey { kind, key } => {
                write!(f, "traffic kind '{kind}' does not accept key '{key}'")
            }
            SpecError::BadValue { key, value } => {
                write!(f, "bad traffic value for '{key}': '{value}'")
            }
            SpecError::MmppLengthMismatch { mults, dwells } => {
                write!(f, "mmpp lists differ: {mults} mults vs {dwells} dwells")
            }
            SpecError::MmppAllZero => write!(f, "mmpp needs at least one state with mult > 0"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Error building a source from a spec (I/O or trace parse).
#[derive(Debug)]
pub enum BuildError {
    /// Reading the Azure CSV failed.
    Io {
        /// The path that failed.
        path: String,
        /// The I/O error text.
        error: String,
    },
    /// The Azure CSV failed to parse.
    Parse(AzureParseError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Io { path, error } => write!(f, "cannot read '{path}': {error}"),
            BuildError::Parse(e) => write!(f, "azure trace: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl TrafficSpec {
    /// Parses and validates a spec string.
    pub fn parse(spec: &str) -> Result<Self, SpecError> {
        if spec.is_empty() {
            return Err(SpecError::Empty);
        }
        let (kind, rest) = match spec.split_once(':') {
            Some((k, r)) => (k, r),
            None => (spec, ""),
        };
        match kind {
            "azure" => parse_azure(rest),
            "mmpp" => parse_mmpp(rest),
            "diurnal" => parse_diurnal(rest),
            "burst" => parse_burst(rest),
            _ => Err(SpecError::UnknownKind { kind: kind.to_string() }),
        }
    }

    /// Short stable name of the spec kind, used in fingerprint labels.
    pub fn kind(&self) -> &'static str {
        match self {
            TrafficSpec::Azure { .. } => "azure",
            TrafficSpec::Mmpp { .. } => "mmpp",
            TrafficSpec::Diurnal { .. } => "diurnal",
            TrafficSpec::Burst { .. } => "burst",
        }
    }

    /// Builds the streaming source for this spec. Synthetic kinds draw
    /// base rate/skew/seed/horizon from `arrival`; `azure` reads its CSV
    /// now and maps onto `suite`.
    pub fn build(
        &self,
        arrival: &ArrivalConfig,
        suite: &Suite,
    ) -> Result<Box<dyn ArrivalSource>, BuildError> {
        match self {
            TrafficSpec::Azure { path, cycles_per_minute } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| BuildError::Io { path: path.clone(), error: e.to_string() })?;
                let trace = AzureTrace::parse(&text).map_err(BuildError::Parse)?;
                Ok(Box::new(AzureSource::new(trace, suite, *cycles_per_minute)))
            }
            TrafficSpec::Mmpp { mults, dwells } => Ok(Box::new(ModulatedSource::new(
                arrival,
                MmppChain::new(mults.clone(), dwells.clone(), arrival.seed),
            ))),
            TrafficSpec::Diurnal { period, amp } => {
                Ok(Box::new(ModulatedSource::new(arrival, DiurnalWave::new(*period, *amp))))
            }
            TrafficSpec::Burst { every, width, mult } => {
                Ok(Box::new(ModulatedSource::new(arrival, BurstWave::new(*every, *width, *mult))))
            }
        }
    }
}

/// Drains a source into a materialized [`Trace`] — the bridge back to
/// `ignite-trace-v1` for replay and editing. Every source round-trips
/// exactly: `materialize` → `to_text` → `parse` reproduces the arrivals.
pub fn materialize<S: ArrivalSource + ?Sized>(source: &mut S) -> Trace {
    let mut arrivals = Vec::new();
    while let Some(a) = source.next_arrival() {
        arrivals.push(a);
    }
    Trace { functions: source.functions(), arrivals }
}

fn split_kvs<'a>(rest: &'a str, kind: &'static str) -> Result<Vec<(&'a str, &'a str)>, SpecError> {
    let mut kvs = Vec::new();
    for part in rest.split(',') {
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| SpecError::UnknownKey { kind, key: part.to_string() })?;
        kvs.push((k, v));
    }
    Ok(kvs)
}

fn parse_azure(rest: &str) -> Result<TrafficSpec, SpecError> {
    let mut parts = rest.split(',');
    let path = parts.next().unwrap_or("");
    if path.is_empty() {
        return Err(SpecError::MissingPath);
    }
    let mut cycles_per_minute = 100_000u64;
    for part in parts {
        match part.split_once('=') {
            Some(("cpm", v)) => {
                cycles_per_minute = v
                    .parse::<u64>()
                    .ok()
                    .filter(|&c| c > 0)
                    .ok_or_else(|| SpecError::BadValue { key: "cpm", value: v.to_string() })?;
            }
            _ => return Err(SpecError::UnknownKey { kind: "azure", key: part.to_string() }),
        }
    }
    Ok(TrafficSpec::Azure { path: path.to_string(), cycles_per_minute })
}

fn parse_f64_list(raw: &str, key: &'static str) -> Result<Vec<f64>, SpecError> {
    let bad = || SpecError::BadValue { key, value: raw.to_string() };
    let mut out = Vec::new();
    for part in raw.split('/') {
        let v = part.parse::<f64>().map_err(|_| bad())?;
        if !v.is_finite() || v < 0.0 {
            return Err(bad());
        }
        out.push(v);
    }
    if out.is_empty() {
        return Err(bad());
    }
    Ok(out)
}

fn parse_mmpp(rest: &str) -> Result<TrafficSpec, SpecError> {
    let mut mults = vec![1.0, 6.0];
    let mut dwells = vec![300_000.0, 60_000.0];
    for (k, v) in split_kvs(rest, "mmpp")? {
        match k {
            "mults" => mults = parse_f64_list(v, "mults")?,
            "dwells" => {
                dwells = parse_f64_list(v, "dwells")?;
                if dwells.iter().any(|&d| d <= 0.0) {
                    return Err(SpecError::BadValue { key: "dwells", value: v.to_string() });
                }
            }
            _ => return Err(SpecError::UnknownKey { kind: "mmpp", key: k.to_string() }),
        }
    }
    if mults.len() != dwells.len() {
        return Err(SpecError::MmppLengthMismatch { mults: mults.len(), dwells: dwells.len() });
    }
    if !mults.iter().any(|&m| m > 0.0) {
        return Err(SpecError::MmppAllZero);
    }
    Ok(TrafficSpec::Mmpp { mults, dwells })
}

fn parse_bounded_f64(
    v: &str,
    key: &'static str,
    ok: impl Fn(f64) -> bool,
) -> Result<f64, SpecError> {
    v.parse::<f64>()
        .ok()
        .filter(|x| x.is_finite() && ok(*x))
        .ok_or_else(|| SpecError::BadValue { key, value: v.to_string() })
}

fn parse_diurnal(rest: &str) -> Result<TrafficSpec, SpecError> {
    let mut period = 1_000_000.0;
    let mut amp = 0.5;
    for (k, v) in split_kvs(rest, "diurnal")? {
        match k {
            "period" => period = parse_bounded_f64(v, "period", |x| x > 0.0)?,
            "amp" => amp = parse_bounded_f64(v, "amp", |x| (0.0..=1.0).contains(&x))?,
            _ => return Err(SpecError::UnknownKey { kind: "diurnal", key: k.to_string() }),
        }
    }
    Ok(TrafficSpec::Diurnal { period, amp })
}

fn parse_burst(rest: &str) -> Result<TrafficSpec, SpecError> {
    let mut every = 400_000.0;
    let mut width = 40_000.0;
    let mut mult = 6.0;
    for (k, v) in split_kvs(rest, "burst")? {
        match k {
            "every" => every = parse_bounded_f64(v, "every", |x| x > 0.0)?,
            "width" => width = parse_bounded_f64(v, "width", |x| x > 0.0)?,
            "mult" => mult = parse_bounded_f64(v, "mult", |x| x >= 1.0)?,
            _ => return Err(SpecError::UnknownKey { kind: "burst", key: k.to_string() }),
        }
    }
    if width > every {
        return Err(SpecError::BadValue { key: "width", value: format!("{width}") });
    }
    Ok(TrafficSpec::Burst { every, width, mult })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_kinds_with_defaults() {
        assert_eq!(
            TrafficSpec::parse("azure:trace.csv").unwrap(),
            TrafficSpec::Azure { path: "trace.csv".to_string(), cycles_per_minute: 100_000 }
        );
        assert_eq!(
            TrafficSpec::parse("azure:trace.csv,cpm=50000").unwrap(),
            TrafficSpec::Azure { path: "trace.csv".to_string(), cycles_per_minute: 50_000 }
        );
        assert_eq!(
            TrafficSpec::parse("mmpp").unwrap(),
            TrafficSpec::Mmpp { mults: vec![1.0, 6.0], dwells: vec![300_000.0, 60_000.0] }
        );
        assert_eq!(
            TrafficSpec::parse("mmpp:mults=1/4/9,dwells=100/200/300").unwrap(),
            TrafficSpec::Mmpp { mults: vec![1.0, 4.0, 9.0], dwells: vec![100.0, 200.0, 300.0] }
        );
        assert_eq!(
            TrafficSpec::parse("diurnal:period=2000000,amp=0.8").unwrap(),
            TrafficSpec::Diurnal { period: 2_000_000.0, amp: 0.8 }
        );
        assert_eq!(
            TrafficSpec::parse("burst:every=500000,width=50000,mult=8").unwrap(),
            TrafficSpec::Burst { every: 500_000.0, width: 50_000.0, mult: 8.0 }
        );
    }

    #[test]
    fn rejects_bad_specs() {
        use SpecError as E;
        assert_eq!(TrafficSpec::parse(""), Err(E::Empty));
        assert_eq!(
            TrafficSpec::parse("poisson:x=1"),
            Err(E::UnknownKind { kind: "poisson".to_string() })
        );
        assert_eq!(TrafficSpec::parse("azure:"), Err(E::MissingPath));
        assert_eq!(
            TrafficSpec::parse("azure:x.csv,nope=1"),
            Err(E::UnknownKey { kind: "azure", key: "nope=1".to_string() })
        );
        assert_eq!(
            TrafficSpec::parse("azure:x.csv,cpm=0"),
            Err(E::BadValue { key: "cpm", value: "0".to_string() })
        );
        assert_eq!(
            TrafficSpec::parse("mmpp:mults=1/2,dwells=100"),
            Err(E::MmppLengthMismatch { mults: 2, dwells: 1 })
        );
        assert_eq!(TrafficSpec::parse("mmpp:mults=0/0,dwells=1/1"), Err(E::MmppAllZero));
        assert_eq!(
            TrafficSpec::parse("mmpp:dwells=0/1"),
            Err(E::BadValue { key: "dwells", value: "0/1".to_string() })
        );
        assert_eq!(
            TrafficSpec::parse("diurnal:amp=1.5"),
            Err(E::BadValue { key: "amp", value: "1.5".to_string() })
        );
        assert_eq!(
            TrafficSpec::parse("burst:every=100,width=200"),
            Err(E::BadValue { key: "width", value: "200".to_string() })
        );
        assert_eq!(
            TrafficSpec::parse("burst:mult=0.5"),
            Err(E::BadValue { key: "mult", value: "0.5".to_string() })
        );
        for spec in ["", "nope:1", "azure:", "mmpp:mults=x"] {
            if let Err(e) = TrafficSpec::parse(spec) {
                let _ = e.to_string();
            }
        }
    }

    #[test]
    fn built_sources_are_deterministic() {
        let arrival = ArrivalConfig { horizon_cycles: 2_000_000, ..ArrivalConfig::default() };
        let suite = Suite::paper_suite_scaled(0.02);
        for spec in ["mmpp", "diurnal:period=500000,amp=0.9", "burst:every=300000"] {
            let parsed = TrafficSpec::parse(spec).unwrap();
            let a = materialize(&mut *parsed.build(&arrival, &suite).unwrap());
            let b = materialize(&mut *parsed.build(&arrival, &suite).unwrap());
            assert_eq!(a, b, "spec {spec} not deterministic");
            assert!(!a.arrivals.is_empty(), "spec {spec} produced no arrivals");
        }
    }

    #[test]
    fn materialized_source_round_trips_trace_v1() {
        let arrival = ArrivalConfig { horizon_cycles: 1_000_000, ..ArrivalConfig::default() };
        let suite = Suite::paper_suite_scaled(0.02);
        let spec = TrafficSpec::parse("mmpp").unwrap();
        let trace = materialize(&mut *spec.build(&arrival, &suite).unwrap());
        let text = trace.to_text();
        assert_eq!(Trace::parse(&text).unwrap(), trace);
    }
}
