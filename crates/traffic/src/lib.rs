#![warn(missing_docs)]
//! Production-shaped traffic for the Ignite cluster simulator.
//!
//! The stationary Poisson/Zipf process in `ignite-workloads` is a fine
//! smoke-test workload, but every policy the cluster ships — schedulers,
//! keep-alive, store eviction, chaos recovery — only differentiates under
//! the skewed, bursty, time-varying invocation patterns production traces
//! exhibit. This crate supplies those workloads as streaming
//! [`ArrivalSource`](ignite_workloads::ArrivalSource)s:
//!
//! * [`azure`] — an importer for Azure-Functions-style trace CSVs
//!   (per-function per-minute invocation counts plus duration/memory
//!   percentiles), with line-numbered typed errors and a deterministic
//!   mapping from trace functions onto the generated suite by duration
//!   percentile → code-image size class.
//! * [`synth`] — synthetic generators beyond Poisson: MMPP
//!   (Markov-modulated Poisson), diurnal rate modulation (triangle wave,
//!   so no platform-dependent transcendentals), and burst trains, all via
//!   Lewis–Shedler thinning on forked [`SplitMix64`](ignite_uarch::rng::SplitMix64)
//!   streams.
//! * [`spec`] — the `--traffic` CLI spec language (`azure:PATH`,
//!   `mmpp:mults=1/6,dwells=300000/60000`, `diurnal:…`, `burst:…`).
//! * [`fingerprint`] — a versioned workload fingerprint (arrival count,
//!   rate, burstiness CV², skew estimate, top-K shares) embedded in
//!   cluster reports so experiments are self-describing and `scope diff`
//!   can refuse cross-workload comparisons.
//!
//! Everything is deterministic: the same spec, seed, and input bytes
//! produce bit-identical arrival streams across processes and runs.

pub mod azure;
pub mod fingerprint;
pub mod spec;
pub mod synth;

pub use azure::{AzureParseError, AzureSource, AzureTrace};
pub use fingerprint::{FingerprintAccum, WorkloadFingerprint, WORKLOAD_SCHEMA};
pub use spec::{materialize, SpecError, TrafficSpec};
pub use synth::{BurstWave, DiurnalWave, MmppChain, ModulatedSource, RateModulator};
