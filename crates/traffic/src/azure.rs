//! Azure-Functions-style trace import.
//!
//! The public Azure Functions traces (Shahrad et al., ATC'20) describe
//! each function by per-minute invocation counts plus duration and memory
//! percentiles. This module parses a compact CSV of that shape — strictly
//! and dependency-free, with line-numbered typed errors like the
//! `ignite-trace-v1` parser — and turns it into a streaming
//! [`ArrivalSource`] over the generated suite:
//!
//! * trace functions are ranked by duration percentile and bucketed onto
//!   suite functions ranked by per-invocation instruction count, so a
//!   long-running trace function lands on a large code image;
//! * each minute's `c` invocations are spread evenly across the minute
//!   (midpoint rule), so per-minute counts round-trip exactly while
//!   arrival cycles stay deterministic integers.
//!
//! # CSV format
//!
//! ```csv
//! function,duration_p50_ms,memory_p50_mb,m0,m1,m2
//! checkout,12.5,128,4,0,9
//! thumbnail,3.25,96,30,28,31
//! ```
//!
//! The first three columns are fixed; every further column is one minute
//! of invocation counts. Fields are comma-separated with no padding; LF
//! line endings only.

use ignite_workloads::suite::Suite;
use ignite_workloads::{Arrival, ArrivalSource};

/// One function row of an Azure-style trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AzureFunction {
    /// Function name (unique within the trace).
    pub name: String,
    /// Median invocation duration in milliseconds.
    pub duration_p50_ms: f64,
    /// Median allocated memory in MiB.
    pub memory_p50_mb: f64,
    /// Invocation count per minute; one entry per minute column.
    pub per_minute: Vec<u64>,
}

/// A parsed Azure-style trace: rows plus the shared minute-column count.
#[derive(Debug, Clone, PartialEq)]
pub struct AzureTrace {
    /// Function rows in file order.
    pub functions: Vec<AzureFunction>,
    /// Number of minute columns.
    pub minutes: usize,
}

/// Typed Azure CSV parse error; lines are 1-based.
#[derive(Debug, Clone, PartialEq)]
pub enum AzureParseError {
    /// The input had no lines at all.
    Empty,
    /// The header line did not match the expected fixed columns.
    BadHeader {
        /// The header actually found.
        found: String,
    },
    /// The header declared no minute columns.
    NoMinutes,
    /// A line ended with `\r\n`; only LF endings are accepted.
    CrlfLineEnding {
        /// Offending line.
        line: usize,
    },
    /// A field carried leading or trailing whitespace.
    StrayWhitespace {
        /// Offending line.
        line: usize,
    },
    /// A row had the wrong number of comma-separated fields.
    WrongFieldCount {
        /// Offending line.
        line: usize,
        /// Fields expected (3 fixed + minutes).
        expected: usize,
        /// Fields found.
        found: usize,
    },
    /// A row's function name was empty.
    EmptyName {
        /// Offending line.
        line: usize,
    },
    /// A numeric field failed to parse or was out of domain.
    BadNumber {
        /// Offending line.
        line: usize,
        /// Column name, e.g. `duration_p50_ms`.
        field: &'static str,
        /// The raw field text.
        value: String,
    },
    /// Two rows shared a function name.
    DuplicateFunction {
        /// Line of the second occurrence.
        line: usize,
        /// The repeated name.
        name: String,
    },
    /// The file had a header but no function rows.
    NoFunctions,
}

impl std::fmt::Display for AzureParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AzureParseError::Empty => write!(f, "empty azure trace"),
            AzureParseError::BadHeader { found } => write!(
                f,
                "bad azure header: expected 'function,duration_p50_ms,memory_p50_mb,<minutes...>', found '{found}'"
            ),
            AzureParseError::NoMinutes => write!(f, "azure header declares no minute columns"),
            AzureParseError::CrlfLineEnding { line } => {
                write!(f, "line {line}: CRLF line ending (LF only)")
            }
            AzureParseError::StrayWhitespace { line } => {
                write!(f, "line {line}: stray whitespace in field")
            }
            AzureParseError::WrongFieldCount { line, expected, found } => {
                write!(f, "line {line}: expected {expected} fields, found {found}")
            }
            AzureParseError::EmptyName { line } => write!(f, "line {line}: empty function name"),
            AzureParseError::BadNumber { line, field, value } => {
                write!(f, "line {line}: bad {field} value '{value}'")
            }
            AzureParseError::DuplicateFunction { line, name } => {
                write!(f, "line {line}: duplicate function '{name}'")
            }
            AzureParseError::NoFunctions => write!(f, "azure trace has no function rows"),
        }
    }
}

impl std::error::Error for AzureParseError {}

const FIXED_COLUMNS: [&str; 3] = ["function", "duration_p50_ms", "memory_p50_mb"];

impl AzureTrace {
    /// Parses the strict CSV format described in the module docs.
    pub fn parse(text: &str) -> Result<Self, AzureParseError> {
        // `str::lines` would silently strip `\r`; split on LF so CRLF
        // endings are caught and rejected.
        let mut lines = text.split('\n').enumerate();
        let (_, header) =
            lines.next().filter(|(_, l)| !l.is_empty()).ok_or(AzureParseError::Empty)?;
        check_line(header, 1)?;
        let cols: Vec<&str> = header.split(',').collect();
        if cols.len() < FIXED_COLUMNS.len() || cols[..3] != FIXED_COLUMNS {
            return Err(AzureParseError::BadHeader { found: header.to_string() });
        }
        let minutes = cols.len() - FIXED_COLUMNS.len();
        if minutes == 0 {
            return Err(AzureParseError::NoMinutes);
        }

        let mut functions: Vec<AzureFunction> = Vec::new();
        for (idx, raw) in lines {
            let line = idx + 1;
            if raw.is_empty() {
                continue;
            }
            check_line(raw, line)?;
            let fields: Vec<&str> = raw.split(',').collect();
            let expected = FIXED_COLUMNS.len() + minutes;
            if fields.len() != expected {
                return Err(AzureParseError::WrongFieldCount {
                    line,
                    expected,
                    found: fields.len(),
                });
            }
            let name = fields[0];
            if name.is_empty() {
                return Err(AzureParseError::EmptyName { line });
            }
            if functions.iter().any(|f| f.name == name) {
                return Err(AzureParseError::DuplicateFunction { line, name: name.to_string() });
            }
            let duration_p50_ms = parse_positive_f64(fields[1], line, "duration_p50_ms")?;
            let memory_p50_mb = parse_positive_f64(fields[2], line, "memory_p50_mb")?;
            let mut per_minute = Vec::with_capacity(minutes);
            for field in &fields[3..] {
                let count = field.parse::<u64>().map_err(|_| AzureParseError::BadNumber {
                    line,
                    field: "invocation count",
                    value: (*field).to_string(),
                })?;
                per_minute.push(count);
            }
            functions.push(AzureFunction {
                name: name.to_string(),
                duration_p50_ms,
                memory_p50_mb,
                per_minute,
            });
        }
        if functions.is_empty() {
            return Err(AzureParseError::NoFunctions);
        }
        Ok(AzureTrace { functions, minutes })
    }

    /// Total invocations across all rows and minutes.
    pub fn total_invocations(&self) -> u64 {
        self.functions.iter().flat_map(|f| f.per_minute.iter()).sum()
    }

    /// Maps each trace function (in file order) to a suite function
    /// index: rank trace functions by median duration, rank suite
    /// functions by per-invocation instruction count, and bucket the
    /// duration ranking onto the size ranking. Deterministic: ties break
    /// by name (trace) and index (suite).
    pub fn map_to_suite(&self, suite: &Suite) -> Vec<u32> {
        let mut by_duration: Vec<usize> = (0..self.functions.len()).collect();
        by_duration.sort_by(|&a, &b| {
            let fa = &self.functions[a];
            let fb = &self.functions[b];
            fa.duration_p50_ms
                .partial_cmp(&fb.duration_p50_ms)
                .expect("durations are finite")
                .then_with(|| fa.name.cmp(&fb.name))
        });
        let mut by_size: Vec<usize> = (0..suite.functions().len()).collect();
        by_size.sort_by_key(|&i| (suite.functions()[i].profile.invocation_instrs, i));

        let n = self.functions.len();
        let mut mapped = vec![0u32; n];
        for (rank, &trace_idx) in by_duration.iter().enumerate() {
            let bucket = rank * by_size.len() / n;
            mapped[trace_idx] = by_size[bucket] as u32;
        }
        mapped
    }
}

/// Rejects CRLF endings and any whitespace anywhere in the line (fields
/// are machine-written; padding means a malformed producer).
fn check_line(raw: &str, line: usize) -> Result<(), AzureParseError> {
    if raw.ends_with('\r') {
        return Err(AzureParseError::CrlfLineEnding { line });
    }
    if raw.chars().any(|c| c.is_whitespace()) {
        return Err(AzureParseError::StrayWhitespace { line });
    }
    Ok(())
}

fn parse_positive_f64(
    field: &str,
    line: usize,
    name: &'static str,
) -> Result<f64, AzureParseError> {
    let bad = || AzureParseError::BadNumber { line, field: name, value: field.to_string() };
    let v = field.parse::<f64>().map_err(|_| bad())?;
    if !v.is_finite() || v <= 0.0 {
        return Err(bad());
    }
    Ok(v)
}

/// Streams an [`AzureTrace`] as arrivals over the suite, one minute of
/// buffered arrivals at a time — O(busiest minute) state, not O(trace).
///
/// Minute `m`'s `c` invocations of a function land at integer cycles
/// `m·cpm + ((2k+1)·cpm)/(2c)` for `k = 0..c` (midpoints of `c` equal
/// slots), merged across functions in (cycle, function) order.
#[derive(Debug, Clone)]
pub struct AzureSource {
    trace: AzureTrace,
    mapped: Vec<u32>,
    suite_functions: usize,
    cycles_per_minute: u64,
    minute: usize,
    /// Current minute's arrivals, reversed so `pop` yields stream order.
    buffer: Vec<Arrival>,
}

impl AzureSource {
    /// Builds the source; the mapping is fixed at construction.
    ///
    /// # Panics
    ///
    /// Panics if `cycles_per_minute` is zero or the suite is empty.
    pub fn new(trace: AzureTrace, suite: &Suite, cycles_per_minute: u64) -> Self {
        assert!(cycles_per_minute > 0, "cycles_per_minute must be positive");
        assert!(!suite.functions().is_empty(), "empty suite");
        let mapped = trace.map_to_suite(suite);
        AzureSource {
            trace,
            mapped,
            suite_functions: suite.functions().len(),
            cycles_per_minute,
            minute: 0,
            buffer: Vec::new(),
        }
    }

    /// The fixed trace-function → suite-index mapping.
    pub fn mapping(&self) -> &[u32] {
        &self.mapped
    }

    fn fill_minute(&mut self, minute: usize) {
        let cpm = self.cycles_per_minute;
        let base = minute as u64 * cpm;
        for (idx, function) in self.trace.functions.iter().enumerate() {
            let c = function.per_minute[minute];
            for k in 0..c {
                let offset = ((2 * k + 1) * cpm) / (2 * c);
                self.buffer.push(Arrival { cycle: base + offset, function: self.mapped[idx] });
            }
        }
        self.buffer.sort_unstable_by_key(|a| (a.cycle, a.function));
        self.buffer.reverse();
    }
}

impl ArrivalSource for AzureSource {
    fn functions(&self) -> usize {
        self.suite_functions
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        while self.buffer.is_empty() && self.minute < self.trace.minutes {
            let minute = self.minute;
            self.minute += 1;
            self.fill_minute(minute);
        }
        self.buffer.pop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "function,duration_p50_ms,memory_p50_mb,m0,m1,m2\n\
                        checkout,12.5,128,4,0,9\n\
                        thumbnail,3.25,96,30,28,31\n";

    #[test]
    fn parses_well_formed_trace() {
        let trace = AzureTrace::parse(GOOD).unwrap();
        assert_eq!(trace.minutes, 3);
        assert_eq!(trace.functions.len(), 2);
        assert_eq!(trace.functions[0].name, "checkout");
        assert_eq!(trace.functions[0].per_minute, vec![4, 0, 9]);
        assert_eq!(trace.functions[1].duration_p50_ms, 3.25);
        assert_eq!(trace.total_invocations(), 4 + 9 + 30 + 28 + 31);
    }

    #[test]
    fn rejects_malformed_traces() {
        use AzureParseError as E;
        let cases: Vec<(&str, E)> = vec![
            ("", E::Empty),
            (
                "function,oops,memory_p50_mb,m0\n",
                E::BadHeader { found: "function,oops,memory_p50_mb,m0".to_string() },
            ),
            ("function,duration_p50_ms,memory_p50_mb\n", E::NoMinutes),
            (
                "function,duration_p50_ms,memory_p50_mb,m0\r\na,1,1,1\n",
                E::CrlfLineEnding { line: 1 },
            ),
            (
                "function,duration_p50_ms,memory_p50_mb,m0\na, 1,1,1\n",
                E::StrayWhitespace { line: 2 },
            ),
            (
                "function,duration_p50_ms,memory_p50_mb,m0\na,1,1,1,9\n",
                E::WrongFieldCount { line: 2, expected: 4, found: 5 },
            ),
            ("function,duration_p50_ms,memory_p50_mb,m0\n,1,1,1\n", E::EmptyName { line: 2 }),
            (
                "function,duration_p50_ms,memory_p50_mb,m0\na,zero,1,1\n",
                E::BadNumber { line: 2, field: "duration_p50_ms", value: "zero".to_string() },
            ),
            (
                "function,duration_p50_ms,memory_p50_mb,m0\na,-1,1,1\n",
                E::BadNumber { line: 2, field: "duration_p50_ms", value: "-1".to_string() },
            ),
            (
                "function,duration_p50_ms,memory_p50_mb,m0\na,1,1,-3\n",
                E::BadNumber { line: 2, field: "invocation count", value: "-3".to_string() },
            ),
            (
                "function,duration_p50_ms,memory_p50_mb,m0\na,1,1,1\na,2,2,2\n",
                E::DuplicateFunction { line: 3, name: "a".to_string() },
            ),
            ("function,duration_p50_ms,memory_p50_mb,m0\n", E::NoFunctions),
        ];
        for (text, want) in cases {
            assert_eq!(AzureTrace::parse(text), Err(want.clone()), "input: {text:?}");
            // Every error Displays without panicking.
            let _ = want.to_string();
        }
    }

    #[test]
    fn duration_ranking_maps_to_size_ranking() {
        let suite = Suite::paper_suite_scaled(0.02);
        let trace = AzureTrace::parse(GOOD).unwrap();
        let mapped = trace.map_to_suite(&suite);
        // checkout (12.5 ms) must land on a suite function at least as
        // large as thumbnail's (3.25 ms).
        let instrs = |i: u32| suite.functions()[i as usize].profile.invocation_instrs;
        assert!(instrs(mapped[0]) >= instrs(mapped[1]), "mapped {mapped:?}");
    }

    #[test]
    fn one_function_per_size_class_when_counts_match() {
        let suite = Suite::paper_suite_scaled(0.02);
        let n = suite.functions().len();
        let mut text = String::from("function,duration_p50_ms,memory_p50_mb,m0\n");
        for i in 0..n {
            text.push_str(&format!("f{i},{}.5,64,1\n", i + 1));
        }
        let trace = AzureTrace::parse(&text).unwrap();
        let mut mapped = trace.map_to_suite(&suite);
        mapped.sort_unstable();
        mapped.dedup();
        assert_eq!(mapped.len(), n, "with equal counts the mapping is a bijection");
    }

    #[test]
    fn source_emits_counts_in_order() {
        let suite = Suite::paper_suite_scaled(0.02);
        let trace = AzureTrace::parse(GOOD).unwrap();
        let total = trace.total_invocations();
        let mut source = AzureSource::new(trace, &suite, 100_000);
        assert_eq!(source.functions(), suite.functions().len());
        let mut arrivals = Vec::new();
        while let Some(a) = source.next_arrival() {
            arrivals.push(a);
        }
        assert_eq!(arrivals.len() as u64, total);
        for pair in arrivals.windows(2) {
            assert!(pair[0].cycle <= pair[1].cycle, "out of order: {pair:?}");
        }
        // Minute 1 has only thumbnail's 28 invocations.
        let minute1 = arrivals.iter().filter(|a| a.cycle >= 100_000 && a.cycle < 200_000).count();
        assert_eq!(minute1, 28);
        assert_eq!(source.next_arrival(), None);
    }

    #[test]
    fn midpoint_spacing_is_exact() {
        let suite = Suite::paper_suite_scaled(0.02);
        let text = "function,duration_p50_ms,memory_p50_mb,m0\nsolo,1.0,64,4\n";
        let trace = AzureTrace::parse(text).unwrap();
        let mut source = AzureSource::new(trace, &suite, 80_000);
        let cycles: Vec<u64> =
            std::iter::from_fn(|| source.next_arrival()).map(|a| a.cycle).collect();
        // 4 invocations over 80k cycles: midpoints of 20k slots.
        assert_eq!(cycles, vec![10_000, 30_000, 50_000, 70_000]);
    }
}
