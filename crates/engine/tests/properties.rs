//! Property-based tests for the simulation engine: for arbitrary generated
//! workloads and any front-end configuration, the simulator must terminate,
//! account its cycles consistently, and respect basic dominance relations.

use proptest::prelude::*;

use ignite_engine::config::{FrontEndConfig, StatePolicy};
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::addr::Addr;
use ignite_uarch::UarchConfig;
use ignite_workloads::gen::{generate, GenParams};

fn arb_function() -> impl Strategy<Value = PreparedFunction> {
    (64u32..600, 12u64..40, any::<u64>(), 0.0f64..0.1).prop_map(
        |(branches, avg_bytes, seed, noise)| {
            let params = GenParams {
                name: format!("engine-prop-{seed}"),
                seed,
                base: Addr::new(0x0040_0000),
                target_code_bytes: u64::from(branches) * avg_bytes,
                target_branches: branches,
                indirect_fraction: 0.02,
                call_fraction: 0.08,
                cond_fraction: 0.62,
                backward_fraction: 0.2,
                high_bias_fraction: 0.8,
                blocks_per_function: 32,
                dead_code_fraction: 0.4,
            };
            let mut f = PreparedFunction::from_image(generate(&params), 0, 6_000);
            f.noise = noise;
            f
        },
    )
}

fn arb_config() -> impl Strategy<Value = FrontEndConfig> {
    prop_oneof![
        Just(FrontEndConfig::nl()),
        Just(FrontEndConfig::fdp()),
        Just(FrontEndConfig::jukebox()),
        Just(FrontEndConfig::boomerang()),
        Just(FrontEndConfig::boomerang_jukebox()),
        Just(FrontEndConfig::confluence()),
        Just(FrontEndConfig::ignite()),
        Just(FrontEndConfig::ignite_boomerang()),
        Just(FrontEndConfig::confluence_ignite()),
        Just(FrontEndConfig::ideal()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every configuration terminates on every workload with consistent
    /// accounting.
    #[test]
    fn any_config_terminates_and_balances(f in arb_function(), fe in arb_config()) {
        let r = run_function(&UarchConfig::ice_lake_like(), &fe, &f, RunOptions::quick());
        prop_assert!(r.instructions >= 6_000, "budget executed");
        prop_assert!(r.cycles > 0);
        // Top-down slots reconcile with wall-clock cycles.
        let drift = (r.topdown.total() - r.cycles as f64).abs() / r.cycles as f64;
        prop_assert!(drift < 0.02, "{} topdown drift {drift}", fe.name);
        // Misprediction split is exact.
        prop_assert_eq!(
            r.initial_mispredictions + r.subsequent_mispredictions,
            r.cbp_mispredictions
        );
        // Rates are bounded by the branch density (≤ one event per
        // instruction, far less in practice).
        prop_assert!(r.l1i_mpki() <= 1000.0);
        prop_assert!(r.cbp_mpki() <= 1000.0);
    }

    /// The simulation is a pure function of its inputs.
    #[test]
    fn simulation_is_deterministic(f in arb_function(), fe in arb_config()) {
        let uarch = UarchConfig::ice_lake_like();
        let a = run_function(&uarch, &fe, &f, RunOptions::quick());
        let b = run_function(&uarch, &fe, &f, RunOptions::quick());
        prop_assert_eq!(a, b);
    }

    /// Warm state never hurts: back-to-back invocations are at least as
    /// fast as lukewarm ones for the same workload.
    #[test]
    fn warm_state_dominates_lukewarm(f in arb_function()) {
        let uarch = UarchConfig::ice_lake_like();
        let luke = run_function(&uarch, &FrontEndConfig::nl(), &f, RunOptions::quick());
        let warm_cfg =
            FrontEndConfig::nl().with_policy("(warm)", StatePolicy::back_to_back());
        let warm = run_function(&uarch, &warm_cfg, &f, RunOptions::quick());
        prop_assert!(
            warm.cpi() <= luke.cpi() * 1.02,
            "warm {} vs lukewarm {}",
            warm.cpi(),
            luke.cpi()
        );
    }

    /// The ideal front-end bounds every real configuration from below.
    #[test]
    fn ideal_is_a_lower_bound(f in arb_function(), fe in arb_config()) {
        let uarch = UarchConfig::ice_lake_like();
        let real = run_function(&uarch, &fe, &f, RunOptions::quick());
        let ideal =
            run_function(&uarch, &FrontEndConfig::ideal(), &f, RunOptions::quick());
        prop_assert!(
            ideal.cpi() <= real.cpi() * 1.05,
            "{}: ideal {} vs real {}",
            fe.name,
            ideal.cpi(),
            real.cpi()
        );
    }
}
