//! Quick calibration probe: one function, all front-end configurations.
//!
//! Run with `cargo run --release -p ignite-engine --example speed_probe`.

use ignite_engine::config::FrontEndConfig;
use ignite_engine::machine::PreparedFunction;
use ignite_engine::protocol::{run_function, RunOptions};
use ignite_uarch::stats::speedup;
use ignite_uarch::UarchConfig;
use ignite_workloads::suite::Suite;
use std::time::Instant;

fn main() {
    let suite = Suite::paper_suite();
    let uarch = UarchConfig::ice_lake_like();
    let f = PreparedFunction::from_suite(&suite.functions()[0], 0);
    let opts = RunOptions::quick();
    let configs = [
        FrontEndConfig::nl(),
        FrontEndConfig::jukebox(),
        FrontEndConfig::boomerang(),
        FrontEndConfig::boomerang_jukebox(),
        FrontEndConfig::ignite(),
        FrontEndConfig::ignite_tage(),
        FrontEndConfig::ideal(),
    ];
    let nl = run_function(&uarch, &configs[0], &f, opts);
    for c in &configs {
        let t = Instant::now();
        let r = run_function(&uarch, c, &f, opts);
        let n = r.instructions as f64;
        println!(
            "{:16} speedup={:.3} cpi={:.3} [ret={:.2} fetch={:.2} bad={:.2} be={:.2}] l1i={:5.1} btb={:5.1} cbp={:5.1} ({:?})",
            c.name,
            speedup(nl.cycles, r.cycles) * (r.instructions as f64 / nl.instructions as f64),
            r.cpi(),
            r.topdown.retiring / n,
            r.topdown.fetch_bound / n,
            r.topdown.bad_speculation / n,
            r.topdown.backend_bound / n,
            r.l1i_mpki(),
            r.btb_mpki(),
            r.cbp_mpki(),
            t.elapsed()
        );
    }
}
