//! Front-end configurations under evaluation (§5.3) and cross-invocation
//! state policies (§3.2, §5.3).

use ignite_core::IgniteConfig;
use ignite_prefetch::boomerang::BoomerangConfig;
use ignite_prefetch::confluence::ConfluenceConfig;
use ignite_prefetch::jukebox::JukeboxConfig;
use ignite_uarch::bimodal::BimInitPolicy;

/// Which microarchitectural state survives between two invocations of the
/// same function.
///
/// The lukewarm protocol (§5.3) flushes everything and randomizes the BIM;
/// the warm-state studies (Figs. 4, 5) selectively preserve structures; a
/// back-to-back run preserves everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatePolicy {
    /// Preserve L1-I/L2/LLC contents.
    pub warm_caches: bool,
    /// Preserve ITLB contents.
    pub warm_itlb: bool,
    /// Preserve the BTB.
    pub warm_btb: bool,
    /// Preserve the bimodal tables (otherwise they are randomized).
    pub warm_bim: bool,
    /// Preserve the TAGE tables (otherwise they are cleared).
    pub warm_tage: bool,
    /// Preserve the back-end data working set (no cold data misses).
    pub warm_data: bool,
}

impl StatePolicy {
    /// The lukewarm interleaving protocol: flush everything, randomize BIM.
    pub const fn lukewarm() -> Self {
        StatePolicy {
            warm_caches: false,
            warm_itlb: false,
            warm_btb: false,
            warm_bim: false,
            warm_tage: false,
            warm_data: false,
        }
    }

    /// Back-to-back invocations: everything stays warm.
    pub const fn back_to_back() -> Self {
        StatePolicy {
            warm_caches: true,
            warm_itlb: true,
            warm_btb: true,
            warm_bim: true,
            warm_tage: true,
            warm_data: true,
        }
    }

    /// Lukewarm but with a preserved BTB (Fig. 4, second bar).
    pub const fn lukewarm_warm_btb() -> Self {
        StatePolicy { warm_btb: true, ..StatePolicy::lukewarm() }
    }

    /// Lukewarm but with preserved BTB and full CBP (Fig. 4, third bar).
    pub const fn lukewarm_warm_bpu() -> Self {
        StatePolicy { warm_btb: true, warm_bim: true, warm_tage: true, ..StatePolicy::lukewarm() }
    }

    /// Lukewarm with warm BTB and warm BIM only (Fig. 5, middle).
    pub const fn lukewarm_warm_btb_bim() -> Self {
        StatePolicy { warm_btb: true, warm_bim: true, ..StatePolicy::lukewarm() }
    }
}

/// Which prefetching/restoration mechanisms are active.
///
/// The aggressive next-line prefetcher is always on (§5.3: "Used in all
/// configurations below").
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEndSelect {
    /// Decoupled front-end (FDP): FTQ run-ahead with L1-I prefetching.
    pub fdp: bool,
    /// Boomerang BTB prefilling (implies FDP).
    pub boomerang: Option<BoomerangConfig>,
    /// Jukebox L2 record/replay.
    pub jukebox: Option<JukeboxConfig>,
    /// Confluence temporal streaming.
    pub confluence: Option<ConfluenceConfig>,
    /// Ignite record/replay restoration.
    pub ignite: Option<IgniteConfig>,
    /// Ideal front-end: perfect L1-I, perfect BTB, pre-trained CBP.
    pub ideal: bool,
}

/// A named front-end configuration: mechanisms plus the state policy.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontEndConfig {
    /// Display name (matches the paper's figure legends).
    pub name: String,
    /// Active mechanisms.
    pub select: FrontEndSelect,
    /// Cross-invocation state policy.
    pub policy: StatePolicy,
}

impl FrontEndConfig {
    fn base(name: &str) -> Self {
        FrontEndConfig {
            name: name.to_string(),
            select: FrontEndSelect {
                fdp: false,
                boomerang: None,
                jukebox: None,
                confluence: None,
                ignite: None,
                ideal: false,
            },
            policy: StatePolicy::lukewarm(),
        }
    }

    /// Baseline: next-line prefetching only.
    pub fn nl() -> Self {
        FrontEndConfig::base("NL")
    }

    /// Decoupled front-end with FTQ-driven L1-I prefetching.
    pub fn fdp() -> Self {
        let mut c = FrontEndConfig::base("FDP");
        c.select.fdp = true;
        c
    }

    /// Boomerang (FDP + BTB prefill).
    pub fn boomerang() -> Self {
        let mut c = FrontEndConfig::base("Boomerang");
        c.select.fdp = true;
        c.select.boomerang = Some(BoomerangConfig::default());
        c
    }

    /// Jukebox on the NL baseline.
    pub fn jukebox() -> Self {
        let mut c = FrontEndConfig::base("Jukebox");
        c.select.jukebox = Some(JukeboxConfig::default());
        c
    }

    /// Boomerang combined with Jukebox.
    pub fn boomerang_jukebox() -> Self {
        let mut c = FrontEndConfig::base("Boomerang + JB");
        c.select.fdp = true;
        c.select.boomerang = Some(BoomerangConfig::default());
        c.select.jukebox = Some(JukeboxConfig::default());
        c
    }

    /// Confluence temporal streaming on the NL baseline.
    pub fn confluence() -> Self {
        let mut c = FrontEndConfig::base("Confluence");
        c.select.confluence = Some(ConfluenceConfig::default());
        c
    }

    /// Ignite on FDP (the paper's "Ignite").
    pub fn ignite() -> Self {
        let mut c = FrontEndConfig::base("Ignite");
        c.select.fdp = true;
        c.select.ignite = Some(IgniteConfig::default());
        c
    }

    /// Ignite with the TAGE tables additionally preserved across
    /// invocations (the paper's "Ignite + TAGE" opportunity study).
    pub fn ignite_tage() -> Self {
        let mut c = FrontEndConfig::ignite();
        c.name = "Ignite + TAGE".to_string();
        c.policy.warm_tage = true;
        c
    }

    /// Ignite on top of Boomerang instead of plain FDP — the paper notes
    /// its implementation "could equally be used with Boomerang" (§5.3).
    pub fn ignite_boomerang() -> Self {
        let mut c = FrontEndConfig::base("Ignite + Boomerang");
        c.select.fdp = true;
        c.select.boomerang = Some(BoomerangConfig::default());
        c.select.ignite = Some(IgniteConfig::default());
        c
    }

    /// Confluence combined with Ignite (§6.5).
    pub fn confluence_ignite() -> Self {
        let mut c = FrontEndConfig::base("Confluence + Ignite");
        c.select.confluence = Some(ConfluenceConfig::default());
        c.select.ignite = Some(IgniteConfig::default());
        c
    }

    /// Ideal front-end: perfect L1-I and BTB, pre-trained CBP.
    pub fn ideal() -> Self {
        let mut c = FrontEndConfig::base("Ideal");
        c.select.ideal = true;
        c.policy.warm_bim = true;
        c.policy.warm_tage = true;
        c
    }

    /// Overrides the cross-invocation state policy, renaming the config.
    pub fn with_policy(mut self, suffix: &str, policy: StatePolicy) -> Self {
        self.name = format!("{} {}", self.name, suffix);
        self.policy = policy;
        self
    }

    /// Installs a metadata fault-injection plan on the config's Ignite
    /// instance (robustness ablations). The name is suffixed so swept
    /// configurations stay distinguishable.
    ///
    /// # Panics
    ///
    /// Panics if this configuration does not include Ignite.
    pub fn with_faults(mut self, suffix: &str, faults: ignite_core::FaultPlan) -> Self {
        let ignite = self.select.ignite.as_mut().expect("fault plans apply to Ignite configs only");
        ignite.faults = faults;
        if !suffix.is_empty() {
            self.name = format!("{} [{}]", self.name, suffix);
        }
        self
    }

    /// Overrides Ignite's BIM initialization policy (Fig. 11 ablations).
    ///
    /// # Panics
    ///
    /// Panics if this configuration does not include Ignite.
    pub fn with_bim_policy(mut self, policy: BimInitPolicy) -> Self {
        let ignite =
            self.select.ignite.as_mut().expect("BIM policy applies to Ignite configs only");
        ignite.replay.bim_policy = policy;
        self.name = format!(
            "{} ({})",
            self.name,
            match policy {
                BimInitPolicy::None => "BTB only",
                BimInitPolicy::WeaklyNotTaken => "BIM wNT",
                BimInitPolicy::WeaklyTaken => "BIM wT",
            }
        );
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lukewarm_flushes_everything() {
        let p = StatePolicy::lukewarm();
        assert!(!p.warm_caches && !p.warm_btb && !p.warm_bim && !p.warm_tage);
    }

    #[test]
    fn back_to_back_keeps_everything() {
        let p = StatePolicy::back_to_back();
        assert!(p.warm_caches && p.warm_btb && p.warm_bim && p.warm_tage && p.warm_data);
    }

    #[test]
    fn named_configs_have_expected_mechanisms() {
        assert!(!FrontEndConfig::nl().select.fdp);
        assert!(FrontEndConfig::boomerang().select.boomerang.is_some());
        assert!(FrontEndConfig::boomerang().select.fdp);
        assert!(FrontEndConfig::jukebox().select.jukebox.is_some());
        assert!(!FrontEndConfig::jukebox().select.fdp, "Jukebox rides the NL baseline");
        let bjb = FrontEndConfig::boomerang_jukebox();
        assert!(bjb.select.boomerang.is_some() && bjb.select.jukebox.is_some());
        assert!(FrontEndConfig::ignite().select.ignite.is_some());
        assert!(FrontEndConfig::ignite().select.fdp, "Ignite is implemented on FDP");
        assert!(FrontEndConfig::ideal().select.ideal);
    }

    #[test]
    fn ignite_tage_preserves_tage() {
        let c = FrontEndConfig::ignite_tage();
        assert!(c.policy.warm_tage);
        assert!(!c.policy.warm_btb, "only TAGE is preserved; the BTB is restored by replay");
    }

    #[test]
    fn bim_policy_override() {
        use ignite_uarch::bimodal::BimInitPolicy;
        let c = FrontEndConfig::ignite().with_bim_policy(BimInitPolicy::WeaklyNotTaken);
        assert_eq!(c.select.ignite.unwrap().replay.bim_policy, BimInitPolicy::WeaklyNotTaken);
        assert!(c.name.contains("wNT"));
    }

    #[test]
    #[should_panic(expected = "Ignite configs only")]
    fn bim_policy_requires_ignite() {
        FrontEndConfig::nl().with_bim_policy(BimInitPolicy::WeaklyTaken);
    }

    #[test]
    fn fault_plan_override() {
        let plan = ignite_core::FaultPlan::bit_flips(0.01, 42);
        let c = FrontEndConfig::ignite().with_faults("flip 1e-2", plan);
        assert_eq!(c.select.ignite.unwrap().faults, plan);
        assert!(c.name.contains("flip 1e-2"));
    }

    #[test]
    #[should_panic(expected = "Ignite configs only")]
    fn fault_plan_requires_ignite() {
        FrontEndConfig::fdp().with_faults("", ignite_core::FaultPlan::none());
    }

    #[test]
    fn with_policy_renames() {
        let c = FrontEndConfig::boomerang_jukebox()
            .with_policy("+ warm BTB", StatePolicy::lukewarm_warm_btb());
        assert!(c.name.contains("warm BTB"));
        assert!(c.policy.warm_btb);
    }
}
