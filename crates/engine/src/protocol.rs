//! Invocation protocols: warm-up, lukewarm interleaving, measurement.
//!
//! Mirrors the paper's §5.3 methodology: the function is first invoked to
//! warm the runtime and train record-based mechanisms, then measured over
//! several consecutive invocations with the configured state policy applied
//! between them (full flush + BIM randomization for lukewarm).

use crate::config::FrontEndConfig;
use crate::machine::{Machine, PreparedFunction};
use crate::metrics::InvocationResult;
use crate::sim::run_invocation;
use ignite_uarch::UarchConfig;

/// How many invocations to run and measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Unmeasured leading invocations (trains recorders; the paper uses
    /// 20 000 hardware invocations to warm runtimes — one suffices here
    /// because the synthetic runtime has no JIT warm-up).
    pub warmup_invocations: usize,
    /// Measured invocations, averaged.
    pub measured_invocations: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { warmup_invocations: 1, measured_invocations: 3 }
    }
}

impl RunOptions {
    /// A single measured invocation (fast tests).
    pub fn quick() -> Self {
        RunOptions { warmup_invocations: 1, measured_invocations: 1 }
    }
}

/// Runs one function under one front-end configuration and returns the
/// summed measurements over the measured invocations.
///
/// Rates (CPI, MPKI) derived from the summed result equal the
/// instruction-weighted average over invocations.
pub fn run_function(
    uarch: &UarchConfig,
    fe: &FrontEndConfig,
    function: &PreparedFunction,
    opts: RunOptions,
) -> InvocationResult {
    let mut machine = Machine::new(uarch, fe);
    let mut total = InvocationResult::default();
    let invocations = opts.warmup_invocations + opts.measured_invocations;
    for i in 0..invocations {
        if i > 0 {
            machine.between_invocations();
        }
        let r = run_invocation(&mut machine, function, i as u64);
        if i >= opts.warmup_invocations {
            total.merge(&r);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ignite_workloads::gen::{generate, GenParams};

    fn function() -> PreparedFunction {
        let mut p = GenParams::example("protocol-test");
        p.target_branches = 400;
        p.target_code_bytes = 16 * 1024;
        PreparedFunction::from_image(generate(&p), 0, 20_000)
    }

    #[test]
    fn measured_invocations_accumulate() {
        let uarch = UarchConfig::ice_lake_like();
        let f = function();
        let one = run_function(&uarch, &FrontEndConfig::nl(), &f, RunOptions::quick());
        let three = run_function(
            &uarch,
            &FrontEndConfig::nl(),
            &f,
            RunOptions { warmup_invocations: 1, measured_invocations: 3 },
        );
        assert!(three.instructions > 2 * one.instructions);
    }

    #[test]
    fn warmup_excluded_from_measurement() {
        // The warm-up invocation runs on a cold machine with no metadata;
        // measured Ignite invocations must show replay traffic.
        let uarch = UarchConfig::ice_lake_like();
        let f = function();
        let r = run_function(&uarch, &FrontEndConfig::ignite(), &f, RunOptions::quick());
        assert!(r.traffic.replay_metadata_bytes > 0);
    }

    #[test]
    fn run_is_deterministic() {
        let uarch = UarchConfig::ice_lake_like();
        let f = function();
        let a = run_function(&uarch, &FrontEndConfig::ignite(), &f, RunOptions::default());
        let b = run_function(&uarch, &FrontEndConfig::ignite(), &f, RunOptions::default());
        assert_eq!(a, b);
    }
}
