#![warn(missing_docs)]
//! Cycle-approximate decoupled front-end simulation engine.
//!
//! Substitutes for the paper's gem5 full-system setup (§5.3): a trace-driven
//! model of an Ice Lake-like core front-end — decoupled BPU + FTQ, the
//! L1-I/L2/LLC/DRAM instruction path, resteer penalties, Top-Down cycle
//! accounting — plus an abstract back-end. See DESIGN.md §1 for what is
//! modelled structurally vs. abstractly.
//!
//! Entry points:
//!
//! * [`config::FrontEndConfig`] — the evaluated configurations (NL, FDP,
//!   Boomerang, Jukebox, Confluence, Ignite, Ideal) and state policies
//!   (lukewarm / back-to-back / selectively warm).
//! * [`machine::PreparedFunction`] / [`machine::Machine`] — a bound
//!   workload and the simulated hardware.
//! * [`protocol::run_function`] — warm-up + measured invocations under a
//!   policy, returning an [`metrics::InvocationResult`].
//!
//! # Example
//!
//! ```
//! use ignite_engine::config::FrontEndConfig;
//! use ignite_engine::machine::PreparedFunction;
//! use ignite_engine::protocol::{run_function, RunOptions};
//! use ignite_uarch::UarchConfig;
//! use ignite_workloads::gen::{generate, GenParams};
//!
//! let mut params = GenParams::example("doc");
//! params.target_branches = 200;
//! params.target_code_bytes = 8 * 1024;
//! let f = PreparedFunction::from_image(generate(&params), 0, 10_000);
//! let uarch = UarchConfig::ice_lake_like();
//! let result = run_function(&uarch, &FrontEndConfig::nl(), &f, RunOptions::quick());
//! assert!(result.cpi() > 0.0);
//! ```

pub mod config;
pub mod machine;
pub mod metrics;
pub mod protocol;
pub mod sim;
pub mod topdown;

pub use config::{FrontEndConfig, StatePolicy};
pub use machine::{Machine, PreparedFunction};
pub use metrics::{InvocationResult, RestoreAccuracy, Traffic};
pub use protocol::{run_function, RunOptions};
pub use topdown::{Category, TopDown};
