//! Top-Down cycle accounting (Yasin, ISPASS'14; paper §2.2).
//!
//! Execution cycles are split into four categories: *retiring* (useful
//! work), *fetch bound* (instruction cache/TLB stalls), *bad speculation*
//! (BTB misses and branch mispredictions — pipeline flushes), and *back-end
//! bound* (data stalls). Fetch bound + bad speculation together are the
//! "front-end stalls" of the paper's Fig. 1.

/// Cycle category (paper Fig. 1 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Useful retirement slots.
    Retiring,
    /// Instruction delivery stalls.
    FetchBound,
    /// Pipeline flushes from BTB misses and mispredictions.
    BadSpeculation,
    /// Data-side stalls.
    BackendBound,
}

impl Category {
    /// All categories in display order.
    pub const ALL: [Category; 4] = [
        Category::Retiring,
        Category::FetchBound,
        Category::BadSpeculation,
        Category::BackendBound,
    ];
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::Retiring => write!(f, "Retiring"),
            Category::FetchBound => write!(f, "Fetch Bound"),
            Category::BadSpeculation => write!(f, "Bad Speculation"),
            Category::BackendBound => write!(f, "Backend Bound"),
        }
    }
}

/// Accumulated per-category cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TopDown {
    /// Useful retirement cycles.
    pub retiring: f64,
    /// Instruction-delivery stall cycles.
    pub fetch_bound: f64,
    /// Flush/recovery cycles.
    pub bad_speculation: f64,
    /// Data-stall cycles.
    pub backend_bound: f64,
}

impl TopDown {
    /// Adds cycles to a category.
    pub fn add(&mut self, category: Category, cycles: f64) {
        debug_assert!(cycles >= 0.0, "negative cycles");
        match category {
            Category::Retiring => self.retiring += cycles,
            Category::FetchBound => self.fetch_bound += cycles,
            Category::BadSpeculation => self.bad_speculation += cycles,
            Category::BackendBound => self.backend_bound += cycles,
        }
    }

    /// Cycles in a category.
    pub fn get(&self, category: Category) -> f64 {
        match category {
            Category::Retiring => self.retiring,
            Category::FetchBound => self.fetch_bound,
            Category::BadSpeculation => self.bad_speculation,
            Category::BackendBound => self.backend_bound,
        }
    }

    /// Total cycles across categories.
    pub fn total(&self) -> f64 {
        self.retiring + self.fetch_bound + self.bad_speculation + self.backend_bound
    }

    /// Front-end stall cycles (fetch bound + bad speculation, §2.2).
    pub fn front_end(&self) -> f64 {
        self.fetch_bound + self.bad_speculation
    }

    /// Per-category CPI contributions for `instructions` retired.
    pub fn cpi_stack(&self, instructions: u64) -> [(Category, f64); 4] {
        let n = instructions.max(1) as f64;
        Category::ALL.map(|c| (c, self.get(c) / n))
    }

    /// Merges another accumulation into this one.
    pub fn merge(&mut self, other: &TopDown) {
        self.retiring += other.retiring;
        self.fetch_bound += other.fetch_bound;
        self.bad_speculation += other.bad_speculation;
        self.backend_bound += other.backend_bound;
    }

    /// Scales all categories (averaging across invocations).
    pub fn scaled(&self, factor: f64) -> TopDown {
        TopDown {
            retiring: self.retiring * factor,
            fetch_bound: self.fetch_bound * factor,
            bad_speculation: self.bad_speculation * factor,
            backend_bound: self.backend_bound * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut t = TopDown::default();
        t.add(Category::Retiring, 10.0);
        t.add(Category::FetchBound, 5.0);
        t.add(Category::BadSpeculation, 3.0);
        t.add(Category::BackendBound, 2.0);
        assert_eq!(t.total(), 20.0);
        assert_eq!(t.front_end(), 8.0);
    }

    #[test]
    fn cpi_stack_normalizes() {
        let mut t = TopDown::default();
        t.add(Category::Retiring, 100.0);
        let stack = t.cpi_stack(200);
        assert_eq!(stack[0], (Category::Retiring, 0.5));
    }

    #[test]
    fn cpi_stack_handles_zero_instructions() {
        let t = TopDown::default();
        let stack = t.cpi_stack(0);
        assert_eq!(stack[0].1, 0.0);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = TopDown::default();
        a.add(Category::Retiring, 4.0);
        let mut b = TopDown::default();
        b.add(Category::Retiring, 6.0);
        a.merge(&b);
        assert_eq!(a.retiring, 10.0);
        assert_eq!(a.scaled(0.5).retiring, 5.0);
    }

    #[test]
    fn categories_display() {
        for c in Category::ALL {
            assert!(!format!("{c}").is_empty());
        }
    }
}
